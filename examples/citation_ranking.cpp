/**
 * @file
 * Citation ranking: PageRank over a synthetic citation network (papers
 * cite earlier papers, so the graph is DAG-heavy — the case where the
 * dependency-aware dispatching converges most paths in a single pass).
 * Prints the top-ranked papers and cross-checks the engine against the
 * sequential reference.
 *
 *   ./citation_ranking [num_papers]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "baselines/sequential.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace digraph;

    const VertexId n = argc > 1
                           ? static_cast<VertexId>(std::atoi(argv[1]))
                           : 4000;

    // Citation-like graph: strong forward bias (papers cite the past),
    // skewed in-degrees (famous papers), small cyclic core (mutual
    // citation clusters / errata).
    graph::GeneratorConfig config;
    config.num_vertices = n;
    config.num_edges = static_cast<EdgeId>(n) * 6;
    config.degree_skew = 1.9;
    config.forward_bias = 0.9;
    config.scc_core_fraction = 0.1;
    config.locality = 0.4;
    config.seed = 2026;
    const auto citations = graph::generate(config);

    engine::EngineOptions options;
    options.platform.num_devices = 4;
    engine::DiGraphEngine engine(citations, options);

    const algorithms::PageRank pagerank;
    const auto report = engine.run(pagerank);

    // Influence flows along citation direction: rank of the paper a
    // citation points at grows. Top of the ranking:
    std::vector<VertexId> order(citations.numVertices());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        return report.final_state[a] > report.final_state[b];
    });
    std::printf("top influential papers (of %u):\n",
                citations.numVertices());
    for (int i = 0; i < 10; ++i) {
        std::printf("  #%2d paper %5u  rank %.4f  (cited %zu times)\n",
                    i + 1, order[i], report.final_state[order[i]],
                    citations.inDegree(order[i]));
    }

    // Cross-check against the sequential reference.
    const auto ref = baselines::runSequential(citations, pagerank);
    double max_err = 0.0;
    for (VertexId v = 0; v < citations.numVertices(); ++v) {
        max_err = std::max(
            max_err, std::abs(report.final_state[v] - ref.state[v]) /
                         std::max(1.0, std::abs(ref.state[v])));
    }
    std::printf("max relative deviation from sequential reference: "
                "%.2e\n",
                max_err);
    std::printf("engine updates: %llu, sequential updates: %llu\n",
                static_cast<unsigned long long>(report.vertex_updates),
                static_cast<unsigned long long>(ref.vertex_updates));
    return max_err < 1e-3 ? 0 : 1;
}
