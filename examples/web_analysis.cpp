/**
 * @file
 * Web-graph analysis pipeline: combines the engine-driven and standalone
 * analyses on one crawl-like graph —
 *
 *   1. generate a webbase-like stand-in and round-trip it through the
 *      MatrixMarket format (interchange with external tools),
 *   2. PageRank and Katz centrality on the DiGraph engine,
 *   3. HITS hubs/authorities (standalone power iteration),
 *   4. multi-source reachability from the top hubs,
 *
 * and prints a per-page summary for the most interesting pages.
 *
 *   ./web_analysis [num_pages]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <vector>

#include "algorithms/hits.hpp"
#include "algorithms/katz.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reachability.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/formats.hpp"
#include "graph/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace digraph;

    const VertexId n = argc > 1
                           ? static_cast<VertexId>(std::atoi(argv[1]))
                           : 6000;

    graph::GeneratorConfig config = graph::datasetConfig(
        graph::Dataset::webbase, static_cast<double>(n) / 48000.0);
    const auto crawl = graph::generate(config);

    // 1. Format round trip (what an external crawler would hand us).
    const auto mtx =
        (std::filesystem::temp_directory_path() / "crawl.mtx").string();
    graph::saveMatrixMarket(crawl, mtx);
    const auto web = graph::loadMatrixMarket(mtx);
    std::filesystem::remove(mtx);
    std::printf("crawl: %u pages, %llu links (via %s)\n",
                web.numVertices(),
                static_cast<unsigned long long>(web.numEdges()),
                "MatrixMarket round-trip");

    // 2. Engine-driven centralities (one preprocessing, two runs).
    engine::EngineOptions options;
    options.platform.num_devices = 4;
    engine::DiGraphEngine engine(web, options);
    const algorithms::PageRank pagerank;
    const auto pr = engine.run(pagerank);
    const algorithms::Katz katz(web);
    const auto kz = engine.run(katz);
    std::printf("pagerank: %llu updates; katz: %llu updates\n",
                static_cast<unsigned long long>(pr.vertex_updates),
                static_cast<unsigned long long>(kz.vertex_updates));

    // 3. HITS (standalone).
    const auto hits = algorithms::computeHits(web, 60);

    // 4. Reachability from the three strongest hubs.
    std::vector<VertexId> hubs(web.numVertices());
    std::iota(hubs.begin(), hubs.end(), 0);
    std::partial_sort(hubs.begin(), hubs.begin() + 3, hubs.end(),
                      [&](VertexId a, VertexId b) {
                          return hits.hub[a] > hits.hub[b];
                      });
    hubs.resize(3);
    const algorithms::Reachability reach(hubs);
    engine::DiGraphEngine reach_engine(web, options);
    const auto coverage = reach_engine.run(reach);
    std::size_t reached = 0;
    for (const Value mask : coverage.final_state)
        reached += mask != 0.0;
    std::printf("top hubs %u/%u/%u reach %.1f%% of the crawl\n", hubs[0],
                hubs[1], hubs[2],
                100.0 * static_cast<double>(reached) /
                    static_cast<double>(web.numVertices()));

    // Summary: top pages by PageRank with their other scores.
    std::vector<VertexId> order(web.numVertices());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        return pr.final_state[a] > pr.final_state[b];
    });
    std::printf("%8s %10s %10s %10s %10s\n", "page", "pagerank", "katz",
                "authority", "hub");
    for (int i = 0; i < 8; ++i) {
        const VertexId v = order[i];
        std::printf("%8u %10.4f %10.4f %10.5f %10.5f\n", v,
                    pr.final_state[v], kz.final_state[v],
                    hits.authority[v], hits.hub[v]);
    }
    return 0;
}
