/**
 * @file
 * Social recommendation: adsorption label propagation [3] over a
 * synthetic follower network — the YouTube-style "random walks through
 * the view graph" workload that motivates the paper's adsorption
 * benchmark. A small seed set injects interest mass; the engine
 * propagates it along weighted edges, and vertices with the highest
 * absorbed score are the recommendation candidates.
 *
 *   ./social_recommendation [num_users]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "algorithms/adsorption.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

int
main(int argc, char **argv)
{
    using namespace digraph;

    const VertexId n = argc > 1
                           ? static_cast<VertexId>(std::atoi(argv[1]))
                           : 6000;

    // Follower-network stand-in: dense, short distances, giant SCC.
    graph::GeneratorConfig config;
    config.num_vertices = n;
    config.num_edges = static_cast<EdgeId>(n) * 20;
    config.degree_skew = 2.2;
    config.locality = 0.1;
    config.forward_bias = 0.5;
    config.scc_core_fraction = 0.8;
    config.seed = 77;
    const auto network = graph::generate(config);

    const auto props = graph::measureProperties(network, 8);
    std::printf("network: %s\n", graph::describe(props).c_str());

    engine::EngineOptions options;
    options.platform.num_devices = 4;
    engine::DiGraphEngine engine(network, options);

    // Every 97th user is a seed (an account the target user already
    // follows); adsorption spreads that interest over the graph.
    const algorithms::Adsorption adsorption(network, /*seed_every=*/97);
    const auto report = engine.run(adsorption);

    std::vector<VertexId> order(network.numVertices());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        return report.final_state[a] > report.final_state[b];
    });

    std::printf("top recommendation candidates (non-seeds):\n");
    int shown = 0;
    for (const VertexId v : order) {
        if (v % 97 == 0)
            continue; // already followed
        std::printf("  user %5u  score %.5f  (followers %zu)\n", v,
                    report.final_state[v], network.inDegree(v));
        if (++shown == 10)
            break;
    }
    std::printf("converged in %llu updates over %u partitions\n",
                static_cast<unsigned long long>(report.vertex_updates),
                static_cast<unsigned>(report.num_partitions));
    return 0;
}
