/**
 * @file
 * Quickstart: build a small directed graph with the public API, run SSSP
 * on the DiGraph engine over two simulated GPUs, and read the results.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "algorithms/sssp.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/builder.hpp"

int
main()
{
    using namespace digraph;

    // 1. Build a directed graph (a small weighted road-like network).
    graph::GraphBuilder builder;
    builder.addEdge(0, 1, 4.0);
    builder.addEdge(0, 2, 1.0);
    builder.addEdge(2, 1, 2.0);
    builder.addEdge(1, 3, 5.0);
    builder.addEdge(2, 3, 8.0);
    builder.addEdge(3, 4, 3.0);
    builder.addEdge(1, 4, 10.0);
    builder.addEdge(4, 5, 1.0);
    builder.addEdge(3, 5, 6.0);
    const graph::DirectedGraph g = builder.build();

    // 2. Configure the engine: 2 simulated GPUs, default path pipeline.
    engine::EngineOptions options;
    options.platform.num_devices = 2;
    engine::DiGraphEngine engine(g, options);

    std::printf("graph: %u vertices, %llu edges -> %u paths in %u "
                "partitions\n",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()),
                engine.preprocessed().paths.numPaths(),
                engine.preprocessed().numPartitions());

    // 3. Run single-source shortest paths from vertex 0.
    const algorithms::Sssp sssp(/*source=*/0);
    const metrics::RunReport report = engine.run(sssp);

    std::printf("converged after %llu vertex updates, %.0f simulated "
                "cycles\n",
                static_cast<unsigned long long>(report.vertex_updates),
                report.sim_cycles);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        std::printf("  dist(0 -> %u) = %.1f\n", v,
                    report.final_state[v]);
    return 0;
}
