/**
 * @file
 * Community cores: iterative k-core peeling [14] over a synthetic
 * interaction network, for several k thresholds — a standard density
 * screen before community detection. Shows how the same preprocessed
 * engine instance runs many algorithm configurations.
 *
 *   ./community_cores [num_members]
 */

#include <cstdio>
#include <cstdlib>

#include "algorithms/kcore.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace digraph;

    const VertexId n = argc > 1
                           ? static_cast<VertexId>(std::atoi(argv[1]))
                           : 8000;

    graph::GeneratorConfig config;
    config.num_vertices = n;
    config.num_edges = static_cast<EdgeId>(n) * 12;
    config.degree_skew = 2.0;
    config.locality = 0.3;
    config.scc_core_fraction = 0.7;
    config.seed = 4242;
    const auto network = graph::generate(config);

    engine::EngineOptions options;
    options.platform.num_devices = 2;
    engine::DiGraphEngine engine(network, options);
    std::printf("interaction network: %u members, %llu directed "
                "interactions\n",
                network.numVertices(),
                static_cast<unsigned long long>(network.numEdges()));

    // Peel with growing k; the preprocessing (paths, DAG sketch,
    // partitions) is reused across all runs.
    std::printf("%4s  %10s  %10s  %12s\n", "k", "in k-core", "peeled",
                "updates");
    for (const unsigned k : {2u, 3u, 5u, 8u, 13u}) {
        const algorithms::KCore kcore(k);
        const auto report = engine.run(kcore);
        VertexId alive = 0;
        for (const Value state : report.final_state) {
            if (kcore.alive(state))
                ++alive;
        }
        std::printf("%4u  %10u  %10u  %12llu\n", k, alive,
                    network.numVertices() - alive,
                    static_cast<unsigned long long>(
                        report.vertex_updates));
    }
    return 0;
}
