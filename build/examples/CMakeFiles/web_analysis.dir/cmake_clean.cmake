file(REMOVE_RECURSE
  "CMakeFiles/web_analysis.dir/web_analysis.cpp.o"
  "CMakeFiles/web_analysis.dir/web_analysis.cpp.o.d"
  "web_analysis"
  "web_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
