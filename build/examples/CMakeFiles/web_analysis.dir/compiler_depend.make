# Empty compiler generated dependencies file for web_analysis.
# This may be replaced when dependencies are built.
