
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/social_recommendation.cpp" "examples/CMakeFiles/social_recommendation.dir/social_recommendation.cpp.o" "gcc" "examples/CMakeFiles/social_recommendation.dir/social_recommendation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/digraph_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/digraph_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/digraph_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/digraph_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/digraph_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/digraph_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/digraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/digraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
