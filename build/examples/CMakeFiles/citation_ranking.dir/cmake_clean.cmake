file(REMOVE_RECURSE
  "CMakeFiles/citation_ranking.dir/citation_ranking.cpp.o"
  "CMakeFiles/citation_ranking.dir/citation_ranking.cpp.o.d"
  "citation_ranking"
  "citation_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
