# Empty compiler generated dependencies file for citation_ranking.
# This may be replaced when dependencies are built.
