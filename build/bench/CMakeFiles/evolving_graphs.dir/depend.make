# Empty dependencies file for evolving_graphs.
# This may be replaced when dependencies are built.
