file(REMOVE_RECURSE
  "CMakeFiles/evolving_graphs.dir/evolving_graphs.cpp.o"
  "CMakeFiles/evolving_graphs.dir/evolving_graphs.cpp.o.d"
  "evolving_graphs"
  "evolving_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolving_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
