# Empty compiler generated dependencies file for fig08_preprocessing.
# This may be replaced when dependencies are built.
