file(REMOVE_RECURSE
  "CMakeFiles/fig08_preprocessing.dir/fig08_preprocessing.cpp.o"
  "CMakeFiles/fig08_preprocessing.dir/fig08_preprocessing.cpp.o.d"
  "fig08_preprocessing"
  "fig08_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
