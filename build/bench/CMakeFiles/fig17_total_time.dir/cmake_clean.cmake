file(REMOVE_RECURSE
  "CMakeFiles/fig17_total_time.dir/fig17_total_time.cpp.o"
  "CMakeFiles/fig17_total_time.dir/fig17_total_time.cpp.o.d"
  "fig17_total_time"
  "fig17_total_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_total_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
