# Empty compiler generated dependencies file for fig14_bidirectional.
# This may be replaced when dependencies are built.
