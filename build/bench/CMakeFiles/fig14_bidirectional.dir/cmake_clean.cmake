file(REMOVE_RECURSE
  "CMakeFiles/fig14_bidirectional.dir/fig14_bidirectional.cpp.o"
  "CMakeFiles/fig14_bidirectional.dir/fig14_bidirectional.cpp.o.d"
  "fig14_bidirectional"
  "fig14_bidirectional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_bidirectional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
