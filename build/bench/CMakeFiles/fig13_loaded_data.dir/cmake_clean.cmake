file(REMOVE_RECURSE
  "CMakeFiles/fig13_loaded_data.dir/fig13_loaded_data.cpp.o"
  "CMakeFiles/fig13_loaded_data.dir/fig13_loaded_data.cpp.o.d"
  "fig13_loaded_data"
  "fig13_loaded_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_loaded_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
