# Empty compiler generated dependencies file for fig13_loaded_data.
# This may be replaced when dependencies are built.
