# Empty compiler generated dependencies file for digraph_bench_common.
# This may be replaced when dependencies are built.
