file(REMOVE_RECURSE
  "libdigraph_bench_common.a"
)
