file(REMOVE_RECURSE
  "CMakeFiles/digraph_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/digraph_bench_common.dir/bench_common.cpp.o.d"
  "libdigraph_bench_common.a"
  "libdigraph_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
