# Empty dependencies file for fig11_updates.
# This may be replaced when dependencies are built.
