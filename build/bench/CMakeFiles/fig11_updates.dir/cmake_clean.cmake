file(REMOVE_RECURSE
  "CMakeFiles/fig11_updates.dir/fig11_updates.cpp.o"
  "CMakeFiles/fig11_updates.dir/fig11_updates.cpp.o.d"
  "fig11_updates"
  "fig11_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
