# Empty dependencies file for fig07_vs_nosched.
# This may be replaced when dependencies are built.
