file(REMOVE_RECURSE
  "CMakeFiles/fig07_vs_nosched.dir/fig07_vs_nosched.cpp.o"
  "CMakeFiles/fig07_vs_nosched.dir/fig07_vs_nosched.cpp.o.d"
  "fig07_vs_nosched"
  "fig07_vs_nosched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_vs_nosched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
