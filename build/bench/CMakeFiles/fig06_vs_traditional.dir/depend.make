# Empty dependencies file for fig06_vs_traditional.
# This may be replaced when dependencies are built.
