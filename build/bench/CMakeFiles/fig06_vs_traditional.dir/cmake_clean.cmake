file(REMOVE_RECURSE
  "CMakeFiles/fig06_vs_traditional.dir/fig06_vs_traditional.cpp.o"
  "CMakeFiles/fig06_vs_traditional.dir/fig06_vs_traditional.cpp.o.d"
  "fig06_vs_traditional"
  "fig06_vs_traditional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_vs_traditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
