file(REMOVE_RECURSE
  "CMakeFiles/test_engine_convergence.dir/test_engine_convergence.cpp.o"
  "CMakeFiles/test_engine_convergence.dir/test_engine_convergence.cpp.o.d"
  "test_engine_convergence"
  "test_engine_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
