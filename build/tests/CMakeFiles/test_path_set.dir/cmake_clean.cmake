file(REMOVE_RECURSE
  "CMakeFiles/test_path_set.dir/test_path_set.cpp.o"
  "CMakeFiles/test_path_set.dir/test_path_set.cpp.o.d"
  "test_path_set"
  "test_path_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
