# Empty dependencies file for test_dependency_dag.
# This may be replaced when dependencies are built.
