file(REMOVE_RECURSE
  "CMakeFiles/test_dependency_dag.dir/test_dependency_dag.cpp.o"
  "CMakeFiles/test_dependency_dag.dir/test_dependency_dag.cpp.o.d"
  "test_dependency_dag"
  "test_dependency_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dependency_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
