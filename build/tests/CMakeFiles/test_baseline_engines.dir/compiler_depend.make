# Empty compiler generated dependencies file for test_baseline_engines.
# This may be replaced when dependencies are built.
