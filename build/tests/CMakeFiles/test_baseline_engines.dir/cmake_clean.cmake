file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_engines.dir/test_baseline_engines.cpp.o"
  "CMakeFiles/test_baseline_engines.dir/test_baseline_engines.cpp.o.d"
  "test_baseline_engines"
  "test_baseline_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
