# Empty dependencies file for test_path_decomposition.
# This may be replaced when dependencies are built.
