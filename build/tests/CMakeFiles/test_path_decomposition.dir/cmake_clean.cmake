file(REMOVE_RECURSE
  "CMakeFiles/test_path_decomposition.dir/test_path_decomposition.cpp.o"
  "CMakeFiles/test_path_decomposition.dir/test_path_decomposition.cpp.o.d"
  "test_path_decomposition"
  "test_path_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
