file(REMOVE_RECURSE
  "CMakeFiles/test_scc_regions.dir/test_scc_regions.cpp.o"
  "CMakeFiles/test_scc_regions.dir/test_scc_regions.cpp.o.d"
  "test_scc_regions"
  "test_scc_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scc_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
