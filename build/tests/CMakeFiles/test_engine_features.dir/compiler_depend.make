# Empty compiler generated dependencies file for test_engine_features.
# This may be replaced when dependencies are built.
