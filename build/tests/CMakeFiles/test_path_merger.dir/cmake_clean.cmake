file(REMOVE_RECURSE
  "CMakeFiles/test_path_merger.dir/test_path_merger.cpp.o"
  "CMakeFiles/test_path_merger.dir/test_path_merger.cpp.o.d"
  "test_path_merger"
  "test_path_merger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_merger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
