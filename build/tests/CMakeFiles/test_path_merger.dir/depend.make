# Empty dependencies file for test_path_merger.
# This may be replaced when dependencies are built.
