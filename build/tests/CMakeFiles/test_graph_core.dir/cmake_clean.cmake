file(REMOVE_RECURSE
  "CMakeFiles/test_graph_core.dir/test_graph_core.cpp.o"
  "CMakeFiles/test_graph_core.dir/test_graph_core.cpp.o.d"
  "test_graph_core"
  "test_graph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
