# Empty dependencies file for test_graph_core.
# This may be replaced when dependencies are built.
