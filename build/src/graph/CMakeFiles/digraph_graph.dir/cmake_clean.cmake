file(REMOVE_RECURSE
  "CMakeFiles/digraph_graph.dir/builder.cpp.o"
  "CMakeFiles/digraph_graph.dir/builder.cpp.o.d"
  "CMakeFiles/digraph_graph.dir/digraph.cpp.o"
  "CMakeFiles/digraph_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/digraph_graph.dir/formats.cpp.o"
  "CMakeFiles/digraph_graph.dir/formats.cpp.o.d"
  "CMakeFiles/digraph_graph.dir/generators.cpp.o"
  "CMakeFiles/digraph_graph.dir/generators.cpp.o.d"
  "CMakeFiles/digraph_graph.dir/io.cpp.o"
  "CMakeFiles/digraph_graph.dir/io.cpp.o.d"
  "CMakeFiles/digraph_graph.dir/properties.cpp.o"
  "CMakeFiles/digraph_graph.dir/properties.cpp.o.d"
  "CMakeFiles/digraph_graph.dir/scc.cpp.o"
  "CMakeFiles/digraph_graph.dir/scc.cpp.o.d"
  "CMakeFiles/digraph_graph.dir/transform.cpp.o"
  "CMakeFiles/digraph_graph.dir/transform.cpp.o.d"
  "CMakeFiles/digraph_graph.dir/traversal.cpp.o"
  "CMakeFiles/digraph_graph.dir/traversal.cpp.o.d"
  "libdigraph_graph.a"
  "libdigraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
