# Empty compiler generated dependencies file for digraph_graph.
# This may be replaced when dependencies are built.
