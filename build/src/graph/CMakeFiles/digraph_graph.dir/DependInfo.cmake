
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/digraph_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/digraph_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/digraph_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/digraph_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/formats.cpp" "src/graph/CMakeFiles/digraph_graph.dir/formats.cpp.o" "gcc" "src/graph/CMakeFiles/digraph_graph.dir/formats.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/digraph_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/digraph_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/digraph_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/digraph_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/graph/CMakeFiles/digraph_graph.dir/properties.cpp.o" "gcc" "src/graph/CMakeFiles/digraph_graph.dir/properties.cpp.o.d"
  "/root/repo/src/graph/scc.cpp" "src/graph/CMakeFiles/digraph_graph.dir/scc.cpp.o" "gcc" "src/graph/CMakeFiles/digraph_graph.dir/scc.cpp.o.d"
  "/root/repo/src/graph/transform.cpp" "src/graph/CMakeFiles/digraph_graph.dir/transform.cpp.o" "gcc" "src/graph/CMakeFiles/digraph_graph.dir/transform.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "src/graph/CMakeFiles/digraph_graph.dir/traversal.cpp.o" "gcc" "src/graph/CMakeFiles/digraph_graph.dir/traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/digraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
