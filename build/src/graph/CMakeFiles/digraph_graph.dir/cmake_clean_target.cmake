file(REMOVE_RECURSE
  "libdigraph_graph.a"
)
