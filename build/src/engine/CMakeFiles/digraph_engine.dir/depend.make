# Empty dependencies file for digraph_engine.
# This may be replaced when dependencies are built.
