file(REMOVE_RECURSE
  "libdigraph_engine.a"
)
