file(REMOVE_RECURSE
  "CMakeFiles/digraph_engine.dir/digraph_engine.cpp.o"
  "CMakeFiles/digraph_engine.dir/digraph_engine.cpp.o.d"
  "CMakeFiles/digraph_engine.dir/evolving.cpp.o"
  "CMakeFiles/digraph_engine.dir/evolving.cpp.o.d"
  "libdigraph_engine.a"
  "libdigraph_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
