file(REMOVE_RECURSE
  "CMakeFiles/digraph_storage.dir/path_storage.cpp.o"
  "CMakeFiles/digraph_storage.dir/path_storage.cpp.o.d"
  "libdigraph_storage.a"
  "libdigraph_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
