# Empty compiler generated dependencies file for digraph_storage.
# This may be replaced when dependencies are built.
