file(REMOVE_RECURSE
  "libdigraph_storage.a"
)
