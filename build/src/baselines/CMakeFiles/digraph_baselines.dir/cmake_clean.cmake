file(REMOVE_RECURSE
  "CMakeFiles/digraph_baselines.dir/async_engine.cpp.o"
  "CMakeFiles/digraph_baselines.dir/async_engine.cpp.o.d"
  "CMakeFiles/digraph_baselines.dir/baseline_options.cpp.o"
  "CMakeFiles/digraph_baselines.dir/baseline_options.cpp.o.d"
  "CMakeFiles/digraph_baselines.dir/bsp_engine.cpp.o"
  "CMakeFiles/digraph_baselines.dir/bsp_engine.cpp.o.d"
  "CMakeFiles/digraph_baselines.dir/sequential.cpp.o"
  "CMakeFiles/digraph_baselines.dir/sequential.cpp.o.d"
  "libdigraph_baselines.a"
  "libdigraph_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
