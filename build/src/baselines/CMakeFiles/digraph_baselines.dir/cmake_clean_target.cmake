file(REMOVE_RECURSE
  "libdigraph_baselines.a"
)
