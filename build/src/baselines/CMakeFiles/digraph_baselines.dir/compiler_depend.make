# Empty compiler generated dependencies file for digraph_baselines.
# This may be replaced when dependencies are built.
