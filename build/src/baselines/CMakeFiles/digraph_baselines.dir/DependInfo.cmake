
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/async_engine.cpp" "src/baselines/CMakeFiles/digraph_baselines.dir/async_engine.cpp.o" "gcc" "src/baselines/CMakeFiles/digraph_baselines.dir/async_engine.cpp.o.d"
  "/root/repo/src/baselines/baseline_options.cpp" "src/baselines/CMakeFiles/digraph_baselines.dir/baseline_options.cpp.o" "gcc" "src/baselines/CMakeFiles/digraph_baselines.dir/baseline_options.cpp.o.d"
  "/root/repo/src/baselines/bsp_engine.cpp" "src/baselines/CMakeFiles/digraph_baselines.dir/bsp_engine.cpp.o" "gcc" "src/baselines/CMakeFiles/digraph_baselines.dir/bsp_engine.cpp.o.d"
  "/root/repo/src/baselines/sequential.cpp" "src/baselines/CMakeFiles/digraph_baselines.dir/sequential.cpp.o" "gcc" "src/baselines/CMakeFiles/digraph_baselines.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/digraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/digraph_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/digraph_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/digraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
