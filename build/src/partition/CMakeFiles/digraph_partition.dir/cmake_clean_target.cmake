file(REMOVE_RECURSE
  "libdigraph_partition.a"
)
