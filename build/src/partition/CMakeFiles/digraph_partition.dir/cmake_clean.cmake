file(REMOVE_RECURSE
  "CMakeFiles/digraph_partition.dir/dag_sketch.cpp.o"
  "CMakeFiles/digraph_partition.dir/dag_sketch.cpp.o.d"
  "CMakeFiles/digraph_partition.dir/decomposer.cpp.o"
  "CMakeFiles/digraph_partition.dir/decomposer.cpp.o.d"
  "CMakeFiles/digraph_partition.dir/dependency.cpp.o"
  "CMakeFiles/digraph_partition.dir/dependency.cpp.o.d"
  "CMakeFiles/digraph_partition.dir/merger.cpp.o"
  "CMakeFiles/digraph_partition.dir/merger.cpp.o.d"
  "CMakeFiles/digraph_partition.dir/partitioner.cpp.o"
  "CMakeFiles/digraph_partition.dir/partitioner.cpp.o.d"
  "CMakeFiles/digraph_partition.dir/path_set.cpp.o"
  "CMakeFiles/digraph_partition.dir/path_set.cpp.o.d"
  "CMakeFiles/digraph_partition.dir/preprocess.cpp.o"
  "CMakeFiles/digraph_partition.dir/preprocess.cpp.o.d"
  "CMakeFiles/digraph_partition.dir/snapshot.cpp.o"
  "CMakeFiles/digraph_partition.dir/snapshot.cpp.o.d"
  "libdigraph_partition.a"
  "libdigraph_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
