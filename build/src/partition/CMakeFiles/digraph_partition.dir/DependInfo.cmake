
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/dag_sketch.cpp" "src/partition/CMakeFiles/digraph_partition.dir/dag_sketch.cpp.o" "gcc" "src/partition/CMakeFiles/digraph_partition.dir/dag_sketch.cpp.o.d"
  "/root/repo/src/partition/decomposer.cpp" "src/partition/CMakeFiles/digraph_partition.dir/decomposer.cpp.o" "gcc" "src/partition/CMakeFiles/digraph_partition.dir/decomposer.cpp.o.d"
  "/root/repo/src/partition/dependency.cpp" "src/partition/CMakeFiles/digraph_partition.dir/dependency.cpp.o" "gcc" "src/partition/CMakeFiles/digraph_partition.dir/dependency.cpp.o.d"
  "/root/repo/src/partition/merger.cpp" "src/partition/CMakeFiles/digraph_partition.dir/merger.cpp.o" "gcc" "src/partition/CMakeFiles/digraph_partition.dir/merger.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/partition/CMakeFiles/digraph_partition.dir/partitioner.cpp.o" "gcc" "src/partition/CMakeFiles/digraph_partition.dir/partitioner.cpp.o.d"
  "/root/repo/src/partition/path_set.cpp" "src/partition/CMakeFiles/digraph_partition.dir/path_set.cpp.o" "gcc" "src/partition/CMakeFiles/digraph_partition.dir/path_set.cpp.o.d"
  "/root/repo/src/partition/preprocess.cpp" "src/partition/CMakeFiles/digraph_partition.dir/preprocess.cpp.o" "gcc" "src/partition/CMakeFiles/digraph_partition.dir/preprocess.cpp.o.d"
  "/root/repo/src/partition/snapshot.cpp" "src/partition/CMakeFiles/digraph_partition.dir/snapshot.cpp.o" "gcc" "src/partition/CMakeFiles/digraph_partition.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/digraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/digraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
