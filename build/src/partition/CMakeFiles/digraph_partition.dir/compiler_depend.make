# Empty compiler generated dependencies file for digraph_partition.
# This may be replaced when dependencies are built.
