# Empty dependencies file for digraph_common.
# This may be replaced when dependencies are built.
