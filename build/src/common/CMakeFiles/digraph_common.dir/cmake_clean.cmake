file(REMOVE_RECURSE
  "CMakeFiles/digraph_common.dir/logging.cpp.o"
  "CMakeFiles/digraph_common.dir/logging.cpp.o.d"
  "CMakeFiles/digraph_common.dir/stats.cpp.o"
  "CMakeFiles/digraph_common.dir/stats.cpp.o.d"
  "CMakeFiles/digraph_common.dir/thread_pool.cpp.o"
  "CMakeFiles/digraph_common.dir/thread_pool.cpp.o.d"
  "libdigraph_common.a"
  "libdigraph_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
