file(REMOVE_RECURSE
  "libdigraph_common.a"
)
