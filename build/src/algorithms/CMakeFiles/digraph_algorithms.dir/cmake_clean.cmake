file(REMOVE_RECURSE
  "CMakeFiles/digraph_algorithms.dir/adsorption.cpp.o"
  "CMakeFiles/digraph_algorithms.dir/adsorption.cpp.o.d"
  "CMakeFiles/digraph_algorithms.dir/core_numbers.cpp.o"
  "CMakeFiles/digraph_algorithms.dir/core_numbers.cpp.o.d"
  "CMakeFiles/digraph_algorithms.dir/factory.cpp.o"
  "CMakeFiles/digraph_algorithms.dir/factory.cpp.o.d"
  "CMakeFiles/digraph_algorithms.dir/hits.cpp.o"
  "CMakeFiles/digraph_algorithms.dir/hits.cpp.o.d"
  "libdigraph_algorithms.a"
  "libdigraph_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
