file(REMOVE_RECURSE
  "libdigraph_algorithms.a"
)
