# Empty dependencies file for digraph_algorithms.
# This may be replaced when dependencies are built.
