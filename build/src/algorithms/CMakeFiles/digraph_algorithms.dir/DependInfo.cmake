
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/adsorption.cpp" "src/algorithms/CMakeFiles/digraph_algorithms.dir/adsorption.cpp.o" "gcc" "src/algorithms/CMakeFiles/digraph_algorithms.dir/adsorption.cpp.o.d"
  "/root/repo/src/algorithms/core_numbers.cpp" "src/algorithms/CMakeFiles/digraph_algorithms.dir/core_numbers.cpp.o" "gcc" "src/algorithms/CMakeFiles/digraph_algorithms.dir/core_numbers.cpp.o.d"
  "/root/repo/src/algorithms/factory.cpp" "src/algorithms/CMakeFiles/digraph_algorithms.dir/factory.cpp.o" "gcc" "src/algorithms/CMakeFiles/digraph_algorithms.dir/factory.cpp.o.d"
  "/root/repo/src/algorithms/hits.cpp" "src/algorithms/CMakeFiles/digraph_algorithms.dir/hits.cpp.o" "gcc" "src/algorithms/CMakeFiles/digraph_algorithms.dir/hits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/digraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/digraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
