file(REMOVE_RECURSE
  "CMakeFiles/digraph_gpusim.dir/platform.cpp.o"
  "CMakeFiles/digraph_gpusim.dir/platform.cpp.o.d"
  "libdigraph_gpusim.a"
  "libdigraph_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
