file(REMOVE_RECURSE
  "libdigraph_gpusim.a"
)
