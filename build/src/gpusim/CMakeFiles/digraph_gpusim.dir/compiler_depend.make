# Empty compiler generated dependencies file for digraph_gpusim.
# This may be replaced when dependencies are built.
