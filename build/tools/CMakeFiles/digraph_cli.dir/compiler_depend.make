# Empty compiler generated dependencies file for digraph_cli.
# This may be replaced when dependencies are built.
