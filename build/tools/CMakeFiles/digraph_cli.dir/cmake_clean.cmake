file(REMOVE_RECURSE
  "CMakeFiles/digraph_cli.dir/digraph_cli.cpp.o"
  "CMakeFiles/digraph_cli.dir/digraph_cli.cpp.o.d"
  "digraph_cli"
  "digraph_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digraph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
