/**
 * @file
 * Wave-kernel registry tests (DESIGN.md §14):
 *
 *  1. every factory algorithm resolves to a SPECIALIZED kernel for every
 *     (execution mode x trace x delta_merge) combination — no virtual
 *     fallback — and the delta-merge flag engages exactly for the
 *     accumulative family;
 *  2. the specialized hot loop provably never enters the virtual
 *     processing interface: a PageRank subclass that counts its virtual
 *     calls sees ZERO of them, while the same subclass opting out via
 *     kernelTag() == "" routes through the generic kernel and sees many
 *     — with bit-identical results either way;
 *  3. the lock-free delta-accumulative commit is equivalent to the
 *     ordered-replay oracle (delta_merge = false): identical work
 *     counters, identical simulated cycles, bit-identical final state,
 *     at every engine_threads value.
 */

#include <atomic>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "algorithms/pagerank.hpp"
#include "engine/digraph_engine.hpp"
#include "engine/wave_kernel.hpp"
#include "graph/generators.hpp"

namespace digraph {
namespace {

gpusim::PlatformConfig
smallPlatform()
{
    gpusim::PlatformConfig pc;
    pc.num_devices = 2;
    pc.smx_per_device = 4;
    return pc;
}

graph::DirectedGraph
testGraph()
{
    graph::GeneratorConfig c;
    c.num_vertices = 300;
    c.num_edges = 1800;
    c.seed = 91;
    return graph::generate(c);
}

std::uint64_t
bits(double v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

const std::set<std::string> kAccumulative = {"pagerank", "katz",
                                             "adsorption"};

// ------------------------------------------------- registry coverage

TEST(WaveKernels, EveryAlgorithmResolvesSpecializedEverywhere)
{
    const auto g = testGraph();
    const engine::ExecutionMode modes[] = {
        engine::ExecutionMode::PathAsync,
        engine::ExecutionMode::PathNoSched,
        engine::ExecutionMode::VertexAsync,
    };
    for (const std::string &name : algorithms::allAlgorithmNames()) {
        const auto algo = algorithms::makeAlgorithm(name, g);
        for (const engine::ExecutionMode mode : modes) {
            for (const bool trace_on : {false, true}) {
                for (const bool delta : {false, true}) {
                    engine::EngineOptions opts;
                    opts.mode = mode;
                    opts.delta_merge = delta;
                    const auto k = engine::resolveWaveKernel(
                        *algo, opts, trace_on);
                    const std::string label =
                        name + " mode=" +
                        std::to_string(static_cast<int>(mode)) +
                        " trace=" + std::to_string(trace_on) +
                        " delta=" + std::to_string(delta);
                    EXPECT_TRUE(k.specialized) << label;
                    EXPECT_EQ(k.name, name) << label;
                    ASSERT_NE(k.compute, nullptr) << label;
                    ASSERT_NE(k.ordered_merge, nullptr) << label;
                    ASSERT_NE(k.policy, nullptr) << label;
                    // Lock-free delta commit engages exactly for the
                    // commutative-merge family, and only when asked.
                    EXPECT_EQ(k.delta_merge,
                              delta && kAccumulative.count(name) > 0)
                        << label;
                }
            }
        }
    }
}

/** An algorithm the registry has never heard of (default kernelTag). */
class UnregisteredAlgo : public algorithms::Algorithm
{
  public:
    std::string name() const override { return "unregistered"; }
    Value
    initVertex(const graph::DirectedGraph &, VertexId) const override
    {
        return 0.0;
    }
    bool
    processEdge(Value src, Value &, EdgeId, Value, std::uint32_t,
                Value &dst) const override
    {
        if (src + 1.0 >= dst)
            return false;
        dst = src + 1.0;
        return true;
    }
    bool
    mergeMaster(Value &master, Value pushed) const override
    {
        if (pushed >= master)
            return false;
        master = pushed;
        return true;
    }
    Value pushValue(Value current, Value) const override
    {
        return current;
    }
    bool hasPush(Value current, Value at_load) const override
    {
        return current != at_load;
    }
};

TEST(WaveKernels, UnknownTagFallsBackToGeneric)
{
    const UnregisteredAlgo algo;
    engine::EngineOptions opts;
    const auto k = engine::resolveWaveKernel(algo, opts, false);
    EXPECT_FALSE(k.specialized);
    EXPECT_EQ(k.name, "generic:unregistered");
    EXPECT_FALSE(k.delta_merge);
    ASSERT_NE(k.compute, nullptr);
    ASSERT_NE(k.ordered_merge, nullptr);
    EXPECT_EQ(k.policy, nullptr);
}

// ---------------------------------------------- zero-virtual-call proof

struct CallCounters
{
    std::atomic<std::uint64_t> process_edge{0};
    std::atomic<std::uint64_t> merge_master{0};
    std::atomic<std::uint64_t> push_value{0};
    std::atomic<std::uint64_t> has_push{0};
    std::atomic<std::uint64_t> pull{0};

    std::uint64_t
    total() const
    {
        return process_edge + merge_master + push_value + has_push +
               pull;
    }
};

/**
 * Bookkeeping-only subclass: counts every virtual processing call, same
 * semantics as PageRank. Keeps the inherited kernelTag ("pagerank"), so
 * per the registry contract the engine must route around these overrides
 * entirely.
 */
class CountingPageRank : public algorithms::PageRank
{
  public:
    explicit CountingPageRank(CallCounters &c) : counters_(&c) {}

    bool
    processEdge(Value src, Value &edge_state, EdgeId edge_id,
                Value weight, std::uint32_t src_out_degree,
                Value &dst) const override
    {
        ++counters_->process_edge;
        return PageRank::processEdge(src, edge_state, edge_id, weight,
                                     src_out_degree, dst);
    }

    bool
    mergeMaster(Value &master, Value pushed) const override
    {
        ++counters_->merge_master;
        return PageRank::mergeMaster(master, pushed);
    }

    Value
    pushValue(Value current, Value at_load) const override
    {
        ++counters_->push_value;
        return PageRank::pushValue(current, at_load);
    }

    bool
    hasPush(Value current, Value at_load) const override
    {
        ++counters_->has_push;
        return PageRank::hasPush(current, at_load);
    }

    Value
    pull(Value master, Value mirror) const override
    {
        ++counters_->pull;
        return PageRank::pull(master, mirror);
    }

  private:
    CallCounters *counters_;
};

/** Semantics-changing-by-declaration subclass: opts out of the registry,
 *  forcing the generic virtual-dispatch kernel. */
class OptOutPageRank : public CountingPageRank
{
  public:
    using CountingPageRank::CountingPageRank;
    std::string kernelTag() const override { return ""; }
};

metrics::RunReport
runCounting(const graph::DirectedGraph &g,
            const algorithms::Algorithm &algo)
{
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    opts.engine_threads = 2;
    engine::DiGraphEngine eng(g, opts);
    return eng.run(algo);
}

TEST(WaveKernels, SpecializedKernelMakesZeroVirtualCalls)
{
    const auto g = testGraph();

    CallCounters specialized_calls;
    const CountingPageRank counting(specialized_calls);
    const auto specialized = runCounting(g, counting);
    EXPECT_TRUE(specialized.kernel_specialized);
    EXPECT_EQ(specialized.kernel, "pagerank");
    EXPECT_TRUE(specialized.kernel_delta_merge);
    EXPECT_EQ(specialized_calls.total(), 0u)
        << "specialized hot loop entered the virtual interface: "
        << "processEdge=" << specialized_calls.process_edge
        << " mergeMaster=" << specialized_calls.merge_master
        << " pushValue=" << specialized_calls.push_value
        << " hasPush=" << specialized_calls.has_push
        << " pull=" << specialized_calls.pull;

    CallCounters generic_calls;
    const OptOutPageRank opted_out(generic_calls);
    const auto generic = runCounting(g, opted_out);
    EXPECT_FALSE(generic.kernel_specialized);
    EXPECT_EQ(generic.kernel, "generic:pagerank");
    EXPECT_FALSE(generic.kernel_delta_merge);
    EXPECT_GT(generic_calls.process_edge.load(), 0u);
    EXPECT_GT(generic_calls.merge_master.load(), 0u);
    EXPECT_GT(generic_calls.has_push.load(), 0u);

    // Specialization is a pure execution detail: both runs must agree
    // bit for bit, counters included.
    EXPECT_EQ(specialized.waves, generic.waves);
    EXPECT_EQ(specialized.edge_processings, generic.edge_processings);
    EXPECT_EQ(specialized.vertex_updates, generic.vertex_updates);
    EXPECT_EQ(bits(specialized.sim_cycles), bits(generic.sim_cycles));
    ASSERT_EQ(specialized.final_state.size(), generic.final_state.size());
    for (std::size_t v = 0; v < specialized.final_state.size(); ++v) {
        ASSERT_EQ(bits(specialized.final_state[v]),
                  bits(generic.final_state[v]))
            << "vertex " << v;
    }
}

// --------------------------- delta commit vs ordered-replay oracle

TEST(WaveKernels, DeltaMergeMatchesOrderedReplayOracle)
{
    const auto g = testGraph();
    for (const std::string &name : kAccumulative) {
        const auto algo = algorithms::makeAlgorithm(name, g);
        for (const std::size_t threads : {1u, 2u, 4u}) {
            metrics::RunReport reports[2];
            for (const bool delta : {false, true}) {
                engine::EngineOptions opts;
                opts.platform = smallPlatform();
                opts.engine_threads = threads;
                opts.delta_merge = delta;
                engine::DiGraphEngine eng(g, opts);
                reports[delta] = eng.run(*algo);
                EXPECT_EQ(reports[delta].kernel_delta_merge, delta);
            }
            const std::string label =
                name + " threads=" + std::to_string(threads);
            const auto &oracle = reports[0];
            const auto &fast = reports[1];
            EXPECT_EQ(fast.waves, oracle.waves) << label;
            EXPECT_EQ(fast.edge_processings, oracle.edge_processings)
                << label;
            EXPECT_EQ(fast.vertex_updates, oracle.vertex_updates)
                << label;
            EXPECT_EQ(bits(fast.sim_cycles), bits(oracle.sim_cycles))
                << label;
            ASSERT_EQ(fast.final_state.size(), oracle.final_state.size())
                << label;
            for (std::size_t v = 0; v < fast.final_state.size(); ++v) {
                ASSERT_EQ(bits(fast.final_state[v]),
                          bits(oracle.final_state[v]))
                    << label << ": vertex " << v;
            }
        }
    }
}

} // namespace
} // namespace digraph
