/**
 * @file
 * Behavioural tests for the comparison engines: BSP round counts track
 * propagation depth (the one-hop-per-round property the paper
 * criticizes), the async engine records partition reprocessing, and both
 * produce sane metric reports.
 */

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "algorithms/sssp.hpp"
#include "baselines/async_engine.hpp"
#include "baselines/bsp_engine.hpp"
#include "graph/generators.hpp"

namespace digraph::baselines {
namespace {

gpusim::PlatformConfig
smallPlatform(unsigned gpus = 2)
{
    gpusim::PlatformConfig pc;
    pc.num_devices = gpus;
    pc.smx_per_device = 4;
    return pc;
}

TEST(BspEngine, RoundsTrackPropagationDepth)
{
    // BFS on a chain of 40: one hop per round (the Fig 1 critique).
    const auto g = graph::makeChain(40);
    const auto algo = algorithms::makeAlgorithm("bfs", g);
    BaselineOptions opts;
    opts.platform = smallPlatform();
    const auto report = runBsp(g, *algo, opts);
    EXPECT_GE(report.rounds, 39u);
    EXPECT_LE(report.rounds, 41u);
}

TEST(BspEngine, ReportFieldsAreSane)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.05);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);
    BaselineOptions opts;
    opts.platform = smallPlatform();
    const auto report = runBsp(g, *algo, opts);
    EXPECT_EQ(report.system, "bsp");
    EXPECT_GT(report.vertex_updates, 0u);
    EXPECT_GT(report.edge_processings, report.vertex_updates / 2);
    EXPECT_GT(report.sim_cycles, 0.0);
    EXPECT_GT(report.host_transfer_bytes, 0u);
    EXPECT_GT(report.loaded_vertices, 0u);
    EXPECT_GE(report.utilization, 0.0);
    EXPECT_LE(report.utilization, 1.0);
    EXPECT_EQ(report.final_state.size(), g.numVertices());
}

TEST(BspEngine, MaxRoundsCapStopsRunaway)
{
    const auto g = graph::makeCycle(10);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);
    BaselineOptions opts;
    opts.platform = smallPlatform();
    opts.max_rounds = 3;
    const auto report = runBsp(g, *algo, opts);
    EXPECT_EQ(report.rounds, 3u);
}

TEST(AsyncEngine, RecordsPartitionReprocessing)
{
    const auto g = graph::makeDataset(graph::Dataset::cnr, 0.08);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);
    BaselineOptions opts;
    opts.platform = smallPlatform(4);
    const auto result = runAsync(g, *algo, opts);
    ASSERT_FALSE(result.partition_process_count.empty());
    std::uint64_t total = 0, reprocessed = 0;
    for (const auto c : result.partition_process_count) {
        total += c;
        reprocessed += c > 1;
    }
    EXPECT_EQ(total, result.report.partition_processings);
    EXPECT_GT(reprocessed, 0u)
        << "pagerank must reprocess partitions (Fig 2a)";
    EXPECT_FALSE(result.dispatch_active_ratio.empty());
    for (const double r : result.dispatch_active_ratio) {
        EXPECT_GT(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
}

TEST(AsyncEngine, ForceAllActiveTouchesEveryPartition)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.05);
    const auto algo = algorithms::makeAlgorithm("sssp", g);
    BaselineOptions opts;
    opts.platform = smallPlatform();
    opts.force_all_active = true;
    const auto result = runAsync(g, *algo, opts);
    for (const auto c : result.partition_process_count)
        EXPECT_GE(c, 1u);
}

TEST(AsyncEngine, PartitionBoundsCoverAllVertices)
{
    const auto g = graph::makeDataset(graph::Dataset::webbase, 0.05);
    const auto bounds = vertexRangePartitions(g, 500);
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), g.numVertices());
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(AsyncEngine, DefaultBudgetScalesWithPlatform)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.1);
    const auto small = defaultEdgeBudget(g, smallPlatform(1));
    const auto large = defaultEdgeBudget(g, smallPlatform(4));
    EXPECT_GE(small, large);
    EXPECT_GE(large, 256u);
}

TEST(Engines, FewerGpusMeansFewerDevicesTouched)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.05);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);
    for (const unsigned gpus : {1u, 2u, 3u}) {
        BaselineOptions opts;
        opts.platform = smallPlatform(gpus);
        const auto bsp = runBsp(g, *algo, opts);
        EXPECT_EQ(bsp.num_gpus, gpus);
        const auto async = runAsync(g, *algo, opts);
        EXPECT_EQ(async.report.num_gpus, gpus);
    }
}

} // namespace
} // namespace digraph::baselines
