/**
 * @file
 * Semantics tests for the bundled vertex programs against hand-computed
 * fixed points, plus checks of the mirror-push/master-merge contracts.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "algorithms/adsorption.hpp"
#include "algorithms/factory.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "baselines/sequential.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace digraph::algorithms {
namespace {

TEST(PageRank, TwoCycleClosedForm)
{
    // x = 0.15 + 0.85 * x  =>  x = 1 on a 2-cycle.
    const auto g = graph::makeCycle(2);
    const PageRank pr;
    const auto result = baselines::runSequential(g, pr);
    EXPECT_NEAR(result.state[0], 1.0, 1e-4);
    EXPECT_NEAR(result.state[1], 1.0, 1e-4);
}

TEST(PageRank, ChainClosedForm)
{
    // 0 -> 1 -> 2: x0 = 0.15, x1 = 0.15 + 0.85*x0, x2 = 0.15 + 0.85*x1.
    const auto g = graph::makeChain(3);
    const PageRank pr;
    const auto result = baselines::runSequential(g, pr);
    EXPECT_NEAR(result.state[0], 0.15, 1e-9);
    EXPECT_NEAR(result.state[1], 0.15 + 0.85 * 0.15, 1e-6);
    EXPECT_NEAR(result.state[2], 0.15 + 0.85 * result.state[1], 1e-6);
}

TEST(PageRank, EdgeCacheMakesReprocessingIdempotent)
{
    const PageRank pr;
    Value edge_state = 0.0, dst = 0.15;
    // First processing pushes the full source value.
    EXPECT_TRUE(pr.processEdge(1.0, edge_state, 0, 1.0, 2, dst));
    const Value after_first = dst;
    // Reprocessing with an unchanged source is a no-op.
    EXPECT_FALSE(pr.processEdge(1.0, edge_state, 0, 1.0, 2, dst));
    EXPECT_EQ(dst, after_first);
    // A source increment pushes only the delta.
    EXPECT_TRUE(pr.processEdge(1.5, edge_state, 0, 1.0, 2, dst));
    EXPECT_NEAR(dst, after_first + 0.85 * 0.5 / 2.0, 1e-12);
}

TEST(PageRank, PushAndMergeContract)
{
    const PageRank pr;
    EXPECT_TRUE(pr.hasPush(2.0, 1.0));
    EXPECT_FALSE(pr.hasPush(1.0, 1.0));
    EXPECT_DOUBLE_EQ(pr.pushValue(2.0, 0.5), 1.5);
    Value master = 1.0;
    EXPECT_TRUE(pr.mergeMaster(master, 1.5));
    EXPECT_DOUBLE_EQ(master, 2.5);
    EXPECT_FALSE(pr.mergeMaster(master, 1e-9));
}

TEST(Sssp, HandComputedDistances)
{
    graph::GraphBuilder b;
    b.addEdge(0, 1, 4.0);
    b.addEdge(0, 2, 1.0);
    b.addEdge(2, 1, 2.0);
    b.addEdge(1, 3, 1.0);
    const auto g = b.build();
    const Sssp sssp(0);
    const auto result = baselines::runSequential(g, sssp);
    EXPECT_EQ(result.state[0], 0.0);
    EXPECT_EQ(result.state[1], 3.0);
    EXPECT_EQ(result.state[2], 1.0);
    EXPECT_EQ(result.state[3], 4.0);
}

TEST(Sssp, UnreachableStaysInfinite)
{
    const auto g = graph::makeChain(4);
    const Sssp sssp(2);
    const auto result = baselines::runSequential(g, sssp);
    EXPECT_TRUE(std::isinf(result.state[0]));
    EXPECT_TRUE(std::isinf(result.state[1]));
    EXPECT_EQ(result.state[3], 1.0);
}

TEST(Sssp, MergeAndPullAreMin)
{
    const Sssp sssp(0);
    Value master = 5.0;
    EXPECT_TRUE(sssp.mergeMaster(master, 3.0));
    EXPECT_EQ(master, 3.0);
    EXPECT_FALSE(sssp.mergeMaster(master, 4.0));
    EXPECT_EQ(sssp.pull(2.0, 7.0), 2.0);
    EXPECT_EQ(sssp.pull(9.0, 7.0), 7.0);
    EXPECT_TRUE(sssp.hasPush(1.0, 2.0));
    EXPECT_FALSE(sssp.hasPush(2.0, 2.0));
}

TEST(Bfs, HopCounts)
{
    const auto g = graph::makeBinaryTree(7);
    const Bfs bfs(0);
    const auto result = baselines::runSequential(g, bfs);
    EXPECT_EQ(result.state[0], 0.0);
    EXPECT_EQ(result.state[2], 1.0);
    EXPECT_EQ(result.state[6], 2.0);
}

TEST(KCore, PeelingCascade)
{
    // 0 -> 1 -> 2 -> 3 plus 3 -> 1: in-degrees 0,2,1,1. With k = 1,
    // vertex 0 (in-degree 0) is dead; its edge kills nothing else since
    // 1 still has in-degree 1 after losing 0's edge.
    graph::GraphBuilder b;
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    b.addEdge(2, 3);
    b.addEdge(3, 1);
    const auto g = b.build();
    const KCore k1(1);
    const auto result = baselines::runSequential(g, k1);
    EXPECT_FALSE(k1.alive(result.state[0]));
    EXPECT_TRUE(k1.alive(result.state[1]));
    EXPECT_TRUE(k1.alive(result.state[2]));
    EXPECT_TRUE(k1.alive(result.state[3]));

    // With k = 2 everything unravels: only vertex 1 starts with
    // in-degree 2, and it loses 0's edge immediately.
    const KCore k2(2);
    const auto result2 = baselines::runSequential(g, k2);
    for (VertexId v = 0; v < 4; ++v)
        EXPECT_FALSE(k2.alive(result2.state[v])) << "vertex " << v;
}

TEST(KCore, ChainFullyPeels)
{
    const auto g = graph::makeChain(6);
    const KCore k1(1);
    const auto result = baselines::runSequential(g, k1);
    for (VertexId v = 0; v < 6; ++v)
        EXPECT_FALSE(k1.alive(result.state[v]))
            << "a chain has no 1-core (directed): vertex " << v;
}

TEST(KCore, CycleSurvivesK1)
{
    const auto g = graph::makeCycle(5);
    const KCore k1(1);
    const auto result = baselines::runSequential(g, k1);
    for (VertexId v = 0; v < 5; ++v)
        EXPECT_TRUE(k1.alive(result.state[v]));
}

TEST(Adsorption, SeedsRetainInjectedMass)
{
    const auto g = graph::makeCycle(4);
    const Adsorption ads(g, /*seed_every=*/2, 0.25, 0.75);
    const auto result = baselines::runSequential(g, ads);
    // Seeds are 0 and 2; scores must be positive everywhere on a cycle.
    for (VertexId v = 0; v < 4; ++v)
        EXPECT_GT(result.state[v], 0.0);
    EXPECT_GT(result.state[0], result.state[1])
        << "seed holds more mass than non-seed";
}

TEST(Adsorption, ContractionBoundsScores)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.03);
    const Adsorption ads(g);
    const auto result = baselines::runSequential(g, ads);
    for (const Value s : result.state) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0 + 1e-6)
            << "normalized in-weights keep the fixed point bounded";
    }
}

TEST(Wcc, LabelsComponentsOnSymmetricGraph)
{
    graph::GraphBuilder b(7);
    b.addEdge(0, 1);
    b.addEdge(2, 3);
    b.addEdge(3, 4);
    const auto g =
        graph::withBidirectionalRatio(b.build(), 1.0); // symmetrize
    const Wcc wcc;
    const auto result = baselines::runSequential(g, wcc);
    EXPECT_EQ(result.state[0], result.state[1]);
    EXPECT_EQ(result.state[2], result.state[3]);
    EXPECT_EQ(result.state[3], result.state[4]);
    EXPECT_NE(result.state[0], result.state[2]);
    EXPECT_EQ(result.state[5], 5.0); // isolated keeps own label
}

TEST(Factory, CreatesEveryAlgorithm)
{
    const auto g = graph::makeChain(4);
    for (const auto &name :
         {"pagerank", "adsorption", "sssp", "kcore", "bfs", "wcc"}) {
        const auto algo = makeAlgorithm(name, g);
        ASSERT_NE(algo, nullptr);
        EXPECT_EQ(algo->name(), name);
    }
    EXPECT_EQ(benchmarkNames().size(), 4u);
}

} // namespace
} // namespace digraph::algorithms
