/**
 * @file
 * The parallel wave execution engine: results must be bit-identical for
 * every engine_threads value (the wave-snapshot + ordered-barrier design
 * guarantee), and the incremental activation bookkeeping (per-path
 * counters, worklists) must stay consistent across dispatch patterns.
 */

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "engine/digraph_engine.hpp"
#include "metrics/trace.hpp"
#include "test_util.hpp"

namespace digraph {
namespace {

engine::EngineOptions
optionsWithThreads(std::size_t threads)
{
    engine::EngineOptions opts;
    opts.engine_threads = threads;
    return opts;
}

/** Fields that must match bit-for-bit between thread counts. */
void
expectIdenticalReports(const metrics::RunReport &a,
                       const metrics::RunReport &b,
                       const std::string &label)
{
    ASSERT_EQ(a.final_state.size(), b.final_state.size()) << label;
    for (std::size_t v = 0; v < a.final_state.size(); ++v) {
        // Bitwise, not near: the barrier replays master merges in
        // dispatch order, so even float accumulation must agree.
        EXPECT_EQ(a.final_state[v], b.final_state[v])
            << label << ": vertex " << v;
    }
    EXPECT_EQ(a.edge_processings, b.edge_processings) << label;
    EXPECT_EQ(a.vertex_updates, b.vertex_updates) << label;
    EXPECT_EQ(a.rounds, b.rounds) << label;
    EXPECT_EQ(a.waves, b.waves) << label;
    EXPECT_EQ(a.partition_processings, b.partition_processings) << label;
    EXPECT_EQ(a.host_transfer_bytes, b.host_transfer_bytes) << label;
    EXPECT_EQ(a.ring_transfer_bytes, b.ring_transfer_bytes) << label;
    EXPECT_EQ(a.global_load_bytes, b.global_load_bytes) << label;
    EXPECT_EQ(a.loaded_vertices, b.loaded_vertices) << label;
    EXPECT_EQ(a.sim_cycles, b.sim_cycles) << label;
    EXPECT_EQ(a.utilization, b.utilization) << label;
    EXPECT_EQ(a.comm_cycles, b.comm_cycles) << label;
}

TEST(ParallelWaves, ThreadCountDoesNotChangeResults)
{
    for (auto &ng : test::testGraphs()) {
        for (const char *algo_name : {"pagerank", "sssp", "wcc"}) {
            const auto algo =
                algorithms::makeAlgorithm(algo_name, ng.graph);

            engine::DiGraphEngine serial(ng.graph, optionsWithThreads(1));
            const auto base = serial.run(*algo);
            EXPECT_EQ(base.engine_threads, 1u);

            for (const std::size_t threads : {2ul, 4ul}) {
                engine::DiGraphEngine parallel(ng.graph,
                                               optionsWithThreads(threads));
                const auto got = parallel.run(*algo);
                EXPECT_EQ(got.engine_threads, threads);
                expectIdenticalReports(
                    base, got,
                    ng.name + "/" + algo_name + "/threads=" +
                        std::to_string(threads));
            }
        }
    }
}

TEST(ParallelWaves, TracingDoesNotChangeResultsAtAnyThreadCount)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
    const auto algo = algorithms::makeAlgorithm("sssp", g);

    engine::DiGraphEngine plain(g, optionsWithThreads(1));
    const auto base = plain.run(*algo);

    metrics::CounterRegistry serial_counters;
    for (const std::size_t threads : {1ul, 2ul, 4ul}) {
        auto opts = optionsWithThreads(threads);
        metrics::TraceSink sink;
        opts.trace = &sink;
        engine::DiGraphEngine traced(g, opts);
        const auto got = traced.run(*algo);
        expectIdenticalReports(base, got,
                               "traced/threads=" +
                                   std::to_string(threads));
        // Counter totals and per-type event counts must not depend on
        // the thread count (event *order* may).
        EXPECT_TRUE(sink.counters() ==
                    metrics::CounterRegistry::fromReport(got));
        if (threads == 1) {
            serial_counters = sink.counters();
        } else {
            EXPECT_TRUE(sink.counters() == serial_counters)
                << "threads=" << threads;
        }
    }
}

TEST(ParallelWaves, RerunOnSameEngineIsReproducible)
{
    const auto g = test::testGraphs()[6].graph; // "random"
    const auto algo = algorithms::makeAlgorithm("pagerank", g);
    engine::DiGraphEngine eng(g, optionsWithThreads(4));
    const auto first = eng.run(*algo);
    const auto second = eng.run(*algo);
    expectIdenticalReports(first, second, "rerun");
}

TEST(ParallelWaves, ThreadsZeroResolvesToHardwareConcurrency)
{
    const auto g = graph::makeChain(8, 1.0);
    engine::DiGraphEngine eng(g, optionsWithThreads(0));
    EXPECT_GE(eng.engineThreads(), 1u);
}

/** The incremental activation structures must agree with a full recount
 *  after every run, including runs that hit the max_local_rounds
 *  redispatch path and runs over multi-partition graphs. */
TEST(ActivationBookkeeping, ConsistentAfterConvergence)
{
    for (auto &ng : test::testGraphs()) {
        const auto algo = algorithms::makeAlgorithm("pagerank", ng.graph);
        engine::DiGraphEngine eng(ng.graph, optionsWithThreads(2));
        (void)eng.run(*algo);
        EXPECT_TRUE(eng.activationBookkeepingConsistent()) << ng.name;
    }
}

TEST(ActivationBookkeeping, ConsistentUnderForcedRedispatch)
{
    // max_local_rounds = 1 forces every partition through the
    // reactivate-self path repeatedly, exercising worklist carry-over
    // between dispatches (paths left active across dispatch boundaries).
    for (const char *algo_name : {"pagerank", "sssp"}) {
        const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
        const auto algo = algorithms::makeAlgorithm(algo_name, g);

        engine::EngineOptions opts;
        opts.engine_threads = 2;
        opts.max_local_rounds = 1;
        engine::DiGraphEngine eng(g, opts);
        const auto report = eng.run(*algo);
        EXPECT_TRUE(eng.activationBookkeepingConsistent()) << algo_name;

        // The truncated dispatches must still reach the same fixed
        // point as the unconstrained engine.
        engine::DiGraphEngine ref_eng(g, optionsWithThreads(1));
        const auto ref = ref_eng.run(*algo);
        test::expectStatesNear(report.final_state, ref.final_state,
                               algo->resultTolerance(),
                               std::string("redispatch/") + algo_name);
    }
}

} // namespace
} // namespace digraph
