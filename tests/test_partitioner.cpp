/**
 * @file
 * Tests for partition assignment and the preprocessing facade: the path
 * order is a permutation, partition offsets cover every path, the edge
 * budget is respected, partition layers are non-trivial on DAG-ish
 * inputs, and the facade's re-indexed arrays are mutually consistent.
 */

#include <numeric>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/preprocess.hpp"

namespace digraph::partition {
namespace {

graph::DirectedGraph
testGraph(std::uint64_t seed)
{
    graph::GeneratorConfig c;
    c.num_vertices = 800;
    c.num_edges = 4800;
    c.scc_core_fraction = 0.4;
    c.seed = seed;
    return graph::generate(c);
}

TEST(Partitioner, PathOrderIsPermutationAndOffsetsCover)
{
    const auto g = testGraph(1);
    PreprocessOptions opts;
    opts.partition.edges_per_partition = 256;
    const auto pre = preprocess(g, opts);

    const PathId np = pre.paths.numPaths();
    ASSERT_GT(np, 0u);
    EXPECT_EQ(pre.partition_offsets.front(), 0u);
    EXPECT_EQ(pre.partition_offsets.back(), np);
    for (std::size_t i = 1; i < pre.partition_offsets.size(); ++i)
        EXPECT_LT(pre.partition_offsets[i - 1],
                  pre.partition_offsets[i]);
    EXPECT_TRUE(pre.paths.validate(g));
}

TEST(Partitioner, EdgeBudgetRespected)
{
    const auto g = testGraph(2);
    PreprocessOptions opts;
    opts.partition.edges_per_partition = 200;
    const auto pre = preprocess(g, opts);
    for (PartitionId q = 0; q < pre.numPartitions(); ++q) {
        std::size_t edges = 0;
        for (std::uint32_t p = pre.partition_offsets[q];
             p < pre.partition_offsets[q + 1]; ++p) {
            edges += pre.paths.pathLength(p);
        }
        // A single over-budget path may overflow a partition; otherwise
        // the budget holds.
        if (pre.partition_offsets[q + 1] - pre.partition_offsets[q] > 1) {
            EXPECT_LE(edges, 200u + 64u) << "partition " << q;
        }
    }
}

TEST(Partitioner, PerPathArraysAreAligned)
{
    const auto g = testGraph(3);
    const auto pre = preprocess(g, {});
    const PathId np = pre.paths.numPaths();
    ASSERT_EQ(pre.scc_of_path.size(), np);
    ASSERT_EQ(pre.path_layer.size(), np);
    ASSERT_EQ(pre.path_hot.size(), np);
    ASSERT_EQ(pre.path_avg_degree.size(), np);
    for (PathId p = 0; p < np; ++p) {
        EXPECT_LT(pre.scc_of_path[p], pre.dag.num_sccs);
        EXPECT_EQ(pre.path_layer[p],
                  pre.dag.layer[pre.scc_of_path[p]]);
        EXPECT_GT(pre.path_avg_degree[p], 0.0);
    }
    // dag.paths_in_scc is re-indexed to the final order and partitions
    // all paths.
    std::size_t total = 0;
    for (SccId s = 0; s < pre.dag.num_sccs; ++s) {
        for (const PathId p : pre.dag.paths_in_scc[s]) {
            EXPECT_EQ(pre.scc_of_path[p], s);
            ++total;
        }
    }
    EXPECT_EQ(total, np);
}

TEST(Partitioner, PartitionOfPathIsConsistent)
{
    const auto g = testGraph(4);
    PreprocessOptions opts;
    opts.partition.edges_per_partition = 300;
    const auto pre = preprocess(g, opts);
    for (PartitionId q = 0; q < pre.numPartitions(); ++q) {
        for (std::uint32_t p = pre.partition_offsets[q];
             p < pre.partition_offsets[q + 1]; ++p) {
            EXPECT_EQ(pre.partitionOfPath(p), q);
        }
    }
}

TEST(Partitioner, HotPathsExistOnSkewedGraphs)
{
    graph::GeneratorConfig c;
    c.num_vertices = 2000;
    c.num_edges = 16000;
    c.degree_skew = 2.5;
    c.seed = 5;
    const auto g = graph::generate(c);
    const auto pre = preprocess(g, {});
    std::size_t hot = 0;
    for (const auto flag : pre.path_hot)
        hot += flag;
    EXPECT_GT(hot, 0u);
    EXPECT_LT(hot, pre.path_hot.size());
}

TEST(Partitioner, LayersOrderedWithinPartitionSequence)
{
    // The partitioner emits SCCs in (layer, successors) order, so
    // partition layers should be non-decreasing on a pure DAG input.
    const auto g = graph::makeRandomDag(2000, 8000, 9);
    PreprocessOptions opts;
    opts.partition.edges_per_partition = 512;
    const auto pre = preprocess(g, opts);
    for (PartitionId q = 1; q < pre.numPartitions(); ++q)
        EXPECT_LE(pre.partition_layer[q - 1], pre.partition_layer[q]);
}

TEST(Partitioner, DisablingMergeKeepsCoverage)
{
    const auto g = testGraph(6);
    PreprocessOptions opts;
    opts.enable_merge = false;
    const auto pre = preprocess(g, opts);
    EXPECT_TRUE(pre.paths.validate(g));
    EXPECT_EQ(pre.merges, 0u);
}

TEST(Partitioner, TimingsArePopulated)
{
    const auto g = testGraph(7);
    const auto pre = preprocess(g, {});
    EXPECT_GE(pre.timings.total(), 0.0);
    EXPECT_GE(pre.timings.decompose_s, 0.0);
}

} // namespace
} // namespace digraph::partition
