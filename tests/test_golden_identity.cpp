/**
 * @file
 * Golden single-job bit-identity harness: replays the checked-in
 * fixtures under tests/fixtures/golden/ — produced by the PRE-refactor
 * monolithic engine — against the layered engine, at several
 * engine_threads values.
 *
 * Discrete algorithms (sssp, wcc, kcore, bfs) must match every fixture
 * double BIT FOR BIT, counters included. The accumulative family
 * (pagerank, adsorption, katz) is held to a tight numeric tolerance
 * instead, so a future intentional reassociation of their floating-point
 * sums does not invalidate the whole harness; today they too match
 * exactly. HITS is compared against the power-iteration reference.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "algorithms/hits.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/generators.hpp"

namespace digraph {
namespace {

#ifndef DIGRAPH_FIXTURE_DIR
#error "DIGRAPH_FIXTURE_DIR must point at tests/fixtures/golden"
#endif

gpusim::PlatformConfig
smallPlatform()
{
    gpusim::PlatformConfig pc;
    pc.num_devices = 2;
    pc.smx_per_device = 4;
    return pc;
}

graph::DirectedGraph
goldenGraph()
{
    graph::GeneratorConfig c;
    c.num_vertices = 400;
    c.num_edges = 2400;
    c.seed = 77;
    return graph::generate(c);
}

std::uint64_t
bits(double v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

double
fromBits(std::uint64_t u)
{
    double v = 0.0;
    std::memcpy(&v, &u, sizeof(v));
    return v;
}

struct Fixture
{
    std::uint64_t sim_cycles_bits = 0;
    std::uint64_t waves = 0;
    std::uint64_t edge_processings = 0;
    std::uint64_t vertex_updates = 0;
    std::vector<std::uint64_t> state_bits;
};

Fixture
loadFixture(const std::string &algo, const std::string &mode)
{
    const std::string path = std::string(DIGRAPH_FIXTURE_DIR) + "/" +
                             algo + "_" + mode + ".txt";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    Fixture fx;
    std::string line;
    std::size_t expected_states = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string key;
        ss >> key;
        if (key == "sim_cycles") {
            ss >> std::hex >> fx.sim_cycles_bits;
        } else if (key == "waves") {
            ss >> fx.waves;
        } else if (key == "edge_processings") {
            ss >> fx.edge_processings;
        } else if (key == "vertex_updates") {
            ss >> fx.vertex_updates;
        } else if (key == "state") {
            ss >> expected_states;
            fx.state_bits.reserve(expected_states);
            while (fx.state_bits.size() < expected_states &&
                   std::getline(in, line)) {
                fx.state_bits.push_back(
                    std::stoull(line, nullptr, 16));
            }
        }
    }
    EXPECT_EQ(fx.state_bits.size(), expected_states) << path;
    return fx;
}

metrics::RunReport
runGolden(const graph::DirectedGraph &g, const std::string &algo_name,
          engine::ExecutionMode mode, std::size_t threads)
{
    engine::EngineOptions opts;
    opts.mode = mode;
    opts.platform = smallPlatform();
    opts.engine_threads = threads;
    engine::DiGraphEngine eng(g, opts);
    const auto algo = algorithms::makeAlgorithm(algo_name, g);
    return eng.run(*algo);
}

void
expectBitwise(const Fixture &fx, const metrics::RunReport &report,
              const std::string &label)
{
    EXPECT_EQ(report.waves, fx.waves) << label;
    EXPECT_EQ(report.edge_processings, fx.edge_processings) << label;
    EXPECT_EQ(report.vertex_updates, fx.vertex_updates) << label;
    EXPECT_EQ(bits(report.sim_cycles), fx.sim_cycles_bits) << label;
    ASSERT_EQ(report.final_state.size(), fx.state_bits.size()) << label;
    for (std::size_t v = 0; v < fx.state_bits.size(); ++v) {
        ASSERT_EQ(bits(report.final_state[v]), fx.state_bits[v])
            << label << ": vertex " << v;
    }
}

void
expectTolerance(const Fixture &fx, const metrics::RunReport &report,
                const std::string &label, double tol = 1e-9)
{
    // The dispatch schedule and work counts must still match exactly —
    // only the floating-point values get slack.
    EXPECT_EQ(report.waves, fx.waves) << label;
    EXPECT_EQ(report.edge_processings, fx.edge_processings) << label;
    EXPECT_EQ(report.vertex_updates, fx.vertex_updates) << label;
    ASSERT_EQ(report.final_state.size(), fx.state_bits.size()) << label;
    for (std::size_t v = 0; v < fx.state_bits.size(); ++v) {
        const double want = fromBits(fx.state_bits[v]);
        ASSERT_NEAR(report.final_state[v], want,
                    tol * std::max(1.0, std::abs(want)))
            << label << ": vertex " << v;
    }
}

const std::vector<std::size_t> kThreadCounts = {1, 2, 4, 8};

// ------------------------------------------------- bitwise algorithms

TEST(GoldenIdentity, BitwiseAlgorithmsEveryThreadCount)
{
    const auto g = goldenGraph();
    for (const std::string algo : {"sssp", "kcore", "bfs", "wcc"}) {
        const Fixture fx = loadFixture(algo, "digraph");
        for (const std::size_t threads : kThreadCounts) {
            const auto report = runGolden(
                g, algo, engine::ExecutionMode::PathAsync, threads);
            expectBitwise(fx, report,
                          algo + " threads=" + std::to_string(threads));
        }
    }
}

TEST(GoldenIdentity, BitwiseAlternateModes)
{
    const auto g = goldenGraph();
    struct Case
    {
        const char *algo;
        engine::ExecutionMode mode;
        const char *mode_name;
    };
    for (const Case c :
         {Case{"sssp", engine::ExecutionMode::PathNoSched, "digraph-w"},
          Case{"sssp", engine::ExecutionMode::VertexAsync, "digraph-t"},
          Case{"wcc", engine::ExecutionMode::PathNoSched, "digraph-w"},
          Case{"wcc", engine::ExecutionMode::VertexAsync, "digraph-t"}}) {
        const Fixture fx = loadFixture(c.algo, c.mode_name);
        const auto report = runGolden(g, c.algo, c.mode, 2);
        expectBitwise(fx, report,
                      std::string(c.algo) + " " + c.mode_name);
    }
}

// ----------------------------------------------- tolerance algorithms

TEST(GoldenIdentity, AccumulativeAlgorithmsWithinTolerance)
{
    const auto g = goldenGraph();
    for (const std::string algo : {"pagerank", "adsorption", "katz"}) {
        const Fixture fx = loadFixture(algo, "digraph");
        for (const std::size_t threads : kThreadCounts) {
            const auto report = runGolden(
                g, algo, engine::ExecutionMode::PathAsync, threads);
            expectTolerance(fx, report,
                            algo + " threads=" +
                                std::to_string(threads));
        }
    }
}

TEST(GoldenIdentity, PagerankAlternateModesWithinTolerance)
{
    const auto g = goldenGraph();
    for (const auto &[mode, name] :
         {std::pair{engine::ExecutionMode::PathNoSched, "digraph-w"},
          std::pair{engine::ExecutionMode::VertexAsync, "digraph-t"}}) {
        const Fixture fx = loadFixture("pagerank", name);
        const auto report = runGolden(g, "pagerank", mode, 2);
        expectTolerance(fx, report, std::string("pagerank ") + name);
    }
}

// ---------------------------------------------------------------- HITS

TEST(GoldenIdentity, HitsMatchesPowerIterationFixture)
{
    const auto g = goldenGraph();
    const std::string path =
        std::string(DIGRAPH_FIXTURE_DIR) + "/hits_power.txt";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing fixture " << path;

    std::uint32_t iterations = 0;
    std::vector<double> authority, hub;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string key;
        ss >> key;
        if (key == "iterations") {
            ss >> iterations;
        } else if (key == "authority" || key == "hub") {
            std::size_t count = 0;
            ss >> count;
            auto &dst = key == "authority" ? authority : hub;
            dst.reserve(count);
            while (dst.size() < count && std::getline(in, line))
                dst.push_back(fromBits(std::stoull(line, nullptr, 16)));
        }
    }

    const algorithms::HitsScores scores = algorithms::computeHits(g);
    EXPECT_EQ(scores.iterations, iterations);
    ASSERT_EQ(scores.authority.size(), authority.size());
    ASSERT_EQ(scores.hub.size(), hub.size());
    for (std::size_t v = 0; v < authority.size(); ++v) {
        ASSERT_NEAR(scores.authority[v], authority[v], 1e-9) << v;
        ASSERT_NEAR(scores.hub[v], hub[v], 1e-9) << v;
    }
}

} // namespace
} // namespace digraph
