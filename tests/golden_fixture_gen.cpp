/**
 * @file
 * Golden-fixture generator for the bit-identity harness
 * (tests/test_golden_identity.cpp).
 *
 * Runs every factory algorithm through the DiGraph engine on a
 * deterministic generated graph and records the converged state (exact
 * double bit patterns) plus the headline work counters into one text
 * file per (algorithm, mode) under the directory given as argv[1].
 *
 * The checked-in fixtures under tests/fixtures/golden/ were produced by
 * the PRE-refactor monolithic engine (PR 4 tree); the harness replays
 * them against the layered engine, so regenerating them with a current
 * build only makes sense after an *intentional* numeric change.
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algorithms/factory.hpp"
#include "algorithms/hits.hpp"
#include "common/logging.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/generators.hpp"

namespace {

using namespace digraph;

gpusim::PlatformConfig
smallPlatform()
{
    gpusim::PlatformConfig pc;
    pc.num_devices = 2;
    pc.smx_per_device = 4;
    return pc;
}

graph::GeneratorConfig
goldenGraphConfig()
{
    graph::GeneratorConfig c;
    c.num_vertices = 400;
    c.num_edges = 2400;
    c.seed = 77;
    return c;
}

std::uint64_t
bits(double v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

void
writeFixture(const std::string &dir, const std::string &algo,
             engine::ExecutionMode mode, const metrics::RunReport &report)
{
    const std::string mode_name = engine::modeName(mode);
    const std::string path = dir + "/" + algo + "_" + mode_name + ".txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("golden_fixture_gen: cannot open ", path);
    std::fprintf(f, "# golden fixture: pre-refactor DiGraph engine\n");
    std::fprintf(f, "algo %s\n", algo.c_str());
    std::fprintf(f, "mode %s\n", mode_name.c_str());
    std::fprintf(f, "sim_cycles %016" PRIx64 "\n", bits(report.sim_cycles));
    std::fprintf(f, "waves %" PRIu64 "\n", report.waves);
    std::fprintf(f, "edge_processings %" PRIu64 "\n",
                 report.edge_processings);
    std::fprintf(f, "vertex_updates %" PRIu64 "\n", report.vertex_updates);
    std::fprintf(f, "state %zu\n", report.final_state.size());
    for (const Value v : report.final_state)
        std::fprintf(f, "%016" PRIx64 "\n", bits(v));
    std::fclose(f);
    std::printf("wrote %s (waves=%" PRIu64 ", edges=%" PRIu64 ")\n",
                path.c_str(), report.waves, report.edge_processings);
}

void
writeHitsFixture(const std::string &dir, const graph::DirectedGraph &g)
{
    const algorithms::HitsScores scores = algorithms::computeHits(g);
    const std::string path = dir + "/hits_power.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("golden_fixture_gen: cannot open ", path);
    std::fprintf(f, "# golden fixture: HITS power iteration\n");
    std::fprintf(f, "algo hits\n");
    std::fprintf(f, "iterations %u\n", scores.iterations);
    std::fprintf(f, "authority %zu\n", scores.authority.size());
    for (const Value v : scores.authority)
        std::fprintf(f, "%016" PRIx64 "\n", bits(v));
    std::fprintf(f, "hub %zu\n", scores.hub.size());
    for (const Value v : scores.hub)
        std::fprintf(f, "%016" PRIx64 "\n", bits(v));
    std::fclose(f);
    std::printf("wrote %s (iterations=%u)\n", path.c_str(),
                scores.iterations);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
        return 2;
    }
    const std::string dir = argv[1];
    const graph::DirectedGraph g = graph::generate(goldenGraphConfig());

    const std::vector<std::string> all_algos = {
        "pagerank", "adsorption", "sssp", "kcore", "katz", "bfs", "wcc"};
    // Alternate execution modes exercise the scheduling/propagation
    // machinery; three representative families keep the matrix small.
    const std::vector<std::string> mode_algos = {"sssp", "pagerank", "wcc"};

    for (const std::string &name : all_algos) {
        engine::EngineOptions opts;
        opts.platform = smallPlatform();
        opts.engine_threads = 1;
        engine::DiGraphEngine eng(g, opts);
        const auto algo = algorithms::makeAlgorithm(name, g);
        writeFixture(dir, name, engine::ExecutionMode::PathAsync,
                     eng.run(*algo));
    }
    for (const std::string &name : mode_algos) {
        for (const engine::ExecutionMode mode :
             {engine::ExecutionMode::PathNoSched,
              engine::ExecutionMode::VertexAsync}) {
            engine::EngineOptions opts;
            opts.mode = mode;
            opts.platform = smallPlatform();
            opts.engine_threads = 1;
            engine::DiGraphEngine eng(g, opts);
            const auto algo = algorithms::makeAlgorithm(name, g);
            writeFixture(dir, name, mode, eng.run(*algo));
        }
    }
    writeHitsFixture(dir, g);
    return 0;
}
