/**
 * @file
 * JobManager: N concurrent algorithm jobs over ONE shared immutable
 * EngineSubstrate. The contract under test: per-job results are
 * bit-identical to dedicated single-job engines, independent of job
 * order and thread count; the substrate is genuinely shared (pointer
 * identity, paid once); and every job's counters equal its report
 * aggregates.
 */

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "engine/digraph_engine.hpp"
#include "engine/job_manager.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "metrics/counter_registry.hpp"

namespace digraph {
namespace {

graph::DirectedGraph
testGraph(std::uint64_t seed = 77)
{
    graph::GeneratorConfig c;
    c.num_vertices = 400;
    c.num_edges = 2400;
    c.seed = seed;
    return graph::generate(c);
}

engine::EngineOptions
testOptions()
{
    engine::EngineOptions opts;
    opts.platform.num_devices = 2;
    opts.platform.smx_per_device = 4;
    return opts;
}

const std::vector<std::string> kJobs = {"sssp:0", "pagerank", "wcc"};

void
expectSameReport(const metrics::RunReport &a, const metrics::RunReport &b,
                 const std::string &label)
{
    EXPECT_EQ(a.waves, b.waves) << label;
    EXPECT_EQ(a.edge_processings, b.edge_processings) << label;
    EXPECT_EQ(a.vertex_updates, b.vertex_updates) << label;
    EXPECT_EQ(a.sim_cycles, b.sim_cycles) << label;
    EXPECT_EQ(a.final_state, b.final_state) << label;
}

TEST(JobManager, ThreeConcurrentJobsMatchDedicatedEngines)
{
    const auto g = testGraph();
    const auto opts = testOptions();

    engine::JobManager manager(g, opts);
    for (const auto &spec : kJobs)
        manager.addJob(spec);
    ASSERT_EQ(manager.numJobs(), kJobs.size());
    const auto results = manager.runAll();
    ASSERT_EQ(results.size(), kJobs.size());

    for (std::size_t i = 0; i < kJobs.size(); ++i) {
        EXPECT_EQ(results[i].spec, kJobs[i]);
        EXPECT_GT(results[i].job_state_bytes, 0u);

        // A dedicated engine with its OWN preprocessing must agree bit
        // for bit: sharing the substrate changes nothing observable.
        engine::DiGraphEngine eng(g, opts);
        const auto algo = algorithms::makeAlgorithmSpec(kJobs[i], g);
        const auto dedicated = eng.run(*algo);
        expectSameReport(results[i].report, dedicated, kJobs[i]);
    }
}

TEST(JobManager, ResultsIndependentOfJobOrder)
{
    const auto g = testGraph();
    const auto opts = testOptions();

    engine::JobManager forward(g, opts);
    for (const auto &spec : kJobs)
        forward.addJob(spec);
    const auto fwd = forward.runAll();

    std::vector<std::string> reversed(kJobs.rbegin(), kJobs.rend());
    engine::JobManager backward(g, opts);
    for (const auto &spec : reversed)
        backward.addJob(spec);
    const auto bwd = backward.runAll();

    for (std::size_t i = 0; i < kJobs.size(); ++i) {
        const auto match = std::find_if(
            bwd.begin(), bwd.end(),
            [&](const auto &job) { return job.spec == kJobs[i]; });
        ASSERT_NE(match, bwd.end()) << kJobs[i];
        expectSameReport(fwd[i].report, match->report, kJobs[i]);
    }
}

TEST(JobManager, ResultsIndependentOfThreadCount)
{
    const auto g = testGraph();

    auto serial_opts = testOptions();
    serial_opts.engine_threads = 1;
    engine::JobManager serial(g, serial_opts);
    serial.addJobs("sssp:0,pagerank,wcc");
    const auto one = serial.runAll();

    auto wide_opts = testOptions();
    wide_opts.engine_threads = 4;
    engine::JobManager wide(g, wide_opts);
    wide.addJobs("sssp:0,pagerank,wcc");
    const auto four = wide.runAll();

    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        expectSameReport(one[i].report, four[i].report, one[i].spec);
}

TEST(JobManager, AdoptedSubstrateIsSharedByPointer)
{
    const auto g = testGraph();
    const auto opts = testOptions();

    engine::DiGraphEngine eng(g, opts);
    const auto sub = eng.substrate();
    ASSERT_NE(sub, nullptr);

    engine::JobManager manager(g, sub, opts);
    EXPECT_EQ(manager.substrate().get(), sub.get());
    EXPECT_EQ(manager.sharedBytes(), sub->memoryBytes());

    // The adopted substrate drives runs just like a freshly built one.
    manager.addJob("wcc");
    const auto results = manager.runAll();
    ASSERT_EQ(results.size(), 1u);
    const auto algo = algorithms::makeAlgorithmSpec("wcc", g);
    engine::DiGraphEngine check(g, opts);
    expectSameReport(results[0].report, check.run(*algo), "wcc adopted");
}

TEST(JobManager, CountersEqualReportAggregates)
{
    const auto g = testGraph();
    engine::JobManager manager(g, testOptions());
    manager.addJobs("sssp:0,pagerank,wcc");
    const auto results = manager.runAll(/*with_traces=*/true);
    for (const auto &job : results) {
        EXPECT_EQ(job.counters,
                  metrics::CounterRegistry::fromReport(job.report))
            << job.spec;
        ASSERT_NE(job.trace, nullptr) << job.spec;
        EXPECT_EQ(job.trace->counters(), job.counters) << job.spec;
    }
}

TEST(JobManager, NoTracesUnlessRequested)
{
    const auto g = testGraph();
    engine::JobManager manager(g, testOptions());
    manager.addJob("kcore:2");
    const auto results = manager.runAll();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].trace, nullptr);
}

TEST(JobManager, AddJobsSplitsCommaSpecs)
{
    const auto g = testGraph();
    engine::JobManager manager(g, testOptions());
    manager.addJobs("sssp:0,pagerank");
    manager.addJob("wcc");
    EXPECT_EQ(manager.numJobs(), 3u);
}

TEST(JobManager, AddJobsToleratesTrailingCommasAndWhitespace)
{
    const auto g = testGraph();
    engine::JobManager manager(g, testOptions());
    // Shell artifacts: trailing comma, doubled comma, padding — all
    // skipped; the specs themselves arrive trimmed.
    manager.addJobs(" sssp:0 ,, pagerank\t, wcc ,");
    ASSERT_EQ(manager.numJobs(), 3u);
    const auto results = manager.runAll();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].spec, "sssp:0");
    EXPECT_EQ(results[1].spec, "pagerank");
    EXPECT_EQ(results[2].spec, "wcc");
}

TEST(JobManagerDeathTest, AddJobsRejectsAllEmptyList)
{
    const auto g = testGraph();
    engine::JobManager manager(g, testOptions());
    EXPECT_EXIT(manager.addJobs(" , ,"),
                ::testing::ExitedWithCode(1), "no job specs");
}

TEST(JobManagerDeathTest, AdoptRejectsVertexCountMismatch)
{
    // Graph B has the same edges as graph A plus one extra isolated
    // vertex: the substrate's edge-count check alone would pass, so
    // the vertex-count check must catch the mismatch.
    const auto makeChain = [](VertexId n) {
        graph::GraphBuilder builder(n);
        builder.addEdge(0, 1);
        builder.addEdge(1, 2);
        builder.addEdge(2, 3);
        return builder.build();
    };
    const auto a = makeChain(4);
    const auto b = makeChain(5);
    const auto opts = testOptions();

    engine::DiGraphEngine eng(a, opts);
    const auto sub = eng.substrate();
    ASSERT_EQ(sub->pre.paths.numEdges(), b.numEdges());
    EXPECT_EXIT(engine::JobManager(b, sub, opts),
                ::testing::ExitedWithCode(1), "vertices");
}

TEST(JobManager, SessionThreadsDividedAcrossJobs)
{
    const auto g = testGraph();

    // The old behavior forced engine_threads = 1 for EVERY job the
    // moment more than one was queued; the session budget must instead
    // be divided across in-flight jobs (the first grant takes the free
    // budget, later grants rebalance at wave boundaries).
    auto opts = testOptions();
    opts.engine_threads = 8;
    engine::JobManager manager(g, opts);
    manager.addJobs("pagerank,wcc");
    const auto results = manager.runAll();
    ASSERT_EQ(results.size(), 2u);
    bool some_parallel = false;
    for (const auto &job : results) {
        EXPECT_GE(job.report.engine_threads, 1u) << job.spec;
        EXPECT_LE(job.report.engine_threads, 8u) << job.spec;
        some_parallel |= job.report.engine_threads > 1;
    }
    EXPECT_TRUE(some_parallel);

    // And the division must not be observable in the results.
    for (const auto &job : results) {
        engine::DiGraphEngine eng(g, testOptions());
        const auto algo = algorithms::makeAlgorithmSpec(job.spec, g);
        expectSameReport(job.report, eng.run(*algo), job.spec);
    }
}

} // namespace
} // namespace digraph
