/**
 * @file
 * Robustness: option validation across every engine entry point,
 * fail-fast diagnostics, and degenerate inputs (empty graph, single
 * vertex) through every engine family.
 */

#include <string>

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "baselines/async_engine.hpp"
#include "baselines/bsp_engine.hpp"
#include "baselines/sequential.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace digraph {
namespace {

// --- option validation ---

TEST(EngineOptionsValidate, DefaultsAreValid)
{
    EXPECT_EQ(engine::EngineOptions{}.validate(), "");
}

TEST(EngineOptionsValidate, RejectsBrokenPlatforms)
{
    engine::EngineOptions opts;
    opts.platform.num_devices = 0;
    EXPECT_NE(opts.validate().find("num_devices"), std::string::npos);

    opts = {};
    opts.platform.smx_per_device = 0;
    EXPECT_NE(opts.validate().find("smx_per_device"), std::string::npos);

    opts = {};
    opts.platform.host_link_bytes_per_cycle = 0.0;
    EXPECT_NE(opts.validate().find("host_link"), std::string::npos);

    opts = {};
    opts.platform.transfer_latency_cycles = -1.0;
    EXPECT_NE(opts.validate().find("transfer_latency"), std::string::npos);
}

TEST(EngineOptionsValidate, RejectsBrokenEngineKnobs)
{
    engine::EngineOptions opts;
    opts.max_local_rounds = 0;
    EXPECT_NE(opts.validate().find("max_local_rounds"), std::string::npos);

    opts = {};
    opts.use_proxy = true;
    opts.proxy_indegree_threshold = 0;
    EXPECT_NE(opts.validate().find("proxy_indegree_threshold"),
              std::string::npos);
}

TEST(EngineOptionsValidate, FaultKnobsOnlyCheckedWhenFaultsAreOn)
{
    engine::EngineOptions opts;
    opts.checkpoint_interval = 0; // harmless: no faults planned
    EXPECT_EQ(opts.validate(), "");

    opts.faults.transfer_drop_p = 0.1;
    EXPECT_NE(opts.validate().find("checkpoint_interval"),
              std::string::npos);

    opts.checkpoint_interval = 4;
    EXPECT_EQ(opts.validate(), "");

    // Plan is validated against the platform geometry.
    opts.faults.device_loss.push_back({99, 100.0});
    EXPECT_NE(opts.validate(), "");
}

TEST(BaselineOptionsValidate, DefaultsValidAndBrokenKnobsRejected)
{
    baselines::BaselineOptions opts;
    EXPECT_EQ(opts.validate(), "");

    opts.max_rounds = 0;
    EXPECT_NE(opts.validate().find("max_rounds"), std::string::npos);

    opts = {};
    opts.platform.ring_bytes_per_cycle = -2.0;
    EXPECT_NE(opts.validate().find("ring_bytes_per_cycle"),
              std::string::npos);
}

// --- every entry point fails fast, loudly, with a nonzero exit ---

TEST(RobustnessDeath, EngineConstructorRejectsInvalidOptions)
{
    const auto g = graph::makeChain(8, 1.0);
    engine::EngineOptions opts;
    opts.platform.num_devices = 0;
    EXPECT_EXIT((void)engine::DiGraphEngine(g, opts),
                ::testing::ExitedWithCode(1), "invalid options");
}

TEST(RobustnessDeath, BspEngineRejectsInvalidOptions)
{
    const auto g = graph::makeChain(8, 1.0);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);
    baselines::BaselineOptions opts;
    opts.max_rounds = 0;
    EXPECT_EXIT((void)baselines::runBsp(g, *algo, opts),
                ::testing::ExitedWithCode(1), "invalid options");
}

TEST(RobustnessDeath, AsyncEngineRejectsInvalidOptions)
{
    const auto g = graph::makeChain(8, 1.0);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);
    baselines::BaselineOptions opts;
    opts.platform.num_streams = 0;
    EXPECT_EXIT((void)baselines::runAsync(g, *algo, opts),
                ::testing::ExitedWithCode(1), "invalid options");
}

TEST(RobustnessDeath, UnknownAlgorithmNameIsFatal)
{
    const auto g = graph::makeChain(8, 1.0);
    EXPECT_EXIT((void)algorithms::makeAlgorithm("does-not-exist", g),
                ::testing::ExitedWithCode(1), "unknown algorithm");
}

// --- degenerate graphs through every engine family ---

TEST(DegenerateInputs, EmptyGraphRunsEverywhere)
{
    const auto g = graph::GraphBuilder().build();
    ASSERT_EQ(g.numVertices(), 0u);
    ASSERT_EQ(g.numEdges(), 0u);

    for (const char *name : {"pagerank", "sssp", "wcc"}) {
        const auto algo = algorithms::makeAlgorithm(name, g);

        const auto seq = baselines::runSequential(g, *algo);
        EXPECT_TRUE(seq.state.empty()) << name;

        engine::DiGraphEngine eng(g, {});
        const auto digraph_report = eng.run(*algo);
        EXPECT_TRUE(digraph_report.final_state.empty()) << name;
        EXPECT_EQ(digraph_report.edge_processings, 0u) << name;

        const auto bsp = baselines::runBsp(g, *algo, {});
        EXPECT_TRUE(bsp.final_state.empty()) << name;

        const auto async = baselines::runAsync(g, *algo, {});
        EXPECT_TRUE(async.report.final_state.empty()) << name;
    }
}

TEST(DegenerateInputs, SingleVertexGraphConvergesImmediately)
{
    // One vertex, zero edges (the builder drops the self-loop).
    graph::GraphBuilder b(1);
    b.addEdge(0, 0, 1.0);
    const auto g = b.build();
    ASSERT_EQ(g.numVertices(), 1u);
    ASSERT_EQ(g.numEdges(), 0u);

    for (const char *name : {"pagerank", "sssp", "wcc"}) {
        const auto algo = algorithms::makeAlgorithm(name, g);
        const auto seq = baselines::runSequential(g, *algo);
        ASSERT_EQ(seq.state.size(), 1u) << name;

        engine::DiGraphEngine eng(g, {});
        const auto report = eng.run(*algo);
        ASSERT_EQ(report.final_state.size(), 1u) << name;
        EXPECT_EQ(report.final_state[0], seq.state[0]) << name;
        EXPECT_EQ(report.edge_processings, 0u) << name;

        const auto bsp = baselines::runBsp(g, *algo, {});
        ASSERT_EQ(bsp.final_state.size(), 1u) << name;
        EXPECT_EQ(bsp.final_state[0], seq.state[0]) << name;

        const auto async = baselines::runAsync(g, *algo, {});
        ASSERT_EQ(async.report.final_state.size(), 1u) << name;
        EXPECT_EQ(async.report.final_state[0], seq.state[0]) << name;
    }
}

TEST(DegenerateInputs, IsolatedVerticesKeepTheirInitialState)
{
    // Edges only among 0..3; vertices 4..9 are isolated.
    graph::GraphBuilder b(10);
    b.addEdge(0, 1, 1.0);
    b.addEdge(1, 2, 1.0);
    b.addEdge(2, 3, 1.0);
    const auto g = b.build();
    ASSERT_EQ(g.numVertices(), 10u);

    const auto algo = algorithms::makeAlgorithm("sssp", g);
    const auto seq = baselines::runSequential(g, *algo);
    engine::DiGraphEngine eng(g, {});
    const auto report = eng.run(*algo);
    ASSERT_EQ(report.final_state.size(), seq.state.size());
    for (std::size_t v = 0; v < seq.state.size(); ++v)
        EXPECT_EQ(report.final_state[v], seq.state[v]) << "vertex " << v;
}

} // namespace
} // namespace digraph
