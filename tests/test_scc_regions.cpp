/**
 * @file
 * Unit tests for the SCC-region classification that guides the path
 * decomposer and merger.
 */

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "partition/scc_regions.hpp"

namespace digraph::partition {
namespace {

TEST(SccRegions, ChainIsAllAcyclic)
{
    const auto g = graph::makeChain(10);
    const SccRegions regions(g);
    ASSERT_TRUE(regions.valid());
    for (VertexId v = 0; v < 10; ++v)
        EXPECT_FALSE(regions.cyclic(v));
    EXPECT_TRUE(regions.sameRegion(0, 9));
    EXPECT_TRUE(regions.sameHeadRegion(2, 7));
}

TEST(SccRegions, CycleIsOneCyclicRegion)
{
    const auto g = graph::makeCycle(6);
    const SccRegions regions(g);
    for (VertexId v = 0; v < 6; ++v)
        EXPECT_TRUE(regions.cyclic(v));
    EXPECT_TRUE(regions.sameRegion(0, 5));
}

TEST(SccRegions, CyclicAndAcyclicDoNotMix)
{
    // cycle {0,1,2} with a tail 2 -> 3 -> 4.
    graph::GraphBuilder b;
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    b.addEdge(2, 0);
    b.addEdge(2, 3);
    b.addEdge(3, 4);
    const auto g = b.build();
    const SccRegions regions(g);
    EXPECT_TRUE(regions.cyclic(0));
    EXPECT_FALSE(regions.cyclic(3));
    EXPECT_TRUE(regions.sameRegion(0, 1));
    EXPECT_FALSE(regions.sameRegion(2, 3)) << "cyclic -> acyclic edge";
    EXPECT_TRUE(regions.sameRegion(3, 4));
    EXPECT_FALSE(regions.sameHeadRegion(0, 3));
}

TEST(SccRegions, DistinctCyclesAreDistinctRegions)
{
    // Two disjoint 2-cycles.
    graph::GraphBuilder b;
    b.addEdge(0, 1);
    b.addEdge(1, 0);
    b.addEdge(2, 3);
    b.addEdge(3, 2);
    const auto g = b.build();
    const SccRegions regions(g);
    EXPECT_TRUE(regions.cyclic(0));
    EXPECT_TRUE(regions.cyclic(2));
    EXPECT_FALSE(regions.sameRegion(0, 2));
    EXPECT_NE(regions.component(0), regions.component(2));
}

TEST(SccRegions, DefaultConstructedIsInvalid)
{
    SccRegions regions;
    EXPECT_FALSE(regions.valid());
}

} // namespace
} // namespace digraph::partition
