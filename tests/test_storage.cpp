/**
 * @file
 * Tests for the four-array path storage, including a direct check of the
 * paper's Figure 4 example layout.
 */

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "partition/path_set.hpp"
#include "storage/path_storage.hpp"

namespace digraph::storage {
namespace {

/** The directed graph of the paper's Figure 3(a)/Figure 4. */
graph::DirectedGraph
figure3Graph()
{
    graph::GraphBuilder b(15);
    const std::pair<int, int> edges[] = {
        {0, 1},  {1, 2},   {2, 3},   {3, 4},  {4, 5},
        {3, 6},  {6, 7},   {7, 8},   {8, 9},  {8, 10},
        {10, 11}, {11, 12}, {7, 13},  {13, 14}, {14, 6}};
    for (const auto &[s, t] : edges)
        b.addEdge(static_cast<VertexId>(s), static_cast<VertexId>(t));
    return b.build();
}

/** The paper's Figure 3(a) path decomposition, built explicitly. */
partition::PathSet
figure3Paths(const graph::DirectedGraph &g)
{
    auto edge_id = [&g](VertexId s, VertexId t) {
        const auto nbrs = g.outNeighbors(s);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
            if (nbrs[k] == t)
                return g.outEdgeId(s, k);
        }
        ADD_FAILURE() << "missing edge " << s << "->" << t;
        return kInvalidEdge;
    };
    partition::PathSet ps;
    auto add = [&](std::initializer_list<VertexId> verts) {
        auto it = verts.begin();
        ps.beginPath(*it);
        VertexId prev = *it++;
        for (; it != verts.end(); ++it) {
            ps.extend(*it, edge_id(prev, *it));
            prev = *it;
        }
    };
    add({0, 1, 2, 3, 4, 5});     // p1
    add({3, 6, 7, 8, 9});        // p2
    add({8, 10, 11, 12});        // p3
    add({7, 13, 14, 6});         // p4
    return ps;
}

TEST(PathStorage, Figure4Layout)
{
    const auto g = figure3Graph();
    const auto paths = figure3Paths(g);
    ASSERT_TRUE(paths.validate(g));
    PathStorage storage(paths, g);

    // PTable: offsets of each path's first vertex in E_idx (Fig 4).
    EXPECT_EQ(storage.pathOffset(0), 0u);
    EXPECT_EQ(storage.pathOffset(1), 6u);
    EXPECT_EQ(storage.pathOffset(2), 11u);
    EXPECT_EQ(storage.pathOffset(3), 15u);
    EXPECT_EQ(storage.pathOffset(4), 19u);

    // E_idx: vertex ids along the paths.
    const auto e_idx = storage.eIdx();
    const VertexId expected[] = {0, 1, 2,  3,  4,  5, 3, 6, 7, 8,
                                 9, 8, 10, 11, 12, 7, 13, 14, 6};
    ASSERT_EQ(e_idx.size(), std::size(expected));
    for (std::size_t i = 0; i < std::size(expected); ++i)
        EXPECT_EQ(e_idx[i], expected[i]) << "slot " << i;

    // V_val has one master slot per vertex.
    EXPECT_EQ(storage.numVertices(), 15u);
    EXPECT_EQ(storage.numPaths(), 4u);
}

TEST(PathStorage, ViewsSliceCorrectly)
{
    const auto g = figure3Graph();
    PathStorage storage(figure3Paths(g), g);
    auto view = storage.path(1); // p2 = 3 -> 6 -> 7 -> 8 -> 9
    ASSERT_EQ(view.length(), 4u);
    EXPECT_EQ(view.vertex_ids[0], 3u);
    EXPECT_EQ(view.vertex_ids[4], 9u);
    ASSERT_EQ(view.edge_ids.size(), 4u);
    EXPECT_EQ(g.edgeSource(view.edge_ids[0]), 3u);
    EXPECT_EQ(g.edgeTarget(view.edge_ids[0]), 6u);
}

TEST(PathStorage, InitializeAndPull)
{
    const auto g = figure3Graph();
    PathStorage storage(figure3Paths(g), g);
    std::vector<Value> vinit(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        vinit[v] = 100.0 + v;
    std::vector<Value> einit(g.numEdges(), -1.0);
    storage.initialize(vinit, einit);

    auto view = storage.path(0);
    EXPECT_EQ(view.mirror_states[0], 100.0);
    EXPECT_EQ(view.mirror_states[5], 105.0);
    EXPECT_EQ(view.edge_states[0], -1.0);

    // Mutate a master and pull the path: mirror and snapshot refresh.
    storage.vVal(1) = 999.0;
    storage.pullPath(0);
    view = storage.path(0);
    EXPECT_EQ(view.mirror_states[1], 999.0);
    EXPECT_EQ(view.loaded_states[1], 999.0);
}

TEST(PathStorage, ReplicasHaveIndependentMirrors)
{
    const auto g = figure3Graph();
    PathStorage storage(figure3Paths(g), g);
    std::vector<Value> vinit(g.numVertices(), 0.0);
    std::vector<Value> einit(g.numEdges(), 0.0);
    storage.initialize(vinit, einit);

    // Vertex 3 occurs on p1 (slot 3) and p2 (slot 6 = head).
    auto p1 = storage.path(0);
    p1.mirror_states[3] = 7.0;
    auto p2 = storage.path(1);
    EXPECT_EQ(p2.mirror_states[0], 0.0)
        << "replica mirrors must be independent";
    EXPECT_EQ(storage.vVal(3), 0.0);
}

TEST(PathStorage, ByteAccountingMatchesLayout)
{
    const auto g = figure3Graph();
    PathStorage storage(figure3Paths(g), g);
    // p1 has 6 vertices, 5 edges.
    const std::size_t expected = 6 * (sizeof(VertexId) + sizeof(Value)) +
                                 5 * sizeof(Value) +
                                 sizeof(std::uint64_t);
    EXPECT_EQ(storage.pathBytes(0), expected);
    EXPECT_EQ(storage.rangeBytes(0, 2),
              storage.pathBytes(0) + storage.pathBytes(1));
}

TEST(PathStorage, SlotAccessorsMatchViews)
{
    const auto g = figure3Graph();
    PathStorage storage(figure3Paths(g), g);
    std::vector<Value> vinit(g.numVertices(), 1.5);
    std::vector<Value> einit(g.numEdges(), 0.0);
    storage.initialize(vinit, einit);
    for (std::uint64_t s = 0; s < storage.eIdx().size(); ++s) {
        EXPECT_EQ(storage.vertexAt(s), storage.eIdx()[s]);
        EXPECT_EQ(storage.sVal(s), 1.5);
    }
}

} // namespace
} // namespace digraph::storage
