/**
 * @file
 * Tests for the synthetic generators: determinism, deterministic small
 * shapes, and — crucially for the reproduction — that each dataset
 * stand-in realizes the structural properties its Table 1 counterpart is
 * substituted for (average degree, giant-SCC share, relative average
 * distances).
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/scc.hpp"

namespace digraph::graph {
namespace {

TEST(Generators, DeterministicForSeed)
{
    GeneratorConfig c;
    c.num_vertices = 300;
    c.num_edges = 1500;
    c.seed = 99;
    const auto a = generate(c);
    const auto b = generate(c);
    EXPECT_EQ(a.edgeList(), b.edgeList());
    c.seed = 100;
    EXPECT_NE(generate(c).edgeList(), a.edgeList());
}

bool
isAcyclicDag(const DirectedGraph &g)
{
    return computeScc(g).num_components == g.numVertices();
}

TEST(Generators, Shapes)
{
    EXPECT_EQ(makeChain(5).numEdges(), 4u);
    EXPECT_EQ(makeCycle(5).numEdges(), 5u);
    EXPECT_EQ(makeStar(9).outDegree(0), 8u);
    EXPECT_EQ(makeStar(9, false).inDegree(0), 8u);
    EXPECT_EQ(makeBinaryTree(7).outDegree(0), 2u);
    EXPECT_EQ(makeGrid(3, 4).numVertices(), 12u);
    EXPECT_EQ(makeGrid(3, 4).numEdges(), 3u * 3 + 2 * 4);
    EXPECT_TRUE(isAcyclicDag(makeRandomDag(100, 400, 1)));
}

TEST(Generators, SccCoreFractionControlsGiantScc)
{
    GeneratorConfig c;
    c.num_vertices = 4000;
    c.num_edges = 24000;
    c.seed = 31;
    for (const double frac : {0.2, 0.5, 0.8}) {
        c.scc_core_fraction = frac;
        const auto g = generate(c);
        const double giant = computeScc(g).giantFraction();
        EXPECT_NEAR(giant, frac, 0.08) << "core fraction " << frac;
    }
}

TEST(Generators, PureDagWhenCoreIsEmpty)
{
    GeneratorConfig c;
    c.num_vertices = 1000;
    c.num_edges = 6000;
    c.scc_core_fraction = 0.0;
    c.seed = 17;
    const auto g = generate(c);
    EXPECT_EQ(computeScc(g).num_components, g.numVertices());
}

TEST(Datasets, AllSixEnumerated)
{
    EXPECT_EQ(allDatasets().size(), 6u);
    EXPECT_EQ(datasetName(Dataset::dblp), "dblp");
    EXPECT_EQ(datasetName(Dataset::twitter), "twitter");
}

TEST(Datasets, ScaleShrinksSizes)
{
    const auto full = datasetConfig(Dataset::cnr, 1.0);
    const auto half = datasetConfig(Dataset::cnr, 0.5);
    EXPECT_NEAR(static_cast<double>(half.num_vertices),
                full.num_vertices * 0.5, 2.0);
    EXPECT_NEAR(static_cast<double>(half.num_edges),
                full.num_edges * 0.5, 2.0);
}

/** Table 1 / Fig 2d structural targets per stand-in. */
struct DatasetTarget
{
    Dataset dataset;
    double giant_scc;   // paper's giant-SCC vertex share
    double avg_degree;  // paper's A_Deg (matched in relative terms)
};

class DatasetProperties
    : public ::testing::TestWithParam<DatasetTarget>
{};

TEST_P(DatasetProperties, GiantSccShareMatchesPaper)
{
    const auto g = makeDataset(GetParam().dataset, 0.2);
    const double giant = computeScc(g).giantFraction();
    EXPECT_NEAR(giant, GetParam().giant_scc, 0.08)
        << datasetName(GetParam().dataset);
}

TEST_P(DatasetProperties, DegreeOrderingMatchesPaper)
{
    // Average degrees preserve the paper's dataset ordering; absolute
    // values are close at any scale because V and E scale together.
    const auto g = makeDataset(GetParam().dataset, 0.2);
    const double deg = static_cast<double>(g.numEdges()) /
                       static_cast<double>(g.numVertices());
    EXPECT_NEAR(deg, GetParam().avg_degree, GetParam().avg_degree * 0.5)
        << datasetName(GetParam().dataset);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetProperties,
    ::testing::Values(DatasetTarget{Dataset::dblp, 0.694, 4.952},
                      DatasetTarget{Dataset::cnr, 0.344, 9.879},
                      DatasetTarget{Dataset::ljournal, 0.780, 14.734},
                      DatasetTarget{Dataset::webbase, 0.456, 8.633},
                      DatasetTarget{Dataset::it04, 0.723, 27.868},
                      DatasetTarget{Dataset::twitter, 0.803, 35.253}),
    [](const ::testing::TestParamInfo<DatasetTarget> &info) {
        return datasetName(info.param.dataset);
    });

TEST(Datasets, DistanceOrderingMatchesPaper)
{
    // The paper's A_Dis ordering: twitter (4.46) < ljournal (5.99) <
    // dblp (7.35) and the web graphs longest. Check the coarse ordering
    // on the stand-ins.
    const auto dist = [](Dataset d) {
        return measureProperties(makeDataset(d, 0.15), 8).avg_distance;
    };
    const double twitter = dist(Dataset::twitter);
    const double ljournal = dist(Dataset::ljournal);
    const double cnr = dist(Dataset::cnr);
    EXPECT_LT(twitter, ljournal);
    EXPECT_LT(ljournal, cnr);
}

} // namespace
} // namespace digraph::graph
