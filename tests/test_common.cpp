/**
 * @file
 * Unit tests for the common utilities: deterministic RNG, timers, thread
 * pool, atomic bitset, and the stats registry.
 */

#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/atomic_bitset.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace digraph {
namespace {

TEST(SplitMix64, DeterministicForSeed)
{
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer)
{
    SplitMix64 a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(SplitMix64, BoundedStaysInRange)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextBounded(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(SplitMix64, DoubleInUnitInterval)
{
    SplitMix64 rng(9);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    EXPECT_LT(lo, 0.05);
    EXPECT_GT(hi, 0.95);
}

TEST(SplitMix64, SplitProducesIndependentStream)
{
    SplitMix64 parent(42);
    SplitMix64 child = parent.split();
    // Child stream differs from the continued parent stream.
    EXPECT_NE(parent.next(), child.next());
}

TEST(SplitMix64, BernoulliRoughlyCalibrated)
{
    SplitMix64 rng(5);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(WallTimer, MeasuresElapsedTime)
{
    WallTimer timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(timer.milliseconds(), 5.0);
    timer.reset();
    EXPECT_LT(timer.milliseconds(), 5.0);
}

TEST(AccumTimer, AccumulatesSections)
{
    AccumTimer acc;
    for (int i = 0; i < 3; ++i) {
        ScopedTimer guard(acc);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(acc.seconds(), 0.010);
    acc.reset();
    EXPECT_EQ(acc.seconds(), 0.0);
}

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    auto f1 = pool.submit([] { return 41 + 1; });
    auto f2 = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversEveryIndex)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(AtomicBitset, SetTestReset)
{
    AtomicBitset bits(200);
    EXPECT_EQ(bits.size(), 200u);
    EXPECT_TRUE(bits.none());
    EXPECT_TRUE(bits.set(63));
    EXPECT_FALSE(bits.set(63)); // second set reports already-set
    EXPECT_TRUE(bits.test(63));
    EXPECT_FALSE(bits.test(64));
    EXPECT_EQ(bits.count(), 1u);
    EXPECT_TRUE(bits.reset(63));
    EXPECT_FALSE(bits.reset(63));
    EXPECT_TRUE(bits.none());
}

TEST(AtomicBitset, ConcurrentSettersEachWinOnce)
{
    AtomicBitset bits(1 << 14);
    std::atomic<int> first_sets{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (std::size_t i = 0; i < bits.size(); ++i) {
                if (bits.set(i))
                    ++first_sets;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(first_sets.load(), 1 << 14);
    EXPECT_EQ(bits.count(), std::size_t{1} << 14);
}

TEST(StatsRegistry, CountersAccumulateAndSnapshot)
{
    StatsRegistry stats;
    stats.counter("a").add(5);
    stats.counter("a").add(2);
    stats.counter("b").add();
    EXPECT_EQ(stats.get("a"), 7u);
    EXPECT_EQ(stats.get("b"), 1u);
    EXPECT_EQ(stats.get("missing"), 0u);
    const auto snap = stats.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first, "a");
    stats.resetAll();
    EXPECT_EQ(stats.get("a"), 0u);
}

} // namespace
} // namespace digraph
