/**
 * @file
 * Cross-engine convergence: every engine (DiGraph in all three execution
 * modes, the BSP baseline, the async baseline) must reach the sequential
 * reference fixed point for every algorithm on every test graph.
 */

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "baselines/async_engine.hpp"
#include "baselines/bsp_engine.hpp"
#include "baselines/sequential.hpp"
#include "engine/digraph_engine.hpp"
#include "test_util.hpp"

namespace digraph {
namespace {

using test::expectStatesNear;
using test::NamedGraph;

struct Case
{
    std::string graph_name;
    std::string algo_name;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto &g : test::testGraphs()) {
        for (const auto &a :
             {"pagerank", "adsorption", "sssp", "kcore", "bfs", "wcc"}) {
            cases.push_back({g.name, a});
        }
    }
    return cases;
}

class EngineConvergence : public ::testing::TestWithParam<Case>
{
  protected:
    graph::DirectedGraph
    makeGraph() const
    {
        for (auto &ng : test::testGraphs()) {
            if (ng.name == GetParam().graph_name)
                return std::move(ng.graph);
        }
        ADD_FAILURE() << "unknown graph " << GetParam().graph_name;
        return {};
    }
};

gpusim::PlatformConfig
smallPlatform()
{
    gpusim::PlatformConfig pc;
    pc.num_devices = 2;
    pc.smx_per_device = 4;
    return pc;
}

TEST_P(EngineConvergence, DiGraphMatchesSequential)
{
    const auto g = makeGraph();
    const auto algo = algorithms::makeAlgorithm(GetParam().algo_name, g);
    const auto ref = baselines::runSequential(g, *algo);

    for (const auto mode :
         {engine::ExecutionMode::PathAsync,
          engine::ExecutionMode::PathNoSched,
          engine::ExecutionMode::VertexAsync}) {
        engine::EngineOptions opts;
        opts.mode = mode;
        opts.platform = smallPlatform();
        engine::DiGraphEngine eng(g, opts);
        const auto report = eng.run(*algo);
        expectStatesNear(report.final_state, ref.state,
                         algo->resultTolerance(),
                         GetParam().graph_name + "/" +
                             GetParam().algo_name + "/" +
                             engine::modeName(mode));
    }
}

TEST_P(EngineConvergence, BspMatchesSequential)
{
    const auto g = makeGraph();
    const auto algo = algorithms::makeAlgorithm(GetParam().algo_name, g);
    const auto ref = baselines::runSequential(g, *algo);

    baselines::BaselineOptions opts;
    opts.platform = smallPlatform();
    const auto report = baselines::runBsp(g, *algo, opts);
    expectStatesNear(report.final_state, ref.state,
                     algo->resultTolerance(),
                     GetParam().graph_name + "/" + GetParam().algo_name +
                         "/bsp");
}

TEST_P(EngineConvergence, AsyncMatchesSequential)
{
    const auto g = makeGraph();
    const auto algo = algorithms::makeAlgorithm(GetParam().algo_name, g);
    const auto ref = baselines::runSequential(g, *algo);

    baselines::BaselineOptions opts;
    opts.platform = smallPlatform();
    const auto result = baselines::runAsync(g, *algo, opts);
    expectStatesNear(result.report.final_state, ref.state,
                     algo->resultTolerance(),
                     GetParam().graph_name + "/" + GetParam().algo_name +
                         "/async");
}

TEST_P(EngineConvergence, TopologicalMatchesSequential)
{
    const auto g = makeGraph();
    const auto algo = algorithms::makeAlgorithm(GetParam().algo_name, g);
    const auto ref = baselines::runSequential(g, *algo);
    const auto topo = baselines::runTopological(g, *algo);
    expectStatesNear(topo.state, ref.state, algo->resultTolerance(),
                     GetParam().graph_name + "/" + GetParam().algo_name +
                         "/topological");
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphsAllAlgorithms, EngineConvergence,
    ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        return info.param.graph_name + "_" + info.param.algo_name;
    });

} // namespace
} // namespace digraph
