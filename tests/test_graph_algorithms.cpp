/**
 * @file
 * Unit tests for SCC decomposition, condensation, and the traversal
 * utilities (BFS distances, topological ordering, DAG layers).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "graph/traversal.hpp"

namespace digraph::graph {
namespace {

TEST(Scc, ChainIsAllSingletons)
{
    const auto g = makeChain(10);
    const auto scc = computeScc(g);
    EXPECT_EQ(scc.num_components, 10u);
    EXPECT_DOUBLE_EQ(scc.giantFraction(), 0.1);
}

TEST(Scc, CycleIsOneComponent)
{
    const auto g = makeCycle(10);
    const auto scc = computeScc(g);
    EXPECT_EQ(scc.num_components, 1u);
    EXPECT_DOUBLE_EQ(scc.giantFraction(), 1.0);
    EXPECT_EQ(scc.sizes[scc.giantComponent()], 10u);
}

TEST(Scc, TwoCyclesBridged)
{
    GraphBuilder b;
    // cycle {0,1,2}, bridge 2->3, cycle {3,4}
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    b.addEdge(2, 0);
    b.addEdge(2, 3);
    b.addEdge(3, 4);
    b.addEdge(4, 3);
    const auto g = b.build();
    const auto scc = computeScc(g);
    EXPECT_EQ(scc.num_components, 2u);
    EXPECT_EQ(scc.component[0], scc.component[1]);
    EXPECT_EQ(scc.component[0], scc.component[2]);
    EXPECT_EQ(scc.component[3], scc.component[4]);
    EXPECT_NE(scc.component[0], scc.component[3]);
}

TEST(Scc, CondensationIsAcyclic)
{
    GeneratorConfig c;
    c.num_vertices = 500;
    c.num_edges = 3000;
    c.scc_core_fraction = 0.5;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        c.seed = seed;
        const auto g = generate(c);
        const auto scc = computeScc(g);
        const auto dag = condense(g, scc);
        EXPECT_TRUE(isAcyclic(dag)) << "seed " << seed;
        EXPECT_EQ(dag.numVertices(), scc.num_components);
    }
}

TEST(Scc, DeepChainDoesNotOverflowStack)
{
    // 200k-vertex chain would blow a recursive Tarjan.
    const auto g = makeChain(200000);
    const auto scc = computeScc(g);
    EXPECT_EQ(scc.num_components, 200000u);
}

TEST(Traversal, BfsDistancesOnChain)
{
    const auto g = makeChain(6);
    const auto dist = bfsDistances(g, 2);
    EXPECT_EQ(dist[2], 0u);
    EXPECT_EQ(dist[5], 3u);
    EXPECT_EQ(dist[0], kUnreachable);
}

TEST(Traversal, TopologicalOrderRespectsEdges)
{
    const auto g = makeRandomDag(300, 1500, 5);
    const auto order = topologicalOrder(g);
    ASSERT_EQ(order.size(), g.numVertices());
    std::vector<std::uint32_t> pos(g.numVertices());
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = static_cast<std::uint32_t>(i);
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        EXPECT_LT(pos[g.edgeSource(e)], pos[g.edgeTarget(e)]);
}

TEST(Traversal, CyclicGraphHasNoTopologicalOrder)
{
    EXPECT_TRUE(topologicalOrder(makeCycle(5)).empty());
    EXPECT_FALSE(isAcyclic(makeCycle(5)));
    EXPECT_TRUE(isAcyclic(makeChain(5)));
}

TEST(Traversal, DagLayersAreMonotone)
{
    const auto g = makeRandomDag(200, 900, 11);
    const auto layer = dagLayers(g);
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        EXPECT_LT(layer[g.edgeSource(e)], layer[g.edgeTarget(e)]);
}

TEST(Traversal, BinaryTreeLayersAreDepths)
{
    const auto g = makeBinaryTree(15);
    const auto layer = dagLayers(g);
    EXPECT_EQ(layer[0], 0u);
    EXPECT_EQ(layer[1], 1u);
    EXPECT_EQ(layer[14], 3u);
}

TEST(Traversal, ReachableFromStar)
{
    const auto g = makeStar(8, /*out=*/true);
    EXPECT_EQ(reachableFrom(g, 0).size(), 8u);
    EXPECT_EQ(reachableFrom(g, 3).size(), 1u);
}

} // namespace
} // namespace digraph::graph
