/**
 * @file
 * Feature-flag tests for the DiGraph engine: every ablation configuration
 * must still converge to the reference fixed point; engines are reusable
 * across runs; deterministic; and the recorded metrics behave sensibly.
 */

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "baselines/sequential.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace digraph::engine {
namespace {

graph::DirectedGraph
testGraph()
{
    graph::GeneratorConfig c;
    c.num_vertices = 700;
    c.num_edges = 4200;
    c.scc_core_fraction = 0.45;
    c.seed = 99;
    return graph::generate(c);
}

gpusim::PlatformConfig
smallPlatform(unsigned gpus = 2)
{
    gpusim::PlatformConfig pc;
    pc.num_devices = gpus;
    pc.smx_per_device = 4;
    return pc;
}

struct FeatureCase
{
    std::string name;
    void (*apply)(EngineOptions &);
};

void noop(EngineOptions &) {}
void noDag(EngineOptions &o) { o.dag_dispatch = false; }
void noSteal(EngineOptions &o) { o.work_stealing = false; }
void noProxy(EngineOptions &o) { o.use_proxy = false; }
void noMerge(EngineOptions &o) { o.preprocess.enable_merge = false; }
void noHotFirst(EngineOptions &o)
{
    o.preprocess.decompose.degree_sorted = false;
}
void noSccConfine(EngineOptions &o)
{
    o.preprocess.decompose.scc_confined = false;
}
void smallDmax(EngineOptions &o) { o.preprocess.decompose.d_max = 3; }
void tinyLocalRounds(EngineOptions &o) { o.max_local_rounds = 1; }
void forceAll(EngineOptions &o) { o.force_all_active = true; }

class EngineFeatures : public ::testing::TestWithParam<FeatureCase>
{};

TEST_P(EngineFeatures, ConvergesToReference)
{
    const auto g = testGraph();
    for (const auto &name : {"pagerank", "sssp", "kcore"}) {
        const auto algo = algorithms::makeAlgorithm(name, g);
        const auto ref = baselines::runSequential(g, *algo);
        EngineOptions opts;
        opts.platform = smallPlatform();
        GetParam().apply(opts);
        DiGraphEngine engine(g, opts);
        const auto report = engine.run(*algo);
        test::expectStatesNear(report.final_state, ref.state,
                               algo->resultTolerance(),
                               GetParam().name + "/" + name);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Flags, EngineFeatures,
    ::testing::Values(FeatureCase{"baseline", noop},
                      FeatureCase{"no_dag_dispatch", noDag},
                      FeatureCase{"no_work_stealing", noSteal},
                      FeatureCase{"no_proxy", noProxy},
                      FeatureCase{"no_merge", noMerge},
                      FeatureCase{"no_hot_first", noHotFirst},
                      FeatureCase{"no_scc_confined", noSccConfine},
                      FeatureCase{"dmax_3", smallDmax},
                      FeatureCase{"local_rounds_1", tinyLocalRounds},
                      FeatureCase{"force_all_active", forceAll}),
    [](const ::testing::TestParamInfo<FeatureCase> &info) {
        return info.param.name;
    });

TEST(EngineReuse, MultipleRunsProduceIdenticalResults)
{
    const auto g = testGraph();
    EngineOptions opts;
    opts.platform = smallPlatform();
    DiGraphEngine engine(g, opts);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);
    const auto a = engine.run(*algo);
    const auto b = engine.run(*algo);
    ASSERT_EQ(a.final_state.size(), b.final_state.size());
    for (std::size_t v = 0; v < a.final_state.size(); ++v)
        EXPECT_EQ(a.final_state[v], b.final_state[v]);
    EXPECT_EQ(a.vertex_updates, b.vertex_updates);
    EXPECT_EQ(a.sim_cycles, b.sim_cycles);
}

TEST(EngineReuse, DifferentAlgorithmsShareOnePreprocessing)
{
    const auto g = testGraph();
    EngineOptions opts;
    opts.platform = smallPlatform();
    DiGraphEngine engine(g, opts);
    for (const auto &name : algorithms::benchmarkNames()) {
        const auto algo = algorithms::makeAlgorithm(name, g);
        const auto report = engine.run(*algo);
        EXPECT_EQ(report.algorithm, name);
        EXPECT_EQ(report.final_state.size(), g.numVertices());
    }
}

TEST(EngineScaling, GpuCountsOneToFourAllConverge)
{
    const auto g = testGraph();
    const auto algo = algorithms::makeAlgorithm("sssp", g);
    const auto ref = baselines::runSequential(g, *algo);
    for (unsigned gpus = 1; gpus <= 4; ++gpus) {
        EngineOptions opts;
        opts.platform = smallPlatform(gpus);
        DiGraphEngine engine(g, opts);
        const auto report = engine.run(*algo);
        EXPECT_EQ(report.num_gpus, gpus);
        test::expectStatesNear(report.final_state, ref.state, 1e-9,
                               "gpus" + std::to_string(gpus));
    }
}

TEST(EngineMetrics, ReportFieldsAreSane)
{
    const auto g = testGraph();
    EngineOptions opts;
    opts.platform = smallPlatform();
    DiGraphEngine engine(g, opts);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);
    const auto report = engine.run(*algo);
    EXPECT_EQ(report.system, "digraph");
    EXPECT_GT(report.vertex_updates, 0u);
    EXPECT_GT(report.partition_processings, 0u);
    EXPECT_GT(report.rounds, 0u);
    EXPECT_GT(report.sim_cycles, 0.0);
    EXPECT_GT(report.host_transfer_bytes, 0u);
    EXPECT_GT(report.global_load_bytes, 0u);
    EXPECT_GT(report.loaded_vertices, 0u);
    EXPECT_GE(report.utilization, 0.0);
    EXPECT_LE(report.utilization, 1.0);
    EXPECT_GT(report.loadedDataUtilization(), 0.0);
    EXPECT_GT(report.preprocess_seconds, 0.0);
    const auto &counts = engine.partitionProcessCounts();
    std::uint64_t total = 0;
    for (const auto c : counts)
        total += c;
    EXPECT_EQ(total, report.partition_processings);
}

TEST(EngineMetrics, ModeNamesMatchPaper)
{
    EXPECT_EQ(modeName(ExecutionMode::PathAsync), "digraph");
    EXPECT_EQ(modeName(ExecutionMode::PathNoSched), "digraph-w");
    EXPECT_EQ(modeName(ExecutionMode::VertexAsync), "digraph-t");
}

TEST(EngineStructure, PartitionGroupsAndPrecursorsConsistent)
{
    const auto g = testGraph();
    EngineOptions opts;
    opts.platform = smallPlatform();
    DiGraphEngine engine(g, opts);
    const auto nparts = engine.preprocessed().numPartitions();
    for (PartitionId q = 0; q < nparts; ++q) {
        for (const PartitionId t : engine.partitionPrecursors(q)) {
            EXPECT_LT(t, nparts);
            EXPECT_NE(t, q);
        }
        EXPECT_LT(engine.partitionGroup(q), nparts + 1);
    }
}

TEST(EngineEdgeCases, TinyGraphs)
{
    for (const auto &g :
         {graph::makeChain(2), graph::makeCycle(3), graph::makeStar(4)}) {
        EngineOptions opts;
        opts.platform = smallPlatform(1);
        DiGraphEngine engine(g, opts);
        const auto algo = algorithms::makeAlgorithm("pagerank", g);
        const auto ref = baselines::runSequential(g, *algo);
        const auto report = engine.run(*algo);
        test::expectStatesNear(report.final_state, ref.state,
                               algo->resultTolerance(), "tiny");
    }
}

} // namespace
} // namespace digraph::engine
