/**
 * @file
 * Tests for the sequential reference engines, including the Fig 2d
 * topological-execution property: on a DAG, every reachable vertex
 * converges after exactly one update.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "baselines/sequential.hpp"
#include "graph/generators.hpp"

namespace digraph::baselines {
namespace {

TEST(Sequential, CountsUpdatesAndEdgeProcessings)
{
    const auto g = graph::makeChain(10);
    const algorithms::Sssp sssp(0);
    const auto result = runSequential(g, sssp);
    // Each vertex processed exactly once along the chain.
    EXPECT_EQ(result.vertex_updates, 10u);
    EXPECT_EQ(result.edge_processings, 9u);
    EXPECT_EQ(result.updates_per_vertex[0], 1u);
    EXPECT_EQ(result.updates_per_vertex[9], 1u);
}

TEST(Topological, DagConvergesInOneSweep)
{
    const auto g = graph::makeRandomDag(500, 2500, 3);
    const algorithms::PageRank pr;
    const auto result = runTopological(g, pr);
    EXPECT_DOUBLE_EQ(result.singleUpdateFraction(), 1.0);
    EXPECT_EQ(result.vertex_updates, g.numVertices());
}

TEST(Topological, CycleNeedsManyUpdates)
{
    const auto g = graph::makeCycle(8);
    const algorithms::PageRank pr;
    const auto result = runTopological(g, pr);
    EXPECT_GT(result.vertex_updates, 8u * 10)
        << "mass circulates until decay";
    EXPECT_LT(result.singleUpdateFraction(), 0.2);
}

TEST(Topological, MixedGraphSplitsByRegion)
{
    // Half the vertices in a cyclic core, half in the DAG tail: the
    // single-update fraction tracks the non-core share (Fig 2d).
    graph::GeneratorConfig c;
    c.num_vertices = 2000;
    c.num_edges = 12000;
    c.scc_core_fraction = 0.5;
    c.seed = 8;
    const auto g = graph::generate(c);
    const algorithms::PageRank pr;
    const auto result = runTopological(g, pr);
    EXPECT_GT(result.singleUpdateFraction(), 0.2);
    EXPECT_LT(result.singleUpdateFraction(), 0.75);
}

TEST(Topological, MatchesWorklistFixedPoint)
{
    graph::GeneratorConfig c;
    c.num_vertices = 300;
    c.num_edges = 1800;
    c.seed = 12;
    const auto g = graph::generate(c);
    for (const auto &name : {"pagerank", "sssp", "kcore"}) {
        const auto algo = algorithms::makeAlgorithm(name, g);
        const auto a = runSequential(g, *algo);
        const auto b = runTopological(g, *algo);
        ASSERT_EQ(a.state.size(), b.state.size());
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            if (std::isinf(a.state[v])) {
                EXPECT_TRUE(std::isinf(b.state[v]));
            } else {
                EXPECT_NEAR(a.state[v], b.state[v],
                            algo->resultTolerance() *
                                std::max(1.0, std::abs(a.state[v])))
                    << name << " vertex " << v;
            }
        }
    }
}

TEST(Topological, TopologicalNeedsFewerUpdatesThanArbitraryOrder)
{
    // The core claim behind Fig 2d: processing along the topological
    // order reduces total updates on DAG-heavy graphs.
    graph::GeneratorConfig c;
    c.num_vertices = 1500;
    c.num_edges = 9000;
    c.scc_core_fraction = 0.3;
    c.seed = 14;
    const auto g = graph::generate(c);
    const algorithms::PageRank pr;
    const auto topo = runTopological(g, pr);
    const auto fifo = runSequential(g, pr);
    EXPECT_LE(topo.vertex_updates, fifo.vertex_updates * 2)
        << "sanity: same order of magnitude";
    EXPECT_GT(topo.singleUpdateFraction(), 0.4);
}

} // namespace
} // namespace digraph::baselines
