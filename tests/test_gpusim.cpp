/**
 * @file
 * Tests for the GPU simulator substrate: SMX clocks and busy accounting,
 * link queueing and stream overlap, ring routing, warp (SIMT) cost, and
 * platform-level aggregation.
 */

#include <gtest/gtest.h>

#include "gpusim/platform.hpp"

namespace digraph::gpusim {
namespace {

TEST(Smx, RunAdvancesClockAndBusy)
{
    Smx smx;
    EXPECT_EQ(smx.clock(), 0.0);
    EXPECT_EQ(smx.run(0.0, 100.0), 100.0);
    EXPECT_EQ(smx.run(50.0, 10.0), 110.0); // already past ready time
    EXPECT_EQ(smx.run(200.0, 10.0), 210.0); // waits for dependency
    EXPECT_EQ(smx.busyCycles(), 120.0);
    smx.reset();
    EXPECT_EQ(smx.clock(), 0.0);
}

TEST(LinkModel, SerializesWithinAStream)
{
    LinkModel link(10.0, 100.0, 1);
    const double t1 = link.transfer(0.0, 1000); // 100 + 100
    EXPECT_DOUBLE_EQ(t1, 200.0);
    const double t2 = link.transfer(0.0, 1000); // queues behind t1
    EXPECT_DOUBLE_EQ(t2, 400.0);
    EXPECT_EQ(link.totalBytes(), 2000u);
    EXPECT_EQ(link.totalTransfers(), 2u);
}

TEST(LinkModel, StreamsOverlapTransfers)
{
    LinkModel link(10.0, 100.0, 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(link.transfer(0.0, 1000), 200.0)
            << "each stream is free";
    EXPECT_DOUBLE_EQ(link.transfer(0.0, 1000), 400.0)
        << "fifth transfer queues";
}

TEST(LinkModel, IntrinsicCostIgnoresQueueing)
{
    LinkModel link(8.0, 50.0, 2);
    EXPECT_DOUBLE_EQ(link.cost(800), 50.0 + 100.0);
    link.transfer(0.0, 1u << 20);
    EXPECT_DOUBLE_EQ(link.cost(800), 150.0) << "cost is stateless";
}

TEST(RingInterconnect, DistanceIsMinimalHopCount)
{
    PlatformConfig cfg;
    cfg.num_devices = 4;
    RingInterconnect ring(4, cfg);
    EXPECT_EQ(ring.distance(0, 0), 0u);
    EXPECT_EQ(ring.distance(0, 1), 1u);
    EXPECT_EQ(ring.distance(0, 2), 2u);
    EXPECT_EQ(ring.distance(0, 3), 1u); // wraps backwards
    EXPECT_EQ(ring.distance(3, 1), 2u);
}

TEST(RingInterconnect, MultiHopCostsPerHop)
{
    PlatformConfig cfg;
    cfg.num_devices = 4;
    cfg.ring_bytes_per_cycle = 10.0;
    cfg.transfer_latency_cycles = 100.0;
    RingInterconnect ring(4, cfg);
    const double one_hop = ring.transfer(0, 1, 0.0, 1000);
    EXPECT_DOUBLE_EQ(one_hop, 200.0);
    const double two_hops = ring.transfer(1, 3, 0.0, 1000);
    EXPECT_DOUBLE_EQ(two_hops, 400.0);
    // Per-hop byte accounting: 1 + 2 hops of 1000 bytes.
    EXPECT_EQ(ring.totalBytes(), 3000u);
    EXPECT_EQ(ring.transfer(2, 2, 123.0, 999), 123.0)
        << "self transfer is free";
}

TEST(WarpCost, LockStepTakesMaxPerWarp)
{
    // One warp: cost = max lane.
    std::vector<std::uint64_t> lanes(32, 1);
    lanes[7] = 50;
    EXPECT_DOUBLE_EQ(warpCost(lanes, 2.0), 100.0);
    // Two warps: sum of per-warp maxima.
    std::vector<std::uint64_t> two(64, 1);
    two[0] = 10;
    two[63] = 20;
    EXPECT_DOUBLE_EQ(warpCost(two, 1.0), 30.0);
    EXPECT_DOUBLE_EQ(warpCost({}, 5.0), 0.0);
}

TEST(Platform, AggregatesClocksAndUtilization)
{
    PlatformConfig cfg;
    cfg.num_devices = 2;
    cfg.smx_per_device = 2;
    Platform platform(cfg);
    EXPECT_EQ(platform.numDevices(), 2u);
    EXPECT_EQ(platform.makespan(), 0.0);
    EXPECT_EQ(platform.utilization(), 0.0);

    platform.device(0).smx(0).run(0.0, 100.0);
    platform.device(1).smx(1).run(0.0, 50.0);
    EXPECT_DOUBLE_EQ(platform.makespan(), 100.0);
    // busy = 150 over 4 SMX * 100 cycles.
    EXPECT_DOUBLE_EQ(platform.utilization(), 150.0 / 400.0);

    EXPECT_EQ(platform.leastLoadedDevice(), 1u);
    platform.device(0).addGlobalLoad(1234);
    EXPECT_EQ(platform.globalLoadBytes(), 1234u);

    platform.reset();
    EXPECT_EQ(platform.makespan(), 0.0);
    EXPECT_EQ(platform.globalLoadBytes(), 0u);
}

TEST(Platform, TransferBytesCombineHostAndRing)
{
    PlatformConfig cfg;
    cfg.num_devices = 3;
    Platform platform(cfg);
    platform.device(0).hostLink().transfer(0.0, 500);
    platform.ring().transfer(0, 1, 0.0, 300);
    EXPECT_EQ(platform.transferBytes(), 800u);
}

TEST(Device, LeastLoadedSmxTracksClocks)
{
    PlatformConfig cfg;
    cfg.smx_per_device = 3;
    Device device(0, cfg);
    device.smx(0).run(0.0, 10.0);
    device.smx(1).run(0.0, 5.0);
    EXPECT_EQ(device.leastLoadedSmx(), 2u);
    device.smx(2).run(0.0, 20.0);
    EXPECT_EQ(device.leastLoadedSmx(), 1u);
    EXPECT_DOUBLE_EQ(device.totalBusy(), 35.0);
}

} // namespace
} // namespace digraph::gpusim
