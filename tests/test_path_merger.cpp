/**
 * @file
 * Tests for the head-to-tail path merger: coverage is preserved, the
 * average length never decreases, the paper's inner-vertex junction
 * constraint and the region-purity rule hold, and the length cap is
 * respected.
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/builder.hpp"
#include "partition/decomposer.hpp"
#include "partition/merger.hpp"

namespace digraph::partition {
namespace {

graph::DirectedGraph
randomGraph(std::uint64_t seed)
{
    graph::GeneratorConfig c;
    c.num_vertices = 500;
    c.num_edges = 3000;
    c.scc_core_fraction = 0.4;
    c.seed = seed;
    return graph::generate(c);
}

class Merger : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(Merger, PreservesEdgeCoverage)
{
    const auto g = randomGraph(GetParam());
    const SccRegions regions(g);
    const auto raw = decompose(g, {}, nullptr, &regions);
    const auto merged = mergePaths(raw, g, {}, &regions);
    EXPECT_TRUE(merged.paths.validate(g));
}

TEST_P(Merger, NeverShortensAverageLength)
{
    const auto g = randomGraph(GetParam());
    const SccRegions regions(g);
    const auto raw = decompose(g, {}, nullptr, &regions);
    const auto merged = mergePaths(raw, g, {}, &regions);
    EXPECT_GE(merged.avg_length_after + 1e-12,
              merged.avg_length_before);
    EXPECT_EQ(merged.paths.numPaths() + merged.merges_performed,
              raw.numPaths());
}

TEST_P(Merger, RespectsLengthCap)
{
    const auto g = randomGraph(GetParam());
    const SccRegions regions(g);
    DecomposeOptions dopts;
    dopts.d_max = 4;
    const auto raw = decompose(g, dopts, nullptr, &regions);
    MergeOptions mopts;
    mopts.max_merged_length = 12;
    const auto merged = mergePaths(raw, g, mopts, &regions);
    EXPECT_TRUE(merged.paths.validate(g));
    for (PathId p = 0; p < merged.paths.numPaths(); ++p)
        EXPECT_LE(merged.paths.pathLength(p), 12u);
}

TEST_P(Merger, KeepsRegionPurity)
{
    const auto g = randomGraph(GetParam());
    const SccRegions regions(g);
    const auto raw = decompose(g, {}, nullptr, &regions);
    const auto merged = mergePaths(raw, g, {}, &regions);
    for (PathId p = 0; p < merged.paths.numPaths(); ++p) {
        const auto verts = merged.paths.pathVertices(p);
        for (std::size_t i = 0; i + 2 < verts.size(); ++i) {
            EXPECT_TRUE(regions.sameRegion(verts[i], verts[i + 1]))
                << "merged path " << p << " mixes regions";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Merger,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(MergerShapes, ChainSegmentsFuseBackTogether)
{
    const auto g = graph::makeChain(40);
    DecomposeOptions dopts;
    dopts.d_max = 5;
    const auto raw = decompose(g, dopts);
    EXPECT_GE(raw.numPaths(), 8u);
    MergeOptions mopts;
    mopts.short_threshold = 16;
    mopts.max_merged_length = 0; // unbounded
    const auto merged = mergePaths(raw, g, mopts);
    EXPECT_TRUE(merged.paths.validate(g));
    EXPECT_EQ(merged.paths.numPaths(), 1u)
        << "a chain should fuse into a single path";
    EXPECT_EQ(merged.paths.pathLength(0), 39u);
}

TEST(MergerShapes, NeverMergesIntoACycle)
{
    const auto g = graph::makeCycle(12);
    DecomposeOptions dopts;
    dopts.d_max = 4;
    const auto raw = decompose(g, dopts);
    MergeOptions mopts;
    mopts.max_merged_length = 0;
    const auto merged = mergePaths(raw, g, mopts);
    EXPECT_TRUE(merged.paths.validate(g));
    // A full merge to one path of 12 edges is fine (head == tail), but a
    // chain of merges must never drop edges or loop forever; coverage
    // validation above catches both.
    for (PathId p = 0; p < merged.paths.numPaths(); ++p)
        EXPECT_GE(merged.paths.pathLength(p), 1u);
}

TEST(MergerShapes, InnerVertexJunctionBlocked)
{
    // v3 is an inner vertex of path a (1->3->5) and has in-degree > 1 and
    // out-degree > 1; paths ending/starting at v3 must not fuse through
    // it.
    graph::GraphBuilder b;
    b.addEdge(1, 3);
    b.addEdge(3, 5);
    b.addEdge(2, 3);
    b.addEdge(3, 6);
    const auto g = b.build();
    const auto raw = decompose(g, {});
    ASSERT_TRUE(raw.validate(g));
    const auto inner = raw.innerVertexFlags(g.numVertices());
    if (inner[3]) {
        const auto merged = mergePaths(raw, g, {});
        EXPECT_TRUE(merged.paths.validate(g));
        for (PathId p = 0; p < merged.paths.numPaths(); ++p) {
            const auto verts = merged.paths.pathVertices(p);
            for (std::size_t i = 1; i + 1 < verts.size(); ++i) {
                // 3 may appear inner only on the original DFS path.
                if (verts[i] == 3) {
                    EXPECT_EQ(merged.merges_performed, 0u);
                }
            }
        }
    }
}

} // namespace
} // namespace digraph::partition
