/**
 * @file
 * Tests for the observability subsystem: CounterRegistry semantics,
 * TraceSink event collection, exporter output, and the invariant that a
 * trace's counter totals equal the RunReport aggregates of the traced
 * run — on the DiGraph engine and both baselines.
 */

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "baselines/async_engine.hpp"
#include "baselines/bsp_engine.hpp"
#include "baselines/sequential.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/generators.hpp"
#include "metrics/counter_registry.hpp"
#include "metrics/trace.hpp"

namespace digraph {
namespace {

gpusim::PlatformConfig
smallPlatform()
{
    gpusim::PlatformConfig pc;
    pc.num_devices = 2;
    pc.smx_per_device = 4;
    return pc;
}

graph::DirectedGraph
testGraph(std::uint64_t seed = 77)
{
    graph::GeneratorConfig c;
    c.num_vertices = 400;
    c.num_edges = 2400;
    c.seed = seed;
    return graph::generate(c);
}

// ------------------------------------------------------ CounterRegistry

TEST(CounterRegistry, AddSetGetReset)
{
    metrics::CounterRegistry c;
    EXPECT_EQ(c.get(metrics::Counter::Rounds), 0u);
    c.add(metrics::Counter::Rounds);
    c.add(metrics::Counter::Rounds, 4);
    EXPECT_EQ(c.get(metrics::Counter::Rounds), 5u);
    c.set(metrics::Counter::Waves, 9);
    EXPECT_EQ(c.get(metrics::Counter::Waves), 9u);
    c.reset();
    EXPECT_EQ(c.get(metrics::Counter::Rounds), 0u);
    EXPECT_EQ(c.get(metrics::Counter::Waves), 0u);
}

TEST(CounterRegistry, MergeAddsEveryCounter)
{
    metrics::CounterRegistry a, b;
    a.add(metrics::Counter::EdgeProcessings, 10);
    b.add(metrics::Counter::EdgeProcessings, 7);
    b.add(metrics::Counter::VertexUpdates, 3);
    a.merge(b);
    EXPECT_EQ(a.get(metrics::Counter::EdgeProcessings), 17u);
    EXPECT_EQ(a.get(metrics::Counter::VertexUpdates), 3u);
}

TEST(CounterRegistry, ReportRoundTripIsExact)
{
    metrics::CounterRegistry c;
    std::uint64_t next = 1;
    c.forEach([&](metrics::Counter counter, std::uint64_t) {
        c.set(counter, next++);
    });
    metrics::RunReport report;
    c.exportTo(report);
    EXPECT_EQ(report.edge_processings,
              c.get(metrics::Counter::EdgeProcessings));
    EXPECT_EQ(report.ring_transfer_bytes,
              c.get(metrics::Counter::RingTransferBytes));
    EXPECT_TRUE(metrics::CounterRegistry::fromReport(report) == c);
}

TEST(CounterRegistry, NamesAreStableSnakeCase)
{
    EXPECT_STREQ(metrics::counterName(metrics::Counter::EdgeProcessings),
                 "edge_processings");
    EXPECT_STREQ(metrics::counterName(metrics::Counter::GlobalLoadBytes),
                 "global_load_bytes");
    // Every counter has a distinct non-empty name.
    metrics::CounterRegistry c;
    std::set<std::string> names;
    c.forEach([&](metrics::Counter counter, std::uint64_t) {
        names.insert(metrics::counterName(counter));
    });
    EXPECT_EQ(names.size(), metrics::kNumCounters);
}

// ------------------------------------------------------------ TraceSink

TEST(TraceSink, RecordsCountsAndClears)
{
    metrics::TraceSink sink;
    sink.event(metrics::TraceEventType::WaveStart, 1,
               metrics::kTraceNoPartition, 0.0);
    sink.event(metrics::TraceEventType::Dispatch, 1, 3, 10.0, 5.0, 2, 40);
    sink.event(metrics::TraceEventType::Dispatch, 1, 4, 12.0, 2.0, 1, 8);
    EXPECT_EQ(sink.size(), 3u);
    EXPECT_EQ(sink.count(metrics::TraceEventType::Dispatch), 2u);
    EXPECT_EQ(sink.count(metrics::TraceEventType::Steal), 0u);
    const auto events = sink.events();
    EXPECT_EQ(events[1].partition, 3u);
    EXPECT_EQ(events[1].arg1, 40u);
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, ChromeJsonIsWellFormed)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "digraph_trace_test.json";
    metrics::TraceSink sink;
    sink.event(metrics::TraceEventType::WaveStart, 1,
               metrics::kTraceNoPartition, 0.0);
    sink.event(metrics::TraceEventType::Dispatch, 1, 7, 5.0, 3.0, 1, 2);
    metrics::CounterRegistry c;
    c.set(metrics::Counter::VertexUpdates, 42);
    sink.setCounters(c);
    sink.writeChromeJson(path.string());

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"vertex_updates\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
    // Wave-level events omit the partition arg entirely.
    EXPECT_EQ(json.find(std::to_string(metrics::kTraceNoPartition)),
              std::string::npos);
    std::filesystem::remove(path);
}

TEST(TraceSink, CsvHasOneRowPerEvent)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "digraph_trace_test.csv";
    metrics::TraceSink sink;
    sink.event(metrics::TraceEventType::WaveStart, 1,
               metrics::kTraceNoPartition, 0.0);
    sink.event(metrics::TraceEventType::Dispatch, 1, 7, 5.0, 3.0, 1, 2);
    sink.writeCsv(path.string());
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, sink.size() + 1); // header + events
    std::filesystem::remove(path);
}

// --------------------------------------------- Engine / baseline traces

TEST(EngineTrace, CounterTotalsMatchReportAggregates)
{
    const auto g = testGraph();
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    metrics::TraceSink sink;
    opts.trace = &sink;
    engine::DiGraphEngine eng(g, opts);
    const algorithms::Sssp sssp(0);
    const auto report = eng.run(sssp);

    EXPECT_GT(sink.size(), 0u);
    EXPECT_TRUE(sink.counters() ==
                metrics::CounterRegistry::fromReport(report))
        << "trace counters must equal the RunReport aggregates";
    EXPECT_EQ(sink.count(metrics::TraceEventType::WaveStart),
              sink.count(metrics::TraceEventType::WaveEnd));
    EXPECT_EQ(sink.count(metrics::TraceEventType::Dispatch),
              report.partition_processings);
    EXPECT_EQ(sink.count(metrics::TraceEventType::MergeBarrier),
              report.partition_processings);
}

TEST(EngineTrace, TracedRunMatchesUntracedRun)
{
    const auto g = testGraph(78);
    const algorithms::Sssp sssp(0);
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    engine::DiGraphEngine plain(g, opts);
    const auto base = plain.run(sssp);

    metrics::TraceSink sink;
    opts.trace = &sink;
    engine::DiGraphEngine traced(g, opts);
    const auto withtrace = traced.run(sssp);

    EXPECT_EQ(base.final_state, withtrace.final_state);
    EXPECT_EQ(base.edge_processings, withtrace.edge_processings);
    EXPECT_EQ(base.sim_cycles, withtrace.sim_cycles);
}

TEST(EngineTrace, ReusedEngineResetsCountersBetweenRuns)
{
    const auto g = testGraph(79);
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    engine::DiGraphEngine eng(g, opts);
    const algorithms::Sssp sssp(0);
    const auto first = eng.run(sssp);
    const auto second = eng.run(sssp);
    EXPECT_EQ(first.edge_processings, second.edge_processings);
    EXPECT_EQ(first.vertex_updates, second.vertex_updates);
}

TEST(BaselineTrace, BspCounterTotalsMatchReport)
{
    const auto g = testGraph(80);
    baselines::BaselineOptions opts;
    opts.platform = smallPlatform();
    metrics::TraceSink sink;
    opts.trace = &sink;
    const algorithms::PageRank pr;
    const auto report = baselines::runBsp(g, pr, opts);
    EXPECT_GT(sink.size(), 0u);
    EXPECT_TRUE(sink.counters() ==
                metrics::CounterRegistry::fromReport(report));
    EXPECT_EQ(sink.count(metrics::TraceEventType::WaveStart),
              report.rounds);
    EXPECT_EQ(sink.count(metrics::TraceEventType::WaveEnd),
              report.rounds);
}

TEST(BaselineTrace, AsyncCounterTotalsMatchReport)
{
    const auto g = testGraph(81);
    baselines::BaselineOptions opts;
    opts.platform = smallPlatform();
    metrics::TraceSink sink;
    opts.trace = &sink;
    const algorithms::Sssp sssp(0);
    const auto result = baselines::runAsync(g, sssp, opts);
    EXPECT_GT(sink.size(), 0u);
    EXPECT_TRUE(sink.counters() ==
                metrics::CounterRegistry::fromReport(result.report));
    EXPECT_EQ(sink.count(metrics::TraceEventType::Dispatch),
              result.report.partition_processings);
}

TEST(BaselineTrace, SequentialCounterTotalsMatchReport)
{
    const auto g = testGraph(82);
    metrics::TraceSink sink;
    const algorithms::Sssp sssp(0);
    const auto result = baselines::runSequential(g, sssp, &sink);
    EXPECT_TRUE(sink.counters() ==
                metrics::CounterRegistry::fromReport(result.report));
    EXPECT_EQ(result.report.edge_processings, result.edge_processings);
    EXPECT_EQ(result.report.vertex_updates, result.vertex_updates);
    EXPECT_EQ(result.report.final_state, result.state);
    EXPECT_EQ(result.report.system, "sequential");
}

TEST(BaselineTrace, TopologicalCounterTotalsMatchReport)
{
    const auto g = testGraph(83);
    metrics::TraceSink sink;
    const algorithms::PageRank pr;
    const auto result = baselines::runTopological(g, pr, &sink);
    EXPECT_TRUE(sink.counters() ==
                metrics::CounterRegistry::fromReport(result.report));
    EXPECT_EQ(result.report.rounds, result.rounds);
    EXPECT_EQ(result.report.system, "sequential-topo");
}

} // namespace
} // namespace digraph
