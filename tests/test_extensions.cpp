/**
 * @file
 * Tests for the extension modules: Katz centrality, multi-source
 * reachability, HITS, core-number decomposition, the extra graph
 * formats, and the evolving-graph (incremental) engine.
 */

#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "algorithms/core_numbers.hpp"
#include "algorithms/hits.hpp"
#include "algorithms/katz.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reachability.hpp"
#include "algorithms/sssp.hpp"
#include "baselines/sequential.hpp"
#include "engine/evolving.hpp"
#include "common/rng.hpp"
#include "graph/builder.hpp"
#include "graph/formats.hpp"
#include "graph/io.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "test_util.hpp"

namespace digraph {
namespace {

gpusim::PlatformConfig
smallPlatform()
{
    gpusim::PlatformConfig pc;
    pc.num_devices = 2;
    pc.smx_per_device = 4;
    return pc;
}

// ---------------------------------------------------------------- Katz

TEST(Katz, ChainClosedForm)
{
    const auto g = graph::makeChain(3);
    const algorithms::Katz katz(g, 0.5, 1.0);
    const auto result = baselines::runSequential(g, katz);
    EXPECT_NEAR(result.state[0], 1.0, 1e-5);
    EXPECT_NEAR(result.state[1], 1.5, 1e-5);
    EXPECT_NEAR(result.state[2], 1.75, 1e-5);
}

TEST(Katz, EngineMatchesSequential)
{
    graph::GeneratorConfig c;
    c.num_vertices = 400;
    c.num_edges = 2400;
    c.seed = 51;
    const auto g = graph::generate(c);
    const algorithms::Katz katz(g);
    const auto ref = baselines::runSequential(g, katz);
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    engine::DiGraphEngine eng(g, opts);
    const auto report = eng.run(katz);
    test::expectStatesNear(report.final_state, ref.state,
                           katz.resultTolerance(), "katz");
}

// -------------------------------------------------------- Reachability

TEST(Reachability, BitmasksMatchBfs)
{
    graph::GeneratorConfig c;
    c.num_vertices = 300;
    c.num_edges = 1200;
    c.seed = 52;
    const auto g = graph::generate(c);
    const std::vector<VertexId> sources = {0, 17, 101};
    const algorithms::Reachability reach(sources);
    const auto result = baselines::runSequential(g, reach);
    for (std::size_t i = 0; i < sources.size(); ++i) {
        const auto dist = graph::bfsDistances(g, sources[i]);
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            EXPECT_EQ(algorithms::Reachability::reaches(result.state[v],
                                                        i),
                      dist[v] != graph::kUnreachable)
                << "source " << sources[i] << " vertex " << v;
        }
    }
}

TEST(Reachability, EngineMatchesSequential)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.03);
    const algorithms::Reachability reach({0, 5, 11, 40});
    const auto ref = baselines::runSequential(g, reach);
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    engine::DiGraphEngine eng(g, opts);
    const auto report = eng.run(reach);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(static_cast<std::uint64_t>(report.final_state[v]),
                  static_cast<std::uint64_t>(ref.state[v]))
            << "vertex " << v;
    }
}

// ----------------------------------------------------------------- HITS

TEST(Hits, HubAndAuthoritySeparateOnBipartiteStar)
{
    // Hub 0 points at authorities 1..4.
    graph::GraphBuilder b;
    for (VertexId v = 1; v <= 4; ++v)
        b.addEdge(0, v);
    const auto g = b.build();
    const auto scores = algorithms::computeHits(g);
    EXPECT_GT(scores.hub[0], 0.9);
    EXPECT_LT(scores.authority[0], 1e-6);
    for (VertexId v = 1; v <= 4; ++v) {
        EXPECT_GT(scores.authority[v], 0.1);
        EXPECT_LT(scores.hub[v], 1e-6);
    }
}

TEST(Hits, ConvergesOnRandomGraph)
{
    graph::GeneratorConfig c;
    c.num_vertices = 200;
    c.num_edges = 1200;
    c.seed = 53;
    const auto g = graph::generate(c);
    const auto scores = algorithms::computeHits(g, 200, 1e-10);
    EXPECT_LT(scores.iterations, 200u);
    double norm = 0.0;
    for (const Value a : scores.authority)
        norm += a * a;
    EXPECT_NEAR(norm, 1.0, 1e-6);
}

// -------------------------------------------------------- Core numbers

TEST(CoreNumbers, AgreeWithKCoreFixedPointForEveryK)
{
    graph::GeneratorConfig c;
    c.num_vertices = 400;
    c.num_edges = 3200;
    c.seed = 54;
    const auto g = graph::generate(c);
    const auto core = algorithms::coreNumbers(g);
    for (const unsigned k : {1u, 2u, 3u, 5u}) {
        const algorithms::KCore kcore(k);
        const auto fixed = baselines::runSequential(g, kcore);
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            EXPECT_EQ(core[v] >= k, kcore.alive(fixed.state[v]))
                << "k=" << k << " vertex " << v;
        }
    }
}

TEST(CoreNumbers, CycleAndChain)
{
    const auto cycle = algorithms::coreNumbers(graph::makeCycle(6));
    for (const auto c : cycle)
        EXPECT_EQ(c, 1u);
    const auto chain = algorithms::coreNumbers(graph::makeChain(6));
    EXPECT_EQ(chain[0], 0u);
}

// -------------------------------------------------------------- Formats

class FormatsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("digraph_fmt_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }
    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }
    std::filesystem::path dir_;
};

TEST_F(FormatsTest, MatrixMarketRoundTrip)
{
    graph::GeneratorConfig c;
    c.num_vertices = 80;
    c.num_edges = 400;
    c.seed = 55;
    const auto g = graph::generate(c);
    graph::saveMatrixMarket(g, path("g.mtx"));
    const auto h = graph::loadMatrixMarket(path("g.mtx"));
    EXPECT_EQ(h.numVertices(), g.numVertices());
    EXPECT_EQ(h.numEdges(), g.numEdges());
}

TEST_F(FormatsTest, MatrixMarketSymmetricPattern)
{
    std::ofstream out(path("s.mtx"));
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
    out << "% a comment\n";
    out << "3 3 2\n";
    out << "2 1\n";
    out << "3 2\n";
    out.close();
    const auto g = graph::loadMatrixMarket(path("s.mtx"));
    EXPECT_EQ(g.numEdges(), 4u); // each entry mirrored
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_TRUE(g.hasEdge(0, 1));
}

TEST_F(FormatsTest, MetisAdjacency)
{
    std::ofstream out(path("m.graph"));
    out << "3 3\n";   // 3 vertices, 3 edges (METIS counts undirected)
    out << "2 3\n";   // vertex 1 -> {2,3}
    out << "1\n";     // vertex 2 -> {1}
    out << "\n";      // vertex 3 -> {}
    out.close();
    const auto g = graph::loadMetis(path("m.graph"));
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(0, 2));
    EXPECT_TRUE(g.hasEdge(1, 0));
}

TEST_F(FormatsTest, DimacsArcs)
{
    std::ofstream out(path("d.gr"));
    out << "c shortest-path instance\n";
    out << "p sp 4 3\n";
    out << "a 1 2 5\n";
    out << "a 2 3 7\n";
    out << "a 3 4 2\n";
    out.close();
    const auto g = graph::loadDimacs(path("d.gr"));
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.edgeWeight(0), 5.0);
}

TEST_F(FormatsTest, LoadAnyDispatchesOnExtension)
{
    const auto g = graph::makeChain(5);
    graph::saveMatrixMarket(g, path("x.mtx"));
    EXPECT_EQ(graph::loadAnyFormat(path("x.mtx")).numEdges(), 4u);
    graph::saveEdgeListText(g, path("x.txt"));
    EXPECT_EQ(graph::loadAnyFormat(path("x.txt")).numEdges(), 4u);
}

// ---------------------------------------------------- Evolving engine

TEST(EvolvingEngine, WarmSsspMatchesColdAfterInsertions)
{
    graph::GeneratorConfig c;
    c.num_vertices = 500;
    c.num_edges = 2500;
    c.seed = 56;
    auto initial = graph::generate(c);

    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    engine::EvolvingEngine evolving(graph::generate(c), opts);
    const algorithms::Sssp sssp(0);
    evolving.run(sssp);

    // Shortcut edges that definitely change some distances.
    std::vector<graph::Edge> batch = {
        {0, 400, 0.5}, {0, 450, 0.25}, {10, 499, 1.0}};
    const auto step = evolving.insertAndRun(sssp, batch);
    EXPECT_TRUE(step.warm);
    EXPECT_EQ(evolving.batchesApplied(), 1u);

    const auto cold = baselines::runSequential(evolving.graph(), sssp);
    test::expectStatesNear(step.run.final_state, cold.state, 1e-9,
                           "evolving sssp");
}

TEST(EvolvingEngine, WarmKatzMatchesCold)
{
    graph::GeneratorConfig c;
    c.num_vertices = 400;
    c.num_edges = 2000;
    c.seed = 57;
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    engine::EvolvingEngine evolving(graph::generate(c), opts);
    const algorithms::Katz katz(evolving.graph(), 1e-3);
    evolving.run(katz);

    std::vector<graph::Edge> batch;
    SplitMix64 rng(58);
    for (int i = 0; i < 20; ++i) {
        batch.push_back({static_cast<VertexId>(rng.nextBounded(400)),
                         static_cast<VertexId>(rng.nextBounded(400)),
                         1.0});
    }
    const auto step = evolving.insertAndRun(katz, batch);
    EXPECT_TRUE(step.warm);

    const auto cold = baselines::runSequential(evolving.graph(), katz);
    test::expectStatesNear(step.run.final_state, cold.state,
                           katz.resultTolerance(), "evolving katz");
}

TEST(EvolvingEngine, WarmRunTouchesLessWorkThanCold)
{
    graph::GeneratorConfig c;
    c.num_vertices = 2000;
    c.num_edges = 10000;
    c.seed = 59;
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    engine::EvolvingEngine evolving(graph::generate(c), opts);
    const algorithms::Sssp sssp(0);
    const auto cold = evolving.run(sssp);
    const auto step =
        evolving.insertAndRun(sssp, {{1500, 1600, 3.0}});
    EXPECT_TRUE(step.warm);
    EXPECT_LT(step.run.edge_processings,
              cold.run.edge_processings / 2)
        << "incremental run must touch far fewer edges";
}

TEST(EvolvingEngine, NonIncrementalAlgorithmsFallBackCold)
{
    graph::GeneratorConfig c;
    c.num_vertices = 300;
    c.num_edges = 1500;
    c.seed = 60;
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    engine::EvolvingEngine evolving(graph::generate(c), opts);
    const algorithms::PageRank pr;
    evolving.run(pr);
    const auto step = evolving.insertAndRun(pr, {{5, 250, 1.0}});
    EXPECT_FALSE(step.warm) << "PageRank must fall back to a cold run";
    const auto cold = baselines::runSequential(evolving.graph(), pr);
    test::expectStatesNear(step.run.final_state, cold.state,
                           pr.resultTolerance(), "evolving pagerank");
}

TEST(EvolvingEngine, DuplicateInsertionsAreIgnored)
{
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    engine::EvolvingEngine evolving(graph::makeChain(10), opts);
    const algorithms::Sssp sssp(0);
    evolving.run(sssp);
    const auto before = evolving.graph().numEdges();
    evolving.insertAndRun(sssp, {{0, 1, 1.0}, {3, 3, 1.0}});
    EXPECT_EQ(evolving.graph().numEdges(), before);
}

TEST(EvolvingEngine, IntraBatchDuplicatesCollapseToOneEdge)
{
    // A batch repeating the same new (src, dst) pair must behave as if
    // the pair appeared once: one edge added, warm result == cold.
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    engine::EvolvingEngine evolving(graph::makeChain(20), opts);
    const algorithms::Sssp sssp(0);
    evolving.run(sssp);
    const auto before = evolving.graph().numEdges();
    const auto step = evolving.insertAndRun(
        sssp, {{2, 15, 0.5}, {2, 15, 9.0}, {2, 15, 0.5}});
    EXPECT_EQ(evolving.graph().numEdges(), before + 1);
    const auto &g = evolving.graph();
    const auto nbrs = g.outNeighbors(2);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
        if (nbrs[k] == 15) {
            EXPECT_EQ(g.edgeWeight(g.outEdgeId(2, k)), 0.5)
                << "first occurrence in the batch wins";
        }
    }
    EXPECT_TRUE(step.warm);
    const auto cold = baselines::runSequential(evolving.graph(), sssp);
    test::expectStatesNear(step.run.final_state, cold.state, 1e-9,
                           "evolving duplicate batch");
}

} // namespace
} // namespace digraph
