/**
 * @file
 * End-to-end integration tests on the dataset stand-ins: every system
 * reaches the reference fixed point on every benchmark algorithm, and
 * the headline metric relationships the paper reports hold in aggregate
 * (DiGraph needs fewer PageRank updates than the BSP baseline, the BSP
 * baseline pays one round per propagation hop, and so on).
 */

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "baselines/async_engine.hpp"
#include "baselines/bsp_engine.hpp"
#include "baselines/sequential.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "test_util.hpp"

namespace digraph {
namespace {

constexpr double kScale = 0.04;

gpusim::PlatformConfig
platform()
{
    gpusim::PlatformConfig pc;
    pc.num_devices = 4;
    return pc;
}

class DatasetIntegration
    : public ::testing::TestWithParam<graph::Dataset>
{};

TEST_P(DatasetIntegration, AllSystemsMatchReference)
{
    const auto g = graph::makeDataset(GetParam(), kScale);
    engine::EngineOptions eopts;
    eopts.platform = platform();
    engine::DiGraphEngine engine(g, eopts);

    for (const auto &name : algorithms::benchmarkNames()) {
        const auto algo = algorithms::makeAlgorithm(name, g);
        const auto ref = baselines::runSequential(g, *algo);
        const double tol = algo->resultTolerance();

        const auto dig = engine.run(*algo);
        test::expectStatesNear(dig.final_state, ref.state, tol,
                               "digraph/" + name);

        baselines::BaselineOptions bopts;
        bopts.platform = platform();
        const auto bsp = baselines::runBsp(g, *algo, bopts);
        test::expectStatesNear(bsp.final_state, ref.state, tol,
                               "bsp/" + name);

        const auto async = baselines::runAsync(g, *algo, bopts);
        test::expectStatesNear(async.report.final_state, ref.state, tol,
                               "async/" + name);
    }
}

TEST_P(DatasetIntegration, DiGraphNeedsFewerPagerankUpdatesThanBsp)
{
    const auto g = graph::makeDataset(GetParam(), kScale);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);

    engine::EngineOptions eopts;
    eopts.platform = platform();
    engine::DiGraphEngine engine(g, eopts);
    const auto dig = engine.run(*algo);

    baselines::BaselineOptions bopts;
    bopts.platform = platform();
    const auto bsp = baselines::runBsp(g, *algo, bopts);

    // At this tiny test scale the update advantage can flatten out on
    // the sparsest graphs, but it must never blow up, and the simulated
    // processing time must stay ahead (the headline Fig 10 direction).
    EXPECT_LT(dig.vertex_updates, bsp.vertex_updates * 3 / 2)
        << graph::datasetName(GetParam());
    EXPECT_LT(dig.sim_cycles, bsp.sim_cycles)
        << graph::datasetName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetIntegration,
    ::testing::ValuesIn(graph::allDatasets()),
    [](const ::testing::TestParamInfo<graph::Dataset> &info) {
        return graph::datasetName(info.param);
    });

TEST(IntegrationShape, AblationOrderingOnWebLikeGraph)
{
    // DiGraph <= DiGraph-t in updates: the path-based model's chaining
    // must not do worse than the traditional snapshot model on the same
    // infrastructure (Fig 6's direction).
    const auto g = graph::makeDataset(graph::Dataset::cnr, 0.08);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);

    engine::EngineOptions path_opts;
    path_opts.platform = platform();
    engine::DiGraphEngine path_engine(g, path_opts);
    const auto path_run = path_engine.run(*algo);

    engine::EngineOptions trad_opts;
    trad_opts.platform = platform();
    trad_opts.mode = engine::ExecutionMode::VertexAsync;
    engine::DiGraphEngine trad_engine(g, trad_opts);
    const auto trad_run = trad_engine.run(*algo);

    EXPECT_LE(path_run.vertex_updates, trad_run.vertex_updates);
    EXPECT_LE(path_run.sim_cycles, trad_run.sim_cycles * 1.1);
}

TEST(IntegrationShape, ScalingReducesProcessingTime)
{
    const auto g = graph::makeDataset(graph::Dataset::webbase, 0.1);
    const auto algo = algorithms::makeAlgorithm("pagerank", g);
    double one_gpu = 0.0, four_gpu = 0.0;
    for (const unsigned gpus : {1u, 4u}) {
        engine::EngineOptions opts;
        opts.platform = platform();
        opts.platform.num_devices = gpus;
        engine::DiGraphEngine engine(g, opts);
        const double cycles = engine.run(*algo).sim_cycles;
        (gpus == 1 ? one_gpu : four_gpu) = cycles;
    }
    EXPECT_LT(four_gpu, one_gpu)
        << "four GPUs must beat one (Fig 16's direction)";
}

TEST(IntegrationShape, BidirectionalSweepStaysCorrect)
{
    // Fig 14 setup: as reverse edges are added the engine must stay
    // correct, even at 100% where the DAG dispatching degenerates.
    const auto base = graph::makeDataset(graph::Dataset::webbase, 0.04);
    for (const double ratio : {0.6, 1.0}) {
        const auto g = graph::withBidirectionalRatio(base, ratio);
        const auto algo = algorithms::makeAlgorithm("pagerank", g);
        const auto ref = baselines::runSequential(g, *algo);
        engine::EngineOptions opts;
        opts.platform = platform();
        engine::DiGraphEngine engine(g, opts);
        const auto report = engine.run(*algo);
        test::expectStatesNear(report.final_state, ref.state,
                               algo->resultTolerance(),
                               "bidir" + std::to_string(ratio));
    }
}

} // namespace
} // namespace digraph
