/**
 * @file
 * Unit tests for the PathSet container itself: slicing, heads/tails,
 * inner-vertex flags, replica counts, average degree, reordering, and
 * validation failure modes.
 */

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "partition/path_set.hpp"

namespace digraph::partition {
namespace {

/** 0->1->2->3 plus 2->4: two explicit paths (0,1,2,3) and (2,4). */
struct Fixture
{
    graph::DirectedGraph g;
    PathSet paths;

    Fixture()
    {
        graph::GraphBuilder b;
        b.addEdge(0, 1);
        b.addEdge(1, 2);
        b.addEdge(2, 3);
        b.addEdge(2, 4);
        g = b.build();

        auto eid = [this](VertexId s, VertexId t) {
            const auto nbrs = g.outNeighbors(s);
            for (std::size_t k = 0; k < nbrs.size(); ++k) {
                if (nbrs[k] == t)
                    return g.outEdgeId(s, k);
            }
            return kInvalidEdge;
        };
        paths.beginPath(0);
        paths.extend(1, eid(0, 1));
        paths.extend(2, eid(1, 2));
        paths.extend(3, eid(2, 3));
        paths.beginPath(2);
        paths.extend(4, eid(2, 4));
    }
};

TEST(PathSet, BasicAccessors)
{
    Fixture f;
    ASSERT_EQ(f.paths.numPaths(), 2u);
    EXPECT_EQ(f.paths.numEdges(), 4u);
    EXPECT_EQ(f.paths.pathLength(0), 3u);
    EXPECT_EQ(f.paths.pathLength(1), 1u);
    EXPECT_EQ(f.paths.head(0), 0u);
    EXPECT_EQ(f.paths.tail(0), 3u);
    EXPECT_EQ(f.paths.head(1), 2u);
    EXPECT_EQ(f.paths.tail(1), 4u);
    EXPECT_DOUBLE_EQ(f.paths.avgLength(), 2.0);
    EXPECT_TRUE(f.paths.validate(f.g));
}

TEST(PathSet, VertexAndEdgeSlices)
{
    Fixture f;
    const auto verts = f.paths.pathVertices(0);
    ASSERT_EQ(verts.size(), 4u);
    EXPECT_EQ(verts[2], 2u);
    const auto edges = f.paths.pathEdges(0);
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(f.g.edgeSource(edges[1]), 1u);
    EXPECT_EQ(f.g.edgeTarget(edges[1]), 2u);
    const auto edges1 = f.paths.pathEdges(1);
    ASSERT_EQ(edges1.size(), 1u);
    EXPECT_EQ(f.g.edgeTarget(edges1[0]), 4u);
}

TEST(PathSet, InnerVertexFlags)
{
    Fixture f;
    const auto inner = f.paths.innerVertexFlags(f.g.numVertices());
    EXPECT_FALSE(inner[0]); // head of p0
    EXPECT_TRUE(inner[1]);
    EXPECT_TRUE(inner[2]); // inner on p0, head on p1
    EXPECT_FALSE(inner[3]);
    EXPECT_FALSE(inner[4]);
}

TEST(PathSet, ReplicaCounts)
{
    Fixture f;
    const auto counts = f.paths.replicaCounts(f.g.numVertices());
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[2], 2u); // occurs on both paths
    EXPECT_EQ(counts[4], 1u);
}

TEST(PathSet, AvgDegreeAlongPath)
{
    Fixture f;
    // Path 1 = (2, 4): degree(2) = 1 in + 2 out = 3, degree(4) = 1.
    EXPECT_DOUBLE_EQ(f.paths.avgDegree(1, f.g), 2.0);
}

TEST(PathSet, ReorderedPermutesPaths)
{
    Fixture f;
    const auto swapped = f.paths.reordered({1, 0});
    ASSERT_EQ(swapped.numPaths(), 2u);
    EXPECT_EQ(swapped.head(0), 2u);
    EXPECT_EQ(swapped.pathLength(0), 1u);
    EXPECT_EQ(swapped.head(1), 0u);
    EXPECT_TRUE(swapped.validate(f.g));
}

TEST(PathSet, ValidateCatchesMissingEdges)
{
    Fixture f;
    PathSet partial;
    partial.beginPath(0);
    partial.extend(1, 0);
    EXPECT_FALSE(partial.validate(f.g)) << "missing coverage";
}

TEST(PathSet, ValidateCatchesWrongEndpoints)
{
    Fixture f;
    PathSet wrong;
    wrong.beginPath(1); // edge 0 actually starts at 0
    wrong.extend(2, 0);
    wrong.beginPath(1);
    wrong.extend(2, 1);
    wrong.beginPath(2);
    wrong.extend(3, 2);
    wrong.beginPath(2);
    wrong.extend(4, 3);
    EXPECT_FALSE(wrong.validate(f.g));
}

TEST(PathSet, ValidateCatchesDuplicateEdges)
{
    Fixture f;
    PathSet dup;
    dup.beginPath(0);
    dup.extend(1, 0);
    dup.beginPath(0);
    dup.extend(1, 0); // same edge twice
    dup.beginPath(2);
    dup.extend(3, 2);
    dup.beginPath(2);
    dup.extend(4, 3);
    EXPECT_FALSE(dup.validate(f.g));
}

TEST(PathSet, EmptySetValidatesOnlyEmptyGraphs)
{
    PathSet empty;
    EXPECT_EQ(empty.numPaths(), 0u);
    EXPECT_EQ(empty.numEdges(), 0u);
    EXPECT_EQ(empty.avgLength(), 0.0);
    EXPECT_TRUE(empty.validate(graph::DirectedGraph{}));
    Fixture f;
    EXPECT_FALSE(empty.validate(f.g));
}

} // namespace
} // namespace digraph::partition
