/**
 * @file
 * Tests for text and binary graph IO round trips.
 */

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace digraph::graph {
namespace {

class IoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("digraph_io_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

TEST_F(IoTest, TextRoundTrip)
{
    GeneratorConfig c;
    c.num_vertices = 100;
    c.num_edges = 600;
    c.seed = 4;
    const auto g = generate(c);
    saveEdgeListText(g, path("g.txt"));
    const auto h = loadEdgeListText(path("g.txt"));
    EXPECT_EQ(h.numVertices(), g.numVertices());
    EXPECT_EQ(h.numEdges(), g.numEdges());
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        EXPECT_EQ(h.edgeSource(e), g.edgeSource(e));
        EXPECT_EQ(h.edgeTarget(e), g.edgeTarget(e));
        EXPECT_NEAR(h.edgeWeight(e), g.edgeWeight(e), 1e-4);
    }
}

TEST_F(IoTest, BinaryRoundTripIsExact)
{
    GeneratorConfig c;
    c.num_vertices = 150;
    c.num_edges = 900;
    c.seed = 5;
    const auto g = generate(c);
    saveBinary(g, path("g.bin"));
    const auto h = loadBinary(path("g.bin"));
    EXPECT_EQ(h.edgeList(), g.edgeList());
    EXPECT_EQ(h.numVertices(), g.numVertices());
}

TEST_F(IoTest, TextLoaderSkipsCommentsAndDefaultsWeight)
{
    std::ofstream out(path("c.txt"));
    out << "# comment line\n";
    out << "% another comment\n";
    out << "0 1\n";
    out << "1 2 3.5\n";
    out.close();
    const auto g = loadEdgeListText(path("c.txt"));
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.edgeWeight(0), 1.0);
    EXPECT_EQ(g.edgeWeight(1), 3.5);
}

TEST_F(IoTest, EmptyGraphRoundTrips)
{
    const DirectedGraph g;
    saveBinary(g, path("empty.bin"));
    const auto h = loadBinary(path("empty.bin"));
    EXPECT_EQ(h.numEdges(), 0u);
}

TEST_F(IoTest, UnweightedLineWithTrailingJunkKeepsDefaultWeight)
{
    // A trailing non-numeric token used to value-initialize the weight
    // to 0 (C++11 num_get) instead of leaving the 1.0 default.
    std::ofstream out(path("junk.txt"));
    out << "0 1 x\n";
    out << "1 2\t# trailing comment\n";
    out << "2 3 2.5\n";
    out.close();
    const auto g = loadEdgeListText(path("junk.txt"));
    ASSERT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.edgeWeight(0), 1.0);
    EXPECT_EQ(g.edgeWeight(1), 1.0);
    EXPECT_EQ(g.edgeWeight(2), 2.5);
}

TEST_F(IoTest, MissingDestinationLineIsSkipped)
{
    std::ofstream out(path("short.txt"));
    out << "0 1\n";
    out << "5\n"; // source without a destination
    out << "1 2\n";
    out.close();
    const auto g = loadEdgeListText(path("short.txt"));
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST_F(IoTest, UnweightedTextRoundTripKeepsWeightOne)
{
    GraphBuilder b;
    b.addEdge(0, 1, 1.0);
    b.addEdge(1, 2, 1.0);
    const auto g = b.build();
    // Write without a weight column, as SNAP-style datasets do.
    std::ofstream out(path("unw.txt"));
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        out << g.edgeSource(e) << ' ' << g.edgeTarget(e) << '\n';
    out.close();
    const auto h = loadEdgeListText(path("unw.txt"));
    ASSERT_EQ(h.numEdges(), g.numEdges());
    for (EdgeId e = 0; e < h.numEdges(); ++e)
        EXPECT_EQ(h.edgeWeight(e), 1.0);
}

TEST_F(IoTest, NegativeVertexIdIsFatal)
{
    std::ofstream out(path("neg.txt"));
    out << "0 1\n";
    out << "-3 2\n";
    out.close();
    EXPECT_EXIT(loadEdgeListText(path("neg.txt")),
                ::testing::ExitedWithCode(1), "negative vertex id");
}

TEST_F(IoTest, OverflowingVertexIdIsFatal)
{
    // 5e9 wraps to a small positive id through a blind 32-bit cast; the
    // loader must reject it instead.
    std::ofstream out(path("big.txt"));
    out << "0 5000000000\n";
    out.close();
    EXPECT_EXIT(loadEdgeListText(path("big.txt")),
                ::testing::ExitedWithCode(1), "overflows 32-bit");
}

TEST_F(IoTest, SelfLoopAndDuplicateFloodCollapses)
{
    std::ofstream out(path("flood.txt"));
    out << "1 1\n"; // self loop: dropped
    for (int i = 0; i < 50; ++i)
        out << "0 1 " << i << ".0\n"; // duplicates keep the first weight
    out.close();
    const auto g = loadEdgeListText(path("flood.txt"));
    ASSERT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.edgeSource(0), 0u);
    EXPECT_EQ(g.edgeTarget(0), 1u);
    EXPECT_EQ(g.edgeWeight(0), 0.0);
}

TEST_F(IoTest, BinaryRejectsTruncatedHeader)
{
    // A file that dies inside the 32-byte header, not the edge records.
    std::ofstream out(path("hdr.bin"), std::ios::binary);
    const std::uint64_t magic = 0x44694772'61424947ULL;
    out.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    out.close();
    EXPECT_EXIT(loadBinary(path("hdr.bin")),
                ::testing::ExitedWithCode(1), "not a DiGraph binary");
}

TEST_F(IoTest, BinaryRejectsVersionMismatch)
{
    GeneratorConfig c;
    c.num_vertices = 10;
    c.num_edges = 20;
    c.seed = 6;
    saveBinary(generate(c), path("v.bin"));
    // Corrupt the version field (second u64) in place.
    std::fstream f(path("v.bin"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(sizeof(std::uint64_t));
    const std::uint64_t bogus = 999;
    f.write(reinterpret_cast<const char *>(&bogus), sizeof(bogus));
    f.close();
    EXPECT_EXIT(loadBinary(path("v.bin")),
                ::testing::ExitedWithCode(1), "format version");
}

TEST_F(IoTest, BinaryRejectsTruncatedFile)
{
    GeneratorConfig c;
    c.num_vertices = 10;
    c.num_edges = 20;
    c.seed = 7;
    saveBinary(generate(c), path("t.bin"));
    const auto full = std::filesystem::file_size(path("t.bin"));
    std::filesystem::resize_file(path("t.bin"), full - 6);
    EXPECT_EXIT(loadBinary(path("t.bin")),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST_F(IoTest, BinaryRejectsWrongMagic)
{
    std::ofstream out(path("m.bin"), std::ios::binary);
    const std::uint64_t junk[4] = {0xdeadbeefULL, 2, 0, 0};
    out.write(reinterpret_cast<const char *>(junk), sizeof(junk));
    out.close();
    EXPECT_EXIT(loadBinary(path("m.bin")),
                ::testing::ExitedWithCode(1), "not a DiGraph binary");
}

TEST_F(IoTest, SaveBinaryFailsLoudlyOnBadPath)
{
    GeneratorConfig c;
    c.num_vertices = 4;
    c.num_edges = 6;
    c.seed = 8;
    EXPECT_EXIT(
        saveBinary(generate(c), (dir_ / "nodir" / "g.bin").string()),
        ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace digraph::graph
