/**
 * @file
 * Tests for text and binary graph IO round trips.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace digraph::graph {
namespace {

class IoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("digraph_io_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

TEST_F(IoTest, TextRoundTrip)
{
    GeneratorConfig c;
    c.num_vertices = 100;
    c.num_edges = 600;
    c.seed = 4;
    const auto g = generate(c);
    saveEdgeListText(g, path("g.txt"));
    const auto h = loadEdgeListText(path("g.txt"));
    EXPECT_EQ(h.numVertices(), g.numVertices());
    EXPECT_EQ(h.numEdges(), g.numEdges());
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        EXPECT_EQ(h.edgeSource(e), g.edgeSource(e));
        EXPECT_EQ(h.edgeTarget(e), g.edgeTarget(e));
        EXPECT_NEAR(h.edgeWeight(e), g.edgeWeight(e), 1e-4);
    }
}

TEST_F(IoTest, BinaryRoundTripIsExact)
{
    GeneratorConfig c;
    c.num_vertices = 150;
    c.num_edges = 900;
    c.seed = 5;
    const auto g = generate(c);
    saveBinary(g, path("g.bin"));
    const auto h = loadBinary(path("g.bin"));
    EXPECT_EQ(h.edgeList(), g.edgeList());
    EXPECT_EQ(h.numVertices(), g.numVertices());
}

TEST_F(IoTest, TextLoaderSkipsCommentsAndDefaultsWeight)
{
    std::ofstream out(path("c.txt"));
    out << "# comment line\n";
    out << "% another comment\n";
    out << "0 1\n";
    out << "1 2 3.5\n";
    out.close();
    const auto g = loadEdgeListText(path("c.txt"));
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.edgeWeight(0), 1.0);
    EXPECT_EQ(g.edgeWeight(1), 3.5);
}

TEST_F(IoTest, EmptyGraphRoundTrips)
{
    const DirectedGraph g;
    saveBinary(g, path("empty.bin"));
    const auto h = loadBinary(path("empty.bin"));
    EXPECT_EQ(h.numEdges(), 0u);
}

} // namespace
} // namespace digraph::graph
