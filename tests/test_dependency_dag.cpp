/**
 * @file
 * Tests for the path dependency graph and the DAG sketch: dependency-edge
 * semantics on hand-built cases, equivalence of the star construction
 * with the quadratic product, acyclicity and layer monotonicity of the
 * sketch, and serial/parallel construction equivalence.
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/builder.hpp"
#include "graph/scc.hpp"
#include "graph/traversal.hpp"
#include "partition/dag_sketch.hpp"
#include "partition/decomposer.hpp"
#include "partition/dependency.hpp"
#include "partition/merger.hpp"

namespace digraph::partition {
namespace {

PathSet
pathsFor(const graph::DirectedGraph &g)
{
    const SccRegions regions(g);
    auto raw = decompose(g, {}, nullptr, &regions);
    return mergePaths(raw, g, {}, &regions).paths;
}

TEST(DependencyGraph, ProducerConsumerEdge)
{
    // Two explicit paths: p0 = 0->1->2, p1 = 2->3. p0 produces vertex 2
    // (in-edge on p0), p1 consumes it (out-edge on p1): dep p0 -> p1.
    graph::GraphBuilder b;
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    b.addEdge(2, 3);
    const auto g = b.build();
    const auto paths = pathsFor(g);
    const auto dep = buildDependencyGraph(paths, g);
    // With merging, the whole thing may be one path (no dependencies).
    if (paths.numPaths() == 2) {
        EXPECT_EQ(dep.numEdges(), 1u);
        EXPECT_TRUE(dep.hasEdge(0, 1) || dep.hasEdge(1, 0));
    } else {
        EXPECT_EQ(paths.numPaths(), 1u);
        EXPECT_EQ(dep.numEdges(), 0u);
    }
}

TEST(DependencyGraph, StarConstructionPreservesSccStructure)
{
    graph::GeneratorConfig c;
    c.num_vertices = 500;
    c.num_edges = 4000;
    c.degree_skew = 2.5; // strong hubs -> large producer/consumer sets
    c.scc_core_fraction = 0.5;
    c.seed = 13;
    const auto g = graph::generate(c);
    const auto paths = pathsFor(g);

    DependencyOptions quadratic;
    quadratic.fanout_cap = 1u << 30; // force the direct product
    DependencyOptions starred;
    starred.fanout_cap = 4; // force stars nearly everywhere

    const auto dep_q = buildDependencyGraph(paths, g, quadratic);
    const auto dep_s = buildDependencyGraph(paths, g, starred);

    const auto sketch_q = buildDagSketch(dep_q, paths.numPaths());
    const auto sketch_s = buildDagSketch(dep_s, paths.numPaths());

    // The SCC *partition of paths* must be identical: same pairs of
    // paths grouped together.
    ASSERT_EQ(sketch_q.scc_of_path.size(), sketch_s.scc_of_path.size());
    std::map<std::pair<SccId, SccId>, int> pairing;
    for (PathId p = 0; p < paths.numPaths(); ++p) {
        for (PathId q = p + 1; q < std::min<PathId>(paths.numPaths(),
                                                    p + 50);
             ++q) {
            EXPECT_EQ(sketch_q.scc_of_path[p] == sketch_q.scc_of_path[q],
                      sketch_s.scc_of_path[p] == sketch_s.scc_of_path[q])
                << "paths " << p << "," << q;
        }
    }
}

TEST(DagSketch, SketchIsAcyclicWithMonotoneLayers)
{
    graph::GeneratorConfig c;
    c.num_vertices = 600;
    c.num_edges = 3600;
    c.scc_core_fraction = 0.4;
    for (const std::uint64_t seed : {3u, 7u, 9u}) {
        c.seed = seed;
        const auto g = graph::generate(c);
        const auto paths = pathsFor(g);
        const auto dep = buildDependencyGraph(paths, g);
        const auto sketch = buildDagSketch(dep, paths.numPaths());
        EXPECT_TRUE(graph::isAcyclic(sketch.sketch)) << "seed " << seed;
        for (EdgeId e = 0; e < sketch.sketch.numEdges(); ++e) {
            EXPECT_LT(sketch.layer[sketch.sketch.edgeSource(e)],
                      sketch.layer[sketch.sketch.edgeTarget(e)]);
        }
    }
}

TEST(DagSketch, PathsInSccPartitionAllPaths)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.05);
    const auto paths = pathsFor(g);
    const auto dep = buildDependencyGraph(paths, g);
    const auto sketch = buildDagSketch(dep, paths.numPaths());
    std::size_t total = 0;
    for (const auto &members : sketch.paths_in_scc)
        total += members.size();
    EXPECT_EQ(total, paths.numPaths());
    EXPECT_GT(sketch.giantSccPathFraction(), 0.0);
    EXPECT_LE(sketch.giantSccPathFraction(), 1.0);
    EXPECT_GE(sketch.numLayers(), 1u);
}

TEST(DagSketch, ParallelConstructionMatchesSerial)
{
    graph::GeneratorConfig c;
    c.num_vertices = 400;
    c.num_edges = 2400;
    c.scc_core_fraction = 0.5;
    c.seed = 21;
    const auto g = graph::generate(c);
    const auto paths = pathsFor(g);
    const auto dep = buildDependencyGraph(paths, g);

    const auto serial = buildDagSketch(dep, paths.numPaths(), 1);
    for (const unsigned threads : {2u, 4u, 7u}) {
        const auto parallel =
            buildDagSketch(dep, paths.numPaths(), threads);
        ASSERT_EQ(parallel.num_sccs, serial.num_sccs)
            << threads << " threads";
        // Components may be numbered differently; compare the induced
        // partition of paths.
        std::map<SccId, SccId> mapping;
        for (PathId p = 0; p < paths.numPaths(); ++p) {
            const SccId a = serial.scc_of_path[p];
            const SccId b = parallel.scc_of_path[p];
            const auto it = mapping.find(a);
            if (it == mapping.end())
                mapping[a] = b;
            else
                EXPECT_EQ(it->second, b) << "path " << p;
        }
    }
}

TEST(DagSketch, CycleGraphHasOnePathScc)
{
    const auto g = graph::makeCycle(30);
    const auto paths = pathsFor(g);
    const auto dep = buildDependencyGraph(paths, g);
    const auto sketch = buildDagSketch(dep, paths.numPaths());
    if (paths.numPaths() > 1) {
        EXPECT_DOUBLE_EQ(sketch.giantSccPathFraction(), 1.0)
            << "all paths of a cycle depend on each other";
    }
}

TEST(DagSketch, DagPathsGetDistinctLayers)
{
    const auto g = graph::makeChain(64);
    DecomposeOptions o;
    o.d_max = 8;
    const auto raw = decompose(g, o);
    // No merge: keep the segments so layers are visible.
    const auto dep = buildDependencyGraph(raw, g);
    const auto sketch = buildDagSketch(dep, raw.numPaths());
    EXPECT_GE(sketch.numLayers(), 7u);
    EXPECT_TRUE(graph::isAcyclic(sketch.sketch));
}

} // namespace
} // namespace digraph::partition
