/**
 * @file
 * Unit tests for the graph substrate: builder semantics (sorting, dedup,
 * self-loop removal), CSR accessors, and the transforms (reverse,
 * relabel, induced subgraph, bidirectional augmentation).
 */

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/transform.hpp"

namespace digraph::graph {
namespace {

DirectedGraph
diamond()
{
    GraphBuilder b;
    b.addEdge(0, 1, 1.0);
    b.addEdge(0, 2, 2.0);
    b.addEdge(1, 3, 3.0);
    b.addEdge(2, 3, 4.0);
    return b.build();
}

TEST(GraphBuilder, BuildsSortedCsr)
{
    GraphBuilder b;
    b.addEdge(1, 0);
    b.addEdge(0, 2);
    b.addEdge(0, 1);
    const auto g = b.build();
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    const auto nbrs = g.outNeighbors(0);
    ASSERT_EQ(nbrs.size(), 2u);
    EXPECT_EQ(nbrs[0], 1u);
    EXPECT_EQ(nbrs[1], 2u);
}

TEST(GraphBuilder, RemovesSelfLoopsByDefault)
{
    GraphBuilder b;
    b.addEdge(0, 0);
    b.addEdge(0, 1);
    EXPECT_EQ(b.build().numEdges(), 1u);
}

TEST(GraphBuilder, KeepsSelfLoopsWhenAsked)
{
    GraphBuilder b;
    b.setRemoveSelfLoops(false);
    b.addEdge(0, 0);
    b.addEdge(0, 1);
    EXPECT_EQ(b.build().numEdges(), 2u);
}

TEST(GraphBuilder, DeduplicatesKeepingFirstWeight)
{
    GraphBuilder b;
    b.addEdge(0, 1, 5.0);
    b.addEdge(0, 1, 9.0);
    const auto g = b.build();
    ASSERT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.edgeWeight(0), 5.0);
}

TEST(GraphBuilder, VertexCountHintKeepsIsolatedVertices)
{
    GraphBuilder b(10);
    b.addEdge(0, 1);
    EXPECT_EQ(b.build().numVertices(), 10u);
}

TEST(DirectedGraph, DegreesAndEdgeAccessors)
{
    const auto g = diamond();
    EXPECT_EQ(g.outDegree(0), 2u);
    EXPECT_EQ(g.inDegree(0), 0u);
    EXPECT_EQ(g.inDegree(3), 2u);
    EXPECT_EQ(g.degree(1), 2u);
    EXPECT_TRUE(g.hasEdge(0, 2));
    EXPECT_FALSE(g.hasEdge(2, 0));
    // edge ids follow (src, dst) sorted order
    EXPECT_EQ(g.edgeSource(0), 0u);
    EXPECT_EQ(g.edgeTarget(0), 1u);
    EXPECT_EQ(g.edgeWeight(3), 4.0);
}

TEST(DirectedGraph, InCsrMirrorsOutEdges)
{
    const auto g = diamond();
    const auto preds = g.inNeighbors(3);
    ASSERT_EQ(preds.size(), 2u);
    // In-edge ids map back to out-edge ids with matching weights.
    for (std::size_t k = 0; k < preds.size(); ++k) {
        const EdgeId e = g.inEdgeId(3, k);
        EXPECT_EQ(g.edgeTarget(e), 3u);
        EXPECT_EQ(g.edgeSource(e), preds[k]);
    }
}

TEST(DirectedGraph, EdgeListRoundTrips)
{
    const auto g = diamond();
    GraphBuilder b;
    b.addEdges(g.edgeList());
    const auto h = b.build();
    EXPECT_EQ(h.numEdges(), g.numEdges());
    EXPECT_EQ(h.edgeList(), g.edgeList());
}

TEST(DirectedGraph, EmptyGraphIsWellFormed)
{
    const DirectedGraph g;
    EXPECT_EQ(g.numVertices(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_GE(DirectedGraph().storageBytes(), 0u);
}

TEST(Transform, ReverseFlipsEveryEdge)
{
    const auto g = diamond();
    const auto r = reverse(g);
    EXPECT_EQ(r.numEdges(), g.numEdges());
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        EXPECT_TRUE(r.hasEdge(g.edgeTarget(e), g.edgeSource(e)));
    EXPECT_EQ(r.inDegree(0), 2u);
}

TEST(Transform, RelabelPermutesIds)
{
    const auto g = diamond();
    const std::vector<VertexId> perm = {3, 2, 1, 0};
    const auto h = relabel(g, perm);
    EXPECT_TRUE(h.hasEdge(3, 2)); // was 0 -> 1
    EXPECT_TRUE(h.hasEdge(1, 0)); // was 2 -> 3
    EXPECT_EQ(h.numEdges(), g.numEdges());
}

TEST(Transform, InducedSubgraphKeepsInternalEdges)
{
    const auto g = diamond();
    const auto sub = inducedSubgraph(g, {0, 1, 3});
    EXPECT_EQ(sub.numVertices(), 3u);
    EXPECT_EQ(sub.numEdges(), 2u); // 0->1 and 1->3
    EXPECT_TRUE(sub.hasEdge(0, 1));
    EXPECT_TRUE(sub.hasEdge(1, 2)); // relabeled 3 -> position 2
}

TEST(Transform, BidirectionalRatioReachesTarget)
{
    const auto g = makeDataset(Dataset::dblp, 0.05);
    const double before = bidirectionalRatio(g);
    for (const double target : {0.5, 0.8, 1.0}) {
        const auto h = withBidirectionalRatio(g, target, 3);
        const double after = bidirectionalRatio(h);
        EXPECT_GE(after + 0.02, target) << "target " << target;
        EXPECT_GE(h.numEdges(), g.numEdges());
    }
    EXPECT_LT(before, 0.5);
}

TEST(Transform, FullBidirectionalIsSymmetric)
{
    const auto g = makeDataset(Dataset::cnr, 0.03);
    const auto h = withBidirectionalRatio(g, 1.0, 3);
    for (EdgeId e = 0; e < h.numEdges(); ++e)
        EXPECT_TRUE(h.hasEdge(h.edgeTarget(e), h.edgeSource(e)));
}

} // namespace
} // namespace digraph::graph
