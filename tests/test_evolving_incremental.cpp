/**
 * @file
 * Incremental evolving-graph ingestion: the delta-journaled
 * GraphBuilder::append, the patched adjacency cache, appendPreprocess's
 * verbatim structure reuse, and the end-to-end warm-vs-cold equivalence
 * of the evolving engine for every algorithm family.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/adsorption.hpp"
#include "algorithms/katz.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "baselines/sequential.hpp"
#include "common/rng.hpp"
#include "engine/evolving.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "partition/preprocess.hpp"
#include "test_util.hpp"

namespace digraph {
namespace {

gpusim::PlatformConfig
smallPlatform()
{
    gpusim::PlatformConfig pc;
    pc.num_devices = 2;
    pc.smx_per_device = 4;
    return pc;
}

engine::EngineOptions
smallOptions()
{
    engine::EngineOptions opts;
    opts.platform = smallPlatform();
    return opts;
}

graph::DirectedGraph
testGraph(std::uint64_t seed, VertexId n = 600, EdgeId m = 3000)
{
    graph::GeneratorConfig c;
    c.num_vertices = n;
    c.num_edges = m;
    c.seed = seed;
    return graph::generate(c);
}

std::vector<graph::Edge>
randomBatch(SplitMix64 &rng, VertexId n, std::size_t count)
{
    std::vector<graph::Edge> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        batch.push_back({static_cast<VertexId>(rng.nextBounded(n)),
                         static_cast<VertexId>(rng.nextBounded(n)),
                         1.0 + static_cast<double>(rng.nextBounded(8))});
    }
    return batch;
}

/** Exact (bitwise) state comparison for algorithms with a unique
 *  dispatch-order-independent fixed point (sssp, wcc, kcore). */
void
expectStatesIdentical(const std::vector<Value> &got,
                      const std::vector<Value> &want,
                      const std::string &label)
{
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t v = 0; v < got.size(); ++v) {
        EXPECT_TRUE(got[v] == want[v] ||
                    (std::isinf(got[v]) && std::isinf(want[v])))
            << label << ": vertex " << v << " got " << got[v]
            << " want " << want[v];
    }
}

// ------------------------------------------------ GraphBuilder::append

TEST(GraphAppend, MatchesFullRebuildAndJournalsIds)
{
    const auto base = testGraph(71);
    SplitMix64 rng(72);
    auto batch = randomBatch(rng, 650, 120); // some targets beyond n

    const graph::GraphDelta delta = graph::GraphBuilder::append(base,
                                                                batch);
    const auto &g = delta.graph;

    // Reference: full rebuild from the combined edge list.
    graph::GraphBuilder b(base.numVertices());
    b.addEdges(base.edgeList());
    b.addEdges(batch);
    const auto ref = b.build();

    ASSERT_EQ(g.numVertices(), ref.numVertices());
    ASSERT_EQ(g.numEdges(), ref.numEdges());
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        EXPECT_EQ(g.edgeSource(e), ref.edgeSource(e));
        EXPECT_EQ(g.edgeTarget(e), ref.edgeTarget(e));
        EXPECT_EQ(g.edgeWeight(e), ref.edgeWeight(e));
    }

    // Journal: every old edge maps to the same (src, dst, weight).
    ASSERT_EQ(delta.old_to_new.size(), base.numEdges());
    for (EdgeId e = 0; e < base.numEdges(); ++e) {
        const EdgeId ne = delta.old_to_new[e];
        EXPECT_EQ(g.edgeSource(ne), base.edgeSource(e));
        EXPECT_EQ(g.edgeTarget(ne), base.edgeTarget(e));
        EXPECT_EQ(g.edgeWeight(ne), base.edgeWeight(e));
    }
    // Journal: fresh_ids point at the accepted batch edges.
    ASSERT_EQ(delta.fresh_ids.size(), delta.fresh.size());
    for (std::size_t i = 0; i < delta.fresh.size(); ++i) {
        const EdgeId ne = delta.fresh_ids[i];
        EXPECT_EQ(g.edgeSource(ne), delta.fresh[i].src);
        EXPECT_EQ(g.edgeTarget(ne), delta.fresh[i].dst);
        EXPECT_EQ(g.edgeWeight(ne), delta.fresh[i].weight);
    }
    EXPECT_EQ(base.numEdges() + delta.fresh.size(), g.numEdges());
    EXPECT_EQ(delta.old_num_vertices, base.numVertices());
}

TEST(GraphAppend, NormalizesTheBatch)
{
    const auto base = graph::makeChain(10); // edges v -> v+1, weight 1
    const std::vector<graph::Edge> batch = {
        {3, 3, 1.0},  // self-loop: dropped
        {0, 1, 9.0},  // already present: dropped, old weight wins
        {2, 7, 0.5},  // fresh
        {2, 7, 9.0},  // intra-batch repeat: first occurrence wins
        {4, 12, 2.0}, // grows the vertex set
    };
    const auto delta = graph::GraphBuilder::append(base, batch);
    ASSERT_EQ(delta.fresh.size(), 2u);
    EXPECT_EQ(delta.graph.numVertices(), 13u);
    EXPECT_EQ(delta.graph.numEdges(), base.numEdges() + 2);
    EXPECT_EQ(delta.graph.edgeWeight(delta.fresh_ids[0]), 0.5);
    EXPECT_EQ(delta.graph.edgeWeight(
                  delta.graph.findEdge(0, 1)),
              1.0);
}

TEST(GraphAppend, FindEdgeAgreesWithHasEdge)
{
    const auto g = testGraph(73, 200, 900);
    SplitMix64 rng(74);
    for (int i = 0; i < 2000; ++i) {
        const auto s = static_cast<VertexId>(rng.nextBounded(210));
        const auto d = static_cast<VertexId>(rng.nextBounded(210));
        const EdgeId e = g.findEdge(s, d);
        if (s < g.numVertices() && g.hasEdge(s, d)) {
            ASSERT_NE(e, kInvalidEdge);
            EXPECT_EQ(g.edgeSource(e), s);
            EXPECT_EQ(g.edgeTarget(e), d);
        } else {
            EXPECT_EQ(e, kInvalidEdge);
        }
    }
}

// ------------------------------------------------- SortedAdjacency

TEST(SortedAdjacency, DeltaPatchMatchesFreshBuild)
{
    for (const bool degree_sorted : {true, false}) {
        const auto base = testGraph(75);
        partition::SortedAdjacency cached;
        cached.build(base, degree_sorted);

        SplitMix64 rng(76);
        const auto delta = graph::GraphBuilder::append(
            base, randomBatch(rng, 620, 100));
        cached.applyDelta(delta.graph, delta);

        partition::SortedAdjacency fresh;
        fresh.build(delta.graph, degree_sorted);

        ASSERT_TRUE(cached.matches(delta.graph));
        for (VertexId v = 0; v < delta.graph.numVertices(); ++v) {
            const auto &a = cached.row(v);
            const auto &b = fresh.row(v);
            ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
            for (std::size_t k = 0; k < a.size(); ++k) {
                EXPECT_EQ(a[k].target, b[k].target)
                    << "vertex " << v << " slot " << k;
                EXPECT_EQ(a[k].edge, b[k].edge)
                    << "vertex " << v << " slot " << k;
            }
        }
    }
}

// ------------------------------------------------- appendPreprocess

TEST(AppendPreprocess, ReusesStructuresAndStaysValid)
{
    const auto base = testGraph(77);
    partition::PreprocessOptions popts;
    popts.partition.edges_per_partition = 512;
    auto pre = partition::preprocess(base, popts);
    ASSERT_TRUE(pre.paths.validate(base));
    const PathId old_paths = pre.paths.numPaths();
    const auto old_offsets = pre.partition_offsets;
    const auto old_layers = pre.path_layer;

    SplitMix64 rng(78);
    const auto delta = graph::GraphBuilder::append(
        base, randomBatch(rng, 620, 150));
    pre = partition::appendPreprocess(std::move(pre), delta.graph, delta,
                                      popts);

    EXPECT_TRUE(pre.incremental);
    EXPECT_TRUE(pre.paths.validate(delta.graph))
        << "appended path set must still cover every edge exactly once";
    EXPECT_EQ(pre.incremental_stats.reused_paths, old_paths);
    EXPECT_GT(pre.incremental_stats.new_paths, 0u);
    EXPECT_GT(pre.incremental_stats.new_partitions, 0u);
    EXPECT_FALSE(pre.incremental_stats.dirty_partitions.empty());

    // Old partition boundaries and layers survive verbatim.
    ASSERT_GE(pre.partition_offsets.size(), old_offsets.size());
    for (std::size_t i = 0; i < old_offsets.size(); ++i)
        EXPECT_EQ(pre.partition_offsets[i], old_offsets[i]);
    for (std::size_t p = 0; p < old_layers.size(); ++p)
        EXPECT_EQ(pre.path_layer[p], old_layers[p]);

    // New paths are isolated layer-0 SCC-vertices.
    const PathId np = pre.paths.numPaths();
    ASSERT_EQ(pre.scc_of_path.size(), np);
    ASSERT_EQ(pre.path_layer.size(), np);
    ASSERT_EQ(pre.path_avg_degree.size(), np);
    ASSERT_EQ(pre.path_hot.size(), np);
    ASSERT_EQ(pre.dag.layer.size(), pre.dag.num_sccs);
    ASSERT_EQ(pre.dag.paths_in_scc.size(), pre.dag.num_sccs);
    EXPECT_EQ(pre.dag.sketch.numVertices(), pre.dag.num_sccs);
    for (PathId p = old_paths; p < np; ++p) {
        EXPECT_EQ(pre.path_layer[p], 0u);
        const SccId s = pre.scc_of_path[p];
        EXPECT_EQ(pre.dag.paths_in_scc[s].size(), 1u);
        EXPECT_EQ(pre.dag.layer[s], 0u);
    }
    // And the adjacency cache was patched, not dropped.
    ASSERT_TRUE(pre.sorted_adjacency != nullptr);
    EXPECT_TRUE(pre.sorted_adjacency->matches(delta.graph));
}

TEST(AppendPreprocess, IsIndependentOfBatchSplit)
{
    // Appending two batches one by one equals appending their union as
    // far as edge coverage goes (paths differ, coverage must not).
    const auto base = testGraph(79, 300, 1500);
    partition::PreprocessOptions popts;
    SplitMix64 rng(80);
    const auto all = randomBatch(rng, 320, 80);
    const std::vector<graph::Edge> first(all.begin(), all.begin() + 40);
    const std::vector<graph::Edge> second(all.begin() + 40, all.end());

    auto pre = partition::preprocess(base, popts);
    auto d1 = graph::GraphBuilder::append(base, first);
    pre = partition::appendPreprocess(std::move(pre), d1.graph, d1,
                                      popts);
    auto d2 = graph::GraphBuilder::append(d1.graph, second);
    pre = partition::appendPreprocess(std::move(pre), d2.graph, d2,
                                      popts);
    EXPECT_TRUE(pre.paths.validate(d2.graph));
}

// ---------------------------------------- evolving engine equivalence

/** Drive `batches` insertions through an evolving engine and compare
 *  each warm/fallback result against the sequential oracle. */
template <typename MakeAlgo>
void
checkEvolvingAgainstOracle(MakeAlgo make_algo, double tol,
                           bool expect_warm, const std::string &label,
                           engine::EvolvingOptions evolve = {})
{
    auto initial = testGraph(81);
    const VertexId n = initial.numVertices();
    engine::EvolvingEngine evolving(std::move(initial), smallOptions(),
                                    evolve);
    {
        const auto algo = make_algo(evolving.graph());
        evolving.run(*algo);
    }
    SplitMix64 rng(82);
    for (int step_i = 0; step_i < 3; ++step_i) {
        const auto batch = randomBatch(rng, n + 20, 60);
        const auto algo = make_algo(evolving.graph());
        const auto step = evolving.insertAndRun(*algo, batch);
        EXPECT_EQ(step.warm, expect_warm) << label;
        const auto check = make_algo(evolving.graph());
        const auto oracle =
            baselines::runSequential(evolving.graph(), *check);
        if (tol == 0.0) {
            expectStatesIdentical(step.run.final_state, oracle.state,
                                  label);
        } else {
            test::expectStatesNear(step.run.final_state, oracle.state,
                                   tol, label);
        }
        EXPECT_TRUE(
            evolving.preprocessed().paths.validate(evolving.graph()))
            << label;
    }
}

TEST(EvolvingIncremental, SsspWarmMatchesOracleBitwise)
{
    checkEvolvingAgainstOracle(
        [](const graph::DirectedGraph &) {
            return std::make_unique<algorithms::Sssp>(0);
        },
        0.0, true, "sssp");
}

TEST(EvolvingIncremental, WccWarmMatchesOracleBitwise)
{
    checkEvolvingAgainstOracle(
        [](const graph::DirectedGraph &) {
            return std::make_unique<algorithms::Wcc>();
        },
        0.0, true, "wcc");
}

TEST(EvolvingIncremental, KcoreColdFallbackMatchesOracleBitwise)
{
    checkEvolvingAgainstOracle(
        [](const graph::DirectedGraph &) {
            return std::make_unique<algorithms::KCore>(3);
        },
        0.0, false, "kcore");
}

TEST(EvolvingIncremental, KatzWarmMatchesOracle)
{
    checkEvolvingAgainstOracle(
        [](const graph::DirectedGraph &g) {
            return std::make_unique<algorithms::Katz>(g, 1e-3);
        },
        1e-2, true, "katz");
}

TEST(EvolvingIncremental, PagerankColdFallbackMatchesOracle)
{
    checkEvolvingAgainstOracle(
        [](const graph::DirectedGraph &) {
            return std::make_unique<algorithms::PageRank>();
        },
        algorithms::PageRank().resultTolerance(), false, "pagerank");
}

TEST(EvolvingIncremental, AdsorptionMatchesOracleAfterIngestion)
{
    // Adsorption precomputes normalized in-weights for the graph it is
    // constructed with, so (unlike the algorithms above) an instance
    // must never run on a graph with more edges. Ingest the batches
    // first (sssp drives the insertions), then run a fresh instance
    // cold on the incremental structures.
    engine::EvolvingEngine evolving(testGraph(81), smallOptions());
    const algorithms::Sssp sssp(0);
    evolving.run(sssp);
    SplitMix64 rng(82);
    for (int step_i = 0; step_i < 3; ++step_i) {
        const auto step =
            evolving.insertAndRun(sssp, randomBatch(rng, 620, 60));
        EXPECT_TRUE(step.incremental);
    }
    const algorithms::Adsorption ads(evolving.graph());
    const auto step = evolving.run(ads);
    const auto oracle = baselines::runSequential(evolving.graph(), ads);
    test::expectStatesNear(step.run.final_state, oracle.state,
                           ads.resultTolerance(), "adsorption");
}

TEST(EvolvingIncremental, FullRebuildModeMatchesOracle)
{
    engine::EvolvingOptions evolve;
    evolve.incremental = false; // the pre-incremental baseline
    checkEvolvingAgainstOracle(
        [](const graph::DirectedGraph &) {
            return std::make_unique<algorithms::Sssp>(0);
        },
        0.0, true, "sssp full-rebuild mode", evolve);
}

// ------------------------------------------------- edge-case batches

TEST(EvolvingIncremental, DegenerateBatchesAreHandled)
{
    engine::EvolvingEngine evolving(graph::makeChain(30),
                                    smallOptions());
    const algorithms::Sssp sssp(0);
    evolving.run(sssp);

    // Batch of only self-loops and already-present edges: nothing
    // inserted, graph and structures unchanged, result preserved.
    const auto before_edges = evolving.graph().numEdges();
    const auto before_paths = evolving.preprocessed().paths.numPaths();
    auto step = evolving.insertAndRun(
        sssp, {{4, 4, 1.0}, {0, 1, 5.0}, {7, 8, 2.0}});
    EXPECT_EQ(step.inserted_edges, 0u);
    EXPECT_EQ(evolving.graph().numEdges(), before_edges);
    EXPECT_EQ(evolving.preprocessed().paths.numPaths(), before_paths);
    auto oracle = baselines::runSequential(evolving.graph(), sssp);
    expectStatesIdentical(step.run.final_state, oracle.state,
                          "degenerate batch");

    // Batch introducing brand-new vertices (beyond the current range).
    step = evolving.insertAndRun(sssp, {{2, 35, 0.5}, {35, 36, 0.5}});
    EXPECT_EQ(step.inserted_edges, 2u);
    EXPECT_EQ(evolving.graph().numVertices(), 37u);
    EXPECT_TRUE(step.incremental);
    oracle = baselines::runSequential(evolving.graph(), sssp);
    expectStatesIdentical(step.run.final_state, oracle.state,
                          "new-vertex batch");

    // Duplicates inside the batch collapse to the first occurrence.
    step = evolving.insertAndRun(
        sssp, {{5, 20, 0.25}, {5, 20, 99.0}, {5, 20, 1.0}});
    EXPECT_EQ(step.inserted_edges, 1u);
    const EdgeId e = evolving.graph().findEdge(5, 20);
    ASSERT_NE(e, kInvalidEdge);
    EXPECT_EQ(evolving.graph().edgeWeight(e), 0.25);
    oracle = baselines::runSequential(evolving.graph(), sssp);
    expectStatesIdentical(step.run.final_state, oracle.state,
                          "duplicate batch");
}

TEST(EvolvingIncremental, RebuildFractionGuardTriggersFullPipeline)
{
    engine::EvolvingOptions evolve;
    evolve.full_rebuild_fraction = 0.01; // almost any batch trips it
    engine::EvolvingEngine evolving(testGraph(83), smallOptions(),
                                    evolve);
    const algorithms::Sssp sssp(0);
    evolving.run(sssp);
    SplitMix64 rng(84);
    const auto step =
        evolving.insertAndRun(sssp, randomBatch(rng, 600, 80));
    EXPECT_FALSE(step.incremental)
        << "the structure-quality guard must force a full rebuild";
    EXPECT_FALSE(evolving.preprocessed().incremental);
    const auto oracle =
        baselines::runSequential(evolving.graph(), sssp);
    expectStatesIdentical(step.run.final_state, oracle.state,
                          "fraction guard");
}

// ------------------------------------------------- determinism

TEST(EvolvingIncremental, BitIdenticalAcrossEngineThreads)
{
    // The determinism contract (PR 1) extends to the incremental path:
    // structures and results must be bit-identical for every
    // engine_threads value.
    std::vector<std::vector<Value>> per_thread_results;
    std::vector<std::vector<std::uint32_t>> per_thread_offsets;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        engine::EngineOptions opts = smallOptions();
        opts.engine_threads = threads;
        engine::EvolvingEngine evolving(testGraph(85), opts);
        const algorithms::Sssp sssp(0);
        evolving.run(sssp);
        SplitMix64 rng(86);
        std::vector<Value> concat;
        for (int step_i = 0; step_i < 3; ++step_i) {
            const auto step =
                evolving.insertAndRun(sssp, randomBatch(rng, 620, 50));
            EXPECT_TRUE(step.incremental);
            concat.insert(concat.end(), step.run.final_state.begin(),
                          step.run.final_state.end());
        }
        per_thread_results.push_back(std::move(concat));
        per_thread_offsets.push_back(
            evolving.preprocessed().partition_offsets);
    }
    ASSERT_EQ(per_thread_results[0].size(),
              per_thread_results[1].size());
    for (std::size_t i = 0; i < per_thread_results[0].size(); ++i) {
        ASSERT_EQ(per_thread_results[0][i], per_thread_results[1][i])
            << "state diverged at flat index " << i;
    }
    EXPECT_EQ(per_thread_offsets[0], per_thread_offsets[1])
        << "incremental structures must not depend on engine_threads";
}

// ------------------------------------------------- fig11-style smoke

TEST(EvolvingIncremental, Fig11MultiBatchSmoke)
{
    // Miniature of the bench/fig11_updates ingestion workload: a
    // sequence of insertion batches, warm sssp after each, incremental
    // ingestion throughout, correct final state.
    engine::EvolvingEngine evolving(testGraph(87, 1500, 9000),
                                    smallOptions());
    const algorithms::Sssp sssp(0);
    evolving.run(sssp);
    SplitMix64 rng(88);
    double incremental_pre = 0.0;
    for (int step_i = 0; step_i < 5; ++step_i) {
        const auto step =
            evolving.insertAndRun(sssp, randomBatch(rng, 1520, 100));
        EXPECT_TRUE(step.incremental);
        EXPECT_TRUE(step.warm);
        EXPECT_GT(step.reused_paths, 0u);
        incremental_pre += step.preprocess_seconds;
    }
    EXPECT_EQ(evolving.batchesApplied(), 5u);
    const auto oracle = baselines::runSequential(evolving.graph(), sssp);
    expectStatesIdentical(oracle.state,
                          baselines::runSequential(evolving.graph(),
                                                   sssp)
                              .state,
                          "oracle self-check");
    const auto final_step = evolving.insertAndRun(sssp, {});
    expectStatesIdentical(final_step.run.final_state, oracle.state,
                          "fig11 smoke");
    EXPECT_GE(incremental_pre, 0.0);
}

} // namespace
} // namespace digraph
