/**
 * @file
 * Property tests for the path decomposition (Algorithm 1): across many
 * random graphs and thread counts, the resulting PathSet must cover every
 * edge exactly once with consecutive-edge consistency, respect the D_MAX
 * bound, keep path interiors region-pure, and be deterministic.
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/builder.hpp"
#include "partition/decomposer.hpp"
#include "partition/scc_regions.hpp"

namespace digraph::partition {
namespace {

using graph::GeneratorConfig;

struct Case
{
    std::uint64_t seed;
    unsigned threads;
    unsigned d_max;
};

class Decomposition : public ::testing::TestWithParam<Case>
{
  protected:
    graph::DirectedGraph
    makeGraph() const
    {
        GeneratorConfig c;
        c.num_vertices = 600;
        c.num_edges = 3600;
        c.scc_core_fraction = 0.4;
        c.seed = GetParam().seed;
        return graph::generate(c);
    }

    DecomposeOptions
    options() const
    {
        DecomposeOptions o;
        o.num_threads = GetParam().threads;
        o.d_max = GetParam().d_max;
        return o;
    }
};

TEST_P(Decomposition, CoversEveryEdgeExactlyOnce)
{
    const auto g = makeGraph();
    const auto paths = decompose(g, options());
    EXPECT_TRUE(paths.validate(g));
    EXPECT_EQ(paths.numEdges(), g.numEdges());
}

TEST_P(Decomposition, RespectsDepthBound)
{
    const auto g = makeGraph();
    const auto paths = decompose(g, options());
    for (PathId p = 0; p < paths.numPaths(); ++p)
        EXPECT_LE(paths.pathLength(p), GetParam().d_max);
}

TEST_P(Decomposition, PathInteriorsAreRegionPure)
{
    const auto g = makeGraph();
    const SccRegions regions(g);
    const auto paths = decompose(g, options());
    for (PathId p = 0; p < paths.numPaths(); ++p) {
        const auto verts = paths.pathVertices(p);
        // Every edge except the last stays within one region.
        for (std::size_t i = 0; i + 2 < verts.size(); ++i) {
            EXPECT_TRUE(regions.sameRegion(verts[i], verts[i + 1]))
                << "path " << p << " mixes regions";
        }
    }
}

TEST_P(Decomposition, Deterministic)
{
    const auto g = makeGraph();
    const auto a = decompose(g, options());
    const auto b = decompose(g, options());
    ASSERT_EQ(a.numPaths(), b.numPaths());
    for (PathId p = 0; p < a.numPaths(); ++p) {
        const auto va = a.pathVertices(p);
        const auto vb = b.pathVertices(p);
        ASSERT_EQ(va.size(), vb.size());
        for (std::size_t i = 0; i < va.size(); ++i)
            EXPECT_EQ(va[i], vb[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsThreadsDepths, Decomposition,
    ::testing::Values(Case{1, 1, 16}, Case{2, 1, 16}, Case{3, 2, 16},
                      Case{4, 4, 16}, Case{5, 2, 4}, Case{6, 2, 64},
                      Case{7, 3, 8}, Case{8, 8, 16}),
    [](const ::testing::TestParamInfo<Case> &info) {
        return "seed" + std::to_string(info.param.seed) + "_t" +
               std::to_string(info.param.threads) + "_d" +
               std::to_string(info.param.d_max);
    });

TEST(DecompositionShapes, ChainBecomesDepthBoundedSegments)
{
    const auto g = graph::makeChain(100);
    DecomposeOptions o;
    o.d_max = 10;
    const auto paths = decompose(g, o);
    EXPECT_TRUE(paths.validate(g));
    // 99 edges in segments of <= 10.
    EXPECT_GE(paths.numPaths(), 10u);
    for (PathId p = 0; p < paths.numPaths(); ++p)
        EXPECT_LE(paths.pathLength(p), 10u);
}

TEST(DecompositionShapes, StarBecomesSingleEdgePaths)
{
    const auto g = graph::makeStar(20);
    const auto paths = decompose(g, {});
    EXPECT_TRUE(paths.validate(g));
    // After the first edge, every further edge of the hub ends at an
    // unvisited leaf but the leaf has no out-edges, so each edge is its
    // own path (hub is replicated).
    EXPECT_EQ(paths.numEdges(), 19u);
}

TEST(DecompositionShapes, HotFirstChainsHubs)
{
    // A hub chain 0->1->2 with leaves: hottest-successor-first should
    // put the hub-to-hub edges on the first path emitted.
    graph::GraphBuilder b;
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    for (VertexId leaf = 3; leaf < 9; ++leaf) {
        b.addEdge(0, leaf);
        b.addEdge(1, leaf);
        b.addEdge(2, leaf);
    }
    const auto g = b.build();
    DecomposeOptions o;
    o.degree_sorted = true;
    const auto paths = decompose(g, o);
    // The first emitted path starts at the hottest root and chains into
    // the next hub before visiting any leaf.
    const auto first = paths.pathVertices(0);
    ASSERT_GE(first.size(), 2u);
    EXPECT_LE(first[0], 2u) << "root must be a hub";
    EXPECT_LE(first[1], 2u) << "hottest successor is the next hub";
}

TEST(DecompositionShapes, EmptyGraph)
{
    const auto paths = decompose(graph::DirectedGraph{}, {});
    EXPECT_EQ(paths.numPaths(), 0u);
    EXPECT_EQ(paths.avgLength(), 0.0);
}

} // namespace
} // namespace digraph::partition
