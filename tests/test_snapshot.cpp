/**
 * @file
 * Tests for preprocessing snapshots: round trip fidelity, stale-snapshot
 * rejection, and that an engine-quality run works from a reloaded
 * pipeline result.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "partition/snapshot.hpp"

namespace digraph::partition {
namespace {

class SnapshotTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("digraph_snap_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
        graph::GeneratorConfig c;
        c.num_vertices = 600;
        c.num_edges = 3600;
        c.scc_core_fraction = 0.4;
        c.seed = 71;
        g_ = graph::generate(c);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
    graph::DirectedGraph g_;
};

TEST_F(SnapshotTest, RoundTripPreservesEverything)
{
    const auto pre = preprocess(g_, {});
    saveSnapshot(pre, g_, path("p.snap"));
    const auto loaded = loadSnapshot(g_, path("p.snap"));
    ASSERT_TRUE(loaded.has_value());

    ASSERT_EQ(loaded->paths.numPaths(), pre.paths.numPaths());
    for (PathId p = 0; p < pre.paths.numPaths(); ++p) {
        const auto a = pre.paths.pathVertices(p);
        const auto b = loaded->paths.pathVertices(p);
        ASSERT_EQ(a.size(), b.size()) << "path " << p;
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i], b[i]);
    }
    EXPECT_EQ(loaded->scc_of_path, pre.scc_of_path);
    EXPECT_EQ(loaded->path_layer, pre.path_layer);
    EXPECT_EQ(loaded->path_hot, pre.path_hot);
    EXPECT_EQ(loaded->partition_offsets, pre.partition_offsets);
    EXPECT_EQ(loaded->partition_layer, pre.partition_layer);
    EXPECT_EQ(loaded->dag.num_sccs, pre.dag.num_sccs);
    EXPECT_EQ(loaded->dag.layer, pre.dag.layer);
    EXPECT_EQ(loaded->dag.sketch.numEdges(), pre.dag.sketch.numEdges());
    EXPECT_EQ(loaded->dag.giant_scc, pre.dag.giant_scc);
    EXPECT_TRUE(loaded->paths.validate(g_));
}

TEST_F(SnapshotTest, RejectsDifferentGraph)
{
    const auto pre = preprocess(g_, {});
    saveSnapshot(pre, g_, path("p.snap"));
    const auto other = graph::makeChain(600);
    EXPECT_FALSE(loadSnapshot(other, path("p.snap")).has_value());
}

TEST_F(SnapshotTest, RejectsMissingAndCorruptFiles)
{
    EXPECT_FALSE(loadSnapshot(g_, path("absent.snap")).has_value());
    std::ofstream out(path("junk.snap"), std::ios::binary);
    out << "not a snapshot at all";
    out.close();
    EXPECT_FALSE(loadSnapshot(g_, path("junk.snap")).has_value());
}

TEST_F(SnapshotTest, RejectsSameShapeDifferentGraph)
{
    // Same vertex and edge counts, one edge weight changed: the v1
    // count fingerprint accepted this, the v2 content checksum must not.
    const auto pre = preprocess(g_, {});
    saveSnapshot(pre, g_, path("p.snap"));

    graph::GraphBuilder b(g_.numVertices());
    b.setDeduplicate(false);
    b.setRemoveSelfLoops(false);
    for (EdgeId e = 0; e < g_.numEdges(); ++e) {
        const Value w = e == 0 ? g_.edgeWeight(e) + 1.0 : g_.edgeWeight(e);
        b.addEdge(g_.edgeSource(e), g_.edgeTarget(e), w);
    }
    const auto twin = b.build();
    ASSERT_EQ(twin.numVertices(), g_.numVertices());
    ASSERT_EQ(twin.numEdges(), g_.numEdges());
    EXPECT_FALSE(loadSnapshot(twin, path("p.snap")).has_value());
}

TEST_F(SnapshotTest, VersionOneSnapshotStillLoads)
{
    // Back-compat: surgically rewrite a v2 file into the v1 layout
    // (no checksum field, version u32 = 1 at byte offset 8) and load it.
    const auto pre = preprocess(g_, {});
    saveSnapshot(pre, g_, path("p.snap"));

    std::ifstream in(path("p.snap"), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    // Header: magic u64 | version u32 | n u64 | m u64 | checksum u64.
    const std::size_t checksum_at = 8 + 4 + 8 + 8;
    ASSERT_GT(bytes.size(), checksum_at + 8);
    bytes.erase(checksum_at, 8);
    const std::uint32_t v1 = 1;
    bytes.replace(8, sizeof(v1),
                  reinterpret_cast<const char *>(&v1), sizeof(v1));
    std::ofstream out(path("p1.snap"), std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.close();

    const auto loaded = loadSnapshot(g_, path("p1.snap"));
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->paths.numPaths(), pre.paths.numPaths());
    EXPECT_TRUE(loaded->paths.validate(g_));
}

TEST_F(SnapshotTest, RejectsTruncatedFile)
{
    const auto pre = preprocess(g_, {});
    saveSnapshot(pre, g_, path("p.snap"));
    const auto full =
        std::filesystem::file_size(path("p.snap"));
    std::filesystem::resize_file(path("p.snap"), full / 2);
    EXPECT_FALSE(loadSnapshot(g_, path("p.snap")).has_value());
}

} // namespace
} // namespace digraph::partition
