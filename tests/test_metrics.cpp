/**
 * @file
 * Tests for the metrics report and graph property measurement.
 */

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "metrics/run_report.hpp"

namespace digraph {
namespace {

TEST(RunReport, DerivedMetrics)
{
    metrics::RunReport r;
    r.host_transfer_bytes = 100;
    r.ring_transfer_bytes = 50;
    r.global_load_bytes = 25;
    EXPECT_EQ(r.trafficVolume(), 175u);
    EXPECT_EQ(r.loadedDataUtilization(), 0.0);
    r.loaded_vertices = 200;
    r.used_vertices = 40;
    EXPECT_DOUBLE_EQ(r.loadedDataUtilization(), 0.2);
}

TEST(Properties, ChainMeasurements)
{
    const auto g = graph::makeChain(50);
    const auto p = graph::measureProperties(g, 8, 1);
    EXPECT_EQ(p.num_vertices, 50u);
    EXPECT_EQ(p.num_edges, 49u);
    EXPECT_NEAR(p.avg_degree, 49.0 / 50.0, 1e-9);
    EXPECT_EQ(p.max_out_degree, 1u);
    EXPECT_EQ(p.num_sccs, 50u);
    EXPECT_GT(p.avg_distance, 1.0);
    EXPECT_EQ(p.bidirectional_ratio, 0.0);
}

TEST(Properties, CycleMeasurements)
{
    const auto g = graph::makeCycle(20);
    const auto p = graph::measureProperties(g, 4, 2);
    EXPECT_EQ(p.num_sccs, 1u);
    EXPECT_DOUBLE_EQ(p.giant_scc_fraction, 1.0);
    // Mean distance over a directed 20-cycle is (1+...+19)/19 = 10.
    EXPECT_NEAR(p.avg_distance, 10.0, 1e-9);
}

TEST(Properties, BidirectionalRatioCounts)
{
    graph::GraphBuilder b;
    b.addEdge(0, 1);
    b.addEdge(1, 0);
    b.addEdge(1, 2);
    const auto g = b.build();
    EXPECT_NEAR(graph::bidirectionalRatio(g), 2.0 / 3.0, 1e-9);
}

TEST(Properties, ZeroSamplesSkipsDistance)
{
    const auto g = graph::makeChain(10);
    const auto p = graph::measureProperties(g, 0);
    EXPECT_EQ(p.avg_distance, 0.0);
    EXPECT_EQ(p.num_vertices, 10u);
}

TEST(Properties, DescribeMentionsKeyNumbers)
{
    const auto g = graph::makeCycle(5);
    const auto text = graph::describe(graph::measureProperties(g, 2));
    EXPECT_NE(text.find("V=5"), std::string::npos);
    EXPECT_NE(text.find("E=5"), std::string::npos);
}

} // namespace
} // namespace digraph
