/**
 * @file
 * GraphService: the long-lived session with two-level job scheduling
 * (DESIGN.md §15). Under test: the pure inter-job policy (priority /
 * quota / budget / co-scheduling decisions of scheduleJobs and the
 * fairThreadShare split), service-level priority ordering, per-tenant
 * quota enforcement, admission rejection, and the core preemption
 * contract — a job parked at wave boundaries converges bit-identical
 * to an uninterrupted dedicated run, per algorithm family, at several
 * session thread counts.
 *
 * Timing note: integration tests that need jobs to queue submit a
 * long-running pagerank first; the competing submissions land within
 * microseconds, hundreds of waves before it can finish.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "engine/digraph_engine.hpp"
#include "engine/graph_service.hpp"
#include "engine/job_scheduler.hpp"
#include "graph/generators.hpp"
#include "metrics/run_report.hpp"

namespace digraph {
namespace {

graph::DirectedGraph
testGraph(std::uint64_t seed = 77)
{
    graph::GeneratorConfig c;
    c.num_vertices = 400;
    c.num_edges = 2400;
    c.seed = seed;
    return graph::generate(c);
}

engine::EngineOptions
testOptions()
{
    engine::EngineOptions opts;
    opts.platform.num_devices = 2;
    opts.platform.smx_per_device = 4;
    return opts;
}

void
expectSameReport(const metrics::RunReport &a, const metrics::RunReport &b,
                 const std::string &label)
{
    EXPECT_EQ(a.waves, b.waves) << label;
    EXPECT_EQ(a.edge_processings, b.edge_processings) << label;
    EXPECT_EQ(a.vertex_updates, b.vertex_updates) << label;
    EXPECT_EQ(a.sim_cycles, b.sim_cycles) << label;
    EXPECT_EQ(a.final_state, b.final_state) << label;
}

// ---------------------------------------------------------------------
// Pure policy: scheduleJobs / fairThreadShare are deterministic
// functions of an explicit snapshot.
// ---------------------------------------------------------------------

engine::SchedJob
waiting(std::uint64_t id, int priority, std::uint64_t seq,
        std::uint32_t tenant = 0)
{
    engine::SchedJob j;
    j.id = id;
    j.priority = priority;
    j.queue_seq = seq;
    j.tenant = tenant;
    return j;
}

TEST(JobScheduler, PriorityThenFifoThenId)
{
    engine::SchedulerPolicy policy;
    policy.session_threads = 2; // two slots
    engine::SchedSnapshot snap;
    snap.waiting = {waiting(0, 0, 0), waiting(1, 5, 2),
                    waiting(2, 5, 1), waiting(3, 1, 3)};
    snap.free_threads = 2;
    snap.tenant_started = {0};

    const auto grants = engine::scheduleJobs(policy, snap);
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(grants[0].id, 2u); // priority 5, older seq
    EXPECT_EQ(grants[1].id, 1u); // priority 5, younger seq
}

TEST(JobScheduler, TenantQuotaSkipsButDoesNotBlockOthers)
{
    engine::SchedulerPolicy policy;
    policy.session_threads = 4;
    policy.tenant_quota = 1;
    engine::SchedSnapshot snap;
    // Tenant 0 already has one started job; its queued job must be
    // passed over in favor of tenant 1 despite lower priority.
    snap.waiting = {waiting(1, 5, 0, /*tenant=*/0),
                    waiting(2, 1, 1, /*tenant=*/1)};
    snap.running_jobs = 1;
    snap.free_threads = 3;
    snap.tenant_started = {1, 0};

    const auto grants = engine::scheduleJobs(policy, snap);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].id, 2u);
}

TEST(JobScheduler, StartedJobsAlwaysReadmissible)
{
    engine::SchedulerPolicy policy;
    policy.session_threads = 1;
    policy.state_budget_bytes = 100;
    policy.tenant_quota = 1;
    engine::SchedSnapshot snap;
    // A parked job: bytes charged, tenant counted — quota and budget
    // are both "exhausted" by the job itself, yet it must re-enter
    // (otherwise parking would deadlock).
    auto parked = waiting(0, 0, 0);
    parked.started = true;
    parked.state_bytes = 100;
    snap.waiting = {parked};
    snap.charged_bytes = 100;
    snap.tenant_started = {1};
    snap.free_threads = 1;

    const auto grants = engine::scheduleJobs(policy, snap);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].id, 0u);
}

TEST(JobScheduler, ByteBudgetBlocksUnstartedJobs)
{
    engine::SchedulerPolicy policy;
    policy.session_threads = 2;
    policy.state_budget_bytes = 150;
    engine::SchedSnapshot snap;
    auto a = waiting(0, 0, 0);
    a.state_bytes = 100;
    auto b = waiting(1, 0, 1);
    b.state_bytes = 100;
    snap.waiting = {a, b};
    snap.free_threads = 2;
    snap.tenant_started = {0};

    // Only one fits: 100 + 100 > 150.
    const auto grants = engine::scheduleJobs(policy, snap);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].id, 0u);
}

TEST(JobScheduler, CoSchedulePrefersOverlappingWorklist)
{
    engine::SchedulerPolicy policy;
    policy.session_threads = 4;
    engine::SchedSnapshot snap;
    const std::vector<std::uint8_t> running_wl = {1, 1, 0, 0};
    const std::vector<std::uint8_t> disjoint = {0, 0, 1, 1};
    const std::vector<std::uint8_t> overlapping = {1, 1, 0, 0};
    auto a = waiting(0, 0, 0);
    a.started = true;
    a.worklist = &disjoint;
    auto b = waiting(1, 0, 1);
    b.started = true;
    b.worklist = &overlapping;
    snap.waiting = {a, b};
    snap.running_worklists = {&running_wl};
    snap.running_jobs = 1;
    snap.free_threads = 2;
    snap.tenant_started = {0};

    auto grants = engine::scheduleJobs(policy, snap);
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(grants[0].id, 1u); // overlap beats FIFO rank
    EXPECT_TRUE(grants[0].co_scheduled);

    // Same snapshot with co-scheduling off: plain rank order.
    policy.co_schedule = false;
    grants = engine::scheduleJobs(policy, snap);
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(grants[0].id, 0u);
}

TEST(JobScheduler, FairThreadShareDividesWithRemainder)
{
    engine::SchedulerPolicy policy;
    policy.session_threads = 8;
    EXPECT_EQ(engine::fairThreadShare(policy, 0, 1), 8u);
    EXPECT_EQ(engine::fairThreadShare(policy, 0, 2), 4u);
    EXPECT_EQ(engine::fairThreadShare(policy, 1, 2), 4u);
    EXPECT_EQ(engine::fairThreadShare(policy, 0, 3), 3u);
    EXPECT_EQ(engine::fairThreadShare(policy, 1, 3), 3u);
    EXPECT_EQ(engine::fairThreadShare(policy, 2, 3), 2u);
    // Never below 1, even oversubscribed.
    EXPECT_EQ(engine::fairThreadShare(policy, 11, 12), 1u);
}

// ---------------------------------------------------------------------
// Service integration.
// ---------------------------------------------------------------------

TEST(GraphService, PriorityOrderUnderPreemption)
{
    const auto g = testGraph();
    engine::ServiceConfig config;
    config.session_threads = 1; // one slot: total order of grants
    config.quantum_waves = 1;   // park at every wave boundary
    engine::GraphService service(g, testOptions(), config);

    // The lowest-priority job goes first and occupies the slot; with a
    // 1-wave quantum it parks as soon as competitors queue, and the
    // scheduler then drives completions in strict priority order.
    const auto a = service.addJobAsync({"pagerank", "default", 0});
    const auto b = service.addJobAsync({"wcc", "default", 1});
    const auto c = service.addJobAsync({"sssp:0", "default", 5});
    const auto d = service.addJobAsync({"kcore:3", "default", 3});
    const auto results = service.drain();
    ASSERT_EQ(results.size(), 4u);

    const auto order = service.completionOrder();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], c); // priority 5
    EXPECT_EQ(order[1], d); // priority 3
    EXPECT_EQ(order[2], b); // priority 1
    EXPECT_EQ(order[3], a); // priority 0

    const auto stats = service.stats();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_EQ(stats.admitted, 4u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_GT(stats.parks, 0u);
    EXPECT_EQ(stats.peak_running, 1u);
}

TEST(GraphService, TenantQuotaSerializesOneTenant)
{
    const auto g = testGraph();
    engine::ServiceConfig config;
    config.session_threads = 2;
    config.tenant_quota = 1;
    config.quantum_waves = 1;
    engine::GraphService service(g, testOptions(), config);

    // Both alice jobs are long; quota 1 means the second cannot start
    // until the first completes, while bob's passes it in the queue.
    const auto a1 = service.addJobAsync({"pagerank", "alice", 0});
    const auto a2 = service.addJobAsync({"pagerank", "alice", 9});
    const auto b1 = service.addJobAsync({"wcc", "bob", 0});
    service.drain();

    const auto grants = service.grantLog();
    const auto pos = [&](engine::JobId id) {
        return std::find(grants.begin(), grants.end(), id) -
               grants.begin();
    };
    // Despite a2's far higher priority, b1 is granted first: alice is
    // at quota until a1 finishes.
    EXPECT_LT(pos(a1), pos(b1));
    EXPECT_LT(pos(b1), pos(a2));
    EXPECT_EQ(service.stats().completed, 3u);
}

TEST(GraphService, RejectsJobOverByteBudget)
{
    const auto g = testGraph();
    engine::ServiceConfig config;
    config.state_budget_bytes = 1; // nothing fits
    engine::GraphService service(g, testOptions(), config);

    const auto id = service.addJobAsync("wcc");
    const auto status = service.poll(id);
    EXPECT_EQ(status.state, engine::JobState::Rejected);
    EXPECT_NE(status.detail.find("budget"), std::string::npos);

    const auto results = service.drain();
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(service.stats().rejected, 1u);
    EXPECT_EQ(service.stats().completed, 0u);
}

TEST(GraphService, RejectsPastAdmissionQueueLimit)
{
    const auto g = testGraph();
    engine::ServiceConfig config;
    config.session_threads = 2;
    config.tenant_quota = 1;   // queue builds behind the quota
    config.max_queued_jobs = 1;
    config.quantum_waves = 0;
    engine::GraphService service(g, testOptions(), config);

    const auto a1 = service.addJobAsync({"pagerank", "alice", 0});
    const auto a2 = service.addJobAsync({"pagerank", "alice", 0});
    const auto a3 = service.addJobAsync({"pagerank", "alice", 0});
    EXPECT_NE(service.poll(a1).state, engine::JobState::Rejected);
    EXPECT_NE(service.poll(a2).state, engine::JobState::Rejected);
    const auto status = service.poll(a3);
    EXPECT_EQ(status.state, engine::JobState::Rejected);
    EXPECT_NE(status.detail.find("queue"), std::string::npos);

    const auto results = service.drain();
    EXPECT_EQ(results.size(), 2u);
}

TEST(GraphService, PreemptedRunsBitIdenticalPerFamily)
{
    const auto g = testGraph();
    const auto opts = testOptions();
    const std::vector<std::string> specs = {"sssp:0", "pagerank", "wcc",
                                            "kcore:3"};

    // Uninterrupted dedicated-engine references, one per family.
    std::vector<metrics::RunReport> reference;
    for (const auto &spec : specs) {
        engine::DiGraphEngine eng(g, opts);
        const auto algo = algorithms::makeAlgorithmSpec(spec, g);
        reference.push_back(eng.run(*algo));
    }

    for (const std::size_t threads : {1u, 2u, 4u}) {
        engine::ServiceConfig config;
        config.session_threads = threads;
        config.quantum_waves = 1; // maximum preemption pressure
        engine::GraphService service(g, opts, config);
        for (const auto &spec : specs)
            service.addJobAsync(spec);
        const auto results = service.drain();
        ASSERT_EQ(results.size(), specs.size());

        std::uint64_t parked = 0;
        for (const auto &job : results) {
            const auto ref =
                std::find(specs.begin(), specs.end(), job.spec) -
                specs.begin();
            expectSameReport(job.report, reference[ref],
                             job.spec + " @" +
                                 std::to_string(threads) + "t");
            parked += job.times_parked;
        }
        // Fewer slots than jobs -> preemption actually happened, so
        // the identity above is a real park/resume round-trip.
        if (threads < specs.size()) {
            EXPECT_GT(parked, 0u) << threads;
            EXPECT_GT(service.stats().parks, 0u) << threads;
        }
        EXPECT_EQ(service.stats().completed, specs.size());
    }
}

TEST(GraphService, BatchModeRunsJobsConcurrently)
{
    const auto g = testGraph();
    auto opts = testOptions();
    opts.engine_threads = 4;
    engine::ServiceConfig config;
    config.quantum_waves = 0; // batch: no preemption
    engine::GraphService service(g, opts, config);
    EXPECT_EQ(service.sessionThreads(), 4u);

    service.addJobAsync("pagerank");
    service.addJobAsync("wcc");
    const auto results = service.drain();
    ASSERT_EQ(results.size(), 2u);
    const auto stats = service.stats();
    EXPECT_EQ(stats.parks, 0u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_GE(stats.peak_running, 1u);
    for (const auto &job : results)
        EXPECT_GT(job.job_state_bytes, 0u);
}

TEST(GraphService, AdoptedSubstrateIsValidatedAndShared)
{
    const auto g = testGraph();
    const auto opts = testOptions();
    engine::DiGraphEngine eng(g, opts);
    const auto sub = eng.substrate();
    ASSERT_NE(sub, nullptr);

    engine::ServiceConfig config;
    config.quantum_waves = 0;
    engine::GraphService service(g, sub, opts, config);
    EXPECT_EQ(service.substrate().get(), sub.get());

    service.addJobAsync("wcc");
    const auto results = service.drain();
    ASSERT_EQ(results.size(), 1u);
    const auto algo = algorithms::makeAlgorithmSpec("wcc", g);
    engine::DiGraphEngine check(g, opts);
    expectSameReport(results[0].report, check.run(*algo),
                     "wcc adopted");
}

} // namespace
} // namespace digraph
