/**
 * @file
 * Durable-store tests (DESIGN.md §16): crash-consistent versioned
 * commits, lineage recovery with fallback past corrupted versions, the
 * FileOps fault-injection matrix, warm substrate starts that skip
 * decomposition, engine checkpoint flush-through with restart-from-disk
 * equivalence, and job-journal replay.
 */

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "algorithms/sssp.hpp"
#include "engine/digraph_engine.hpp"
#include "engine/graph_service.hpp"
#include "engine/substrate.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "metrics/trace.hpp"
#include "partition/preprocess.hpp"
#include "storage/durable_store.hpp"
#include "storage/file_ops.hpp"

namespace digraph::storage {
namespace {

graph::DirectedGraph
testGraph(std::uint64_t seed, VertexId n = 600, EdgeId m = 3600)
{
    graph::GeneratorConfig c;
    c.num_vertices = n;
    c.num_edges = m;
    c.scc_core_fraction = 0.4;
    c.seed = seed;
    return graph::generate(c);
}

/** Summed per-path edge counts (the E_val extent). */
std::uint64_t
eValSize(const partition::Preprocessed &pre)
{
    std::uint64_t total = 0;
    for (PathId p = 0; p < pre.paths.numPaths(); ++p)
        total += pre.paths.pathLength(p);
    return total;
}

void
expectSamePreprocessed(const partition::Preprocessed &got,
                       const partition::Preprocessed &want)
{
    ASSERT_EQ(got.paths.numPaths(), want.paths.numPaths());
    for (PathId p = 0; p < want.paths.numPaths(); ++p) {
        ASSERT_EQ(got.paths.pathLength(p), want.paths.pathLength(p))
            << "path " << p;
        const auto gv = got.paths.pathVertices(p);
        const auto wv = want.paths.pathVertices(p);
        ASSERT_TRUE(std::equal(gv.begin(), gv.end(), wv.begin(),
                               wv.end()))
            << "path " << p << " vertices";
        const auto ge = got.paths.pathEdges(p);
        const auto we = want.paths.pathEdges(p);
        ASSERT_TRUE(std::equal(ge.begin(), ge.end(), we.begin(),
                               we.end()))
            << "path " << p << " edges";
    }
    EXPECT_EQ(got.partition_offsets, want.partition_offsets);
    EXPECT_EQ(got.partition_layer, want.partition_layer);
    EXPECT_EQ(got.scc_of_path, want.scc_of_path);
    EXPECT_EQ(got.path_layer, want.path_layer);
    EXPECT_EQ(got.path_hot, want.path_hot);
    EXPECT_EQ(got.dag.num_sccs, want.dag.num_sccs);
    EXPECT_EQ(got.dag.layer, want.dag.layer);
    EXPECT_EQ(got.merges, want.merges);
}

void
expectIdenticalRuns(const metrics::RunReport &a,
                    const metrics::RunReport &b, const std::string &tag)
{
    ASSERT_EQ(a.final_state.size(), b.final_state.size()) << tag;
    for (std::size_t v = 0; v < a.final_state.size(); ++v)
        ASSERT_EQ(a.final_state[v], b.final_state[v])
            << tag << ": vertex " << v;
    EXPECT_EQ(a.vertex_updates, b.vertex_updates) << tag;
    EXPECT_EQ(a.edge_processings, b.edge_processings) << tag;
    EXPECT_EQ(a.rounds, b.rounds) << tag;
    EXPECT_EQ(a.sim_cycles, b.sim_cycles) << tag;
}

class DurableStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("digraph_store_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::remove_all(dir_);
        g_ = testGraph(71);
        // Small partition budget: the sharding paths (per-partition
        // topo/evals shards, dirty lists) need several partitions.
        popts_.partition.edges_per_partition = 600;
        pre_ = partition::preprocess(g_, popts_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string store() const { return dir_.string(); }

    /** Flip one byte in the middle of a store file. */
    void
    corrupt(const std::string &file)
    {
        const auto path = dir_ / file;
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.is_open()) << file;
        f.seekg(0, std::ios::end);
        const auto size = static_cast<std::streamoff>(f.tellg());
        ASSERT_GT(size, 0) << file;
        f.seekg(size / 2);
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5a);
        f.seekp(size / 2);
        f.write(&byte, 1);
    }

    std::filesystem::path dir_;
    graph::DirectedGraph g_;
    partition::PreprocessOptions popts_;
    partition::Preprocessed pre_;
};

// ------------------------------------------------- topology round trip

TEST_F(DurableStoreTest, TopologyRoundTripIsBitIdentical)
{
    DurableStore store(this->store());
    const std::uint64_t v = store.commitTopology(g_, pre_);
    ASSERT_NE(v, 0u);
    EXPECT_EQ(store.stats().commits, 1u);

    auto loaded = store.loadTopology(v, g_);
    ASSERT_TRUE(loaded.has_value());
    expectSamePreprocessed(*loaded, pre_);
    // Nothing was computed: the decomposition pipeline never ran.
    EXPECT_EQ(loaded->timings.total(), 0.0);
}

TEST_F(DurableStoreTest, LoadTopologyRejectsDifferentGraph)
{
    DurableStore store(this->store());
    const std::uint64_t v = store.commitTopology(g_, pre_);
    ASSERT_NE(v, 0u);

    const auto other = testGraph(72);
    EXPECT_FALSE(store.loadTopology(v, other).has_value());
    EXPECT_EQ(store.recoverVersion(&other), 0u);
    EXPECT_EQ(store.recoverVersion(&g_), v);
}

TEST_F(DurableStoreTest, EngineRunsIdenticallyFromLoadedTopology)
{
    DurableStore store(this->store());
    ASSERT_NE(store.commitTopology(g_, pre_), 0u);

    engine::EngineOptions opts;
    opts.engine_threads = 1;
    const auto algo = std::make_shared<algorithms::Sssp>(0);

    engine::DiGraphEngine cold(g_, partition::Preprocessed(pre_), opts);
    const auto cold_report = cold.run(*algo);

    auto sub = engine::EngineSubstrate::openFrom(store, g_);
    ASSERT_NE(sub, nullptr);
    engine::DiGraphEngine warm(g_, sub, opts);
    const auto warm_report = warm.run(*algo);

    expectIdenticalRuns(cold_report, warm_report, "sssp warm-vs-cold");
}

TEST_F(DurableStoreTest, WarmOpenFromSkipsDecompositionAndTraces)
{
    metrics::TraceSink sink;
    DurableStore store(this->store());
    store.setTrace(&sink);
    ASSERT_NE(store.commitTopology(g_, pre_), 0u);

    auto sub = engine::EngineSubstrate::openFrom(store, g_);
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->pre.timings.total(), 0.0);
    EXPECT_EQ(store.stats().recovers, 1u);

    bool saw_commit = false, saw_recover = false;
    for (const auto &e : sink.events()) {
        saw_commit |= e.type == metrics::TraceEventType::StoreCommit;
        saw_recover |= e.type == metrics::TraceEventType::StoreRecover;
    }
    EXPECT_TRUE(saw_commit);
    EXPECT_TRUE(saw_recover);
}

// ------------------------------------------- incremental topo commits

TEST_F(DurableStoreTest, IncrementalTopologyCommitReusesParentShards)
{
    DurableStore store(this->store());
    const std::uint64_t v1 = store.commitTopology(g_, pre_);
    ASSERT_NE(v1, 0u);

    // Append a batch; appendPreprocess keeps carried-over partitions
    // verbatim, so their topo shards are referenced, not rewritten.
    std::vector<graph::Edge> batch;
    SplitMix64 rng(7);
    while (batch.size() < 400) {
        const auto s = static_cast<VertexId>(
            rng.nextBounded(g_.numVertices() + 40));
        const auto d = static_cast<VertexId>(
            rng.nextBounded(g_.numVertices() + 40));
        if (s != d)
            batch.push_back({s, d, 1.0});
    }
    const auto delta = graph::GraphBuilder::append(g_, batch);
    auto pre2 = partition::appendPreprocess(
        partition::Preprocessed(pre_), delta.graph, delta, popts_);
    ASSERT_TRUE(pre2.incremental);

    const auto before = store.stats();
    const std::uint64_t v2 =
        store.commitTopology(delta.graph, pre2, v1);
    ASSERT_NE(v2, 0u);
    EXPECT_GT(store.stats().shards_reused, before.shards_reused);

    auto loaded = store.loadTopology(v2, delta.graph);
    ASSERT_TRUE(loaded.has_value());
    expectSamePreprocessed(*loaded, pre2);
    // v1 remains loadable for the original graph: immutable lineage.
    EXPECT_TRUE(store.loadTopology(v1, g_).has_value());
}

// ------------------------------------------------- value-plane commits

TEST_F(DurableStoreTest, ValuesRoundTripExactly)
{
    DurableStore store(this->store());
    const std::uint64_t topo = store.commitTopology(g_, pre_);
    ASSERT_NE(topo, 0u);

    std::vector<Value> v_val(g_.numVertices());
    std::iota(v_val.begin(), v_val.end(), 0.25);
    std::vector<Value> e_val(eValSize(pre_));
    std::iota(e_val.begin(), e_val.end(), 1000.5);
    const std::vector<VertexId> active = {1, 5, 9};

    const std::uint64_t v =
        store.commitValues(g_, pre_, v_val, e_val, active, topo);
    ASSERT_NE(v, 0u);

    const auto loaded = store.loadValues(v);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->v_val, v_val);
    EXPECT_EQ(loaded->e_val, e_val);
    EXPECT_EQ(loaded->active, active);

    // The value version also serves topology loads (it inherits the
    // parent's meta/topo shard entries).
    EXPECT_TRUE(store.loadTopology(v, g_).has_value());
}

TEST_F(DurableStoreTest, DirtyValueCommitWritesOnlyDirtyPartitions)
{
    DurableStore store(this->store());
    const std::uint64_t topo = store.commitTopology(g_, pre_);
    ASSERT_NE(topo, 0u);

    std::vector<Value> v_val(g_.numVertices(), 1.0);
    std::vector<Value> e_val(eValSize(pre_), 2.0);
    const std::uint64_t full =
        store.commitValues(g_, pre_, v_val, e_val, {}, topo);
    ASSERT_NE(full, 0u);

    // Touch only partition 0's slice; commit with a one-entry dirty
    // list chained on the full flush.
    ASSERT_GE(pre_.numPartitions(), 2u);
    e_val[0] = 99.0;
    v_val[3] = 42.0;
    const std::vector<PartitionId> dirty = {0};
    const auto before = store.stats();
    const std::uint64_t incr = store.commitValues(
        g_, pre_, v_val, e_val, {}, full, &dirty);
    ASSERT_NE(incr, 0u);

    // vvals + exactly one evals shard were written; every clean
    // partition's shard (and all topology) was referenced.
    EXPECT_EQ(store.stats().shards_written - before.shards_written, 2u);
    EXPECT_GE(store.stats().shards_reused - before.shards_reused,
              static_cast<std::uint64_t>(pre_.numPartitions() - 1));

    const auto loaded = store.loadValues(incr);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->v_val, v_val);
    EXPECT_EQ(loaded->e_val, e_val);

    // The parent version still reads back its own (older) plane.
    const auto parent = store.loadValues(full);
    ASSERT_TRUE(parent.has_value());
    EXPECT_EQ(parent->e_val[0], 2.0);
    EXPECT_EQ(parent->v_val[3], 1.0);
}

TEST_F(DurableStoreTest, CommitValuesRejectsMismatchedSizes)
{
    DurableStore store(this->store());
    const std::uint64_t topo = store.commitTopology(g_, pre_);
    ASSERT_NE(topo, 0u);

    std::vector<Value> v_val(g_.numVertices(), 0.0);
    std::vector<Value> e_val(eValSize(pre_), 0.0);
    EXPECT_EQ(store.commitValues(g_, pre_, v_val, e_val, {}, 0), 0u);
    std::vector<Value> short_v(g_.numVertices() - 1, 0.0);
    EXPECT_EQ(store.commitValues(g_, pre_, short_v, e_val, {}, topo),
              0u);
    std::vector<Value> short_e(e_val.size() - 1, 0.0);
    EXPECT_EQ(store.commitValues(g_, pre_, v_val, short_e, {}, topo),
              0u);
}

// ------------------------------------------------ fault-plan matrix

TEST_F(DurableStoreTest, FailedWriteAbortsCommitAndKeepsParent)
{
    // First a clean commit through the real ops.
    {
        DurableStore clean(this->store());
        ASSERT_NE(clean.commitTopology(g_, pre_), 0u);
    }
    // A second commit where the Nth shard write dies must return 0 and
    // leave version 1 fully recoverable — for every N up to the whole
    // commit (meta + one shard per partition + the manifest).
    const long writes =
        static_cast<long>(2 + pre_.numPartitions());
    for (long n = 0; n < writes; ++n) {
        FileFaultPlan plan;
        plan.fail_write_at = n;
        FaultyFileOps ops(plan);
        DurableStore store(this->store(), &ops);
        EXPECT_EQ(store.commitTopology(g_, pre_), 0u) << "fail at " << n;
        DurableStore check(this->store());
        EXPECT_EQ(check.recoverVersion(&g_), 1u) << "fail at " << n;
    }
}

TEST_F(DurableStoreTest, TornManifestFallsBackOneVersion)
{
    {
        DurableStore clean(this->store());
        ASSERT_NE(clean.commitTopology(g_, pre_), 0u);
    }
    // Tear the last write of the next commit — the manifest. The commit
    // reports failure AND a truncated manifest file lands under the
    // final name (torn writeback); recovery must skip it.
    FileFaultPlan plan;
    plan.torn_write_at = static_cast<long>(1 + pre_.numPartitions());
    FaultyFileOps ops(plan);
    DurableStore store(this->store(), &ops);
    EXPECT_EQ(store.commitTopology(g_, pre_), 0u);

    DurableStore check(this->store());
    EXPECT_EQ(check.recoverVersion(&g_), 1u);
    EXPECT_GE(check.stats().fallbacks, 1u);
}

TEST_F(DurableStoreTest, ShortReadsNeverCrashRecovery)
{
    {
        DurableStore clean(this->store());
        ASSERT_NE(clean.commitTopology(g_, pre_), 0u);
    }
    // Truncate every Nth mapping in turn; recovery either still proves
    // version 1 (the short read hit an unused file) or returns 0 —
    // never crashes, never returns a version that then fails to load.
    for (long n = 0; n < 8; ++n) {
        FileFaultPlan plan;
        plan.short_read_at = n;
        FaultyFileOps ops(plan);
        DurableStore store(this->store(), &ops);
        const std::uint64_t v = store.recoverVersion(&g_);
        if (v != 0) {
            EXPECT_EQ(v, 1u) << "short read at " << n;
        }
    }
}

// ------------------------------------------------- recovery edge cases

TEST_F(DurableStoreTest, EmptyStoreRecoversToNothing)
{
    DurableStore store(this->store());
    EXPECT_EQ(store.recoverVersion(&g_), 0u);
    EXPECT_EQ(store.newestVersion(), 0u);
    EXPECT_FALSE(store.loadTopology(1, g_).has_value());
    EXPECT_EQ(engine::EngineSubstrate::openFrom(store, g_), nullptr);
}

TEST_F(DurableStoreTest, MissingShardFallsBackDownTheLineage)
{
    DurableStore store(this->store());
    const std::uint64_t v1 = store.commitTopology(g_, pre_);
    ASSERT_NE(v1, 0u);
    std::vector<Value> v_val(g_.numVertices(), 1.0);
    std::vector<Value> e_val(eValSize(pre_), 2.0);
    const std::uint64_t v2 =
        store.commitValues(g_, pre_, v_val, e_val, {}, v1);
    ASSERT_NE(v2, 0u);

    // Remove the newest version's vvals shard: v2's manifest is intact
    // but a named shard is gone -> recovery lands on v1.
    std::filesystem::remove(dir_ /
                            ("vvals.v" + std::to_string(v2) + ".shard"));
    DurableStore check(this->store());
    EXPECT_EQ(check.recoverVersion(&g_), v1);
    EXPECT_EQ(check.stats().fallbacks, 1u);
}

TEST_F(DurableStoreTest, SingleCorruptPartitionFallsBackExactlyOne)
{
    DurableStore store(this->store());
    const std::uint64_t v1 = store.commitTopology(g_, pre_);
    ASSERT_NE(v1, 0u);
    std::vector<Value> v_val(g_.numVertices(), 1.0);
    std::vector<Value> e_val(eValSize(pre_), 2.0);
    const std::uint64_t v2 =
        store.commitValues(g_, pre_, v_val, e_val, {}, v1);
    ASSERT_NE(v2, 0u);

    // Flip one byte in exactly one partition's E_val shard of v2: the
    // checksum mismatch must discard v2 (not abort), recover v1.
    corrupt("evals.p1.v" + std::to_string(v2) + ".shard");
    DurableStore check(this->store());
    EXPECT_EQ(check.recoverVersion(&g_), v1);
    EXPECT_EQ(check.stats().fallbacks, 1u);
    EXPECT_TRUE(check.loadTopology(v1, g_).has_value());
}

TEST_F(DurableStoreTest, OverlongManifestVersionNameIsIgnored)
{
    DurableStore store(this->store());
    const std::uint64_t v1 = store.commitTopology(g_, pre_);
    ASSERT_NE(v1, 0u);

    // A tampered/corrupted store dir can hold a manifest name whose
    // digit run overflows std::stoull; recovery must skip it — not die
    // on an uncaught std::out_of_range.
    std::ofstream(dir_ / "MANIFEST.v99999999999999999999999.json")
        << "{}";
    DurableStore check(this->store());
    EXPECT_EQ(check.recoverVersion(&g_), v1);
    const auto versions = check.listVersions();
    ASSERT_EQ(versions.size(), 1u);
    EXPECT_EQ(versions[0], v1);
}

// --------------------------------------- engine checkpoint flush-through

TEST_F(DurableStoreTest, EngineFlushesCheckpointsAndRestartsIdentically)
{
    DurableStore store(this->store());
    auto sub = engine::EngineSubstrate::build(
        g_, partition::Preprocessed(pre_));
    const std::uint64_t topo = sub->saveTo(store, g_);
    ASSERT_NE(topo, 0u);

    engine::EngineOptions opts;
    opts.engine_threads = 1;
    opts.store = &store;
    opts.store_parent = topo;
    const auto algo = std::make_shared<algorithms::Sssp>(0);

    engine::DiGraphEngine eng(g_, sub, opts);
    const auto with_store = eng.run(*algo);
    // The epoch-0 flush plus one commit per merge-barrier checkpoint.
    EXPECT_GT(eng.counters().get(metrics::Counter::StoreCommits), 0u);
    EXPECT_GT(store.newestVersion(), topo);
    const auto flushed = store.loadValues(store.newestVersion());
    ASSERT_TRUE(flushed.has_value());
    EXPECT_EQ(flushed->v_val.size(), g_.numVertices());

    // Attaching the store never changes algorithm results (it does add
    // checkpoint work to the simulated timeline, exactly like enabling
    // fault tolerance, so sim_cycles are compared only between runs of
    // the same configuration).
    engine::EngineOptions plain;
    plain.engine_threads = 1;
    engine::DiGraphEngine ref(g_, sub, plain);
    const auto ref_report = ref.run(*algo);
    ASSERT_EQ(ref_report.final_state.size(),
              with_store.final_state.size());
    for (std::size_t v = 0; v < ref_report.final_state.size(); ++v)
        ASSERT_EQ(ref_report.final_state[v], with_store.final_state[v])
            << "store flush: vertex " << v;
    EXPECT_EQ(ref_report.vertex_updates, with_store.vertex_updates);
    EXPECT_EQ(ref_report.rounds, with_store.rounds);

    // "Kill and restart": a brand-new process opens the store cold and
    // recomputes — bit-identical to a run that never crashed.
    DurableStore reopened(this->store());
    auto warm_sub = engine::EngineSubstrate::openFrom(reopened, g_);
    ASSERT_NE(warm_sub, nullptr);
    engine::DiGraphEngine warm(g_, warm_sub, plain);
    expectIdenticalRuns(warm.run(*algo), ref_report, "restart");
}

TEST_F(DurableStoreTest, DeviceLossRecoversFromDiskIdentically)
{
    DurableStore store(this->store());
    auto sub = engine::EngineSubstrate::build(
        g_, partition::Preprocessed(pre_));
    const std::uint64_t topo = sub->saveTo(store, g_);
    ASSERT_NE(topo, 0u);

    std::string err;
    const auto plan = gpusim::FaultPlan::parse("seed=3,device=1@1000",
                                               err);
    ASSERT_EQ(err, "");

    engine::EngineOptions with_disk;
    with_disk.engine_threads = 1;
    with_disk.platform.num_devices = 2;
    with_disk.faults = plan;
    with_disk.store = &store;
    with_disk.store_parent = topo;
    const auto algo = std::make_shared<algorithms::Sssp>(0);
    engine::DiGraphEngine a(g_, sub, with_disk);
    const auto from_disk = a.run(*algo);

    engine::EngineOptions in_memory = with_disk;
    in_memory.store = nullptr;
    in_memory.store_parent = 0;
    engine::DiGraphEngine b(g_, sub, in_memory);
    const auto from_shadow = b.run(*algo);

    // Device-loss rollback reloading the checkpoint from disk is byte
    // for byte the in-memory shadow rollback.
    expectIdenticalRuns(from_disk, from_shadow, "device loss");
    if (from_disk.recoveries > 0) {
        EXPECT_GT(a.counters().get(metrics::Counter::StoreRecovers),
                  0u);
    }
}

TEST_F(DurableStoreTest, FailedFlushCarriesDirtyPartitionsForward)
{
    // Two stores over sibling dirs: one clean, one whose FIRST
    // post-epoch-0 flush write dies. The failed epoch's dirty
    // partitions must ride into the next flush — so both stores' final
    // committed value planes are bit-identical. (Without the backlog,
    // the epoch after the failure marks the lost partitions "clean"
    // and the faulty store's newest version reuses stale shards.)
    const std::string clean_dir = (dir_ / "clean").string();
    const std::string faulty_dir = (dir_ / "faulty").string();
    auto sub = engine::EngineSubstrate::build(
        g_, partition::Preprocessed(pre_));
    const auto algo = std::make_shared<algorithms::Sssp>(0);

    DurableStore clean(clean_dir);
    const std::uint64_t clean_topo = sub->saveTo(clean, g_);
    ASSERT_NE(clean_topo, 0u);
    {
        DurableStore setup(faulty_dir);
        ASSERT_EQ(sub->saveTo(setup, g_), clean_topo);
    }
    // Engine init commit = vvals + one evals per partition + manifest;
    // the next write is the epoch-1 flush's vvals.
    FileFaultPlan plan;
    plan.fail_write_at = static_cast<long>(pre_.numPartitions() + 2);
    FaultyFileOps ops(plan);
    DurableStore faulty(faulty_dir, &ops);

    engine::EngineOptions opts;
    opts.engine_threads = 1;
    opts.checkpoint_interval = 1; // flush every wave: several epochs
    opts.store = &clean;
    opts.store_parent = clean_topo;
    engine::DiGraphEngine a(g_, sub, opts);
    const auto clean_report = a.run(*algo);

    opts.store = &faulty;
    engine::DiGraphEngine b(g_, sub, opts);
    const auto faulty_report = b.run(*algo);

    // The injected failure fired, and at least one later flush landed.
    EXPECT_GE(b.counters().get(metrics::Counter::StoreCommitFails), 1u);
    EXPECT_GE(b.counters().get(metrics::Counter::StoreCommits), 2u);
    expectIdenticalRuns(clean_report, faulty_report, "failed flush");

    // Both newest versions snapshot the same (last) checkpoint epoch;
    // the faulty lineage must not have leaked a stale shard into it.
    const auto want = clean.loadValues(clean.newestVersion());
    DurableStore reopened(faulty_dir);
    const auto got = reopened.loadValues(reopened.newestVersion());
    ASSERT_TRUE(want.has_value());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->v_val, want->v_val);
    EXPECT_EQ(got->e_val, want->e_val);
}

TEST_F(DurableStoreTest, DeviceLossAfterFailedFlushUsesTheShadow)
{
    // A failed flush leaves the disk one (or more) epochs behind the
    // in-memory shadow. Device-loss recovery must then ignore the disk
    // copy: substituting the older version would mix rolled-back and
    // live entries (the dirty journals only cover the last epoch).
    auto sub = engine::EngineSubstrate::build(
        g_, partition::Preprocessed(pre_));
    DurableStore setup(this->store());
    const std::uint64_t topo = sub->saveTo(setup, g_);
    ASSERT_NE(topo, 0u);

    std::string err;
    const auto fault = gpusim::FaultPlan::parse("seed=3,device=1@1000",
                                                err);
    ASSERT_EQ(err, "");
    const auto algo = std::make_shared<algorithms::Sssp>(0);

    // Every value flush after epoch 0 dies: the store stays pinned at
    // the initial checkpoint while the shadow advances every wave, so
    // the loss is guaranteed to land while disk and shadow disagree.
    FileFaultPlan plan;
    plan.fail_writes_from = static_cast<long>(pre_.numPartitions() + 2);
    FaultyFileOps ops(plan);
    DurableStore faulty(this->store(), &ops);

    engine::EngineOptions with_disk;
    with_disk.engine_threads = 1;
    with_disk.platform.num_devices = 2;
    with_disk.checkpoint_interval = 1;
    with_disk.faults = fault;
    with_disk.store = &faulty;
    with_disk.store_parent = topo;
    engine::DiGraphEngine a(g_, sub, with_disk);
    const auto from_disk = a.run(*algo);

    engine::EngineOptions in_memory = with_disk;
    in_memory.store = nullptr;
    in_memory.store_parent = 0;
    engine::DiGraphEngine b(g_, sub, in_memory);
    const auto from_shadow = b.run(*algo);

    EXPECT_GE(a.counters().get(metrics::Counter::StoreCommitFails), 1u);
    expectIdenticalRuns(from_disk, from_shadow,
                        "device loss after failed flush");
}

// --------------------------------------------------------- job journal

TEST_F(DurableStoreTest, JournalReplayReturnsAdmittedMinusCompleted)
{
    std::filesystem::create_directories(dir_);
    JobJournal journal((dir_ / "jobs.wal").string());
    ASSERT_TRUE(journal.appendAdmit(0, "sssp:0", 2, "a"));
    ASSERT_TRUE(journal.appendAdmit(1, "pagerank", 0, ""));
    ASSERT_TRUE(journal.appendComplete(0));
    ASSERT_TRUE(journal.appendAdmit(2, "wcc", -1, "b"));

    const auto pending = journal.replay();
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_EQ(pending[0].id, 1u);
    EXPECT_EQ(pending[0].spec, "pagerank");
    EXPECT_EQ(pending[0].tenant, "");
    EXPECT_EQ(pending[1].id, 2u);
    EXPECT_EQ(pending[1].spec, "wcc");
    EXPECT_EQ(pending[1].priority, -1);
    EXPECT_EQ(pending[1].tenant, "b");

    ASSERT_TRUE(journal.reset());
    EXPECT_TRUE(journal.replay().empty());
}

TEST_F(DurableStoreTest, JournalDiscardsTornTail)
{
    std::filesystem::create_directories(dir_);
    const auto path = (dir_ / "jobs.wal").string();
    JobJournal journal(path);
    ASSERT_TRUE(journal.appendAdmit(0, "sssp:0", 0, "a"));
    // A crash mid-append leaves an unterminated record.
    {
        std::ofstream out(path, std::ios::app);
        out << "A 1 0 b kco"; // no newline
    }
    const auto pending = journal.replay();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].spec, "sssp:0");
}

TEST_F(DurableStoreTest, JournalTruncatesTornTailBeforeAppending)
{
    // A torn tail must not just be skipped at replay: a later append
    // would fuse with the torn prefix into one garbage line. The first
    // append after reopening truncates the unterminated tail away.
    std::filesystem::create_directories(dir_);
    const auto path = (dir_ / "jobs.wal").string();
    {
        JobJournal journal(path);
        ASSERT_TRUE(journal.appendAdmit(0, "sssp:0", 0, "a"));
    }
    {
        std::ofstream out(path, std::ios::app);
        out << "A 1 0 b kco"; // crash mid-append: no newline
    }
    JobJournal reopened(path);
    ASSERT_TRUE(reopened.appendAdmit(5, "wcc", 0, "c"));
    const auto pending = reopened.replay();
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_EQ(pending[0].spec, "sssp:0");
    EXPECT_EQ(pending[1].spec, "wcc");
    EXPECT_EQ(pending[1].tenant, "c");
}

TEST_F(DurableStoreTest, JournalCompactionAndAdoptionSurviveRestart)
{
    std::filesystem::create_directories(dir_);
    const auto path = (dir_ / "jobs.wal").string();
    JobJournal journal(path);
    ASSERT_TRUE(journal.appendAdmit(0, "sssp:0", 2, "a"));
    ASSERT_TRUE(journal.appendAdmit(1, "pagerank", 0, ""));
    ASSERT_TRUE(journal.appendComplete(0));
    ASSERT_TRUE(journal.appendAdmit(2, "wcc", -1, "b"));

    const auto pending = journal.replay();
    ASSERT_EQ(pending.size(), 2u);
    ASSERT_TRUE(journal.compact(pending));

    // The compacted WAL replays the identical set under the same
    // record ids — a crash right here loses nothing.
    JobJournal reopened(path);
    const auto again = reopened.replay();
    ASSERT_EQ(again.size(), 2u);
    EXPECT_EQ(again[0].id, 1u);
    EXPECT_EQ(again[0].spec, "pagerank");
    EXPECT_EQ(again[1].id, 2u);
    EXPECT_EQ(again[1].spec, "wcc");
    EXPECT_EQ(again[1].priority, -1);

    // Re-admission adopts the surviving records (no new writes), and a
    // genuinely new job gets a record id that collides with nothing
    // even though its *service* id (0) is already taken in the WAL.
    ASSERT_TRUE(reopened.appendAdmit(0, "pagerank", 0, "", 1));
    ASSERT_TRUE(reopened.appendAdmit(1, "wcc", -1, "b", 2));
    ASSERT_TRUE(reopened.appendAdmit(2, "kcore:3", 0, ""));
    const auto mixed = reopened.replay();
    ASSERT_EQ(mixed.size(), 3u);
    EXPECT_EQ(mixed[2].id, 3u);
    EXPECT_EQ(mixed[2].spec, "kcore:3");

    // Completing an adopted job retires the OLD record, not a fresh
    // id: service job 0 maps back to WAL record 1.
    ASSERT_TRUE(reopened.appendComplete(0));
    const auto after = reopened.replay();
    ASSERT_EQ(after.size(), 2u);
    EXPECT_EQ(after[0].id, 2u);
    EXPECT_EQ(after[0].spec, "wcc");
    EXPECT_EQ(after[1].id, 3u);
}

TEST_F(DurableStoreTest, TornAppendInjectionLeavesJournalReadable)
{
    std::filesystem::create_directories(dir_);
    const auto path = (dir_ / "jobs.wal").string();
    {
        JobJournal journal(path);
        ASSERT_TRUE(journal.appendAdmit(0, "sssp:0", 0, "a"));
        FileFaultPlan plan;
        plan.torn_append_at = 0;
        FaultyFileOps ops(plan);
        JobJournal faulty(path, &ops);
        EXPECT_FALSE(faulty.appendAdmit(1, "pagerank", 0, "b"));
    }
    JobJournal journal(path);
    const auto pending = journal.replay();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].spec, "sssp:0");
}

TEST_F(DurableStoreTest,
       ServiceJournalsJobsAndReplayedRunIsIdempotent)
{
    DurableStore store(this->store());
    auto sub = engine::EngineSubstrate::build(
        g_, partition::Preprocessed(pre_));
    ASSERT_NE(sub->saveTo(store, g_), 0u);

    JobJournal journal(store.journalPath());
    engine::EngineOptions opts;
    opts.engine_threads = 1;
    engine::ServiceConfig sconfig;
    sconfig.session_threads = 1;
    sconfig.journal = &journal;

    std::vector<Value> first_state;
    {
        engine::GraphService service(g_, sub, opts, sconfig);
        service.addJobAsync(engine::JobRequest{"sssp:0", "a", 1});
        service.addJobAsync(engine::JobRequest{"wcc", "b", 0});
        const auto results = service.drain();
        ASSERT_EQ(results.size(), 2u);
        first_state = results[0].report.final_state;
    }
    // Both completed: the WAL carries their A and C records, so a
    // replay finds nothing pending.
    EXPECT_TRUE(journal.replay().empty());

    // A job that finished *between* its completion and the C append
    // (crash window) is re-run on restart; idempotent because results
    // are deterministic. Simulate by appending an orphan A record.
    ASSERT_TRUE(journal.appendAdmit(9, "sssp:0", 1, "a"));
    const auto pending = journal.replay();
    ASSERT_EQ(pending.size(), 1u);
    // Restart protocol (what the CLI serve path does): compact the WAL
    // down to the pending set — still replayable if we crash here —
    // then re-admit with adoption so completions retire the old
    // records instead of journaling fresh (possibly colliding) ids.
    ASSERT_TRUE(journal.compact(pending));
    ASSERT_EQ(journal.replay().size(), 1u);

    engine::GraphService restarted(g_, sub, opts, sconfig);
    for (const auto &p : pending) {
        engine::JobRequest request;
        request.spec = p.spec;
        request.priority = p.priority;
        if (!p.tenant.empty())
            request.tenant = p.tenant;
        request.journal_id = p.id;
        restarted.addJobAsync(request);
    }
    const auto results = restarted.drain();
    ASSERT_EQ(results.size(), 1u);
    ASSERT_EQ(results[0].report.final_state.size(),
              first_state.size());
    for (std::size_t v = 0; v < first_state.size(); ++v)
        ASSERT_EQ(results[0].report.final_state[v], first_state[v])
            << "vertex " << v;
    // The adopted record was completed under its original WAL id: a
    // third restart finds nothing pending.
    EXPECT_TRUE(journal.replay().empty());
}

} // namespace
} // namespace digraph::storage
