/**
 * @file
 * Shared helpers for the test suites: state comparison against the
 * sequential oracle and a small collection of interesting test graphs.
 */

#pragma once

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/algorithm.hpp"
#include "graph/builder.hpp"
#include "graph/digraph.hpp"
#include "graph/generators.hpp"

namespace digraph::test {

/** Assert two state vectors agree within @p tol (inf == inf allowed). */
inline void
expectStatesNear(const std::vector<Value> &got,
                 const std::vector<Value> &want, double tol,
                 const std::string &label)
{
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t v = 0; v < got.size(); ++v) {
        if (std::isinf(want[v])) {
            EXPECT_TRUE(std::isinf(got[v]))
                << label << ": vertex " << v << " got " << got[v];
        } else {
            // Relative tolerance: threshold-truncated algorithms (e.g.
            // delta PageRank) accumulate error proportional to the state
            // magnitude on hub vertices.
            const double bound = tol * std::max(1.0, std::abs(want[v]));
            EXPECT_NEAR(got[v], want[v], bound)
                << label << ": vertex " << v;
        }
    }
}

/** A named test graph. */
struct NamedGraph
{
    std::string name;
    graph::DirectedGraph graph;
};

/** Small but structurally diverse graphs for cross-engine checks. */
inline std::vector<NamedGraph>
testGraphs()
{
    using namespace digraph::graph;
    std::vector<NamedGraph> out;
    out.push_back({"chain64", makeChain(64, 2.0)});
    out.push_back({"cycle50", makeCycle(50, 1.5)});
    out.push_back({"star33", makeStar(33)});
    out.push_back({"tree63", makeBinaryTree(63)});
    out.push_back({"dag", makeRandomDag(200, 900, 7)});
    out.push_back({"grid", makeGrid(12, 12)});

    GeneratorConfig c;
    c.num_vertices = 400;
    c.num_edges = 2400;
    c.seed = 11;
    out.push_back({"random", generate(c)});

    c.forward_bias = 0.9; // DAG-ish
    c.seed = 13;
    out.push_back({"dagish", generate(c)});

    c.forward_bias = 0.5;
    c.locality = 0.9;
    c.locality_window = 6;
    c.seed = 17;
    out.push_back({"longdist", generate(c)});
    return out;
}

} // namespace digraph::test
