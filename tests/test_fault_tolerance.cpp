/**
 * @file
 * Fault-tolerant execution: deterministic fault injection, barrier
 * checkpointing, and degrade-and-redistribute recovery.
 *
 * The headline property: a run that loses a device mid-flight must
 * converge to the same fixed point as the fault-free run — bit-identical
 * for monotone algorithms, within the algorithm's result tolerance for
 * accumulative ones — at every engine_threads value, and its
 * fault/retry/checkpoint/recovery counters must equal the trace event
 * counts.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/factory.hpp"
#include "engine/digraph_engine.hpp"
#include "gpusim/fault.hpp"
#include "graph/generators.hpp"
#include "metrics/trace.hpp"
#include "test_util.hpp"

namespace digraph {
namespace {

engine::EngineOptions
faultOptions(const std::string &spec, unsigned gpus = 2,
             std::size_t threads = 1)
{
    engine::EngineOptions opts;
    opts.engine_threads = threads;
    opts.platform.num_devices = gpus;
    if (!spec.empty()) {
        std::string err;
        opts.faults = gpusim::FaultPlan::parse(spec, err);
        EXPECT_EQ(err, "") << spec;
    }
    return opts;
}

/** Bitwise report equality (the determinism contract under faults). */
void
expectIdenticalReports(const metrics::RunReport &a,
                       const metrics::RunReport &b,
                       const std::string &label)
{
    ASSERT_EQ(a.final_state.size(), b.final_state.size()) << label;
    for (std::size_t v = 0; v < a.final_state.size(); ++v) {
        EXPECT_EQ(a.final_state[v], b.final_state[v])
            << label << ": vertex " << v;
    }
    EXPECT_EQ(a.edge_processings, b.edge_processings) << label;
    EXPECT_EQ(a.vertex_updates, b.vertex_updates) << label;
    EXPECT_EQ(a.rounds, b.rounds) << label;
    EXPECT_EQ(a.waves, b.waves) << label;
    EXPECT_EQ(a.partition_processings, b.partition_processings) << label;
    EXPECT_EQ(a.host_transfer_bytes, b.host_transfer_bytes) << label;
    EXPECT_EQ(a.ring_transfer_bytes, b.ring_transfer_bytes) << label;
    EXPECT_EQ(a.sim_cycles, b.sim_cycles) << label;
    EXPECT_EQ(a.faults_injected, b.faults_injected) << label;
    EXPECT_EQ(a.transfer_retries, b.transfer_retries) << label;
    EXPECT_EQ(a.checkpoints, b.checkpoints) << label;
    EXPECT_EQ(a.recoveries, b.recoveries) << label;
}

// --- FaultPlan parsing ---

TEST(FaultPlan, ParsesFullSpec)
{
    std::string err;
    const auto plan = gpusim::FaultPlan::parse(
        "seed=7,device=1@50000,xfer=0.01,smx=0.3@20000x16", err);
    ASSERT_EQ(err, "");
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_DOUBLE_EQ(plan.transfer_drop_p, 0.01);
    ASSERT_EQ(plan.device_loss.size(), 1u);
    EXPECT_EQ(plan.device_loss[0].device, 1u);
    EXPECT_DOUBLE_EQ(plan.device_loss[0].at_cycle, 50000.0);
    ASSERT_EQ(plan.smx_stalls.size(), 1u);
    EXPECT_EQ(plan.smx_stalls[0].device, 0u);
    EXPECT_EQ(plan.smx_stalls[0].smx, 3u);
    EXPECT_DOUBLE_EQ(plan.smx_stalls[0].at_cycle, 20000.0);
    EXPECT_DOUBLE_EQ(plan.smx_stalls[0].factor, 16.0);
    EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, StallFactorDefaultsToEight)
{
    std::string err;
    const auto plan = gpusim::FaultPlan::parse("smx=1.2@100", err);
    ASSERT_EQ(err, "");
    ASSERT_EQ(plan.smx_stalls.size(), 1u);
    EXPECT_DOUBLE_EQ(plan.smx_stalls[0].factor, 8.0);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"device", "device=zzz", "device=1", "xfer=lots", "smx=3@5",
          "smx=0.1@2xhuge", "seed=abc", "turbo=1", "device=1@-"}) {
        std::string err;
        (void)gpusim::FaultPlan::parse(bad, err);
        EXPECT_NE(err, "") << "spec '" << bad << "' should be rejected";
    }
}

TEST(FaultPlan, ValidateChecksPlatformRanges)
{
    gpusim::PlatformConfig pc;
    pc.num_devices = 2;

    std::string err;
    auto plan = gpusim::FaultPlan::parse("device=5@100", err);
    ASSERT_EQ(err, "");
    EXPECT_NE(plan.validate(pc), "");

    plan = gpusim::FaultPlan::parse("device=1@100", err);
    ASSERT_EQ(err, "");
    EXPECT_EQ(plan.validate(pc), "");

    plan = gpusim::FaultPlan::parse(
        "smx=0." + std::to_string(pc.smx_per_device) + "@5", err);
    ASSERT_EQ(err, "");
    EXPECT_NE(plan.validate(pc), "");

    plan.smx_stalls.clear();
    plan.transfer_drop_p = 1.5;
    EXPECT_NE(plan.validate(pc), "");
}

// --- FaultInjector determinism ---

TEST(FaultInjector, CoinStreamIsDeterministicAndResettable)
{
    gpusim::FaultPlan plan;
    plan.seed = 42;
    plan.transfer_drop_p = 0.5;

    const auto sequence = [](gpusim::FaultInjector &inj) {
        std::vector<unsigned> attempts;
        for (int i = 0; i < 64; ++i)
            attempts.push_back(inj.attemptTransfer(8, 100.0).attempts);
        return attempts;
    };

    gpusim::FaultInjector a(plan);
    gpusim::FaultInjector b(plan);
    const auto seq_a = sequence(a);
    EXPECT_EQ(seq_a, sequence(b));
    a.reset();
    EXPECT_EQ(seq_a, sequence(a));

    plan.seed = 43;
    gpusim::FaultInjector c(plan);
    EXPECT_NE(seq_a, sequence(c)); // different stream, same plan shape
}

TEST(FaultInjector, DiscreteFaultsFireExactlyOnce)
{
    gpusim::FaultPlan plan;
    plan.device_loss.push_back({1, 500.0});
    gpusim::FaultInjector inj(plan);

    std::vector<DeviceId> due;
    inj.drainDueDeviceLoss(100.0, due);
    EXPECT_TRUE(due.empty()); // not due yet
    inj.drainDueDeviceLoss(600.0, due);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 1u);
    inj.drainDueDeviceLoss(700.0, due);
    EXPECT_EQ(due.size(), 1u); // fired once, stays fired
    inj.reset();
    inj.drainDueDeviceLoss(700.0, due);
    EXPECT_EQ(due.size(), 2u); // reset re-arms
}

TEST(FaultInjector, ExhaustedRetryBudgetIsReportedNotSilent)
{
    gpusim::FaultPlan plan;
    plan.transfer_drop_p = 1.0;
    gpusim::FaultInjector inj(plan);
    const auto outcome = inj.attemptTransfer(3, 100.0);
    EXPECT_FALSE(outcome.delivered);
    EXPECT_EQ(outcome.attempts, 4u);
}

// --- device loss: recovery converges to the fault-free fixed point ---

TEST(FaultTolerance, DeviceLossConvergesToFaultFreeResult)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
    // Monotone algorithms restart to a bit-identical fixed point;
    // accumulative ones re-converge within their result tolerance.
    const std::vector<std::pair<std::string, bool>> algos = {
        {"sssp", true},     {"wcc", true},        {"kcore", true},
        {"pagerank", false}, {"adsorption", false}};

    for (const auto &[name, bitwise] : algos) {
        const auto algo = algorithms::makeAlgorithm(name, g);

        engine::DiGraphEngine clean(g, faultOptions(""));
        const auto want = clean.run(*algo);
        ASSERT_GT(want.sim_cycles, 0.0) << name;

        // Kill device 1 at ~40% of the fault-free makespan — far enough
        // in that checkpoints and real work exist, early enough that
        // plenty of work remains.
        const double kill_at = 0.4 * want.sim_cycles;
        auto opts = faultOptions("seed=3,device=1@" +
                                 std::to_string(kill_at));
        opts.verify_invariants = true; // panic inside run() on violation
        engine::DiGraphEngine faulted(g, opts);
        const auto got = faulted.run(*algo);

        EXPECT_GE(got.faults_injected, 1u) << name;
        EXPECT_EQ(got.recoveries, 1u) << name;
        EXPECT_GE(got.checkpoints, 1u) << name;

        if (bitwise) {
            for (std::size_t v = 0; v < want.final_state.size(); ++v) {
                ASSERT_EQ(got.final_state[v], want.final_state[v])
                    << name << ": vertex " << v;
            }
        } else {
            test::expectStatesNear(got.final_state, want.final_state,
                                   algo->resultTolerance(),
                                   name + "/device-loss");
        }

        const auto inv = faulted.postRunInvariants(*algo);
        EXPECT_TRUE(inv.ok())
            << name << ": " << inv.detail
            << " (max residual " << inv.max_residual << ")";
    }
}

TEST(FaultTolerance, FaultedRunsAreThreadCountInvariant)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
    for (const char *name : {"sssp", "pagerank"}) {
        const auto algo = algorithms::makeAlgorithm(name, g);
        const std::string spec = "seed=11,device=1@1000,xfer=0.02";

        engine::DiGraphEngine serial(g, faultOptions(spec, 2, 1));
        const auto base = serial.run(*algo);
        EXPECT_GE(base.recoveries, 1u) << name;

        for (const std::size_t threads : {2ul, 4ul}) {
            engine::DiGraphEngine parallel(
                g, faultOptions(spec, 2, threads));
            const auto got = parallel.run(*algo);
            expectIdenticalReports(base, got,
                                   std::string(name) + "/threads=" +
                                       std::to_string(threads));
        }
    }
}

TEST(FaultTolerance, DeviceLossRerunIsReproducible)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
    const auto algo = algorithms::makeAlgorithm("sssp", g);
    const std::string spec = "seed=5,device=0@2000,xfer=0.01";

    engine::DiGraphEngine eng(g, faultOptions(spec));
    const auto first = eng.run(*algo);
    EXPECT_GE(first.recoveries, 1u);
    // Same engine, rerun: the injector and the platform rewind.
    const auto second = eng.run(*algo);
    expectIdenticalReports(first, second, "rerun");
}

// --- transfer drops and SMX stalls perturb time, never results ---

TEST(FaultTolerance, TransferRetriesDelayButDoNotChangeResults)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
    const auto algo = algorithms::makeAlgorithm("sssp", g);

    engine::DiGraphEngine clean(g, faultOptions(""));
    const auto want = clean.run(*algo);

    auto opts = faultOptions("seed=9,xfer=0.2");
    opts.verify_invariants = true;
    engine::DiGraphEngine dropped(g, opts);
    const auto got = dropped.run(*algo);

    EXPECT_GT(got.transfer_retries, 0u);
    EXPECT_EQ(got.recoveries, 0u);
    EXPECT_GE(got.sim_cycles, want.sim_cycles); // backoff only adds time
    for (std::size_t v = 0; v < want.final_state.size(); ++v) {
        ASSERT_EQ(got.final_state[v], want.final_state[v])
            << "vertex " << v;
    }
}

TEST(FaultTolerance, SmxStallSlowsTheClockButNotTheAnswer)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
    for (const char *name : {"sssp", "pagerank"}) {
        const auto algo = algorithms::makeAlgorithm(name, g);

        engine::DiGraphEngine clean(g, faultOptions(""));
        const auto want = clean.run(*algo);

        engine::DiGraphEngine stalled(
            g, faultOptions("smx=0.0@500x16"));
        const auto got = stalled.run(*algo);

        EXPECT_EQ(got.faults_injected, 1u) << name;
        EXPECT_GT(got.sim_cycles, want.sim_cycles) << name;
        // Dispatch decisions never read the clocks, so a throttled SMX
        // cannot change what is computed — only when.
        for (std::size_t v = 0; v < want.final_state.size(); ++v) {
            ASSERT_EQ(got.final_state[v], want.final_state[v])
                << name << ": vertex " << v;
        }
    }
}

// --- observability: counters must equal trace event counts ---

TEST(FaultTolerance, CountersMatchTraceEventCounts)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
    const auto algo = algorithms::makeAlgorithm("sssp", g);

    metrics::TraceSink sink;
    auto opts = faultOptions("seed=3,device=1@1000,xfer=0.05");
    opts.trace = &sink;
    engine::DiGraphEngine eng(g, opts);
    const auto report = eng.run(*algo);

    std::uint64_t injected = 0, retries = 0, checkpoints = 0,
                  recoveries = 0;
    for (const auto &ev : sink.events()) {
        switch (ev.type) {
          case metrics::TraceEventType::FaultInjected: ++injected; break;
          case metrics::TraceEventType::TransferRetry: ++retries; break;
          case metrics::TraceEventType::Checkpoint: ++checkpoints; break;
          case metrics::TraceEventType::Recovery: ++recoveries; break;
          default: break;
        }
    }
    EXPECT_GE(report.recoveries, 1u);
    EXPECT_GT(report.transfer_retries, 0u);
    EXPECT_EQ(report.faults_injected, injected);
    EXPECT_EQ(report.transfer_retries, retries);
    EXPECT_EQ(report.checkpoints, checkpoints);
    EXPECT_EQ(report.recoveries, recoveries);
}

TEST(FaultTolerance, FaultFreeRunsPayNoFaultCost)
{
    const auto g = graph::makeChain(64, 2.0);
    const auto algo = algorithms::makeAlgorithm("sssp", g);
    engine::DiGraphEngine eng(g, faultOptions(""));
    const auto report = eng.run(*algo);
    EXPECT_EQ(report.faults_injected, 0u);
    EXPECT_EQ(report.transfer_retries, 0u);
    EXPECT_EQ(report.checkpoints, 0u);
    EXPECT_EQ(report.recoveries, 0u);
}

// --- the post-run invariant checker itself ---

TEST(FaultTolerance, InvariantCheckerAcceptsFaultFreeRuns)
{
    for (auto &ng : test::testGraphs()) {
        for (const char *name : {"sssp", "wcc", "pagerank"}) {
            const auto algo = algorithms::makeAlgorithm(name, ng.graph);
            engine::DiGraphEngine eng(ng.graph, faultOptions(""));
            (void)eng.run(*algo);
            const auto inv = eng.postRunInvariants(*algo);
            EXPECT_TRUE(inv.ok())
                << ng.name << "/" << name << ": " << inv.detail;
        }
    }
}

// --- hard aborts ---

TEST(FaultToleranceDeath, ExhaustedRecoveryBudgetAborts)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
    const auto algo = algorithms::makeAlgorithm("sssp", g);
    auto opts = faultOptions("device=1@500");
    opts.max_recoveries = 0;
    EXPECT_EXIT(
        {
            engine::DiGraphEngine eng(g, opts);
            eng.run(*algo);
        },
        ::testing::ExitedWithCode(1), "recovery budget");
}

TEST(FaultToleranceDeath, LosingTheLastDeviceAborts)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
    const auto algo = algorithms::makeAlgorithm("sssp", g);
    const auto opts = faultOptions("device=0@500", /*gpus=*/1);
    EXPECT_EXIT(
        {
            engine::DiGraphEngine eng(g, opts);
            eng.run(*algo);
        },
        ::testing::ExitedWithCode(1), "no device survives");
}

TEST(FaultToleranceDeath, PermanentTransferFailureAborts)
{
    const auto g = graph::makeDataset(graph::Dataset::dblp, 0.2);
    const auto algo = algorithms::makeAlgorithm("sssp", g);
    const auto opts = faultOptions("xfer=1.0");
    EXPECT_EXIT(
        {
            engine::DiGraphEngine eng(g, opts);
            eng.run(*algo);
        },
        ::testing::ExitedWithCode(1), "permanently failed");
}

} // namespace
} // namespace digraph
