/**
 * @file
 * Portable software-prefetch hint. The path engine's hot loops walk
 * E_idx sequentially but read V_val through a vertex-id indirection —
 * a classic gather. Issuing the V_val prefetch a few slots ahead hides
 * most of that latency; on compilers without the builtin the hint
 * compiles to nothing.
 */

#pragma once

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define DIGRAPH_PREFETCH(addr) __builtin_prefetch((addr))
#else
#define DIGRAPH_PREFETCH(addr) ((void)0)
#endif

namespace digraph {

/** Slots of lookahead for gather prefetches (empirically enough to
 *  cover an L2 miss without thrashing the load queue). */
inline constexpr std::size_t kPrefetchDistance = 16;

} // namespace digraph
