#include "common/logging.hpp"

#include <cstdio>
#include <mutex>

namespace digraph {

namespace {

const char *
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Debug: return "DEBUG";
    }
    return "?";
}

std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

LogLevel &
Log::level()
{
    static LogLevel lvl = LogLevel::Warn;
    return lvl;
}

void
Log::write(LogLevel lvl, const std::string &msg)
{
    if (lvl > level() && lvl != LogLevel::Error)
        return;
    std::lock_guard<std::mutex> guard(logMutex());
    std::fprintf(stderr, "[digraph %s] %s\n", levelName(lvl), msg.c_str());
}

} // namespace digraph
