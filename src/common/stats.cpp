#include "common/stats.hpp"

namespace digraph {

Counter &
StatsRegistry::counter(const std::string &name)
{
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatsRegistry::snapshot() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, counter] : counters_) {
        out.emplace_back(name, counter->value());
    }
    return out;
}

std::uint64_t
StatsRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

void
StatsRegistry::resetAll()
{
    for (auto &[name, counter] : counters_) {
        (void)name;
        counter->reset();
    }
}

} // namespace digraph
