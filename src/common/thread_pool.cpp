#include "common/thread_pool.hpp"

#include <algorithm>

namespace digraph {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    const std::size_t num_blocks = std::min(count, size());
    const std::size_t block = (count + num_blocks - 1) / num_blocks;
    std::vector<std::future<void>> futures;
    futures.reserve(num_blocks);
    for (std::size_t b = 0; b < num_blocks; ++b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(count, lo + block);
        if (lo >= hi)
            break;
        futures.push_back(submit([lo, hi, &fn] {
            for (std::size_t i = lo; i < hi; ++i)
                fn(i);
        }));
    }
    for (auto &fut : futures)
        fut.get();
}

void
ThreadPool::forEachIndex(std::size_t count,
                         const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (count == 1 || size() == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(submit([i, &fn] { fn(i); }));
    std::exception_ptr first_error;
    for (auto &fut : futures) {
        try {
            fut.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace digraph
