/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything random in this repository (graph generators, sampling in the
 * property analyzers, tie breaking) flows from SplitMix64 so runs are
 * exactly reproducible from a single seed.
 */

#pragma once

#include <cstdint>

namespace digraph {

/**
 * SplitMix64 generator. Tiny state, high quality, trivially seedable.
 */
class SplitMix64
{
  public:
    /** Construct from a 64-bit seed. */
    explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /** Derive an independent child generator (for parallel streams). */
    SplitMix64
    split()
    {
        return SplitMix64(next());
    }

  private:
    std::uint64_t state_;
};

} // namespace digraph
