/**
 * @file
 * A small fixed-size thread pool used by the parallel CPU preprocessing
 * stage (path decomposition, SCC contraction — Section 3.2.1) and by the
 * simulator's per-device drivers.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace digraph {

/**
 * Fixed-size thread pool with a shared FIFO task queue.
 */
class ThreadPool
{
  public:
    /**
     * Create a pool with @p num_threads workers.
     * @param num_threads Number of worker threads; 0 means
     *                    hardware_concurrency().
     */
    explicit ThreadPool(std::size_t num_threads = 0);

    /** Join all workers; pending tasks are still executed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** Enqueue a task and obtain a future for its completion. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> guard(mutex_);
            tasks_.push([task] { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /**
     * Run fn(i) for every i in [0, count) across the pool and wait for all
     * of them. Work is distributed in contiguous blocks.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Run fn(i) for every i in [0, count) with one task per index and act
     * as a barrier: returns only when every call has finished. Meant for
     * coarse-grained items of uneven size (e.g. partition dispatches of a
     * wave), where per-index scheduling beats contiguous blocks. The first
     * exception thrown by any task is rethrown after the barrier.
     */
    void forEachIndex(std::size_t count,
                      const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace digraph
