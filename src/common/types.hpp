/**
 * @file
 * Fundamental identifier and value types shared by every DiGraph module.
 *
 * All graph-scale quantities use fixed-width integers so that storage
 * layouts (Section 3.2.1 of the paper) are portable and the simulated
 * traffic accounting in gpusim is byte-exact.
 */

#pragma once

#include <cstdint>
#include <limits>

namespace digraph {

/** Identifier of a vertex in the input directed graph. */
using VertexId = std::uint32_t;

/** Identifier (index) of a directed edge. */
using EdgeId = std::uint64_t;

/** Identifier of a directed path produced by the path decomposition. */
using PathId = std::uint32_t;

/** Identifier of a graph partition (a set of paths dispatched together). */
using PartitionId = std::uint32_t;

/** Identifier of an SCC-vertex in the DAG sketch of the path dependency
 *  graph (Section 3.1). */
using SccId = std::uint32_t;

/** Identifier of a simulated GPU device. */
using DeviceId = std::uint32_t;

/** Identifier of a streaming multiprocessor within a device. */
using SmxId = std::uint32_t;

/** State/edge value type used by the bundled vertex programs. */
using Value = double;

/** Sentinel meaning "no vertex". */
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/** Sentinel meaning "no edge". */
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/** Sentinel meaning "no path". */
inline constexpr PathId kInvalidPath = std::numeric_limits<PathId>::max();

/** Sentinel meaning "no partition". */
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();

/** Sentinel meaning "no SCC-vertex". */
inline constexpr SccId kInvalidScc = std::numeric_limits<SccId>::max();

/** Number of lanes in a simulated warp (SIMT width). */
inline constexpr unsigned kWarpSize = 32;

} // namespace digraph
