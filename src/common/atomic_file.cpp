#include "common/atomic_file.hpp"

#include <cstdio>

#include <unistd.h>

namespace digraph {

AtomicFileWriter::AtomicFileWriter(std::string path,
                                   std::ios::openmode mode)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp." + std::to_string(::getpid())),
      out_(tmp_path_, mode)
{
}

AtomicFileWriter::~AtomicFileWriter()
{
    if (!committed_) {
        out_.close();
        std::remove(tmp_path_.c_str());
    }
}

bool
AtomicFileWriter::commit()
{
    out_.flush();
    if (!out_) {
        // Keep the destination untouched; the destructor unlinks tmp.
        return false;
    }
    out_.close();
    if (out_.fail())
        return false;
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0)
        return false;
    committed_ = true;
    return true;
}

} // namespace digraph
