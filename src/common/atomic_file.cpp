#include "common/atomic_file.hpp"

#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

namespace digraph {

namespace {

/** fsync @p path opened with @p flags; false when open or fsync fails. */
bool
syncPath(const char *path, int flags)
{
    const int fd = ::open(path, flags);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

} // namespace

AtomicFileWriter::AtomicFileWriter(std::string path,
                                   std::ios::openmode mode)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp." + std::to_string(::getpid())),
      out_(tmp_path_, mode)
{
}

AtomicFileWriter::~AtomicFileWriter()
{
    if (!committed_) {
        out_.close();
        std::remove(tmp_path_.c_str());
    }
}

bool
AtomicFileWriter::commit()
{
    out_.flush();
    if (!out_) {
        // Keep the destination untouched; the destructor unlinks tmp.
        return false;
    }
    out_.close();
    if (out_.fail())
        return false;
    // The data blocks must be on disk BEFORE the rename becomes
    // visible: without this, a power failure can persist the rename
    // first and leave the final name holding garbage.
    if (!syncPath(tmp_path_.c_str(), O_WRONLY))
        return false;
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0)
        return false;
    // Persist the rename itself (the directory entry). Best-effort:
    // some filesystems reject directory fsync, and by this point the
    // file content is durable and the rename is atomic, so the worst a
    // power failure can do is roll back to the previous name — which
    // callers already treat as "the commit never happened".
    const auto slash = path_.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : path_.substr(0, slash);
    syncPath(dir.c_str(), O_RDONLY);
    committed_ = true;
    return true;
}

} // namespace digraph
