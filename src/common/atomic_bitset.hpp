/**
 * @file
 * A fixed-size bitset with atomic set/clear/test, used to track active
 * vertices, visited edges, and convergence flags across worker threads.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace digraph {

/**
 * Fixed-size concurrent bitset.
 *
 * set()/reset() are atomic per bit; resizeAndClear() must not race with
 * accessors.
 */
class AtomicBitset
{
  public:
    AtomicBitset() = default;

    /** Construct with @p bits bits, all clear. */
    explicit AtomicBitset(std::size_t bits) { resizeAndClear(bits); }

    AtomicBitset(const AtomicBitset &other) { copyFrom(other); }

    AtomicBitset &
    operator=(const AtomicBitset &other)
    {
        if (this != &other)
            copyFrom(other);
        return *this;
    }

    /** Number of bits. */
    std::size_t size() const { return bits_; }

    /** Resize to @p bits bits and clear everything. Not thread-safe. */
    void
    resizeAndClear(std::size_t bits)
    {
        bits_ = bits;
        words_ = std::vector<std::atomic<std::uint64_t>>(
            (bits + 63) / 64);
        clearAll();
    }

    /** Clear every bit. Not thread-safe against concurrent setters. */
    void
    clearAll()
    {
        for (auto &w : words_)
            w.store(0, std::memory_order_relaxed);
    }

    /** Atomically set bit @p i. @return true if the bit was previously 0. */
    bool
    set(std::size_t i)
    {
        const std::uint64_t mask = 1ULL << (i & 63);
        const std::uint64_t old = words_[i >> 6].fetch_or(
            mask, std::memory_order_acq_rel);
        return (old & mask) == 0;
    }

    /** Atomically clear bit @p i. @return true if it was previously 1. */
    bool
    reset(std::size_t i)
    {
        const std::uint64_t mask = 1ULL << (i & 63);
        const std::uint64_t old = words_[i >> 6].fetch_and(
            ~mask, std::memory_order_acq_rel);
        return (old & mask) != 0;
    }

    /** Test bit @p i. */
    bool
    test(std::size_t i) const
    {
        const std::uint64_t word =
            words_[i >> 6].load(std::memory_order_acquire);
        return (word & (1ULL << (i & 63))) != 0;
    }

    /** Count the set bits (racy under concurrent mutation; exact when
     *  quiescent). */
    std::size_t
    count() const
    {
        std::size_t total = 0;
        for (const auto &w : words_)
            total += static_cast<std::size_t>(
                __builtin_popcountll(w.load(std::memory_order_relaxed)));
        return total;
    }

    /** True when no bit is set (quiescent reads only). */
    bool
    none() const
    {
        for (const auto &w : words_) {
            if (w.load(std::memory_order_acquire) != 0)
                return false;
        }
        return true;
    }

  private:
    void
    copyFrom(const AtomicBitset &other)
    {
        bits_ = other.bits_;
        words_ = std::vector<std::atomic<std::uint64_t>>(
            other.words_.size());
        for (std::size_t i = 0; i < words_.size(); ++i) {
            words_[i].store(
                other.words_[i].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
    }

    std::size_t bits_ = 0;
    std::vector<std::atomic<std::uint64_t>> words_;
};

} // namespace digraph
