/**
 * @file
 * Crash-consistent whole-file emission: every writer in the repo that
 * produces a file a later run will read (binary graphs, edge lists,
 * snapshots, trace exports, store shards) goes through the same
 * temp-file -> flush -> fsync -> atomic-rename protocol, so a crash,
 * power failure, or I/O error mid-write can never leave a truncated
 * file under the final name — the destination either holds the
 * complete previous content or the complete new content.
 *
 * AtomicFileWriter is a thin std::ofstream wrapper: stream into
 * `path + ".tmp.<pid>"`, then commit() flushes, closes, re-checks the
 * stream state, fsyncs the temp file's data blocks, renames over the
 * destination, and fsyncs the parent directory (best-effort) so the
 * rename itself is durable. Anything short of a successful commit
 * (error, exception, early return) unlinks the temp file in the
 * destructor, so failures leave no partial artifacts at all.
 */

#pragma once

#include <fstream>
#include <ios>
#include <string>

namespace digraph {

class AtomicFileWriter
{
  public:
    /** Open `path + ".tmp.<pid>"` for writing with @p mode. A failed
     *  open leaves the stream in a bad state (check ok()). */
    explicit AtomicFileWriter(std::string path,
                              std::ios::openmode mode = std::ios::out);

    /** Unlinks the temp file unless commit() succeeded. */
    ~AtomicFileWriter();

    AtomicFileWriter(const AtomicFileWriter &) = delete;
    AtomicFileWriter &operator=(const AtomicFileWriter &) = delete;

    /** The underlying stream (write through this). */
    std::ofstream &stream() { return out_; }

    /** Stream state (true while every write so far succeeded). */
    bool ok() const { return static_cast<bool>(out_); }

    /** Destination path the commit will rename to. */
    const std::string &path() const { return path_; }

    /**
     * Flush, close, verify the stream, fsync the temp file, atomically
     * rename it over the destination, and fsync the parent directory.
     * @return false (temp unlinked, the destination untouched) when any
     * write, the flush, the fsync, or the rename failed.
     */
    bool commit();

  private:
    std::string path_;
    std::string tmp_path_;
    std::ofstream out_;
    bool committed_ = false;
};

} // namespace digraph
