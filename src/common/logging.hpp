/**
 * @file
 * Minimal leveled logging for the library and the bench harnesses.
 *
 * Follows the gem5 convention: fatal() is for user errors (exit), panic()
 * is for internal invariant violations (abort).
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace digraph {

/** Log severity levels, in increasing verbosity. */
enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global logging configuration. */
class Log
{
  public:
    /** Current verbosity threshold (messages above it are dropped). */
    static LogLevel &level();

    /** Emit a message at @p lvl; no-op if below the threshold. */
    static void write(LogLevel lvl, const std::string &msg);
};

namespace detail {

template <typename... Args>
std::string
formatConcat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** Log an informational message. */
template <typename... Args>
void
logInfo(Args &&...args)
{
    Log::write(LogLevel::Info,
               detail::formatConcat(std::forward<Args>(args)...));
}

/** Log a warning. */
template <typename... Args>
void
logWarn(Args &&...args)
{
    Log::write(LogLevel::Warn,
               detail::formatConcat(std::forward<Args>(args)...));
}

/** Log a debug message. */
template <typename... Args>
void
logDebug(Args &&...args)
{
    Log::write(LogLevel::Debug,
               detail::formatConcat(std::forward<Args>(args)...));
}

/**
 * Terminate because of a user-visible error (bad input, bad configuration).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    Log::write(LogLevel::Error,
               detail::formatConcat(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Terminate because of an internal invariant violation (a DiGraph bug).
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    Log::write(LogLevel::Error,
               detail::formatConcat("panic: ",
                                    std::forward<Args>(args)...));
    std::abort();
}

} // namespace digraph
