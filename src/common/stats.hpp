/**
 * @file
 * Lightweight named-counter registry.
 *
 * Engines and the GPU simulator record their metrics (vertex updates,
 * traffic bytes, busy cycles...) into a StatsRegistry so the bench
 * harnesses can print uniform tables across systems.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace digraph {

/** A single monotonically increasing 64-bit counter. */
class Counter
{
  public:
    /** Add @p delta to the counter. */
    void add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Current value. */
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset to zero. */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Registry mapping stable string names to counters.
 *
 * Counter references returned by counter() stay valid for the registry's
 * lifetime, so hot paths can cache them.
 */
class StatsRegistry
{
  public:
    /** Get (or create) the counter named @p name. Thread-compatible for
     *  lookups of existing names; creation should happen up front. */
    Counter &counter(const std::string &name);

    /** Snapshot of all counter values, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

    /** Value of @p name, or 0 if it was never created. */
    std::uint64_t get(const std::string &name) const;

    /** Reset every counter to zero. */
    void resetAll();

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
};

} // namespace digraph
