/**
 * @file
 * Wall-clock timing helpers.
 */

#pragma once

#include <chrono>

namespace digraph {

/**
 * Simple monotonic wall-clock stopwatch.
 */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Accumulating timer: sums the duration of several timed sections.
 */
class AccumTimer
{
  public:
    /** Begin a timed section. */
    void begin() { timer_.reset(); running_ = true; }

    /** End the current section, adding it to the total. */
    void
    end()
    {
        if (running_) {
            total_ += timer_.seconds();
            running_ = false;
        }
    }

    /** Total accumulated seconds. */
    double seconds() const { return total_; }

    /** Reset the accumulated total. */
    void reset() { total_ = 0.0; running_ = false; }

  private:
    WallTimer timer_;
    double total_ = 0.0;
    bool running_ = false;
};

/** RAII guard that times a scope into an AccumTimer. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(AccumTimer &acc) : acc_(acc) { acc_.begin(); }
    ~ScopedTimer() { acc_.end(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    AccumTimer &acc_;
};

} // namespace digraph
