#include "partition/partitioner.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"

namespace digraph::partition {

PartitionPlan
makePartitions(const PathSet &paths, const DagSketch &dag,
               const graph::DirectedGraph &g,
               const PartitionOptions &options)
{
    PartitionPlan plan;
    const PathId np = paths.numPaths();
    if (np == 0) {
        plan.partition_offsets.push_back(0);
        return plan;
    }

    // Per-SCC number of successor paths (the paper orders same-layer
    // SCC-vertices descending by it, so that finishing one unlocks the
    // most follow-up work).
    std::vector<std::size_t> successor_paths(dag.num_sccs, 0);
    for (SccId s = 0; s < dag.num_sccs; ++s) {
        for (const VertexId t : dag.sketch.outNeighbors(s))
            successor_paths[s] += dag.paths_in_scc[t].size();
    }

    std::vector<SccId> scc_order(dag.num_sccs);
    std::iota(scc_order.begin(), scc_order.end(), 0);
    std::stable_sort(scc_order.begin(), scc_order.end(),
                     [&](SccId a, SccId b) {
                         if (dag.layer[a] != dag.layer[b])
                             return dag.layer[a] < dag.layer[b];
                         return successor_paths[a] > successor_paths[b];
                     });

    // Hot classification against the whole graph's average degree.
    const double avg_deg =
        g.numVertices()
            ? static_cast<double>(g.numEdges()) / g.numVertices()
            : 0.0;
    const double hot_cut = options.hot_degree_factor * 2.0 * avg_deg;
    // (x2: path avgDegree counts in+out degree, avg_deg counts out only.)

    std::vector<double> path_deg(np);
    for (PathId p = 0; p < np; ++p)
        path_deg[p] = paths.avgDegree(p, g);

    // Emit paths SCC by SCC, hot paths first within each SCC.
    plan.path_order.reserve(np);
    for (const SccId s : scc_order) {
        std::vector<PathId> members = dag.paths_in_scc[s];
        std::stable_sort(members.begin(), members.end(),
                         [&](PathId a, PathId b) {
                             return path_deg[a] > path_deg[b];
                         });
        plan.path_order.insert(plan.path_order.end(), members.begin(),
                               members.end());
    }
    if (plan.path_order.size() != np)
        panic("makePartitions: path order is not a permutation");

    // Cut partitions at the edge budget.
    const std::size_t budget = std::max<std::size_t>(
        1, options.edges_per_partition);
    plan.partition_offsets.push_back(0);
    plan.path_hot.resize(np);
    std::size_t filled = 0;
    std::uint32_t cur_layer = UINT32_MAX;
    for (PathId pos = 0; pos < np; ++pos) {
        const PathId old = plan.path_order[pos];
        plan.path_hot[pos] = path_deg[old] >= hot_cut ? 1 : 0;
        const std::size_t len = paths.pathLength(old);
        if (filled > 0 && filled + len > budget) {
            plan.partition_offsets.push_back(pos);
            plan.partition_layer.push_back(cur_layer);
            filled = 0;
            cur_layer = UINT32_MAX;
        }
        filled += len;
        cur_layer = std::min(cur_layer, dag.layer[dag.scc_of_path[old]]);
    }
    plan.partition_offsets.push_back(np);
    plan.partition_layer.push_back(cur_layer);
    return plan;
}

} // namespace digraph::partition
