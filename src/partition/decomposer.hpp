/**
 * @file
 * Path-based graph partitioning — Algorithm 1 of the paper.
 *
 * The directed graph is split into contiguous vertex-id subgraphs, one per
 * CPU thread. Each thread repeatedly takes a vertex with unvisited local
 * edges as a DFS root and walks edges depth-first (highest-degree successor
 * first, so high-degree vertices chain into *hot paths*), bounded by
 * D_MAX, appending the visited edges to the current path. The result is a
 * set of edge-disjoint directed paths covering every edge exactly once.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "graph/builder.hpp"
#include "graph/digraph.hpp"
#include "partition/path_set.hpp"
#include "partition/scc_regions.hpp"

namespace digraph {
class ThreadPool;
}

namespace digraph::partition {

/** Per-vertex adjacency entry with a pre-resolved edge id. */
struct AdjacencyEntry
{
    VertexId target;
    EdgeId edge;
};

/**
 * The decomposer's degree-sorted adjacency scratch, hoisted into a
 * reusable structure: building it costs O(m log d) row sorts, which used
 * to be paid on *every* decompose() call. Callers (the preprocess
 * pipeline, the evolving engine) build it once per graph and thread it
 * through repeated decompositions; after a GraphBuilder::append it is
 * patched in O(m + dirty rows) instead of rebuilt.
 */
class SortedAdjacency
{
  public:
    SortedAdjacency() = default;

    /** Build all rows for @p g (row k of vertex v holds its k-th
     *  successor, stable-sorted hottest-first when @p degree_sorted). */
    void build(const graph::DirectedGraph &g, bool degree_sorted);

    /**
     * Patch the rows after a GraphBuilder::append that produced @p g:
     * surviving entries get their edge ids remapped through the delta
     * journal, and exactly the rows whose hottest-first order may have
     * changed (rows adjacent to a batch endpoint, whose degree changed)
     * are rebuilt. The result is bit-identical to build(g).
     * @pre matches() held for the pre-append graph.
     */
    void applyDelta(const graph::DirectedGraph &g,
                    const graph::GraphDelta &delta);

    /** True when the cache was built for a graph of @p g's shape. */
    bool
    matches(const graph::DirectedGraph &g) const
    {
        return !rows_.empty() ? (rows_.size() == g.numVertices() &&
                                 num_edges_ == g.numEdges())
                              : g.numVertices() == 0;
    }

    /** Sort flavor the rows were built with. */
    bool degreeSorted() const { return degree_sorted_; }

    /** Approximate heap footprint in bytes (memory accounting). */
    std::size_t
    memoryBytes() const
    {
        std::size_t bytes =
            rows_.size() * sizeof(std::vector<AdjacencyEntry>);
        for (const auto &row : rows_)
            bytes += row.size() * sizeof(AdjacencyEntry);
        return bytes;
    }

    /** Successors of @p v, hottest-first. */
    const std::vector<AdjacencyEntry> &
    row(VertexId v) const
    {
        return rows_[v];
    }

  private:
    void rebuildRow(const graph::DirectedGraph &g, VertexId v);

    std::vector<std::vector<AdjacencyEntry>> rows_;
    EdgeId num_edges_ = 0;
    bool degree_sorted_ = true;
};

/** Options for the path decomposition. */
struct DecomposeOptions
{
    /** Maximum DFS depth, i.e. maximum path length in edges
     *  (paper default D_MAX = 16). */
    unsigned d_max = 16;
    /** Number of CPU threads / subgraphs (0 = one). */
    unsigned num_threads = 1;
    /** Visit successors in descending degree order (hot-path building,
     *  Algorithm 1 line 5). Disable for ablation studies. */
    bool degree_sorted = true;
    /** Confine each path's interior to one strongly connected component
     *  of the input graph: the DFS closes the current path right after an
     *  edge crosses an SCC boundary. This keeps the path dependency
     *  graph's condensation aligned with the vertex condensation, which
     *  is what makes the DAG-sketch dispatching effective (Observation 2
     *  of the paper). Disable for ablation studies. */
    bool scc_confined = true;
};

/**
 * Decompose @p g into edge-disjoint directed paths.
 *
 * Deterministic for a given (graph, options) pair regardless of thread
 * scheduling: each thread's subgraph yields a fixed path list and lists are
 * concatenated in thread order.
 *
 * @param pool Optional pool for parallel decomposition; when null and
 *             num_threads > 1 a temporary pool is created.
 * @param regions Optional precomputed SCC regions (recomputed internally
 *                when null and scc_confined is set).
 * @param adjacency Optional prebuilt degree-sorted adjacency; used when
 *                  it matches (g, options.degree_sorted), otherwise a
 *                  local one is built (and the result is identical).
 */
PathSet decompose(const graph::DirectedGraph &g,
                  const DecomposeOptions &options = {},
                  ThreadPool *pool = nullptr,
                  const SccRegions *regions = nullptr,
                  const SortedAdjacency *adjacency = nullptr);

} // namespace digraph::partition
