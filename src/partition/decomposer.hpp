/**
 * @file
 * Path-based graph partitioning — Algorithm 1 of the paper.
 *
 * The directed graph is split into contiguous vertex-id subgraphs, one per
 * CPU thread. Each thread repeatedly takes a vertex with unvisited local
 * edges as a DFS root and walks edges depth-first (highest-degree successor
 * first, so high-degree vertices chain into *hot paths*), bounded by
 * D_MAX, appending the visited edges to the current path. The result is a
 * set of edge-disjoint directed paths covering every edge exactly once.
 */

#pragma once

#include <cstddef>

#include "graph/digraph.hpp"
#include "partition/path_set.hpp"
#include "partition/scc_regions.hpp"

namespace digraph {
class ThreadPool;
}

namespace digraph::partition {

/** Options for the path decomposition. */
struct DecomposeOptions
{
    /** Maximum DFS depth, i.e. maximum path length in edges
     *  (paper default D_MAX = 16). */
    unsigned d_max = 16;
    /** Number of CPU threads / subgraphs (0 = one). */
    unsigned num_threads = 1;
    /** Visit successors in descending degree order (hot-path building,
     *  Algorithm 1 line 5). Disable for ablation studies. */
    bool degree_sorted = true;
    /** Confine each path's interior to one strongly connected component
     *  of the input graph: the DFS closes the current path right after an
     *  edge crosses an SCC boundary. This keeps the path dependency
     *  graph's condensation aligned with the vertex condensation, which
     *  is what makes the DAG-sketch dispatching effective (Observation 2
     *  of the paper). Disable for ablation studies. */
    bool scc_confined = true;
};

/**
 * Decompose @p g into edge-disjoint directed paths.
 *
 * Deterministic for a given (graph, options) pair regardless of thread
 * scheduling: each thread's subgraph yields a fixed path list and lists are
 * concatenated in thread order.
 *
 * @param pool Optional pool for parallel decomposition; when null and
 *             num_threads > 1 a temporary pool is created.
 * @param regions Optional precomputed SCC regions (recomputed internally
 *                when null and scc_confined is set).
 */
PathSet decompose(const graph::DirectedGraph &g,
                  const DecomposeOptions &options = {},
                  ThreadPool *pool = nullptr,
                  const SccRegions *regions = nullptr);

} // namespace digraph::partition
