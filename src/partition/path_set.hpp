/**
 * @file
 * A set of edge-disjoint directed paths — the output of the path-based
 * graph partitioning (Section 3.2.1) and the basic parallel processing
 * unit of the whole system.
 *
 * Each path is an ordered vertex sequence v0 -> v1 -> ... -> vk; its k
 * edges are original graph edges, and every graph edge belongs to exactly
 * one path. A vertex may occur on several paths (replicas).
 */

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/digraph.hpp"

namespace digraph::partition {

/**
 * Compact storage for a set of directed paths.
 *
 * Vertices of all paths are concatenated; path p owns the slice
 * [vertex_offsets[p], vertex_offsets[p+1]) and its edges are the adjacent
 * vertex pairs of that slice. Edge ids refer back to the source graph.
 */
class PathSet
{
  public:
    /** Begin a new path whose first vertex is @p head. */
    void
    beginPath(VertexId head)
    {
        offsets_.push_back(static_cast<std::uint64_t>(vertices_.size()));
        vertices_.push_back(head);
    }

    /** Extend the current path by edge @p id to vertex @p next. */
    void
    extend(VertexId next, EdgeId id)
    {
        vertices_.push_back(next);
        edge_ids_.push_back(id);
    }

    /** Number of paths. */
    PathId
    numPaths() const
    {
        return static_cast<PathId>(offsets_.size());
    }

    /** Total number of edges across all paths. */
    EdgeId numEdges() const { return edge_ids_.size(); }

    /** Vertices of path @p p, head first. */
    std::span<const VertexId>
    pathVertices(PathId p) const
    {
        return {vertices_.data() + offsets_[p],
                vertices_.data() + endOffset(p)};
    }

    /** Edge ids of path @p p; edge j connects vertex j to j+1. */
    std::span<const EdgeId>
    pathEdges(PathId p) const
    {
        return {edge_ids_.data() + (offsets_[p] - p),
                edge_ids_.data() + (endOffset(p) - p - 1)};
    }

    /** Number of edges in path @p p. */
    std::size_t
    pathLength(PathId p) const
    {
        return static_cast<std::size_t>(endOffset(p) - offsets_[p] - 1);
    }

    /** Head (first) vertex of path @p p. */
    VertexId head(PathId p) const { return vertices_[offsets_[p]]; }

    /** Tail (last) vertex of path @p p. */
    VertexId tail(PathId p) const { return vertices_[endOffset(p) - 1]; }

    /** Mean number of edges per path. */
    double avgLength() const;

    /**
     * For every vertex, whether it occurs as an *inner* vertex (neither
     * head nor tail) of at least one path — the merge constraint of
     * Section 3.2.1.
     */
    std::vector<bool> innerVertexFlags(VertexId num_vertices) const;

    /** Number of path occurrences (replicas) per vertex. */
    std::vector<std::uint32_t> replicaCounts(VertexId num_vertices) const;

    /**
     * Average vertex degree along path @p p in @p g — the paper's
     * \f$\bar{D}(p)\f$ used by hot-path classification and Pri(p).
     */
    double avgDegree(PathId p, const graph::DirectedGraph &g) const;

    /**
     * Reorder the paths: new path i is old path order[i].
     * @pre order is a permutation of [0, numPaths).
     */
    PathSet reordered(const std::vector<PathId> &order) const;

    /**
     * Rewrite every stored edge id through @p old_to_new (the journal a
     * GraphBuilder::append produces): edge ids are positional in the
     * CSR, so extending the graph shifts them. O(total path edges).
     * @pre every stored id is < old_to_new.size().
     */
    void remapEdgeIds(const std::vector<EdgeId> &old_to_new);

    /**
     * Validate the structural invariants against the source graph: every
     * graph edge appears exactly once, consecutive path vertices are
     * connected by their recorded edge. @return true when consistent.
     */
    bool validate(const graph::DirectedGraph &g) const;

    /** Approximate heap footprint in bytes (memory accounting). */
    std::size_t
    memoryBytes() const
    {
        return offsets_.size() * sizeof(std::uint64_t) +
               vertices_.size() * sizeof(VertexId) +
               edge_ids_.size() * sizeof(EdgeId);
    }

  private:
    std::uint64_t
    endOffset(PathId p) const
    {
        return p + 1 < offsets_.size()
                   ? offsets_[p + 1]
                   : static_cast<std::uint64_t>(vertices_.size());
    }

    std::vector<std::uint64_t> offsets_;
    std::vector<VertexId> vertices_;
    std::vector<EdgeId> edge_ids_;
};

} // namespace digraph::partition
