/**
 * @file
 * The full CPU preprocessing pipeline (Section 3.2.1):
 *
 *   decompose -> merge -> dependency graph -> DAG sketch -> partitions
 *
 * The result is everything the engine needs, with all per-path arrays
 * re-indexed to the final (partitioned) path order, plus a timing
 * breakdown for the Fig 8 / Fig 17 preprocessing studies.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/builder.hpp"
#include "graph/digraph.hpp"
#include "partition/dag_sketch.hpp"
#include "partition/decomposer.hpp"
#include "partition/dependency.hpp"
#include "partition/merger.hpp"
#include "partition/partitioner.hpp"
#include "partition/path_set.hpp"

namespace digraph::partition {

/** Options for the whole preprocessing pipeline. */
struct PreprocessOptions
{
    DecomposeOptions decompose;
    MergeOptions merge;
    DependencyOptions dependency;
    PartitionOptions partition;
    /** Skip the head-to-tail merge stage (ablation). */
    bool enable_merge = true;
};

/** Wall-clock breakdown of the preprocessing stages, in seconds. */
struct PreprocessTimings
{
    double decompose_s = 0.0;
    double merge_s = 0.0;
    double dependency_s = 0.0;
    double sketch_s = 0.0;
    double partition_s = 0.0;

    double
    total() const
    {
        return decompose_s + merge_s + dependency_s + sketch_s +
               partition_s;
    }
};

/**
 * What one appendPreprocess() call reused versus recomputed — the
 * dirty-region ledger of the incremental ingestion pipeline (exported
 * for tests, traces and the evolving CLI/bench reporting).
 */
struct IncrementalStats
{
    /** Paths of the previous result reused verbatim (edge ids remapped,
     *  order, metadata, partition assignment untouched). */
    PathId reused_paths = 0;
    /** Paths freshly decomposed from the batch edges. */
    PathId new_paths = 0;
    /** Partitions appended for the new paths. */
    PartitionId new_partitions = 0;
    /** Pre-existing partitions containing a replica of a batch endpoint
     *  (the dirty region the warm start re-activates; sorted). */
    std::vector<PartitionId> dirty_partitions;
};

/** Preprocessing output; all per-path arrays use the final path order. */
struct Preprocessed
{
    /** Paths in final (partitioned) order. */
    PathSet paths;
    /** SCC-vertex per path. */
    std::vector<SccId> scc_of_path;
    /** Layer per path (layer of its SCC-vertex). */
    std::vector<std::uint32_t> path_layer;
    /** Hot flag per path. */
    std::vector<std::uint8_t> path_hot;
    /** Average vertex degree per path (Pri(p) input). */
    std::vector<double> path_avg_degree;
    /** DAG sketch (paths_in_scc re-indexed to the final order). */
    DagSketch dag;
    /** Partition boundaries over the final path order. */
    std::vector<std::uint32_t> partition_offsets;
    /** Dispatch layer per partition. */
    std::vector<std::uint32_t> partition_layer;
    /** Stage timings. */
    PreprocessTimings timings;
    /** Number of merges performed. */
    std::size_t merges = 0;
    /** Degree-sorted adjacency the decomposition used, kept so repeated
     *  preprocess() calls and evolving rebuilds skip the O(m log m)
     *  row-sort scratch rebuild. Shared across Preprocessed copies;
     *  mutated only by appendPreprocess() on the owning (master) copy.
     *  Never serialized (derivable). */
    std::shared_ptr<SortedAdjacency> sorted_adjacency;
    /** True when this result came out of appendPreprocess(). */
    bool incremental = false;
    /** Reuse ledger of the last appendPreprocess() (empty when the
     *  result came from a full preprocess()). */
    IncrementalStats incremental_stats;

    /** Number of partitions. */
    PartitionId
    numPartitions() const
    {
        return partition_offsets.empty()
                   ? 0
                   : static_cast<PartitionId>(partition_offsets.size() - 1);
    }

    /** Partition that owns path @p p (binary search). */
    PartitionId partitionOfPath(PathId p) const;

    /** Approximate heap footprint in bytes of every table (including
     *  the shared sorted-adjacency cache when owned). */
    std::size_t memoryBytes() const;
};

/**
 * Run the pipeline on @p g.
 * @param adjacency Optional degree-sorted adjacency cache to reuse for
 *        the decomposition (must match g and options.decompose; built
 *        fresh otherwise). The result's sorted_adjacency field holds
 *        whichever cache was used, so back-to-back preprocessing of the
 *        same graph pays the O(m log m) row sorts once.
 */
Preprocessed preprocess(const graph::DirectedGraph &g,
                        const PreprocessOptions &options = {},
                        std::shared_ptr<SortedAdjacency> adjacency = {});

/**
 * Incrementally extend @p prev — computed for the graph a
 * GraphBuilder::append grew into @p g — instead of re-running the whole
 * pipeline (Section 3.2.1's "only re-partition changed regions"):
 *
 *  - every previous path is reused verbatim (edge ids remapped through
 *    the delta journal, O(m) pointer chasing, no sorts, no DFS);
 *  - only the batch edges are decomposed (into paths confined to the
 *    delta subgraph, depth-bounded as usual) — the affected subrange;
 *  - previous DAG-sketch layers, SCC-vertices and partition boundaries
 *    are kept; each new path becomes a fresh layer-0 SCC-vertex and new
 *    paths fill appended partitions, so existing dispatch structure is
 *    untouched;
 *  - the degree-sorted adjacency cache is patched, not rebuilt.
 *
 * The under-approximated dependencies of the appended SCC-vertices only
 * affect dispatch priority, never convergence or results: activation
 * still flows through master version clocks. Deterministic for a given
 * (prev, delta, options) — independent of engine_threads.
 */
Preprocessed appendPreprocess(Preprocessed prev,
                              const graph::DirectedGraph &g,
                              const graph::GraphDelta &delta,
                              const PreprocessOptions &options);

} // namespace digraph::partition
