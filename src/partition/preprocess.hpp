/**
 * @file
 * The full CPU preprocessing pipeline (Section 3.2.1):
 *
 *   decompose -> merge -> dependency graph -> DAG sketch -> partitions
 *
 * The result is everything the engine needs, with all per-path arrays
 * re-indexed to the final (partitioned) path order, plus a timing
 * breakdown for the Fig 8 / Fig 17 preprocessing studies.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "partition/dag_sketch.hpp"
#include "partition/decomposer.hpp"
#include "partition/dependency.hpp"
#include "partition/merger.hpp"
#include "partition/partitioner.hpp"
#include "partition/path_set.hpp"

namespace digraph::partition {

/** Options for the whole preprocessing pipeline. */
struct PreprocessOptions
{
    DecomposeOptions decompose;
    MergeOptions merge;
    DependencyOptions dependency;
    PartitionOptions partition;
    /** Skip the head-to-tail merge stage (ablation). */
    bool enable_merge = true;
};

/** Wall-clock breakdown of the preprocessing stages, in seconds. */
struct PreprocessTimings
{
    double decompose_s = 0.0;
    double merge_s = 0.0;
    double dependency_s = 0.0;
    double sketch_s = 0.0;
    double partition_s = 0.0;

    double
    total() const
    {
        return decompose_s + merge_s + dependency_s + sketch_s +
               partition_s;
    }
};

/** Preprocessing output; all per-path arrays use the final path order. */
struct Preprocessed
{
    /** Paths in final (partitioned) order. */
    PathSet paths;
    /** SCC-vertex per path. */
    std::vector<SccId> scc_of_path;
    /** Layer per path (layer of its SCC-vertex). */
    std::vector<std::uint32_t> path_layer;
    /** Hot flag per path. */
    std::vector<std::uint8_t> path_hot;
    /** Average vertex degree per path (Pri(p) input). */
    std::vector<double> path_avg_degree;
    /** DAG sketch (paths_in_scc re-indexed to the final order). */
    DagSketch dag;
    /** Partition boundaries over the final path order. */
    std::vector<std::uint32_t> partition_offsets;
    /** Dispatch layer per partition. */
    std::vector<std::uint32_t> partition_layer;
    /** Stage timings. */
    PreprocessTimings timings;
    /** Number of merges performed. */
    std::size_t merges = 0;

    /** Number of partitions. */
    PartitionId
    numPartitions() const
    {
        return partition_offsets.empty()
                   ? 0
                   : static_cast<PartitionId>(partition_offsets.size() - 1);
    }

    /** Partition that owns path @p p (binary search). */
    PartitionId partitionOfPath(PathId p) const;
};

/** Run the pipeline on @p g. */
Preprocessed preprocess(const graph::DirectedGraph &g,
                        const PreprocessOptions &options = {});

} // namespace digraph::partition
