/**
 * @file
 * Path dependency graph construction (Section 3.1).
 *
 * Path p_i depends-into p_j (edge p_i -> p_j) when some vertex v occurs on
 * both with an in-edge of v on p_i and an out-edge of v on p_j: a state
 * produced on p_i flows into p_j through v's replicas.
 */

#pragma once

#include <cstddef>

#include "graph/digraph.hpp"
#include "partition/path_set.hpp"

namespace digraph::partition {

/** Options for dependency-graph construction. */
struct DependencyOptions
{
    /**
     * Fan-out threshold above which a vertex's producer x consumer
     * dependency edges are replaced by a *star* through an auxiliary
     * "via" vertex (identical reachability and cycle structure at linear
     * edge cost). Hub vertices replicated on thousands of paths would
     * otherwise create a quadratic number of dependency edges.
     */
    std::size_t fanout_cap = 64;
};

/**
 * Build the dependency graph over paths.
 *
 * Vertices [0, paths.numPaths()) of the result are the paths; any
 * vertices beyond that are auxiliary star hubs (see DependencyOptions)
 * and must be ignored when mapping SCCs back to paths.
 */
graph::DirectedGraph buildDependencyGraph(
    const PathSet &paths, const graph::DirectedGraph &g,
    const DependencyOptions &options = {});

} // namespace digraph::partition
