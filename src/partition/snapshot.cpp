#include "partition/snapshot.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <optional>

#include "common/atomic_file.hpp"
#include "common/logging.hpp"
#include "graph/builder.hpp"

namespace digraph::partition {

namespace {

constexpr std::uint64_t kSnapshotMagic = 0x44695072'65505245ULL;
/** v2 added the FNV-1a graph content checksum after the edge count;
 *  v1 snapshots (count fingerprint only) are still accepted. */
constexpr std::uint32_t kSnapshotVersion = 2;

template <typename T>
void
writePod(std::ofstream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readPod(std::ifstream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(in);
}

template <typename T>
void
writeVector(std::ofstream &out, const std::vector<T> &values)
{
    writePod(out, static_cast<std::uint64_t>(values.size()));
    out.write(reinterpret_cast<const char *>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
bool
readVector(std::ifstream &in, std::vector<T> &values)
{
    std::uint64_t count = 0;
    if (!readPod(in, count))
        return false;
    values.resize(count);
    in.read(reinterpret_cast<char *>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    return static_cast<bool>(in);
}

/** Flattened path arrays (PathSet's storage is private; rebuild through
 *  the builder interface). */
struct FlatPaths
{
    std::vector<std::uint64_t> offsets; // first-vertex index per path
    std::vector<VertexId> vertices;
    std::vector<EdgeId> edges;
};

FlatPaths
flatten(const PathSet &paths)
{
    FlatPaths flat;
    std::uint64_t offset = 0;
    for (PathId p = 0; p < paths.numPaths(); ++p) {
        flat.offsets.push_back(offset);
        const auto verts = paths.pathVertices(p);
        const auto edges = paths.pathEdges(p);
        flat.vertices.insert(flat.vertices.end(), verts.begin(),
                             verts.end());
        flat.edges.insert(flat.edges.end(), edges.begin(), edges.end());
        offset += verts.size();
    }
    flat.offsets.push_back(offset);
    return flat;
}

PathSet
unflatten(const FlatPaths &flat)
{
    PathSet paths;
    std::uint64_t edge_cursor = 0;
    for (std::size_t p = 0; p + 1 < flat.offsets.size(); ++p) {
        const std::uint64_t lo = flat.offsets[p];
        const std::uint64_t hi = flat.offsets[p + 1];
        paths.beginPath(flat.vertices[lo]);
        for (std::uint64_t i = lo + 1; i < hi; ++i)
            paths.extend(flat.vertices[i], flat.edges[edge_cursor++]);
    }
    return paths;
}

} // namespace

/*
 * The v1 fingerprint only compared vertex/edge *counts*, which accepts
 * a snapshot of a different graph with the same shape — the engine then
 * dereferences path vertex ids that may be inconsistent with the
 * adjacency it runs on. v2 (and the durable store) hash the content.
 */
std::uint64_t
graphContentChecksum(const graph::DirectedGraph &g)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t word) {
        for (unsigned byte = 0; byte < 8; ++byte) {
            h ^= (word >> (8 * byte)) & 0xffULL;
            h *= 0x100000001b3ULL;
        }
    };
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        mix(g.edgeSource(e));
        mix(g.edgeTarget(e));
        std::uint64_t weight_bits = 0;
        const Value w = g.edgeWeight(e);
        static_assert(sizeof(weight_bits) == sizeof(w));
        std::memcpy(&weight_bits, &w, sizeof(weight_bits));
        mix(weight_bits);
    }
    return h;
}

void
saveSnapshot(const Preprocessed &pre, const graph::DirectedGraph &g,
             const std::string &path)
{
    AtomicFileWriter writer(path, std::ios::binary);
    if (!writer.ok())
        fatal("saveSnapshot: cannot open ", path);
    std::ofstream &out = writer.stream();

    writePod(out, kSnapshotMagic);
    writePod(out, kSnapshotVersion);
    writePod(out, static_cast<std::uint64_t>(g.numVertices()));
    writePod(out, static_cast<std::uint64_t>(g.numEdges()));
    writePod(out, graphContentChecksum(g));

    const FlatPaths flat = flatten(pre.paths);
    writeVector(out, flat.offsets);
    writeVector(out, flat.vertices);
    writeVector(out, flat.edges);

    writeVector(out, pre.scc_of_path);
    writeVector(out, pre.path_layer);
    writeVector(out, pre.path_hot);
    writeVector(out, pre.path_avg_degree);
    writeVector(out, pre.partition_offsets);
    writeVector(out, pre.partition_layer);

    // DAG sketch: per-path SCC ids + condensed edge list + layers.
    writePod(out, static_cast<std::uint64_t>(pre.dag.num_sccs));
    writeVector(out, pre.dag.layer);
    const auto sketch_edges = pre.dag.sketch.edgeList();
    std::vector<VertexId> sketch_src, sketch_dst;
    sketch_src.reserve(sketch_edges.size());
    sketch_dst.reserve(sketch_edges.size());
    for (const auto &e : sketch_edges) {
        sketch_src.push_back(e.src);
        sketch_dst.push_back(e.dst);
    }
    writeVector(out, sketch_src);
    writeVector(out, sketch_dst);
    if (!writer.commit())
        fatal("saveSnapshot: write failed for ", path);
}

std::optional<Preprocessed>
loadSnapshot(const graph::DirectedGraph &g, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;

    std::uint64_t magic = 0, n = 0, m = 0;
    std::uint32_t version = 0;
    if (!readPod(in, magic) || magic != kSnapshotMagic)
        return std::nullopt;
    if (!readPod(in, version) ||
        (version != 1 && version != kSnapshotVersion)) {
        return std::nullopt;
    }
    if (!readPod(in, n) || !readPod(in, m) || n != g.numVertices() ||
        m != g.numEdges()) {
        return std::nullopt; // built for a different graph
    }
    if (version >= 2) {
        // v1 files predate the content checksum: only the counts guard
        // them (accepted for back-compat).
        std::uint64_t checksum = 0;
        if (!readPod(in, checksum) || checksum != graphContentChecksum(g))
            return std::nullopt; // same shape, different graph
    }

    FlatPaths flat;
    Preprocessed pre;
    if (!readVector(in, flat.offsets) ||
        !readVector(in, flat.vertices) || !readVector(in, flat.edges) ||
        !readVector(in, pre.scc_of_path) ||
        !readVector(in, pre.path_layer) ||
        !readVector(in, pre.path_hot) ||
        !readVector(in, pre.path_avg_degree) ||
        !readVector(in, pre.partition_offsets) ||
        !readVector(in, pre.partition_layer)) {
        return std::nullopt;
    }
    pre.paths = unflatten(flat);
    if (!pre.paths.validate(g))
        return std::nullopt;

    std::uint64_t num_sccs = 0;
    std::vector<VertexId> sketch_src, sketch_dst;
    if (!readPod(in, num_sccs) || !readVector(in, pre.dag.layer) ||
        !readVector(in, sketch_src) || !readVector(in, sketch_dst)) {
        return std::nullopt;
    }
    pre.dag.num_sccs = static_cast<SccId>(num_sccs);
    graph::GraphBuilder builder(static_cast<VertexId>(num_sccs));
    for (std::size_t i = 0; i < sketch_src.size(); ++i)
        builder.addEdge(sketch_src[i], sketch_dst[i]);
    pre.dag.sketch = builder.build();
    pre.dag.scc_of_path = pre.scc_of_path;
    pre.dag.paths_in_scc.assign(pre.dag.num_sccs, {});
    for (PathId p = 0; p < pre.paths.numPaths(); ++p) {
        if (pre.scc_of_path[p] >= pre.dag.num_sccs)
            return std::nullopt;
        pre.dag.paths_in_scc[pre.scc_of_path[p]].push_back(p);
    }
    std::size_t best = 0;
    pre.dag.giant_scc = kInvalidScc;
    for (SccId s = 0; s < pre.dag.num_sccs; ++s) {
        if (pre.dag.paths_in_scc[s].size() > best) {
            best = pre.dag.paths_in_scc[s].size();
            pre.dag.giant_scc = s;
        }
    }
    return pre;
}

} // namespace digraph::partition
