#include "partition/dependency.hpp"

#include <algorithm>
#include <vector>

#include "graph/builder.hpp"

namespace digraph::partition {

graph::DirectedGraph
buildDependencyGraph(const PathSet &paths, const graph::DirectedGraph &g,
                     const DependencyOptions &options)
{
    const VertexId n = g.numVertices();
    const PathId np = paths.numPaths();

    // producers[v]: paths where v has an in-edge (v not at the head).
    // consumers[v]: paths where v has an out-edge (v not at the tail).
    std::vector<std::vector<PathId>> producers(n), consumers(n);
    for (PathId p = 0; p < np; ++p) {
        const auto verts = paths.pathVertices(p);
        for (std::size_t i = 0; i < verts.size(); ++i) {
            const VertexId v = verts[i];
            if (i > 0)
                producers[v].push_back(p);
            if (i + 1 < verts.size())
                consumers[v].push_back(p);
        }
    }

    // High-fanout vertices get a *star* construction: an auxiliary "via"
    // vertex with producer->via and via->consumer edges. This preserves
    // the reachability (and therefore the SCC/cycle structure) of the
    // full producer x consumer product exactly, at linear edge cost.
    // Auxiliary vertex ids start at np; callers treat only [0, np) as
    // paths.
    graph::GraphBuilder builder(np);
    const std::size_t star_cut =
        std::max<std::size_t>(4, options.fanout_cap);
    VertexId next_aux = np;
    for (VertexId v = 0; v < n; ++v) {
        auto &prod = producers[v];
        auto &cons = consumers[v];
        if (prod.empty() || cons.empty())
            continue;
        // Dedup replicas of v inside a single path.
        std::sort(prod.begin(), prod.end());
        prod.erase(std::unique(prod.begin(), prod.end()), prod.end());
        std::sort(cons.begin(), cons.end());
        cons.erase(std::unique(cons.begin(), cons.end()), cons.end());
        if (prod.size() * cons.size() <=
            std::max<std::size_t>(star_cut,
                                  2 * (prod.size() + cons.size()))) {
            for (const PathId a : prod) {
                for (const PathId b : cons) {
                    if (a != b)
                        builder.addEdge(a, b);
                }
            }
        } else {
            const VertexId via = next_aux++;
            for (const PathId a : prod)
                builder.addEdge(a, via);
            for (const PathId b : cons)
                builder.addEdge(via, b);
        }
    }
    return builder.build();
}

} // namespace digraph::partition
