#include "partition/path_set.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace digraph::partition {

double
PathSet::avgLength() const
{
    if (numPaths() == 0)
        return 0.0;
    return static_cast<double>(numEdges()) /
           static_cast<double>(numPaths());
}

std::vector<bool>
PathSet::innerVertexFlags(VertexId num_vertices) const
{
    std::vector<bool> inner(num_vertices, false);
    for (PathId p = 0; p < numPaths(); ++p) {
        const auto verts = pathVertices(p);
        for (std::size_t i = 1; i + 1 < verts.size(); ++i)
            inner[verts[i]] = true;
    }
    return inner;
}

std::vector<std::uint32_t>
PathSet::replicaCounts(VertexId num_vertices) const
{
    std::vector<std::uint32_t> counts(num_vertices, 0);
    for (PathId p = 0; p < numPaths(); ++p) {
        for (const VertexId v : pathVertices(p))
            ++counts[v];
    }
    return counts;
}

double
PathSet::avgDegree(PathId p, const graph::DirectedGraph &g) const
{
    const auto verts = pathVertices(p);
    if (verts.empty())
        return 0.0;
    double total = 0.0;
    for (const VertexId v : verts)
        total += static_cast<double>(g.degree(v));
    return total / static_cast<double>(verts.size());
}

PathSet
PathSet::reordered(const std::vector<PathId> &order) const
{
    if (order.size() != numPaths())
        panic("PathSet::reordered: order size mismatch");
    PathSet out;
    out.offsets_.reserve(offsets_.size());
    out.vertices_.reserve(vertices_.size());
    out.edge_ids_.reserve(edge_ids_.size());
    for (const PathId old : order) {
        const auto verts = pathVertices(old);
        const auto edges = pathEdges(old);
        out.beginPath(verts[0]);
        for (std::size_t i = 0; i < edges.size(); ++i)
            out.extend(verts[i + 1], edges[i]);
    }
    return out;
}

void
PathSet::remapEdgeIds(const std::vector<EdgeId> &old_to_new)
{
    for (EdgeId &e : edge_ids_) {
        if (e >= old_to_new.size())
            panic("PathSet::remapEdgeIds: edge id out of journal range");
        e = old_to_new[e];
    }
}

bool
PathSet::validate(const graph::DirectedGraph &g) const
{
    if (numEdges() != g.numEdges())
        return false;
    std::vector<bool> seen(g.numEdges(), false);
    for (PathId p = 0; p < numPaths(); ++p) {
        const auto verts = pathVertices(p);
        const auto edges = pathEdges(p);
        if (verts.size() != edges.size() + 1 || edges.empty())
            return false;
        for (std::size_t i = 0; i < edges.size(); ++i) {
            const EdgeId e = edges[i];
            if (e >= g.numEdges() || seen[e])
                return false;
            seen[e] = true;
            if (g.edgeSource(e) != verts[i] ||
                g.edgeTarget(e) != verts[i + 1]) {
                return false;
            }
        }
    }
    return true;
}

} // namespace digraph::partition
