/**
 * @file
 * DAG sketch of the path dependency graph (Section 3.1 / 3.2.1).
 *
 * Strongly connected components of the dependency graph are contracted to
 * *SCC-vertices*; the resulting DAG is layered so that SCC-vertices at
 * layer L only depend on SCC-vertices at lower layers. The engine
 * dispatches paths to GPUs layer by layer, so most paths are processed
 * exactly once.
 *
 * The parallel construction mirrors the paper: each CPU thread runs Tarjan
 * on its local subgraph of the dependency graph and contracts local SCCs;
 * a second Tarjan pass over the contracted graph merges the local sketches
 * into the global one. The result is identical to a single global Tarjan
 * pass (verified by tests).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "partition/path_set.hpp"

namespace digraph {
class ThreadPool;
}

namespace digraph::partition {

/** Contracted, layered view of the path dependency graph. */
struct DagSketch
{
    /** SCC-vertex id per path. */
    std::vector<SccId> scc_of_path;
    /** Number of SCC-vertices. */
    SccId num_sccs = 0;
    /** Condensed DAG over SCC-vertices. */
    graph::DirectedGraph sketch;
    /** Layer number per SCC-vertex (longest distance from a source). */
    std::vector<std::uint32_t> layer;
    /** Paths per SCC-vertex. */
    std::vector<std::vector<PathId>> paths_in_scc;
    /** Id of the SCC-vertex containing the most paths. */
    SccId giant_scc = kInvalidScc;

    /** Fraction of all paths inside the giant SCC-vertex. */
    double giantSccPathFraction() const;

    /** Number of layers (0 for an empty sketch). */
    std::uint32_t numLayers() const;

    /** Approximate heap footprint in bytes (memory accounting). */
    std::size_t memoryBytes() const;
};

/**
 * Build the DAG sketch from the path dependency graph.
 * @param dependency_graph Vertices [0, num_paths) are paths; ids beyond
 *        are auxiliary star hubs (ignored in path mappings).
 * @param num_paths Number of real paths; 0 means every dependency-graph
 *        vertex is a path.
 * @param num_threads Parallel local-Tarjan subgraph count (1 = the plain
 *        single-pass construction).
 */
DagSketch buildDagSketch(const graph::DirectedGraph &dependency_graph,
                         PathId num_paths = 0, unsigned num_threads = 1,
                         ThreadPool *pool = nullptr);

} // namespace digraph::partition
