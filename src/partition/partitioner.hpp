/**
 * @file
 * Assignment of paths to partitions (Section 3.2.1, last part).
 *
 * Highly-connected paths — in particular paths of the same SCC-vertex —
 * are placed in the same partition for high utilization of loaded data;
 * partitions are filled in DAG-layer order so a partition's paths share a
 * dispatch window; hot paths are grouped to keep easily-convergent cold
 * vertices out of frequently reloaded partitions.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "partition/dag_sketch.hpp"
#include "partition/path_set.hpp"

namespace digraph::partition {

/** Options for partition assignment. */
struct PartitionOptions
{
    /** Edge budget per partition (a partition closes when full). */
    std::size_t edges_per_partition = 4096;
    /** A path is *hot* when its average vertex degree exceeds this factor
     *  times the graph's average degree. */
    double hot_degree_factor = 2.0;
};

/** The resulting path order and partition boundaries. */
struct PartitionPlan
{
    /** New position -> old path id (a permutation). */
    std::vector<PathId> path_order;
    /** Partition p owns new-order paths
     *  [partition_offsets[p], partition_offsets[p+1]). */
    std::vector<std::uint32_t> partition_offsets;
    /** Dispatch layer of each partition (min layer of its paths). */
    std::vector<std::uint32_t> partition_layer;
    /** Hot flag per path, indexed by NEW path position. */
    std::vector<std::uint8_t> path_hot;

    /** Number of partitions. */
    PartitionId
    numPartitions() const
    {
        return partition_offsets.empty()
                   ? 0
                   : static_cast<PartitionId>(partition_offsets.size() - 1);
    }
};

/** Compute the partition plan. */
PartitionPlan makePartitions(const PathSet &paths, const DagSketch &dag,
                             const graph::DirectedGraph &g,
                             const PartitionOptions &options = {});

} // namespace digraph::partition
