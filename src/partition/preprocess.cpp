#include "partition/preprocess.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "graph/transform.hpp"

namespace digraph::partition {

PartitionId
Preprocessed::partitionOfPath(PathId p) const
{
    const auto it = std::upper_bound(partition_offsets.begin(),
                                     partition_offsets.end(), p);
    return static_cast<PartitionId>(it - partition_offsets.begin() - 1);
}

std::size_t
Preprocessed::memoryBytes() const
{
    std::size_t bytes = paths.memoryBytes() + dag.memoryBytes() +
                        scc_of_path.size() * sizeof(SccId) +
                        path_layer.size() * sizeof(std::uint32_t) +
                        path_hot.size() * sizeof(std::uint8_t) +
                        path_avg_degree.size() * sizeof(double) +
                        partition_offsets.size() * sizeof(std::uint32_t) +
                        partition_layer.size() * sizeof(std::uint32_t) +
                        incremental_stats.dirty_partitions.size() *
                            sizeof(PartitionId);
    if (sorted_adjacency)
        bytes += sorted_adjacency->memoryBytes();
    return bytes;
}

Preprocessed
preprocess(const graph::DirectedGraph &g, const PreprocessOptions &options,
           std::shared_ptr<SortedAdjacency> adjacency)
{
    Preprocessed out;
    WallTimer timer;

    ThreadPool pool(std::max(1u, options.decompose.num_threads));

    // 1. Path decomposition (Algorithm 1), region-guided. The
    // degree-sorted adjacency is the expensive scratch (O(m log d) row
    // sorts); reuse the caller's cache when it fits and hand whichever
    // one was used back through the result.
    timer.reset();
    if (!adjacency || !adjacency->matches(g) ||
        adjacency->degreeSorted() != options.decompose.degree_sorted) {
        adjacency = std::make_shared<SortedAdjacency>();
        adjacency->build(g, options.decompose.degree_sorted);
    }
    SccRegions regions;
    if (options.decompose.scc_confined)
        regions = SccRegions(g);
    PathSet raw = decompose(g, options.decompose, &pool,
                            regions.valid() ? &regions : nullptr,
                            adjacency.get());
    out.timings.decompose_s = timer.seconds();
    out.sorted_adjacency = std::move(adjacency);

    // 2. Head-to-tail merge of short paths.
    timer.reset();
    PathSet merged;
    if (options.enable_merge) {
        MergeResult mr = mergePaths(raw, g, options.merge,
                                    regions.valid() ? &regions : nullptr);
        merged = std::move(mr.paths);
        out.merges = mr.merges_performed;
    } else {
        merged = std::move(raw);
    }
    out.timings.merge_s = timer.seconds();

    // 3. Dependency graph over paths.
    timer.reset();
    const graph::DirectedGraph dep =
        buildDependencyGraph(merged, g, options.dependency);
    out.timings.dependency_s = timer.seconds();

    // 4. DAG sketch (parallel SCC contraction + layering).
    timer.reset();
    DagSketch dag = buildDagSketch(dep, merged.numPaths(),
                                   options.decompose.num_threads, &pool);
    out.timings.sketch_s = timer.seconds();

    // 5. Partition assignment.
    timer.reset();
    PartitionPlan plan = makePartitions(merged, dag, g, options.partition);

    // Re-index everything to the final path order.
    out.paths = merged.reordered(plan.path_order);
    const PathId np = out.paths.numPaths();

    std::vector<PathId> new_of_old(np);
    for (PathId pos = 0; pos < np; ++pos)
        new_of_old[plan.path_order[pos]] = pos;

    out.scc_of_path.resize(np);
    out.path_layer.resize(np);
    out.path_avg_degree.resize(np);
    for (PathId pos = 0; pos < np; ++pos) {
        const PathId old = plan.path_order[pos];
        out.scc_of_path[pos] = dag.scc_of_path[old];
        out.path_layer[pos] = dag.layer[dag.scc_of_path[old]];
        out.path_avg_degree[pos] = out.paths.avgDegree(pos, g);
    }
    out.path_hot = std::move(plan.path_hot);

    out.dag = std::move(dag);
    out.dag.scc_of_path = out.scc_of_path;
    for (auto &members : out.dag.paths_in_scc) {
        for (PathId &p : members)
            p = new_of_old[p];
        std::sort(members.begin(), members.end());
    }

    out.partition_offsets = std::move(plan.partition_offsets);
    out.partition_layer = std::move(plan.partition_layer);
    out.timings.partition_s = timer.seconds();
    return out;
}

Preprocessed
appendPreprocess(Preprocessed prev, const graph::DirectedGraph &g,
                 const graph::GraphDelta &delta,
                 const PreprocessOptions &options)
{
    Preprocessed out = std::move(prev);
    WallTimer timer;
    out.timings = {};
    out.incremental = true;
    out.incremental_stats = {};

    const PathId np_old = out.paths.numPaths();
    out.incremental_stats.reused_paths = np_old;

    // 1. Reuse every previous path verbatim. The append shifted the CSR
    // edge ids, so chase the stored ids through the journal (O(m) linear
    // pass — no sorts, no DFS), and patch the adjacency cache the same
    // way instead of rebuilding it.
    timer.reset();
    out.paths.remapEdgeIds(delta.old_to_new);
    if (out.sorted_adjacency)
        out.sorted_adjacency->applyDelta(g, delta);

    // 2. Decompose only the batch edges: run the standard Algorithm 1 on
    // a batch-only graph over the same vertex-id space. Its edge k is
    // delta.fresh[k] (both are (src, dst)-sorted and duplicate-free), so
    // path edge ids translate through fresh_ids.
    if (!delta.fresh.empty()) {
        graph::GraphBuilder bb(g.numVertices());
        for (const graph::Edge &e : delta.fresh)
            bb.addEdge(e.src, e.dst, e.weight);
        const graph::DirectedGraph batch_g = bb.build();
        if (batch_g.numEdges() != delta.fresh.size())
            panic("appendPreprocess: delta batch is not normalized");

        DecomposeOptions dopts = options.decompose;
        // The batch is tiny: single-threaded keeps the result independent
        // of any thread knob; region confinement adds nothing because
        // appended paths become isolated SCC-vertices regardless.
        dopts.num_threads = 1;
        dopts.scc_confined = false;
        const PathSet fresh = decompose(batch_g, dopts);
        for (PathId p = 0; p < fresh.numPaths(); ++p) {
            const auto verts = fresh.pathVertices(p);
            const auto edges = fresh.pathEdges(p);
            out.paths.beginPath(verts[0]);
            for (std::size_t i = 0; i < edges.size(); ++i)
                out.paths.extend(verts[i + 1], delta.fresh_ids[edges[i]]);
        }
    }
    out.timings.decompose_s = timer.seconds();

    // 3. Metadata + sketch: every new path becomes its own layer-0
    // SCC-vertex. Its dependencies are under-approximated (no sketch
    // edges), which only affects dispatch priority — activation flows
    // through the master version clocks (see header).
    timer.reset();
    const PathId np_total = out.paths.numPaths();
    out.incremental_stats.new_paths = np_total - np_old;

    const double avg_deg =
        g.numVertices()
            ? static_cast<double>(g.numEdges()) / g.numVertices()
            : 0.0;
    const double hot_cut = options.partition.hot_degree_factor * 2.0 *
                           avg_deg;
    // (x2: path avgDegree counts in+out degree, avg_deg counts out only —
    //  same rule as makePartitions.)
    for (PathId p = np_old; p < np_total; ++p) {
        const SccId s = out.dag.num_sccs++;
        out.scc_of_path.push_back(s);
        out.dag.scc_of_path.push_back(s);
        out.dag.paths_in_scc.push_back({p});
        out.dag.layer.push_back(0);
        out.path_layer.push_back(0);
        const double deg = out.paths.avgDegree(p, g);
        out.path_avg_degree.push_back(deg);
        out.path_hot.push_back(deg >= hot_cut ? 1 : 0);
        if (out.dag.giant_scc == kInvalidScc)
            out.dag.giant_scc = s;
    }
    out.dag.sketch =
        graph::withIsolatedVertices(out.dag.sketch, out.dag.num_sccs);
    out.timings.sketch_s = timer.seconds();

    // 4. Existing partition boundaries are kept verbatim; new paths fill
    // appended partitions cut at the usual edge budget.
    timer.reset();
    if (out.partition_offsets.empty())
        out.partition_offsets.push_back(0);
    if (np_total > np_old) {
        const std::size_t budget = std::max<std::size_t>(
            1, options.partition.edges_per_partition);
        std::size_t filled = 0;
        for (PathId p = np_old; p < np_total; ++p) {
            const std::size_t len = out.paths.pathLength(p);
            if (filled > 0 && filled + len > budget) {
                out.partition_offsets.push_back(p);
                out.partition_layer.push_back(0);
                ++out.incremental_stats.new_partitions;
                filled = 0;
            }
            filled += len;
        }
        out.partition_offsets.push_back(np_total);
        out.partition_layer.push_back(0);
        ++out.incremental_stats.new_partitions;
    }

    // Dirty-region ledger: the pre-existing partitions holding a replica
    // of a batch endpoint (what a warm start re-activates).
    std::vector<std::uint8_t> endpoint(g.numVertices(), 0);
    for (const graph::Edge &e : delta.fresh) {
        endpoint[e.src] = 1;
        endpoint[e.dst] = 1;
    }
    std::vector<std::uint8_t> dirty(out.numPartitions(), 0);
    for (PathId p = 0; p < np_old; ++p) {
        for (const VertexId v : out.paths.pathVertices(p)) {
            if (endpoint[v]) {
                dirty[out.partitionOfPath(p)] = 1;
                break;
            }
        }
    }
    for (PartitionId q = 0; q < dirty.size(); ++q) {
        if (dirty[q])
            out.incremental_stats.dirty_partitions.push_back(q);
    }
    out.timings.partition_s = timer.seconds();
    return out;
}

} // namespace digraph::partition
