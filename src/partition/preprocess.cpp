#include "partition/preprocess.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace digraph::partition {

PartitionId
Preprocessed::partitionOfPath(PathId p) const
{
    const auto it = std::upper_bound(partition_offsets.begin(),
                                     partition_offsets.end(), p);
    return static_cast<PartitionId>(it - partition_offsets.begin() - 1);
}

Preprocessed
preprocess(const graph::DirectedGraph &g, const PreprocessOptions &options)
{
    Preprocessed out;
    WallTimer timer;

    ThreadPool pool(std::max(1u, options.decompose.num_threads));

    // 1. Path decomposition (Algorithm 1), region-guided.
    timer.reset();
    SccRegions regions;
    if (options.decompose.scc_confined)
        regions = SccRegions(g);
    PathSet raw = decompose(g, options.decompose, &pool,
                            regions.valid() ? &regions : nullptr);
    out.timings.decompose_s = timer.seconds();

    // 2. Head-to-tail merge of short paths.
    timer.reset();
    PathSet merged;
    if (options.enable_merge) {
        MergeResult mr = mergePaths(raw, g, options.merge,
                                    regions.valid() ? &regions : nullptr);
        merged = std::move(mr.paths);
        out.merges = mr.merges_performed;
    } else {
        merged = std::move(raw);
    }
    out.timings.merge_s = timer.seconds();

    // 3. Dependency graph over paths.
    timer.reset();
    const graph::DirectedGraph dep =
        buildDependencyGraph(merged, g, options.dependency);
    out.timings.dependency_s = timer.seconds();

    // 4. DAG sketch (parallel SCC contraction + layering).
    timer.reset();
    DagSketch dag = buildDagSketch(dep, merged.numPaths(),
                                   options.decompose.num_threads, &pool);
    out.timings.sketch_s = timer.seconds();

    // 5. Partition assignment.
    timer.reset();
    PartitionPlan plan = makePartitions(merged, dag, g, options.partition);

    // Re-index everything to the final path order.
    out.paths = merged.reordered(plan.path_order);
    const PathId np = out.paths.numPaths();

    std::vector<PathId> new_of_old(np);
    for (PathId pos = 0; pos < np; ++pos)
        new_of_old[plan.path_order[pos]] = pos;

    out.scc_of_path.resize(np);
    out.path_layer.resize(np);
    out.path_avg_degree.resize(np);
    for (PathId pos = 0; pos < np; ++pos) {
        const PathId old = plan.path_order[pos];
        out.scc_of_path[pos] = dag.scc_of_path[old];
        out.path_layer[pos] = dag.layer[dag.scc_of_path[old]];
        out.path_avg_degree[pos] = out.paths.avgDegree(pos, g);
    }
    out.path_hot = std::move(plan.path_hot);

    out.dag = std::move(dag);
    out.dag.scc_of_path = out.scc_of_path;
    for (auto &members : out.dag.paths_in_scc) {
        for (PathId &p : members)
            p = new_of_old[p];
        std::sort(members.begin(), members.end());
    }

    out.partition_offsets = std::move(plan.partition_offsets);
    out.partition_layer = std::move(plan.partition_layer);
    out.timings.partition_s = timer.seconds();
    return out;
}

} // namespace digraph::partition
