#include "partition/merger.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

namespace digraph::partition {

namespace {

/** Union-find over path ids, used to reject merges that would close a
 *  chain into a cycle. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    std::size_t
    find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

  private:
    std::vector<std::size_t> parent_;
};

} // namespace

MergeResult
mergePaths(const PathSet &paths, const graph::DirectedGraph &g,
           const MergeOptions &options, const SccRegions *regions)
{
    MergeResult result;
    result.avg_length_before = paths.avgLength();

    const PathId np = paths.numPaths();
    const auto inner = paths.innerVertexFlags(g.numVertices());

    // head vertex -> paths starting there (merge candidates).
    std::unordered_map<VertexId, std::vector<PathId>> by_head;
    by_head.reserve(np);
    for (PathId p = 0; p < np; ++p)
        by_head[paths.head(p)].push_back(p);

    std::vector<PathId> next(np, kInvalidPath);
    std::vector<std::uint8_t> consumed(np, 0); // is a merge target already
    std::vector<std::size_t> chain_len(np);
    for (PathId p = 0; p < np; ++p)
        chain_len[p] = paths.pathLength(p);
    UnionFind uf(np);

    // Short paths first so they get priority at contended junctions.
    std::vector<PathId> order(np);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&paths](PathId a, PathId b) {
                         return paths.pathLength(a) < paths.pathLength(b);
                     });

    for (const PathId p : order) {
        if (paths.pathLength(p) >= options.short_threshold)
            continue;
        if (next[p] != kInvalidPath)
            continue;
        const VertexId junction = paths.tail(p);
        const auto it = by_head.find(junction);
        if (it == by_head.end())
            continue;
        for (const PathId q : it->second) {
            if (q == p || consumed[q])
                continue;
            if (uf.find(p) == uf.find(q))
                continue; // would close a chain into a cycle
            // Region purity: never fuse paths from different cyclic-SCC
            // regions (or a cyclic with an acyclic one).
            if (regions && regions->valid() &&
                !regions->sameHeadRegion(paths.head(p), paths.head(q))) {
                continue;
            }
            // Paper's constraint: a busy junction (in-deg > 1 and
            // out-deg > 1) may only fuse if it is not an inner vertex of
            // another path.
            if (g.inDegree(junction) > 1 && g.outDegree(junction) > 1 &&
                inner[junction]) {
                continue;
            }
            const std::size_t merged =
                chain_len[uf.find(p)] + chain_len[uf.find(q)];
            if (options.max_merged_length &&
                merged > options.max_merged_length) {
                continue;
            }
            next[p] = q;
            consumed[q] = 1;
            uf.unite(p, q);
            chain_len[uf.find(p)] = merged;
            ++result.merges_performed;
            break;
        }
    }

    // Emit chains: every non-consumed path starts one.
    PathSet out;
    for (PathId p = 0; p < np; ++p) {
        if (consumed[p])
            continue;
        out.beginPath(paths.head(p));
        for (PathId cur = p; cur != kInvalidPath; cur = next[cur]) {
            const auto verts = paths.pathVertices(cur);
            const auto edges = paths.pathEdges(cur);
            for (std::size_t i = 0; i < edges.size(); ++i)
                out.extend(verts[i + 1], edges[i]);
        }
    }
    result.avg_length_after = out.avgLength();
    result.paths = std::move(out);
    return result;
}

} // namespace digraph::partition
