/**
 * @file
 * Binary serialization of a preprocessing result.
 *
 * The paper amortizes its (slightly costlier) preprocessing over many
 * runs; persisting the pipeline output lets repeated analyses of the
 * same graph skip it entirely — useful for the bench harnesses and for
 * production runs on large inputs.
 *
 * The snapshot stores the paths, the per-path metadata, the DAG sketch
 * and the partition boundaries, together with a fingerprint of the graph
 * — vertex/edge counts plus (since format v2) an FNV-1a checksum over
 * the edge arrays — so a stale snapshot, or one built for a different
 * graph of the same shape, is rejected. v1 files are still readable
 * (counts-only guard).
 */

#pragma once

#include <optional>
#include <string>

#include "graph/digraph.hpp"
#include "partition/preprocess.hpp"

namespace digraph::partition {

/**
 * FNV-1a over the graph's edge arrays (source, target, weight bits per
 * edge) — the v2 snapshot fingerprint, shared with the durable store's
 * manifests so both layers agree on graph identity.
 */
std::uint64_t graphContentChecksum(const graph::DirectedGraph &g);

/** Write @p pre (computed for @p g) to @p path. fatal() on IO errors. */
void saveSnapshot(const Preprocessed &pre, const graph::DirectedGraph &g,
                  const std::string &path);

/**
 * Load a snapshot, verifying it matches @p g.
 * @return the preprocessing result, or std::nullopt when the file is
 *         missing, malformed, or was built for a different graph.
 */
std::optional<Preprocessed> loadSnapshot(const graph::DirectedGraph &g,
                                         const std::string &path);

} // namespace digraph::partition
