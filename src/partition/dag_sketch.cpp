#include "partition/dag_sketch.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "graph/builder.hpp"
#include "graph/scc.hpp"
#include "graph/traversal.hpp"

namespace digraph::partition {

double
DagSketch::giantSccPathFraction() const
{
    if (scc_of_path.empty() || giant_scc == kInvalidScc)
        return 0.0;
    return static_cast<double>(paths_in_scc[giant_scc].size()) /
           static_cast<double>(scc_of_path.size());
}

std::uint32_t
DagSketch::numLayers() const
{
    if (layer.empty())
        return 0;
    return *std::max_element(layer.begin(), layer.end()) + 1;
}

std::size_t
DagSketch::memoryBytes() const
{
    std::size_t bytes = scc_of_path.size() * sizeof(SccId) +
                        layer.size() * sizeof(std::uint32_t) +
                        sketch.storageBytes();
    for (const auto &paths : paths_in_scc)
        bytes += paths.size() * sizeof(PathId);
    return bytes;
}

namespace {

/** Map each dependency-graph vertex to a local SCC id, using one Tarjan
 *  pass per contiguous vertex range (edges within the range only). */
std::pair<std::vector<SccId>, SccId>
localContraction(const graph::DirectedGraph &dep, unsigned num_threads,
                 ThreadPool *pool)
{
    const VertexId n = dep.numVertices();
    const unsigned threads = std::max(1u, num_threads);
    const VertexId chunk = (n + threads - 1) / threads;

    std::vector<std::vector<SccId>> local_comp(threads);
    std::vector<SccId> local_count(threads, 0);

    auto work = [&](std::size_t t) {
        const VertexId lo = static_cast<VertexId>(t) * chunk;
        const VertexId hi = std::min<VertexId>(n, lo + chunk);
        if (lo >= hi)
            return;
        graph::GraphBuilder builder(hi - lo);
        for (VertexId v = lo; v < hi; ++v) {
            for (const VertexId w : dep.outNeighbors(v)) {
                if (w >= lo && w < hi)
                    builder.addEdge(v - lo, w - lo);
            }
        }
        const auto scc = graph::computeScc(builder.build());
        local_comp[t] = scc.component;
        local_count[t] = scc.num_components;
    };

    if (threads == 1) {
        work(0);
    } else if (pool) {
        pool->parallelFor(threads, work);
    } else {
        ThreadPool tmp(threads);
        tmp.parallelFor(threads, work);
    }

    // Offset local ids into a single namespace.
    std::vector<SccId> base(threads + 1, 0);
    for (unsigned t = 0; t < threads; ++t)
        base[t + 1] = base[t] + local_count[t];

    std::vector<SccId> comp(n, kInvalidScc);
    for (unsigned t = 0; t < threads; ++t) {
        const VertexId lo = static_cast<VertexId>(t) * chunk;
        for (std::size_t i = 0; i < local_comp[t].size(); ++i)
            comp[lo + i] = base[t] + local_comp[t][i];
    }
    return {std::move(comp), base[threads]};
}

} // namespace

DagSketch
buildDagSketch(const graph::DirectedGraph &dependency_graph,
               PathId num_paths, unsigned num_threads, ThreadPool *pool)
{
    DagSketch out;
    const VertexId np = num_paths ? num_paths
                                  : dependency_graph.numVertices();
    if (dependency_graph.numVertices() == 0)
        return out;

    // Phase 1: per-thread local contraction.
    auto [local, num_local] =
        localContraction(dependency_graph, num_threads, pool);

    // Phase 2: contract the graph of local SCCs globally.
    graph::GraphBuilder builder(num_local);
    for (EdgeId e = 0; e < dependency_graph.numEdges(); ++e) {
        const SccId a = local[dependency_graph.edgeSource(e)];
        const SccId b = local[dependency_graph.edgeTarget(e)];
        if (a != b)
            builder.addEdge(a, b);
    }
    const graph::DirectedGraph contracted = builder.build();
    const auto global = graph::computeScc(contracted);

    out.num_sccs = global.num_components;
    out.scc_of_path.resize(np);
    for (VertexId p = 0; p < np; ++p)
        out.scc_of_path[p] = global.component[local[p]];

    out.sketch = graph::condense(contracted, global);
    out.layer = graph::dagLayers(out.sketch);

    out.paths_in_scc.assign(out.num_sccs, {});
    for (VertexId p = 0; p < np; ++p)
        out.paths_in_scc[out.scc_of_path[p]].push_back(p);

    std::size_t best = 0;
    for (SccId s = 0; s < out.num_sccs; ++s) {
        if (out.paths_in_scc[s].size() > best) {
            best = out.paths_in_scc[s].size();
            out.giant_scc = s;
        }
    }
    return out;
}

} // namespace digraph::partition
