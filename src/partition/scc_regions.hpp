/**
 * @file
 * SCC *regions* of a directed graph, shared by the decomposer and the
 * merger.
 *
 * A region is either one cyclic (multi-vertex) SCC or the union of all
 * acyclic (singleton) SCCs. A directed path whose vertices stay inside a
 * single region never mixes "iterating" (cyclic) state with "one-shot"
 * (DAG) state, which keeps the path dependency graph's condensation
 * aligned with the vertex condensation — the property Observation 2 of
 * the paper exploits.
 */

#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/scc.hpp"

namespace digraph::partition {

/** Region classification per vertex. */
class SccRegions
{
  public:
    SccRegions() = default;

    /** Compute SCCs of @p g and classify regions. */
    explicit SccRegions(const graph::DirectedGraph &g)
        : SccRegions(g, graph::computeScc(g))
    {}

    /** Classify from a precomputed SCC result. */
    SccRegions(const graph::DirectedGraph &g, const graph::SccResult &scc)
        : component_(scc.component), cyclic_(g.numVertices(), false)
    {
        for (VertexId v = 0; v < g.numVertices(); ++v)
            cyclic_[v] = scc.sizes[scc.component[v]] > 1;
    }

    /** True when @p v belongs to a cyclic (multi-vertex) SCC. */
    bool cyclic(VertexId v) const { return cyclic_[v]; }

    /** SCC id of @p v. */
    SccId component(VertexId v) const { return component_[v]; }

    /**
     * True when an edge u->v may be chained into the current path: both
     * endpoints in the same cyclic SCC, or both in acyclic territory.
     */
    bool
    sameRegion(VertexId u, VertexId v) const
    {
        if (!cyclic_[u] && !cyclic_[v])
            return true;
        return cyclic_[u] && cyclic_[v] &&
               component_[u] == component_[v];
    }

    /** True when two *head* vertices define the same region (merge
     *  compatibility of the paths starting there). */
    bool
    sameHeadRegion(VertexId a, VertexId b) const
    {
        if (!cyclic_[a] && !cyclic_[b])
            return true;
        return cyclic_[a] && cyclic_[b] &&
               component_[a] == component_[b];
    }

    /** True when the classification has been computed. */
    bool valid() const { return !component_.empty(); }

  private:
    std::vector<SccId> component_;
    std::vector<bool> cyclic_;
};

} // namespace digraph::partition
