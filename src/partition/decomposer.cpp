#include "partition/decomposer.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "graph/scc.hpp"

namespace digraph::partition {

void
SortedAdjacency::rebuildRow(const graph::DirectedGraph &g, VertexId v)
{
    const auto nbrs = g.outNeighbors(v);
    auto &list = rows_[v];
    list.clear();
    list.reserve(nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k)
        list.push_back({nbrs[k], g.outEdgeId(v, k)});
    if (degree_sorted_) {
        std::stable_sort(list.begin(), list.end(),
                         [&g](const AdjacencyEntry &a,
                              const AdjacencyEntry &b) {
                             return g.degree(a.target) >
                                    g.degree(b.target);
                         });
    }
}

void
SortedAdjacency::build(const graph::DirectedGraph &g, bool degree_sorted)
{
    degree_sorted_ = degree_sorted;
    num_edges_ = g.numEdges();
    rows_.assign(g.numVertices(), {});
    for (VertexId v = 0; v < g.numVertices(); ++v)
        rebuildRow(g, v);
}

void
SortedAdjacency::applyDelta(const graph::DirectedGraph &g,
                            const graph::GraphDelta &delta)
{
    if (rows_.size() != delta.old_num_vertices ||
        num_edges_ != delta.old_to_new.size()) {
        panic("SortedAdjacency::applyDelta: cache does not match the "
              "pre-append graph");
    }
    rows_.resize(g.numVertices());

    // Exactly the rows whose hottest-first order may have moved: a row
    // is stale when it gained an edge or when it points at a vertex
    // whose degree changed — and degrees change only at batch endpoints.
    std::vector<std::uint8_t> dirty(g.numVertices(), 0);
    for (const graph::Edge &e : delta.fresh) {
        dirty[e.src] = 1;
        for (const VertexId u : g.inNeighbors(e.src))
            dirty[u] = 1;
        for (const VertexId u : g.inNeighbors(e.dst))
            dirty[u] = 1;
    }

    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (dirty[v]) {
            rebuildRow(g, v);
        } else {
            for (AdjacencyEntry &a : rows_[v])
                a.edge = delta.old_to_new[a.edge];
        }
    }
    num_edges_ = g.numEdges();
}

namespace {

/**
 * Decompose the subgraph whose *sources* lie in [lo, hi).
 *
 * Follows Algorithm 1: iterative DFS (explicit stack), depth-bounded by
 * d_max, successors visited hottest-first. The `open` flag realizes the
 * NewPath() calls: a terminal event closes the current path and the next
 * inserted edge starts a fresh one.
 */
class RangeDecomposer
{
  public:
    RangeDecomposer(const graph::DirectedGraph &g,
                    const SortedAdjacency &sorted_adj,
                    std::vector<std::uint8_t> &edge_visited,
                    const SccRegions *regions,
                    const DecomposeOptions &options, VertexId lo,
                    VertexId hi)
        : g_(g), sorted_adj_(sorted_adj), edge_visited_(edge_visited),
          regions_(regions), options_(options), lo_(lo), hi_(hi),
          vertex_visited_(g.numVertices(), 0)
    {}

    PathSet
    run()
    {
        // Roots in descending degree order so hub chains form first.
        std::vector<VertexId> roots(hi_ - lo_);
        std::iota(roots.begin(), roots.end(), lo_);
        if (options_.degree_sorted) {
            std::stable_sort(roots.begin(), roots.end(),
                             [this](VertexId a, VertexId b) {
                                 return g_.degree(a) > g_.degree(b);
                             });
        }
        for (const VertexId root : roots) {
            // "Repeatedly takes the vertex with unvisited local edges as
            // the root": a single dfs() call may leave edges of root
            // unvisited only if they were consumed deeper; re-check.
            while (hasUnvisitedLocalEdge(root))
                dfs(root);
        }
        return std::move(paths_);
    }

  private:
    bool
    isLocal(VertexId v) const
    {
        return v >= lo_ && v < hi_;
    }

    bool
    hasUnvisitedLocalEdge(VertexId v) const
    {
        for (const AdjacencyEntry &a : sorted_adj_.row(v)) {
            if (!edge_visited_[a.edge])
                return true;
        }
        return false;
    }

    void
    insertEdge(VertexId src, VertexId dst, EdgeId id)
    {
        if (!open_) {
            paths_.beginPath(src);
            open_ = true;
        }
        paths_.extend(dst, id);
    }

    void closePath() { open_ = false; }

    void
    dfs(VertexId root)
    {
        struct Frame
        {
            VertexId v;
            std::size_t child;
            unsigned depth;
        };
        std::vector<Frame> stack;
        stack.push_back({root, 0, 0});
        vertex_visited_[root] = 1;

        while (!stack.empty()) {
            Frame &frame = stack.back();
            const VertexId v = frame.v;

            if (frame.depth >= options_.d_max) {
                // Depth bound reached: Algorithm 1 line 3/19.
                closePath();
                stack.pop_back();
                continue;
            }

            const auto &adj = sorted_adj_.row(v);
            bool descended = false;
            while (frame.child < adj.size()) {
                const AdjacencyEntry a = adj[frame.child++];
                if (edge_visited_[a.edge])
                    continue;
                edge_visited_[a.edge] = 1;
                insertEdge(v, a.target, a.edge);
                // Chain on only within one cyclic SCC or through purely
                // acyclic territory; crossing a cyclic-SCC boundary ends
                // the path so the path dependency graph's condensation
                // mirrors the vertex condensation.
                const bool region_ok =
                    !regions_ || regions_->sameRegion(v, a.target);
                if (region_ok && isLocal(a.target) &&
                    !vertex_visited_[a.target]) {
                    vertex_visited_[a.target] = 1;
                    stack.push_back({a.target, 0, frame.depth + 1});
                    descended = true;
                    break;
                }
                // Target already visited or non-local: the path ends at
                // the replica (Algorithm 1 lines 12-14).
                closePath();
            }
            if (descended)
                continue;

            if (frame.child >= adj.size()) {
                // No unvisited local edges left (Algorithm 1 line 18-19).
                closePath();
                stack.pop_back();
            }
        }
    }

    const graph::DirectedGraph &g_;
    const SortedAdjacency &sorted_adj_;
    std::vector<std::uint8_t> &edge_visited_;
    const SccRegions *regions_;
    const DecomposeOptions &options_;
    const VertexId lo_;
    const VertexId hi_;

    std::vector<std::uint8_t> vertex_visited_;
    PathSet paths_;
    bool open_ = false;
};

} // namespace

PathSet
decompose(const graph::DirectedGraph &g, const DecomposeOptions &options,
          ThreadPool *pool, const SccRegions *regions,
          const SortedAdjacency *adjacency)
{
    const VertexId n = g.numVertices();
    if (n == 0 || g.numEdges() == 0)
        return PathSet{};

    // Reuse the caller's degree-sorted adjacency when it fits; building
    // one here pays the O(m log d) row sorts the cache exists to avoid.
    SortedAdjacency local_adj;
    if (!adjacency || !adjacency->matches(g) ||
        adjacency->degreeSorted() != options.degree_sorted) {
        local_adj.build(g, options.degree_sorted);
        adjacency = &local_adj;
    }

    std::vector<std::uint8_t> edge_visited(g.numEdges(), 0);

    // SCC regions: paths end where they enter or leave a cyclic SCC.
    SccRegions local_regions;
    if (options.scc_confined && !regions) {
        local_regions = SccRegions(g);
        regions = &local_regions;
    }
    if (!options.scc_confined)
        regions = nullptr;

    const unsigned threads = std::max(1u, options.num_threads);
    const VertexId chunk = (n + threads - 1) / threads;

    std::vector<PathSet> locals(threads);
    auto work = [&](std::size_t t) {
        const VertexId lo = static_cast<VertexId>(t) * chunk;
        const VertexId hi = std::min<VertexId>(n, lo + chunk);
        if (lo >= hi)
            return;
        RangeDecomposer dec(g, *adjacency, edge_visited, regions,
                            options, lo, hi);
        locals[t] = dec.run();
    };

    if (threads == 1) {
        work(0);
    } else if (pool) {
        pool->parallelFor(threads, work);
    } else {
        ThreadPool tmp(threads);
        tmp.parallelFor(threads, work);
    }

    // Concatenate thread-local path sets in thread order (deterministic).
    PathSet out;
    for (const PathSet &local : locals) {
        for (PathId p = 0; p < local.numPaths(); ++p) {
            const auto verts = local.pathVertices(p);
            const auto edges = local.pathEdges(p);
            out.beginPath(verts[0]);
            for (std::size_t i = 0; i < edges.size(); ++i)
                out.extend(verts[i + 1], edges[i]);
        }
    }
    return out;
}

} // namespace digraph::partition
