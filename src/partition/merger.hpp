/**
 * @file
 * Head-to-tail merging of short paths (Section 3.2.1).
 *
 * The parallel decomposition can emit short paths (the depth bound and
 * subgraph borders cut chains). Merging path A with path B when
 * tail(A) == head(B) raises the average path length, which shortens
 * convergence (state crosses more hops per round). The paper's constraint
 * is preserved: when the shared vertex has both in-degree and out-degree
 * greater than one, the merge only happens if the vertex is not an *inner*
 * vertex of some other path.
 */

#pragma once

#include <cstddef>

#include "graph/digraph.hpp"
#include "partition/path_set.hpp"
#include "partition/scc_regions.hpp"

namespace digraph::partition {

/** Options for path merging. */
struct MergeOptions
{
    /** Only paths shorter than this many edges initiate a merge
     *  (the "short ones" of the paper). */
    std::size_t short_threshold = 16;
    /** Upper bound on a merged chain's length in edges (0 = unbounded).
     *  Bounded by default: over-long chains serialize a whole region
     *  onto one GPU thread and dominate every warp they appear in. */
    std::size_t max_merged_length = 64;
};

/** Result of mergePaths, with simple effectiveness statistics. */
struct MergeResult
{
    PathSet paths;
    std::size_t merges_performed = 0;
    double avg_length_before = 0.0;
    double avg_length_after = 0.0;
};

/**
 * Merge short paths of @p paths head-to-tail.
 * @param regions Optional SCC regions; when given, two paths only merge
 *        when their head regions match, so merged paths keep the
 *        region-purity invariant the decomposer established.
 */
MergeResult mergePaths(const PathSet &paths, const graph::DirectedGraph &g,
                       const MergeOptions &options = {},
                       const SccRegions *regions = nullptr);

} // namespace digraph::partition
