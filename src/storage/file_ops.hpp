/**
 * @file
 * Injectable filesystem seam for the durable store (DESIGN.md §16).
 *
 * Every byte the DurableStore moves to or from disk goes through a
 * FileOps instance, so the crash-injection harness can make I/O fail in
 * precisely controlled ways without touching the store logic:
 *
 *  - RealFileOps is the production implementation: crash-consistent
 *    whole-file writes (temp -> flush -> fsync -> atomic rename via
 *    AtomicFileWriter), mmap-backed read-only file mappings (falling
 *    back to a buffered read when mmap is unavailable), and fsync'd
 *    O_APPEND journal appends;
 *  - FaultyFileOps wraps another FileOps with a FileFaultPlan: fail the
 *    Nth atomic write outright (crash before the rename — no file
 *    appears), tear the Nth rename (the destination ends up holding a
 *    truncated prefix, as after a crash mid-writeback on a
 *    non-atomic filesystem), return a short read for the Nth
 *    read/mapping, or fail the Nth journal append.
 *
 * The store never trusts a read: every deserializer bounds-checks
 * against the mapped size and every shard is checksummed, so each
 * injected fault must surface as a clean recovery decision (fall back
 * one version, ignore a torn journal tail), never as a crash.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace digraph::storage {

/**
 * A read-only view of one file's bytes. Backed by an mmap when the real
 * ops produced it (pages are faulted in lazily, so loading a store
 * version touches only the shards actually deserialized), or by a heap
 * buffer (fallback path, fault injection). Invalid (data() == nullptr)
 * when the file could not be opened.
 */
class MappedFile
{
  public:
    MappedFile() = default;
    MappedFile(std::shared_ptr<const void> owner, const std::uint8_t *data,
               std::size_t size)
        : owner_(std::move(owner)), data_(data), size_(size)
    {
    }

    bool valid() const { return data_ != nullptr; }
    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    /** Keeps the mapping (munmap deleter) or buffer alive. */
    std::shared_ptr<const void> owner_;
    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
};

/** Filesystem operations the durable store performs. */
class FileOps
{
  public:
    virtual ~FileOps() = default;

    /** Crash-consistent whole-file write: the destination either keeps
     *  its previous content or holds all @p bytes — never a prefix.
     *  @return false on failure (no partial file left behind). */
    virtual bool writeFileAtomic(const std::string &path, const void *data,
                                 std::size_t bytes) = 0;

    /** Map @p path read-only. Invalid result when it cannot be opened;
     *  the caller's deserializer detects truncation via bounds checks. */
    virtual MappedFile mapFile(const std::string &path) = 0;

    /** Append @p line + '\n' to @p path (creating it), flushed to disk
     *  before returning — the journal append. @return false on any
     *  failure. */
    virtual bool appendLine(const std::string &path,
                            const std::string &line) = 0;

    /** Whether @p path exists (any file type). */
    virtual bool exists(const std::string &path) = 0;

    /** Remove @p path; false when it existed but could not be removed. */
    virtual bool remove(const std::string &path) = 0;

    /** Truncate @p path to @p bytes (journal torn-tail healing).
     *  @return false when the file could not be resized. */
    virtual bool truncateFile(const std::string &path,
                              std::uint64_t bytes) = 0;

    /** Names (not paths) of the regular files directly inside @p dir;
     *  empty when the directory is missing. */
    virtual std::vector<std::string> listDir(const std::string &dir) = 0;

    /** Create @p dir (and parents). @return false on failure. */
    virtual bool createDir(const std::string &dir) = 0;
};

/** Production FileOps (see file header). */
class RealFileOps : public FileOps
{
  public:
    bool writeFileAtomic(const std::string &path, const void *data,
                         std::size_t bytes) override;
    MappedFile mapFile(const std::string &path) override;
    bool appendLine(const std::string &path,
                    const std::string &line) override;
    bool exists(const std::string &path) override;
    bool remove(const std::string &path) override;
    bool truncateFile(const std::string &path,
                      std::uint64_t bytes) override;
    std::vector<std::string> listDir(const std::string &dir) override;
    bool createDir(const std::string &dir) override;

    /** Process-wide shared instance (the store's default). */
    static RealFileOps &instance();
};

/**
 * One deterministic fault plan for FaultyFileOps. Counters are 0-based
 * over the wrapped instance's lifetime; -1 disables an injection.
 */
struct FileFaultPlan
{
    /** Fail the Nth writeFileAtomic before anything reaches the final
     *  name (simulated crash before rename). */
    long fail_write_at = -1;
    /** Fail EVERY writeFileAtomic from the Nth onward (persistent media
     *  failure: the disk stops accepting new versions mid-run). */
    long fail_writes_from = -1;
    /** Tear the Nth writeFileAtomic: the destination ends up holding
     *  only the first half of the payload (torn writeback). */
    long torn_write_at = -1;
    /** Truncate the Nth mapFile result to half its real size (short
     *  read). */
    long short_read_at = -1;
    /** Fail the Nth appendLine (journal append lost). */
    long fail_append_at = -1;
    /** Tear the Nth appendLine: only a prefix of the line lands on
     *  disk (torn journal tail after a crash mid-append). */
    long torn_append_at = -1;
};

/** Fault-injecting FileOps decorator (see file header). */
class FaultyFileOps : public FileOps
{
  public:
    /** Wrap @p base (RealFileOps::instance() when null). */
    explicit FaultyFileOps(FileFaultPlan plan, FileOps *base = nullptr)
        : plan_(plan), base_(base ? base : &RealFileOps::instance())
    {
    }

    bool writeFileAtomic(const std::string &path, const void *data,
                         std::size_t bytes) override;
    MappedFile mapFile(const std::string &path) override;
    bool appendLine(const std::string &path,
                    const std::string &line) override;
    bool exists(const std::string &path) override { return base_->exists(path); }
    bool remove(const std::string &path) override { return base_->remove(path); }
    bool truncateFile(const std::string &path,
                      std::uint64_t bytes) override
    {
        return base_->truncateFile(path, bytes);
    }
    std::vector<std::string> listDir(const std::string &dir) override
    {
        return base_->listDir(dir);
    }
    bool createDir(const std::string &dir) override
    {
        return base_->createDir(dir);
    }

    /** Operations seen so far (test assertions / plan calibration). */
    long writesSeen() const { return writes_; }
    long readsSeen() const { return reads_; }
    long appendsSeen() const { return appends_; }

  private:
    FileFaultPlan plan_;
    FileOps *base_;
    long writes_ = 0;
    long reads_ = 0;
    long appends_ = 0;
};

} // namespace digraph::storage
