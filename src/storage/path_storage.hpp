/**
 * @file
 * The paper's four-array directed-path storage (Section 3.2.1, Fig 4).
 *
 *  - E_idx: per-path vertex-id sequences, concatenated (two successive
 *    items describe one directed edge);
 *  - S_val: mirror state per E_idx slot (the replica a GPU thread reads
 *    and writes while walking the path);
 *  - E_val: per-edge algorithm value (e.g. the last-propagated source
 *    contribution), aligned with the edges of each path;
 *  - V_val: master state per vertex (one slot per vertex id);
 *  - PTable: offset of each path's first vertex in E_idx; two successive
 *    entries delimit a path.
 *
 * Because a partition's paths occupy consecutive PTable/E_idx ranges, a
 * warp assigned to a partition reads consecutive global memory — the
 * coalesced-access property the cost model rewards.
 *
 * The storage is split along the mutability boundary: PathLayout holds
 * the immutable topology arrays (PTable, E_idx, edge ids) and is shared
 * between concurrent jobs via shared_ptr; PathStorage adds the per-job
 * mutable value arrays (S_val, loaded snapshots, E_val, V_val) on top of
 * one layout.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/prefetch.hpp"
#include "common/types.hpp"
#include "graph/digraph.hpp"
#include "partition/path_set.hpp"

namespace digraph::storage {

/** Mutable view of one path's storage slices. */
struct PathView
{
    /** Vertex ids along the path (length = edges + 1). */
    std::span<const VertexId> vertex_ids;
    /** Mirror states, parallel to vertex_ids. */
    std::span<Value> mirror_states;
    /** Mirror snapshot at partition-load time, parallel to vertex_ids. */
    std::span<Value> loaded_states;
    /** Per-edge algorithm values, parallel to the path's edges. */
    std::span<Value> edge_states;
    /** Original graph edge ids, parallel to the path's edges. */
    std::span<const EdgeId> edge_ids;

    /** Number of edges. */
    std::size_t length() const { return edge_ids.size(); }
};

/**
 * Incremental dirty-slot worklist over a contiguous E_idx slot range
 * (one partition). mark() appends a slot on its first marking; drain
 * callers take the slot list (sorting it if a deterministic order is
 * required) and reset() clears the marks in O(marked). Replaces the
 * per-round full-range sweeps of the mirror-push phase.
 */
class SlotDirtySet
{
  public:
    SlotDirtySet() = default;

    /** Bind to slot range [lo, hi); clears any previous state. */
    void
    bind(std::uint64_t lo, std::uint64_t hi)
    {
        lo_ = lo;
        marked_.assign(hi - lo, 0);
        slots_.clear();
    }

    /** Mark @p slot (must be inside the bound range) dirty. */
    void
    mark(std::uint64_t slot)
    {
        std::uint8_t &flag = marked_[slot - lo_];
        if (!flag) {
            flag = 1;
            slots_.push_back(slot);
        }
    }

    /** Slots marked since the last reset, in marking order. */
    std::vector<std::uint64_t> &slots() { return slots_; }

    /** Number of marked slots. */
    std::size_t size() const { return slots_.size(); }

    /** Unmark everything (O(marked), not O(range)). */
    void
    reset()
    {
        for (const std::uint64_t slot : slots_)
            marked_[slot - lo_] = 0;
        slots_.clear();
    }

    /** Bytes of the bound range flags plus the current worklist. */
    std::size_t
    memoryBytes() const
    {
        return marked_.size() * sizeof(std::uint8_t) +
               slots_.size() * sizeof(std::uint64_t);
    }

  private:
    std::uint64_t lo_ = 0;
    std::vector<std::uint8_t> marked_;
    std::vector<std::uint64_t> slots_;
};

/**
 * Immutable topology half of the four-array storage: PTable, E_idx and
 * the per-edge original-graph edge ids. Built once per preprocessing
 * result and shared (read-only) by every job running on it.
 */
class PathLayout
{
  public:
    PathLayout() = default;

    /** Materialize from @p paths (already in final partition order). */
    explicit PathLayout(const partition::PathSet &paths);

    /** Number of paths. */
    PathId numPaths() const
    {
        return ptable_.empty() ? 0
                               : static_cast<PathId>(ptable_.size() - 1);
    }

    /** Total E_idx slots. */
    std::size_t numSlots() const { return e_idx_.size(); }

    /** Total path edges (E_val length). */
    std::size_t numPathEdges() const { return edge_ids_.size(); }

    /** PTable entry: E_idx offset of path @p p's first vertex. */
    std::uint64_t pathOffset(PathId p) const { return ptable_[p]; }

    /** Raw E_idx array. */
    std::span<const VertexId> eIdx() const { return e_idx_; }

    /** Vertex id stored at E_idx slot @p slot. */
    VertexId vertexAt(std::uint64_t slot) const { return e_idx_[slot]; }

    /** Original graph edge id stored at E_val index @p i. */
    EdgeId edgeIdAt(std::uint64_t i) const { return edge_ids_[i]; }

    /** Raw per-path-edge original edge-id array. */
    std::span<const EdgeId> edgeIds() const { return edge_ids_; }

    /** Bytes a GPU must move to load path @p p (E_idx + S_val + E_val
     *  slices plus its PTable entry). */
    std::size_t pathBytes(PathId p) const;

    /** Bytes for a contiguous path range [first, last). */
    std::size_t rangeBytes(PathId first, PathId last) const;

    /** Host bytes of the layout arrays themselves. */
    std::size_t memoryBytes() const;

  private:
    std::vector<std::uint64_t> ptable_;
    std::vector<VertexId> e_idx_;
    std::vector<EdgeId> edge_ids_;
};

/**
 * The four arrays plus PTable: one shared immutable PathLayout plus this
 * instance's own mutable value arrays (per-job state).
 */
class PathStorage
{
  public:
    PathStorage() = default;

    /** Build a fresh private layout from @p paths over @p g. */
    PathStorage(const partition::PathSet &paths,
                const graph::DirectedGraph &g);

    /** Share @p layout (concurrent jobs over one topology); only the
     *  value arrays are allocated here. */
    PathStorage(std::shared_ptr<const PathLayout> layout,
                VertexId num_vertices);

    /** The shared topology half. */
    const PathLayout &layout() const { return *layout_; }

    /** The shared topology half, by owner (job-manager sharing). */
    const std::shared_ptr<const PathLayout> &layoutPtr() const
    {
        return layout_;
    }

    /** Number of paths. */
    PathId numPaths() const { return layout_->numPaths(); }

    /** Number of vertices (V_val size). */
    VertexId numVertices() const
    {
        return static_cast<VertexId>(v_val_.size());
    }

    /** Mutable view of path @p p. */
    PathView path(PathId p);

    /** PTable entry: E_idx offset of path @p p's first vertex. */
    std::uint64_t pathOffset(PathId p) const
    {
        return layout_->pathOffset(p);
    }

    /** Master state of vertex @p v. */
    Value &vVal(VertexId v) { return v_val_[v]; }
    Value vVal(VertexId v) const { return v_val_[v]; }

    /** Whole master-state array. */
    std::span<Value> vVals() { return v_val_; }
    std::span<const Value> vVals() const { return v_val_; }

    /** Raw E_idx array (tests / coalescing analysis). */
    std::span<const VertexId> eIdx() const { return layout_->eIdx(); }

    /** Vertex id stored at E_idx slot @p slot. */
    VertexId vertexAt(std::uint64_t slot) const
    {
        return layout_->vertexAt(slot);
    }

    /** Mirror state at slot @p slot (hot-loop accessor). */
    Value &sVal(std::uint64_t slot) { return s_val_[slot]; }
    Value sVal(std::uint64_t slot) const { return s_val_[slot]; }

    /** Partition-load snapshot at slot @p slot (hot-loop accessor). */
    Value &loadedVal(std::uint64_t slot) { return loaded_val_[slot]; }
    Value loadedVal(std::uint64_t slot) const { return loaded_val_[slot]; }

    /** Raw E_val array. */
    std::span<const Value> eVal() const { return e_val_; }

    /** Mutable E_val array (checkpoint capture/restore). E_val slices
     *  align with path edges: path p's edges occupy indexes
     *  [pathOffset(p) - p, pathOffset(p + 1) - p - 1). */
    std::span<Value> eVals() { return e_val_; }

    /** Original graph edge id stored at E_val index @p i. */
    EdgeId edgeIdAt(std::uint64_t i) const
    {
        return layout_->edgeIdAt(i);
    }

    /** Fill every S_val and loaded-state slot of path @p p from V_val
     *  (the partition-load pull). */
    void pullPath(PathId p);

    /**
     * pullPath() with a master override: each slot is filled from
     * @p masterOf(vertex_id) instead of V_val. Used by dispatches that
     * buffer their master merges privately until a wave barrier — the
     * pull must see the dispatch's own pending merges even though V_val
     * is frozen for the wave.
     */
    template <typename F>
    void
    pullPathWith(PathId p, F &&masterOf)
    {
        const std::uint64_t lo = layout_->pathOffset(p);
        const std::uint64_t hi = layout_->pathOffset(p + 1);
        for (std::uint64_t slot = lo; slot < hi; ++slot) {
            // Path-sequential gather: E_idx streams linearly but V_val
            // is hit through the vertex id — prefetch the master a few
            // slots ahead (the overlay miss path reads V_val too).
            if (slot + kPrefetchDistance < hi) {
                DIGRAPH_PREFETCH(
                    &v_val_[layout_->vertexAt(slot + kPrefetchDistance)]);
            }
            s_val_[slot] = masterOf(layout_->vertexAt(slot));
            loaded_val_[slot] = s_val_[slot];
        }
    }

    /** Bytes a GPU must move to load path @p p. */
    std::size_t pathBytes(PathId p) const
    {
        return layout_->pathBytes(p);
    }

    /** Bytes for a contiguous path range [first, last). */
    std::size_t rangeBytes(PathId first, PathId last) const
    {
        return layout_->rangeBytes(first, last);
    }

    /** Initialize V_val, S_val snapshots and E_val.
     *  @param vertex_init V_val per vertex; @param edge_init E_val per
     *  original edge id. */
    void initialize(const std::vector<Value> &vertex_init,
                    const std::vector<Value> &edge_init);

    /** Host bytes of this instance's private value arrays (excludes the
     *  shared layout). */
    std::size_t valueBytes() const;

  private:
    std::shared_ptr<const PathLayout> layout_ =
        std::make_shared<PathLayout>();
    std::vector<Value> s_val_;
    std::vector<Value> loaded_val_;
    std::vector<Value> e_val_;
    std::vector<Value> v_val_;
};

} // namespace digraph::storage
