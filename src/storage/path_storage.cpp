#include "storage/path_storage.hpp"

#include "common/logging.hpp"

namespace digraph::storage {

PathLayout::PathLayout(const partition::PathSet &paths)
{
    const PathId np = paths.numPaths();
    ptable_.reserve(np + 1);
    std::uint64_t offset = 0;
    for (PathId p = 0; p < np; ++p) {
        ptable_.push_back(offset);
        const auto verts = paths.pathVertices(p);
        const auto edges = paths.pathEdges(p);
        for (const VertexId v : verts)
            e_idx_.push_back(v);
        for (const EdgeId e : edges)
            edge_ids_.push_back(e);
        offset += verts.size();
    }
    ptable_.push_back(offset);
}

std::size_t
PathLayout::pathBytes(PathId p) const
{
    const std::uint64_t verts = ptable_[p + 1] - ptable_[p];
    const std::uint64_t edges = verts - 1;
    return static_cast<std::size_t>(
        verts * (sizeof(VertexId) + sizeof(Value)) + // E_idx + S_val
        edges * sizeof(Value) +                      // E_val
        sizeof(std::uint64_t));                      // PTable entry
}

std::size_t
PathLayout::rangeBytes(PathId first, PathId last) const
{
    std::size_t total = 0;
    for (PathId p = first; p < last; ++p)
        total += pathBytes(p);
    return total;
}

std::size_t
PathLayout::memoryBytes() const
{
    return ptable_.size() * sizeof(std::uint64_t) +
           e_idx_.size() * sizeof(VertexId) +
           edge_ids_.size() * sizeof(EdgeId);
}

PathStorage::PathStorage(const partition::PathSet &paths,
                         const graph::DirectedGraph &g)
    : layout_(std::make_shared<PathLayout>(paths))
{
    s_val_.assign(layout_->numSlots(), 0.0);
    loaded_val_.assign(layout_->numSlots(), 0.0);
    e_val_.assign(layout_->numPathEdges(), 0.0);
    v_val_.assign(g.numVertices(), 0.0);
}

PathStorage::PathStorage(std::shared_ptr<const PathLayout> layout,
                         VertexId num_vertices)
    : layout_(std::move(layout))
{
    if (layout_ == nullptr)
        panic("PathStorage: null shared layout");
    s_val_.assign(layout_->numSlots(), 0.0);
    loaded_val_.assign(layout_->numSlots(), 0.0);
    e_val_.assign(layout_->numPathEdges(), 0.0);
    v_val_.assign(num_vertices, 0.0);
}

PathView
PathStorage::path(PathId p)
{
    const std::uint64_t lo = layout_->pathOffset(p);
    const std::uint64_t hi = layout_->pathOffset(p + 1);
    const std::uint64_t elo = lo - p; // p paths before -> p fewer edges
    const std::uint64_t ehi = hi - p - 1;
    const std::span<const VertexId> e_idx = layout_->eIdx();
    const std::span<const EdgeId> edge_ids = layout_->edgeIds();
    PathView view;
    view.vertex_ids = e_idx.subspan(lo, hi - lo);
    view.mirror_states = {s_val_.data() + lo, s_val_.data() + hi};
    view.loaded_states = {loaded_val_.data() + lo, loaded_val_.data() + hi};
    view.edge_states = {e_val_.data() + elo, e_val_.data() + ehi};
    view.edge_ids = edge_ids.subspan(elo, ehi - elo);
    return view;
}

void
PathStorage::pullPath(PathId p)
{
    const std::uint64_t lo = layout_->pathOffset(p);
    const std::uint64_t hi = layout_->pathOffset(p + 1);
    for (std::uint64_t slot = lo; slot < hi; ++slot) {
        // Path-sequential gather prefetch of the master array (E_idx
        // streams linearly, V_val is hit through the vertex id).
        if (slot + kPrefetchDistance < hi)
            DIGRAPH_PREFETCH(
                &v_val_[layout_->vertexAt(slot + kPrefetchDistance)]);
        s_val_[slot] = v_val_[layout_->vertexAt(slot)];
        loaded_val_[slot] = s_val_[slot];
    }
}

void
PathStorage::initialize(const std::vector<Value> &vertex_init,
                        const std::vector<Value> &edge_init)
{
    if (vertex_init.size() != v_val_.size())
        panic("PathStorage::initialize: vertex array size mismatch");
    v_val_ = vertex_init;
    const std::size_t slots = layout_->numSlots();
    for (std::size_t slot = 0; slot < slots; ++slot) {
        s_val_[slot] = v_val_[layout_->vertexAt(slot)];
        loaded_val_[slot] = s_val_[slot];
    }
    const std::size_t edges = layout_->numPathEdges();
    for (std::size_t i = 0; i < edges; ++i)
        e_val_[i] = edge_init[layout_->edgeIdAt(i)];
}

std::size_t
PathStorage::valueBytes() const
{
    return (s_val_.size() + loaded_val_.size() + e_val_.size() +
            v_val_.size()) *
           sizeof(Value);
}

} // namespace digraph::storage
