#include "storage/path_storage.hpp"

#include "common/logging.hpp"

namespace digraph::storage {

PathStorage::PathStorage(const partition::PathSet &paths,
                         const graph::DirectedGraph &g)
{
    const PathId np = paths.numPaths();
    ptable_.reserve(np + 1);
    std::uint64_t offset = 0;
    for (PathId p = 0; p < np; ++p) {
        ptable_.push_back(offset);
        const auto verts = paths.pathVertices(p);
        const auto edges = paths.pathEdges(p);
        for (const VertexId v : verts)
            e_idx_.push_back(v);
        for (const EdgeId e : edges)
            edge_ids_.push_back(e);
        offset += verts.size();
    }
    ptable_.push_back(offset);

    s_val_.assign(e_idx_.size(), 0.0);
    loaded_val_.assign(e_idx_.size(), 0.0);
    e_val_.assign(edge_ids_.size(), 0.0);
    v_val_.assign(g.numVertices(), 0.0);
}

PathView
PathStorage::path(PathId p)
{
    const std::uint64_t lo = ptable_[p];
    const std::uint64_t hi = ptable_[p + 1];
    const std::uint64_t elo = lo - p; // p paths before -> p fewer edges
    const std::uint64_t ehi = hi - p - 1;
    PathView view;
    view.vertex_ids = {e_idx_.data() + lo, e_idx_.data() + hi};
    view.mirror_states = {s_val_.data() + lo, s_val_.data() + hi};
    view.loaded_states = {loaded_val_.data() + lo, loaded_val_.data() + hi};
    view.edge_states = {e_val_.data() + elo, e_val_.data() + ehi};
    view.edge_ids = {edge_ids_.data() + elo, edge_ids_.data() + ehi};
    return view;
}

void
PathStorage::pullPath(PathId p)
{
    const std::uint64_t lo = ptable_[p];
    const std::uint64_t hi = ptable_[p + 1];
    for (std::uint64_t slot = lo; slot < hi; ++slot) {
        s_val_[slot] = v_val_[e_idx_[slot]];
        loaded_val_[slot] = s_val_[slot];
    }
}

std::size_t
PathStorage::pathBytes(PathId p) const
{
    const std::uint64_t verts = ptable_[p + 1] - ptable_[p];
    const std::uint64_t edges = verts - 1;
    return static_cast<std::size_t>(
        verts * (sizeof(VertexId) + sizeof(Value)) + // E_idx + S_val
        edges * sizeof(Value) +                      // E_val
        sizeof(std::uint64_t));                      // PTable entry
}

std::size_t
PathStorage::rangeBytes(PathId first, PathId last) const
{
    std::size_t total = 0;
    for (PathId p = first; p < last; ++p)
        total += pathBytes(p);
    return total;
}

void
PathStorage::initialize(const std::vector<Value> &vertex_init,
                        const std::vector<Value> &edge_init)
{
    if (vertex_init.size() != v_val_.size())
        panic("PathStorage::initialize: vertex array size mismatch");
    v_val_ = vertex_init;
    for (std::size_t slot = 0; slot < e_idx_.size(); ++slot) {
        s_val_[slot] = v_val_[e_idx_[slot]];
        loaded_val_[slot] = s_val_[slot];
    }
    for (std::size_t i = 0; i < edge_ids_.size(); ++i)
        e_val_[i] = edge_init[edge_ids_[i]];
}

} // namespace digraph::storage
