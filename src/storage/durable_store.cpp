#include "storage/durable_store.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "graph/builder.hpp"
#include "metrics/trace.hpp"
#include "partition/snapshot.hpp"

namespace digraph::storage {

namespace {

constexpr std::uint64_t kMetaMagic = 0x44695374'4d455441ULL; // DiStMETA
constexpr std::uint64_t kTopoMagic = 0x44695374'544f504fULL; // DiStTOPO
constexpr std::uint64_t kValsMagic = 0x44695374'56414c53ULL; // DiStVALS
constexpr std::uint32_t kFormatVersion = 1;

/** Growable little-endian byte buffer (shard serialization). */
class ByteWriter
{
  public:
    template <typename T>
    void
    pod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *p = reinterpret_cast<const std::uint8_t *>(&value);
        buf_.insert(buf_.end(), p, p + sizeof(T));
    }

    template <typename T>
    void
    vec(const std::vector<T> &values)
    {
        pod(static_cast<std::uint64_t>(values.size()));
        const auto *p =
            reinterpret_cast<const std::uint8_t *>(values.data());
        buf_.insert(buf_.end(), p, p + values.size() * sizeof(T));
    }

    void
    span(std::span<const Value> values)
    {
        pod(static_cast<std::uint64_t>(values.size()));
        const auto *p =
            reinterpret_cast<const std::uint8_t *>(values.data());
        buf_.insert(buf_.end(), p, p + values.size_bytes());
    }

    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked reader over a mapped shard. Every accessor fails
 * cleanly (ok() false) on truncated or oversized-count input, so a torn
 * file can never drive an out-of-bounds read.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool ok() const { return ok_; }

    template <typename T>
    bool
    pod(T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (!ok_ || size_ - off_ < sizeof(T))
            return fail();
        std::memcpy(&value, data_ + off_, sizeof(T));
        off_ += sizeof(T);
        return true;
    }

    template <typename T>
    bool
    vec(std::vector<T> &values)
    {
        std::uint64_t count = 0;
        if (!pod(count))
            return false;
        if (count > (size_ - off_) / sizeof(T))
            return fail();
        values.resize(count);
        std::memcpy(values.data(), data_ + off_, count * sizeof(T));
        off_ += count * sizeof(T);
        return true;
    }

    /** Everything consumed exactly (no trailing garbage). */
    bool atEnd() const { return ok_ && off_ == size_; }

  private:
    bool
    fail()
    {
        ok_ = false;
        return false;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t off_ = 0;
    bool ok_ = true;
};

/** First out-CSR edge id of (src, dst), or kInvalidEdge when absent. */
EdgeId
firstEdgeId(const graph::DirectedGraph &g, VertexId src, VertexId dst)
{
    if (src >= g.numVertices())
        return kInvalidEdge;
    const auto nbrs = g.outNeighbors(src);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), dst);
    if (it == nbrs.end() || *it != dst)
        return kInvalidEdge;
    return g.outOffset(src) +
           static_cast<EdgeId>(it - nbrs.begin());
}

/** Per-path cumulative edge counts (E_val slice boundaries): the E_val
 *  index of path p's first edge is offsets[p]; offsets.back() is the
 *  total. */
std::vector<std::uint64_t>
pathEdgeOffsets(const partition::PathSet &paths)
{
    std::vector<std::uint64_t> offsets(paths.numPaths() + 1, 0);
    for (PathId p = 0; p < paths.numPaths(); ++p)
        offsets[p + 1] = offsets[p] + paths.pathLength(p);
    return offsets;
}

std::vector<std::uint8_t>
serializeMeta(const partition::Preprocessed &pre)
{
    ByteWriter w;
    w.pod(kMetaMagic);
    w.pod(kFormatVersion);
    w.pod(static_cast<std::uint64_t>(pre.merges));
    w.vec(pre.partition_offsets);
    w.vec(pre.partition_layer);
    w.vec(pre.scc_of_path);
    w.vec(pre.path_layer);
    w.vec(pre.path_hot);
    w.vec(pre.path_avg_degree);
    w.pod(static_cast<std::uint64_t>(pre.dag.num_sccs));
    w.vec(pre.dag.layer);
    const auto sketch_edges = pre.dag.sketch.edgeList();
    std::vector<VertexId> sketch_src, sketch_dst;
    sketch_src.reserve(sketch_edges.size());
    sketch_dst.reserve(sketch_edges.size());
    for (const auto &e : sketch_edges) {
        sketch_src.push_back(e.src);
        sketch_dst.push_back(e.dst);
    }
    w.vec(sketch_src);
    w.vec(sketch_dst);
    return w.take();
}

/**
 * Partition @p q's topology: per-path vertex sequences plus ordinal
 * fixups for parallel edges. Edge ids are deliberately NOT stored —
 * they are positional in the out-CSR and an evolving-graph append
 * renumbers them, which would invalidate reused parent shards; the
 * loader recomputes each id from (src, dst) + ordinal against the
 * current graph, so a shard's bytes stay valid as long as its paths are
 * carried over verbatim (appendPreprocess's contract).
 */
std::vector<std::uint8_t>
serializeTopo(const partition::Preprocessed &pre,
              const graph::DirectedGraph &g, PartitionId q)
{
    const PathId lo = pre.partition_offsets[q];
    const PathId hi = pre.partition_offsets[q + 1];
    ByteWriter w;
    w.pod(kTopoMagic);
    w.pod(static_cast<std::uint64_t>(lo));
    w.pod(static_cast<std::uint64_t>(hi - lo));

    std::vector<std::uint64_t> offsets;
    std::vector<VertexId> vertices;
    std::vector<std::uint64_t> fixup_index;
    std::vector<std::uint32_t> fixup_ordinal;
    offsets.reserve(hi - lo + 1);
    std::uint64_t vertex_cursor = 0;
    std::uint64_t edge_cursor = 0;
    for (PathId p = lo; p < hi; ++p) {
        offsets.push_back(vertex_cursor);
        const auto verts = pre.paths.pathVertices(p);
        const auto edges = pre.paths.pathEdges(p);
        vertices.insert(vertices.end(), verts.begin(), verts.end());
        vertex_cursor += verts.size();
        for (std::size_t i = 0; i < edges.size(); ++i) {
            const EdgeId base = firstEdgeId(g, verts[i], verts[i + 1]);
            if (edges[i] != base) {
                // Parallel edge beyond the first (src, dst) occurrence.
                fixup_index.push_back(edge_cursor + i);
                fixup_ordinal.push_back(
                    static_cast<std::uint32_t>(edges[i] - base));
            }
        }
        edge_cursor += edges.size();
    }
    offsets.push_back(vertex_cursor);
    w.vec(offsets);
    w.vec(vertices);
    w.vec(fixup_index);
    w.vec(fixup_ordinal);
    return w.take();
}

} // namespace

std::uint64_t
fnv1a(const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

const ShardEntry *
Manifest::find(const std::string &name) const
{
    for (const auto &entry : shards) {
        if (entry.name == name)
            return &entry;
    }
    return nullptr;
}

// --- manifest JSON (writer-controlled subset: unique keys per scope,
// numbers unquoted, strings without escapes) ---

namespace {

bool
jsonU64(const std::string &text, const std::string &key,
        std::uint64_t &out)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    std::size_t i = pos + needle.size();
    while (i < text.size() && text[i] == ' ')
        ++i;
    if (i >= text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[i])))
        return false;
    out = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i])))
        out = out * 10 + static_cast<std::uint64_t>(text[i++] - '0');
    return true;
}

bool
jsonString(const std::string &text, const std::string &key,
           std::string &out)
{
    const std::string needle = "\"" + key + "\":";
    auto pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos = text.find('"', pos + needle.size());
    if (pos == std::string::npos)
        return false;
    const auto end = text.find('"', pos + 1);
    if (end == std::string::npos)
        return false;
    out = text.substr(pos + 1, end - pos - 1);
    return true;
}

std::string
manifestJson(const Manifest &m)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"format\": \"digraph-store\",\n"
        << "  \"format_version\": " << kFormatVersion << ",\n"
        << "  \"version\": " << m.version << ",\n"
        << "  \"parent\": " << m.parent << ",\n"
        << "  \"vertices\": " << m.vertices << ",\n"
        << "  \"edges\": " << m.edges << ",\n"
        << "  \"graph_checksum\": " << m.graph_checksum << ",\n"
        << "  \"partitions\": " << m.partitions << ",\n"
        << "  \"has_values\": " << (m.has_values ? 1 : 0) << ",\n"
        << "  \"shard_count\": " << m.shards.size() << ",\n"
        << "  \"shards\": [\n";
    for (std::size_t i = 0; i < m.shards.size(); ++i) {
        const auto &s = m.shards[i];
        out << "    {\"name\": \"" << s.name << "\", \"file\": \""
            << s.file << "\", \"bytes\": " << s.bytes
            << ", \"checksum\": " << s.checksum << "}"
            << (i + 1 < m.shards.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

std::optional<Manifest>
parseManifest(const std::string &text)
{
    std::string format;
    if (!jsonString(text, "format", format) || format != "digraph-store")
        return std::nullopt;
    std::uint64_t format_version = 0, has_values = 0;
    Manifest m;
    if (!jsonU64(text, "format_version", format_version) ||
        format_version != kFormatVersion ||
        !jsonU64(text, "version", m.version) ||
        !jsonU64(text, "parent", m.parent) ||
        !jsonU64(text, "vertices", m.vertices) ||
        !jsonU64(text, "edges", m.edges) ||
        !jsonU64(text, "graph_checksum", m.graph_checksum) ||
        !jsonU64(text, "partitions", m.partitions) ||
        !jsonU64(text, "has_values", has_values)) {
        return std::nullopt;
    }
    m.has_values = has_values != 0;
    // The declared shard count guards against a torn manifest whose
    // truncated prefix still parses: a file cut mid-list would yield
    // fewer entries than declared and must be treated as absent.
    std::uint64_t shard_count = 0;
    if (!jsonU64(text, "shard_count", shard_count))
        return std::nullopt;
    const auto list = text.find("\"shards\":");
    if (list == std::string::npos)
        return std::nullopt;
    std::size_t cursor = list;
    while (true) {
        const auto open = text.find('{', cursor);
        if (open == std::string::npos)
            break;
        const auto close = text.find('}', open);
        if (close == std::string::npos)
            return std::nullopt; // torn manifest
        const std::string obj = text.substr(open, close - open + 1);
        ShardEntry entry;
        if (!jsonString(obj, "name", entry.name) ||
            !jsonString(obj, "file", entry.file) ||
            !jsonU64(obj, "bytes", entry.bytes) ||
            !jsonU64(obj, "checksum", entry.checksum)) {
            return std::nullopt;
        }
        m.shards.push_back(std::move(entry));
        cursor = close + 1;
    }
    if (m.shards.empty() || m.shards.size() != shard_count)
        return std::nullopt;
    return m;
}

} // namespace

// --- DurableStore ---

DurableStore::DurableStore(std::string dir, FileOps *ops)
    : dir_(std::move(dir)), ops_(ops ? ops : &RealFileOps::instance())
{
}

std::string
DurableStore::shardFile(const std::string &name,
                        std::uint64_t version) const
{
    return name + ".v" + std::to_string(version) + ".shard";
}

std::string
DurableStore::manifestFile(std::uint64_t version) const
{
    return "MANIFEST.v" + std::to_string(version) + ".json";
}

bool
DurableStore::writeShard(const std::string &name, std::uint64_t version,
                         const std::vector<std::uint8_t> &payload,
                         ShardEntry &entry)
{
    entry.name = name;
    entry.file = shardFile(name, version);
    entry.bytes = payload.size();
    entry.checksum = fnv1a(payload.data(), payload.size());
    if (!ops_->writeFileAtomic(dir_ + "/" + entry.file, payload.data(),
                               payload.size()))
        return false;
    ++stats_.shards_written;
    stats_.bytes_written += payload.size();
    return true;
}

MappedFile
DurableStore::mapVerified(const ShardEntry &entry)
{
    MappedFile mapped = ops_->mapFile(dir_ + "/" + entry.file);
    if (!mapped.valid() || mapped.size() != entry.bytes ||
        fnv1a(mapped.data(), mapped.size()) != entry.checksum)
        return {};
    return mapped;
}

bool
DurableStore::writeManifest(const Manifest &m)
{
    const std::string json = manifestJson(m);
    // The manifest rename is the commit point: readers only learn about
    // the version's shards through it, and it lands atomically last.
    if (!ops_->writeFileAtomic(dir_ + "/" + manifestFile(m.version),
                               json.data(), json.size()))
        return false;
    stats_.bytes_written += json.size();
    return true;
}

void
DurableStore::emitCommit(std::uint64_t version,
                         std::uint64_t shards_written)
{
    ++stats_.commits;
    if (trace_) {
        trace_->event(metrics::TraceEventType::StoreCommit, 0,
                      metrics::kTraceNoPartition, 0.0, 0.0, version,
                      shards_written);
    }
}

std::vector<std::uint64_t>
DurableStore::listVersions() const
{
    std::vector<std::uint64_t> versions;
    for (const std::string &name : ops_->listDir(dir_)) {
        if (name.size() <= 15 || name.rfind("MANIFEST.v", 0) != 0 ||
            name.substr(name.size() - 5) != ".json")
            continue;
        const std::string digits =
            name.substr(10, name.size() - 15);
        // <= 19 digits always fits in a uint64_t; longer names are
        // tampered/corrupt and must be skipped, not crash recovery
        // with std::out_of_range.
        if (digits.empty() || digits.size() > 19 ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        versions.push_back(std::stoull(digits));
    }
    std::sort(versions.begin(), versions.end());
    return versions;
}

std::uint64_t
DurableStore::newestVersion() const
{
    const auto versions = listVersions();
    return versions.empty() ? 0 : versions.back();
}

std::optional<Manifest>
DurableStore::readManifest(std::uint64_t version) const
{
    const MappedFile mapped =
        ops_->mapFile(dir_ + "/" + manifestFile(version));
    if (!mapped.valid())
        return std::nullopt;
    const std::string text(reinterpret_cast<const char *>(mapped.data()),
                           mapped.size());
    auto m = parseManifest(text);
    if (m && m->version != version)
        return std::nullopt; // file renamed by hand
    return m;
}

std::uint64_t
DurableStore::commitTopology(const graph::DirectedGraph &g,
                             const partition::Preprocessed &pre,
                             std::uint64_t parent)
{
    if (pre.numPartitions() == 0 || !ops_->createDir(dir_))
        return 0;

    Manifest m;
    m.version = newestVersion() + 1;
    m.parent = parent;
    m.vertices = g.numVertices();
    m.edges = g.numEdges();
    m.graph_checksum = partition::graphContentChecksum(g);
    m.partitions = pre.numPartitions();
    m.has_values = false;

    std::optional<Manifest> pm;
    if (parent != 0) {
        pm = readManifest(parent);
        if (!pm)
            return 0;
    }
    // Carried-over partitions keep their parent shard files verbatim:
    // appendPreprocess() reuses previous paths and partition boundaries
    // untouched, and topo shards are edge-id-free (see serializeTopo),
    // so only appended partitions need new bytes.
    const bool reuse = pm.has_value() && pre.incremental &&
                       pm->partitions <= m.partitions;

    ShardEntry meta;
    if (!writeShard("meta", m.version, serializeMeta(pre), meta))
        return 0;
    m.shards.push_back(meta);
    std::uint64_t written = 1;

    for (PartitionId q = 0; q < pre.numPartitions(); ++q) {
        const std::string name = "topo.p" + std::to_string(q);
        if (reuse && q < pm->partitions) {
            const ShardEntry *pe = pm->find(name);
            if (pe && ops_->exists(dir_ + "/" + pe->file)) {
                m.shards.push_back(*pe);
                ++stats_.shards_reused;
                continue;
            }
        }
        ShardEntry entry;
        if (!writeShard(name, m.version, serializeTopo(pre, g, q),
                        entry))
            return 0;
        m.shards.push_back(entry);
        ++written;
    }

    if (!writeManifest(m))
        return 0;
    emitCommit(m.version, written);
    return m.version;
}

std::uint64_t
DurableStore::commitValues(const graph::DirectedGraph &g,
                           const partition::Preprocessed &pre,
                           std::span<const Value> v_val,
                           std::span<const Value> e_val,
                           const std::vector<VertexId> &active,
                           std::uint64_t parent,
                           const std::vector<PartitionId> *dirty)
{
    const auto edge_offsets = pathEdgeOffsets(pre.paths);
    if (v_val.size() != g.numVertices() ||
        e_val.size() != edge_offsets.back() || parent == 0)
        return 0;
    auto pm = readManifest(parent);
    if (!pm)
        return 0;

    Manifest m;
    m.version = newestVersion() + 1;
    m.parent = parent;
    m.vertices = g.numVertices();
    m.edges = g.numEdges();
    m.graph_checksum = partition::graphContentChecksum(g);
    m.partitions = pre.numPartitions();
    m.has_values = true;
    // The parent supplies the topology shards; they must describe this
    // exact substrate.
    if (pm->graph_checksum != m.graph_checksum ||
        pm->partitions != m.partitions)
        return 0;

    for (const auto &entry : pm->shards) {
        if (entry.name == "meta" || entry.name.rfind("topo.", 0) == 0) {
            m.shards.push_back(entry);
            ++stats_.shards_reused;
        }
    }

    ByteWriter vw;
    vw.pod(kValsMagic);
    vw.span(v_val);
    vw.vec(active);
    ShardEntry vvals;
    if (!writeShard("vvals", m.version, vw.take(), vvals))
        return 0;
    m.shards.push_back(vvals);
    std::uint64_t written = 1;

    std::vector<std::uint8_t> is_dirty;
    if (dirty) {
        is_dirty.assign(m.partitions, 0);
        for (const PartitionId q : *dirty) {
            if (q < m.partitions)
                is_dirty[q] = 1;
        }
    }
    for (PartitionId q = 0; q < m.partitions; ++q) {
        const std::string name = "evals.p" + std::to_string(q);
        const ShardEntry *pe = pm->find(name);
        const bool clean = dirty && !is_dirty[q] && pe &&
                           ops_->exists(dir_ + "/" + pe->file);
        if (clean) {
            m.shards.push_back(*pe);
            ++stats_.shards_reused;
            continue;
        }
        const PathId lo = pre.partition_offsets[q];
        const PathId hi = pre.partition_offsets[q + 1];
        const std::uint64_t first = edge_offsets[lo];
        const std::uint64_t count = edge_offsets[hi] - first;
        ByteWriter ew;
        ew.pod(kValsMagic);
        ew.pod(first);
        ew.span(e_val.subspan(first, count));
        ShardEntry entry;
        if (!writeShard(name, m.version, ew.take(), entry))
            return 0;
        m.shards.push_back(entry);
        ++written;
    }

    if (!writeManifest(m))
        return 0;
    emitCommit(m.version, written);
    return m.version;
}

std::optional<partition::Preprocessed>
DurableStore::loadTopology(std::uint64_t version,
                           const graph::DirectedGraph &g)
{
    auto m = readManifest(version);
    if (!m || m->vertices != g.numVertices() ||
        m->edges != g.numEdges() ||
        m->graph_checksum != partition::graphContentChecksum(g))
        return std::nullopt;

    const ShardEntry *meta_entry = m->find("meta");
    if (!meta_entry)
        return std::nullopt;
    const MappedFile meta = mapVerified(*meta_entry);
    if (!meta.valid())
        return std::nullopt;

    partition::Preprocessed pre;
    {
        ByteReader r(meta.data(), meta.size());
        std::uint64_t magic = 0, merges = 0, num_sccs = 0;
        std::uint32_t format = 0;
        std::vector<VertexId> sketch_src, sketch_dst;
        if (!r.pod(magic) || magic != kMetaMagic || !r.pod(format) ||
            format != kFormatVersion || !r.pod(merges) ||
            !r.vec(pre.partition_offsets) ||
            !r.vec(pre.partition_layer) || !r.vec(pre.scc_of_path) ||
            !r.vec(pre.path_layer) || !r.vec(pre.path_hot) ||
            !r.vec(pre.path_avg_degree) || !r.pod(num_sccs) ||
            !r.vec(pre.dag.layer) || !r.vec(sketch_src) ||
            !r.vec(sketch_dst) || !r.atEnd() ||
            sketch_src.size() != sketch_dst.size()) {
            return std::nullopt;
        }
        pre.merges = merges;
        pre.dag.num_sccs = static_cast<SccId>(num_sccs);
        graph::GraphBuilder builder(static_cast<VertexId>(num_sccs));
        for (std::size_t i = 0; i < sketch_src.size(); ++i) {
            if (sketch_src[i] >= num_sccs || sketch_dst[i] >= num_sccs)
                return std::nullopt;
            builder.addEdge(sketch_src[i], sketch_dst[i]);
        }
        pre.dag.sketch = builder.build();
    }
    if (pre.partition_offsets.size() !=
            static_cast<std::size_t>(m->partitions) + 1 ||
        pre.partition_layer.size() != m->partitions)
        return std::nullopt;
    for (std::size_t q = 0; q + 1 < pre.partition_offsets.size(); ++q) {
        if (pre.partition_offsets[q] > pre.partition_offsets[q + 1])
            return std::nullopt;
    }
    if (pre.partition_offsets.front() != 0)
        return std::nullopt;

    // Partition topo shards, in order; paths must tile [0, numPaths).
    PathId expect_first = 0;
    for (PartitionId q = 0; q < m->partitions; ++q) {
        const ShardEntry *entry =
            m->find("topo.p" + std::to_string(q));
        if (!entry)
            return std::nullopt;
        const MappedFile topo = mapVerified(*entry);
        if (!topo.valid())
            return std::nullopt;
        ByteReader r(topo.data(), topo.size());
        std::uint64_t magic = 0, first_path = 0, num_paths = 0;
        std::vector<std::uint64_t> offsets, fixup_index;
        std::vector<VertexId> vertices;
        std::vector<std::uint32_t> fixup_ordinal;
        if (!r.pod(magic) || magic != kTopoMagic ||
            !r.pod(first_path) || !r.pod(num_paths) ||
            !r.vec(offsets) || !r.vec(vertices) ||
            !r.vec(fixup_index) || !r.vec(fixup_ordinal) ||
            !r.atEnd()) {
            return std::nullopt;
        }
        if (first_path != expect_first ||
            first_path != pre.partition_offsets[q] ||
            num_paths !=
                pre.partition_offsets[q + 1] - pre.partition_offsets[q] ||
            offsets.size() != num_paths + 1 ||
            offsets.back() != vertices.size() ||
            fixup_index.size() != fixup_ordinal.size()) {
            return std::nullopt;
        }
        std::unordered_map<std::uint64_t, std::uint32_t> ordinals;
        ordinals.reserve(fixup_index.size());
        for (std::size_t i = 0; i < fixup_index.size(); ++i)
            ordinals.emplace(fixup_index[i], fixup_ordinal[i]);

        std::uint64_t edge_cursor = 0;
        for (std::uint64_t p = 0; p + 1 < offsets.size(); ++p) {
            const std::uint64_t lo = offsets[p];
            const std::uint64_t hi = offsets[p + 1];
            if (lo >= hi || vertices[lo] >= g.numVertices())
                return std::nullopt;
            pre.paths.beginPath(vertices[lo]);
            for (std::uint64_t i = lo + 1; i < hi; ++i) {
                // Rebind the edge to the *current* graph's id space.
                EdgeId id =
                    firstEdgeId(g, vertices[i - 1], vertices[i]);
                if (id == kInvalidEdge)
                    return std::nullopt;
                const auto fix = ordinals.find(edge_cursor);
                if (fix != ordinals.end()) {
                    id += fix->second;
                    if (id >= g.numEdges() ||
                        g.edgeSource(id) != vertices[i - 1] ||
                        g.edgeTarget(id) != vertices[i])
                        return std::nullopt;
                }
                pre.paths.extend(vertices[i], id);
                ++edge_cursor;
            }
        }
        expect_first += static_cast<PathId>(num_paths);
    }
    if (expect_first != pre.paths.numPaths() ||
        pre.partition_offsets.back() != pre.paths.numPaths())
        return std::nullopt;

    const PathId num_paths = pre.paths.numPaths();
    if (pre.scc_of_path.size() != num_paths ||
        pre.path_layer.size() != num_paths ||
        pre.path_hot.size() != num_paths ||
        pre.path_avg_degree.size() != num_paths ||
        pre.dag.layer.size() != pre.dag.num_sccs)
        return std::nullopt;
    if (!pre.paths.validate(g))
        return std::nullopt;

    // Derived DAG tables (same rebuild as loadSnapshot).
    pre.dag.scc_of_path = pre.scc_of_path;
    pre.dag.paths_in_scc.assign(pre.dag.num_sccs, {});
    for (PathId p = 0; p < num_paths; ++p) {
        if (pre.scc_of_path[p] >= pre.dag.num_sccs)
            return std::nullopt;
        pre.dag.paths_in_scc[pre.scc_of_path[p]].push_back(p);
    }
    std::size_t best = 0;
    pre.dag.giant_scc = kInvalidScc;
    for (SccId s = 0; s < pre.dag.num_sccs; ++s) {
        if (pre.dag.paths_in_scc[s].size() > best) {
            best = pre.dag.paths_in_scc[s].size();
            pre.dag.giant_scc = s;
        }
    }
    return pre;
}

std::optional<LoadedValues>
DurableStore::loadValues(std::uint64_t version)
{
    auto m = readManifest(version);
    if (!m || !m->has_values)
        return std::nullopt;
    const ShardEntry *vv = m->find("vvals");
    if (!vv)
        return std::nullopt;
    const MappedFile vmap = mapVerified(*vv);
    if (!vmap.valid())
        return std::nullopt;

    LoadedValues loaded;
    {
        ByteReader r(vmap.data(), vmap.size());
        std::uint64_t magic = 0;
        if (!r.pod(magic) || magic != kValsMagic ||
            !r.vec(loaded.v_val) || !r.vec(loaded.active) || !r.atEnd())
            return std::nullopt;
    }

    struct Slice
    {
        std::uint64_t first = 0;
        std::vector<Value> values;
    };
    std::vector<Slice> slices;
    std::uint64_t total = 0;
    for (PartitionId q = 0; q < m->partitions; ++q) {
        const ShardEntry *entry =
            m->find("evals.p" + std::to_string(q));
        if (!entry)
            return std::nullopt;
        const MappedFile emap = mapVerified(*entry);
        if (!emap.valid())
            return std::nullopt;
        ByteReader r(emap.data(), emap.size());
        std::uint64_t magic = 0;
        Slice s;
        if (!r.pod(magic) || magic != kValsMagic || !r.pod(s.first) ||
            !r.vec(s.values) || !r.atEnd())
            return std::nullopt;
        total = std::max(total, s.first + s.values.size());
        slices.push_back(std::move(s));
    }
    loaded.e_val.assign(total, Value{});
    std::uint64_t covered = 0;
    for (const Slice &s : slices) {
        if (s.first + s.values.size() > total)
            return std::nullopt;
        std::copy(s.values.begin(), s.values.end(),
                  loaded.e_val.begin() + static_cast<std::ptrdiff_t>(
                                             s.first));
        covered += s.values.size();
    }
    if (covered != total)
        return std::nullopt; // overlapping or gapped slices
    return loaded;
}

bool
DurableStore::verifyVersion(std::uint64_t version,
                            const graph::DirectedGraph *g)
{
    auto m = readManifest(version);
    if (!m)
        return false;
    if (g && (m->vertices != g->numVertices() ||
              m->edges != g->numEdges() ||
              m->graph_checksum != partition::graphContentChecksum(*g)))
        return false;
    for (const auto &entry : m->shards) {
        if (!mapVerified(entry).valid())
            return false;
    }
    return true;
}

std::uint64_t
DurableStore::recoverVersion(const graph::DirectedGraph *g)
{
    auto versions = listVersions();
    std::uint64_t fallbacks = 0;
    for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
        if (verifyVersion(*it, g)) {
            ++stats_.recovers;
            if (trace_) {
                trace_->event(metrics::TraceEventType::StoreRecover, 0,
                              metrics::kTraceNoPartition, 0.0, 0.0, *it,
                              fallbacks);
            }
            return *it;
        }
        ++fallbacks;
        ++stats_.fallbacks;
    }
    return 0;
}

// --- JobJournal ---

JobJournal::JobJournal(std::string path, FileOps *ops)
    : path_(std::move(path)), ops_(ops ? ops : &RealFileOps::instance())
{
}

std::uint64_t
JobJournal::nextWalId()
{
    if (!wal_id_known_) {
        wal_id_known_ = true;
        // One-time scan past every id already on disk, so a restarted
        // session's fresh records can never collide with (and a later
        // `C` can never accidentally complete) a previous session's
        // still-pending record.
        const MappedFile mapped = ops_->mapFile(path_);
        if (mapped.valid() && mapped.size() > 0) {
            const std::string text(
                reinterpret_cast<const char *>(mapped.data()),
                mapped.size());
            std::istringstream in(text);
            std::string line;
            while (std::getline(in, line)) {
                std::istringstream rec(line);
                std::string op;
                std::uint64_t id = 0;
                if ((rec >> op >> id) && (op == "A" || op == "C"))
                    next_wal_id_ = std::max(next_wal_id_, id + 1);
            }
        }
    }
    return next_wal_id_++;
}

void
JobJournal::healTornTail()
{
    if (tail_checked_)
        return;
    tail_checked_ = true;
    const MappedFile mapped = ops_->mapFile(path_);
    if (!mapped.valid() || mapped.size() == 0)
        return;
    std::size_t keep = mapped.size();
    if (mapped.data()[keep - 1] == '\n')
        return;
    // A crash (or injected fault) mid-append left an unterminated
    // prefix. The record was never acknowledged durable, so dropping
    // it is correct — and appending over it would fuse it with the
    // next record into one garbage line.
    while (keep > 0 && mapped.data()[keep - 1] != '\n')
        --keep;
    ops_->truncateFile(path_, keep);
}

bool
JobJournal::appendAdmit(std::uint64_t job_id, const std::string &spec,
                        int priority, const std::string &tenant,
                        std::uint64_t adopted)
{
    if (adopted != kNoJournalId) {
        // Restart re-admission: the record already survives in the
        // compacted WAL under @p adopted — just bind the new job id.
        wal_id_of_job_[job_id] = adopted;
        return true;
    }
    healTornTail();
    const std::uint64_t wal_id = nextWalId();
    wal_id_of_job_[job_id] = wal_id;
    std::ostringstream line;
    line << "A " << wal_id << " " << priority << " "
         << (tenant.empty() ? "-" : tenant) << " " << spec;
    const bool ok = ops_->appendLine(path_, line.str());
    if (!ok)
        tail_checked_ = false; // the failed append may have torn
    return ok;
}

bool
JobJournal::appendComplete(std::uint64_t job_id)
{
    healTornTail();
    const auto it = wal_id_of_job_.find(job_id);
    const std::uint64_t wal_id =
        it != wal_id_of_job_.end() ? it->second : job_id;
    const bool ok =
        ops_->appendLine(path_, "C " + std::to_string(wal_id));
    if (!ok)
        tail_checked_ = false;
    return ok;
}

std::vector<JobJournal::PendingJob>
JobJournal::replay() const
{
    std::vector<PendingJob> pending;
    const MappedFile mapped = ops_->mapFile(path_);
    if (!mapped.valid() || mapped.size() == 0)
        return pending;
    const std::string text(reinterpret_cast<const char *>(mapped.data()),
                           mapped.size());

    std::vector<std::uint64_t> order;
    std::unordered_map<std::uint64_t, PendingJob> admitted;
    std::unordered_set<std::uint64_t> completed;
    std::size_t cursor = 0;
    while (cursor < text.size()) {
        const auto nl = text.find('\n', cursor);
        if (nl == std::string::npos)
            break; // torn tail: the crash interrupted this append
        const std::string line = text.substr(cursor, nl - cursor);
        cursor = nl + 1;
        std::istringstream in(line);
        std::string op;
        std::uint64_t id = 0;
        if (!(in >> op >> id))
            continue; // malformed record: skip defensively
        if (op == "C") {
            completed.insert(id);
        } else if (op == "A") {
            PendingJob job;
            job.id = id;
            if (!(in >> job.priority >> job.tenant))
                continue;
            if (job.tenant == "-")
                job.tenant.clear();
            std::getline(in, job.spec);
            const auto start = job.spec.find_first_not_of(' ');
            job.spec = start == std::string::npos
                           ? std::string()
                           : job.spec.substr(start);
            if (job.spec.empty())
                continue;
            if (admitted.emplace(id, std::move(job)).second)
                order.push_back(id);
        }
    }
    for (const std::uint64_t id : order) {
        if (!completed.count(id))
            pending.push_back(admitted[id]);
    }
    return pending;
}

bool
JobJournal::compact(const std::vector<PendingJob> &pending)
{
    if (pending.empty())
        return reset();
    std::ostringstream text;
    std::uint64_t max_id = 0;
    for (const auto &p : pending) {
        text << "A " << p.id << " " << p.priority << " "
             << (p.tenant.empty() ? "-" : p.tenant) << " " << p.spec
             << "\n";
        max_id = std::max(max_id, p.id);
    }
    const std::string payload = text.str();
    // Atomic whole-file replace: a crash leaves either the old WAL
    // (same pending set plus completed cruft) or the compacted one —
    // never a state where a durably journaled job is lost.
    if (!ops_->writeFileAtomic(path_, payload.data(), payload.size()))
        return false;
    wal_id_known_ = true;
    next_wal_id_ = std::max(next_wal_id_, max_id + 1);
    tail_checked_ = true; // the rewrite is '\n'-terminated by construction
    return true;
}

bool
JobJournal::reset()
{
    if (!ops_->exists(path_))
        return true;
    return ops_->remove(path_);
}

} // namespace digraph::storage
