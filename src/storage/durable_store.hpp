/**
 * @file
 * Versioned, partition-sharded durable store (DESIGN.md §16, ROADMAP
 * item 2): the on-disk home of a preprocessing result (the substrate
 * topology) and of per-run value planes, with crash-consistent commits
 * and lineage-based recovery.
 *
 * On-disk layout (one directory per store):
 *
 *   MANIFEST.v<N>.json      one per committed version; JSON listing
 *                           every shard the version is made of (file,
 *                           bytes, FNV-1a checksum), the parent version,
 *                           and the graph fingerprint (vertex/edge
 *                           counts + the snapshot-v2 content checksum)
 *   meta.v<N>.shard         global tables: partition boundaries,
 *                           per-path metadata, the DAG sketch
 *   topo.p<q>.v<N>.shard    partition q's path topology (vertex
 *                           sequences; edge ids are *recomputed* from
 *                           the graph's CSR on load, so a shard's bytes
 *                           stay valid across evolving-graph appends
 *                           that renumber edges)
 *   vvals.v<N>.shard        V_val master array + activation seed
 *   evals.p<q>.v<N>.shard   partition q's E_val slice
 *   jobs.wal                append-only job journal (see JobJournal)
 *
 * Commit protocol: every shard is written temp-file -> flush -> atomic
 * rename (via the FileOps seam), and the manifest is written *last* —
 * the manifest rename is the commit point. A crash mid-commit leaves at
 * worst stray shard files of the unfinished version; every previous
 * version is untouched (shards are immutable once named in a manifest,
 * and child versions reference parent shard *files*, never rewrite
 * them).
 *
 * Incremental commits: a topology commit with a parent reuses the
 * parent's per-partition topo shards for the paths appendPreprocess()
 * carried over verbatim, writing only shards for appended partitions; a
 * value commit writes the shards named in the caller's dirty-partition
 * list (PR 4's `Preprocessed::dirty_partitions` ledger / the engine's
 * checkpoint journal) and references the parent's files for the rest.
 *
 * Recovery: recoverVersion() walks the manifests newest-first and
 * returns the first whose shards all exist with matching sizes and
 * checksums (and whose graph fingerprint matches, when a graph is
 * given) — torn or corrupt newest versions are skipped, falling back
 * down the lineage. Loads are mmap-backed per shard with fully
 * bounds-checked deserialization, so a short or corrupt file can never
 * crash the reader.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "graph/digraph.hpp"
#include "partition/preprocess.hpp"
#include "storage/file_ops.hpp"

namespace digraph::metrics {
class TraceSink;
} // namespace digraph::metrics

namespace digraph::storage {

/** FNV-1a over a byte range (shard checksums; same constants as the
 *  snapshot-v2 graph fingerprint). */
std::uint64_t fnv1a(const void *data, std::size_t bytes);

/** One shard named by a manifest. */
struct ShardEntry
{
    std::string name; ///< logical name ("meta", "topo.p3", ...)
    std::string file; ///< file name inside the store dir
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0; ///< FNV-1a over the file bytes
};

/** Parsed manifest of one committed version. */
struct Manifest
{
    std::uint64_t version = 0;
    std::uint64_t parent = 0; ///< 0 = no parent
    std::uint64_t vertices = 0;
    std::uint64_t edges = 0;
    std::uint64_t graph_checksum = 0;
    std::uint64_t partitions = 0;
    bool has_values = false;
    std::vector<ShardEntry> shards;

    /** Entry of logical shard @p name, or nullptr. */
    const ShardEntry *find(const std::string &name) const;
};

/** Cumulative store activity (tests, CLI reporting). */
struct StoreStats
{
    std::uint64_t commits = 0;  ///< successful commits
    std::uint64_t recovers = 0; ///< successful recoverVersion() calls
    /** Versions skipped because a shard was missing/torn/corrupt. */
    std::uint64_t fallbacks = 0;
    std::uint64_t shards_written = 0;
    /** Parent shard files referenced instead of rewritten. */
    std::uint64_t shards_reused = 0;
    std::uint64_t bytes_written = 0;
};

/** A loaded value plane (commitValues() round trip). */
struct LoadedValues
{
    std::vector<Value> v_val;
    std::vector<Value> e_val;
    /** Activation seed saved with the plane (may be empty). */
    std::vector<VertexId> active;
};

/**
 * The versioned store over one directory. Not thread-safe; callers
 * serialize access (the engine commits only from the serial barrier,
 * the CLI from its main thread).
 */
class DurableStore
{
  public:
    /** Bind to @p dir (created on first commit). @p ops defaults to
     *  RealFileOps::instance(); inject FaultyFileOps for crash tests. */
    explicit DurableStore(std::string dir, FileOps *ops = nullptr);

    /** Attach (or detach) a sink receiving store_commit/store_recover
     *  events. */
    void setTrace(metrics::TraceSink *trace) { trace_ = trace; }

    /** The store directory. */
    const std::string &dir() const { return dir_; }

    /** Path of the job journal inside this store. */
    std::string journalPath() const { return dir_ + "/jobs.wal"; }

    /**
     * Commit the topology of @p pre (computed for @p g) as a new
     * version. With @p parent nonzero and @p pre marked incremental,
     * the parent's per-partition topo shards are reused for carried-over
     * partitions and only appended partitions are written.
     * @return the new version id, or 0 on failure (no manifest written;
     *         at worst stray shard files remain).
     */
    std::uint64_t commitTopology(const graph::DirectedGraph &g,
                                 const partition::Preprocessed &pre,
                                 std::uint64_t parent = 0);

    /**
     * Commit a value plane on top of version @p parent (which supplies
     * the topology shards): V_val (+ @p active seed) and per-partition
     * E_val slices. With @p dirty non-null only those partitions' E_val
     * shards are written; the rest reference the parent's files (the
     * parent must then hold values for them — the first flush passes
     * null to write everything).
     * @pre v_val/e_val sized for @p pre (checked; 0 on mismatch).
     * @return the new version id, or 0 on failure.
     */
    std::uint64_t
    commitValues(const graph::DirectedGraph &g,
                 const partition::Preprocessed &pre,
                 std::span<const Value> v_val,
                 std::span<const Value> e_val,
                 const std::vector<VertexId> &active, std::uint64_t parent,
                 const std::vector<PartitionId> *dirty = nullptr);

    /**
     * Load version @p version's topology, verifying the manifest's
     * graph fingerprint against @p g and rebuilding edge ids from g's
     * CSR. Timings are zero (nothing was computed).
     * @return std::nullopt when the version is missing, corrupt, or was
     *         committed for a different graph.
     */
    std::optional<partition::Preprocessed>
    loadTopology(std::uint64_t version, const graph::DirectedGraph &g);

    /** Load version @p version's value plane (has_values versions
     *  only). */
    std::optional<LoadedValues> loadValues(std::uint64_t version);

    /**
     * Newest version whose shards all verify (existence, size, FNV-1a
     * checksum) and whose fingerprint matches @p g when given — walking
     * past torn/corrupt versions down the lineage.
     * @return the version id, or 0 when nothing recoverable exists.
     */
    std::uint64_t recoverVersion(const graph::DirectedGraph *g = nullptr);

    /** Whether @p version's manifest parses and every shard verifies
     *  (+ fingerprint check against @p g when given). */
    bool verifyVersion(std::uint64_t version,
                       const graph::DirectedGraph *g = nullptr);

    /** Parse @p version's manifest (no shard verification). */
    std::optional<Manifest> readManifest(std::uint64_t version) const;

    /** All versions with a manifest file, ascending. */
    std::vector<std::uint64_t> listVersions() const;

    /** Newest version with a manifest file (0 when empty/missing). */
    std::uint64_t newestVersion() const;

    /** Cumulative activity counters. */
    const StoreStats &stats() const { return stats_; }

  private:
    std::string shardFile(const std::string &name,
                          std::uint64_t version) const;
    std::string manifestFile(std::uint64_t version) const;
    /** Serialize-checksum-write one shard; updates stats. */
    bool writeShard(const std::string &name, std::uint64_t version,
                    const std::vector<std::uint8_t> &payload,
                    ShardEntry &entry);
    /** Map + verify (size, checksum) one shard of @p m. */
    MappedFile mapVerified(const ShardEntry &entry);
    bool writeManifest(const Manifest &m);
    void emitCommit(std::uint64_t version, std::uint64_t shards_written);

    std::string dir_;
    FileOps *ops_;
    metrics::TraceSink *trace_ = nullptr;
    StoreStats stats_;
};

/** "No adopted WAL record" sentinel for JobJournal::appendAdmit /
 *  JobRequest::journal_id. */
inline constexpr std::uint64_t kNoJournalId =
    ~static_cast<std::uint64_t>(0);

/**
 * Append-only write-ahead journal of GraphService jobs, stored beside
 * the versioned shards (jobs.wal).
 *
 * Records are single lines: `A <id> <priority> <tenant> <spec>` when a
 * job is admitted, `C <id>` when it completes. Record ids are
 * journal-assigned (monotonic past every id already in the file, so a
 * restarted service's records can never collide with a previous
 * session's); the journal maps each caller job id to its WAL id so
 * completions pair up. replay() returns the admitted-minus-completed
 * set in admission order — the jobs a restarted service must resume. A
 * torn tail (crash mid-append leaves an unterminated last line) is
 * discarded by replay() and truncated away before the next append, so
 * it can never fuse with a later record; a *lost* completion record
 * (job finished between the crash and its `C` append) merely re-runs
 * that job, which is idempotent — engine results are deterministic.
 *
 * Restart protocol (no loss window): the restarting service calls
 * replay(), then compact(pending) — an atomic rewrite of the WAL to
 * exactly the pending set, preserving their WAL ids — and re-admits
 * each pending job with its WAL id as the adoption token
 * (appendAdmit's @p adopted). An adopted admission writes nothing (its
 * record already survives in the compacted WAL) and only binds the new
 * job id to the old record, so a crash at ANY point of the restart
 * replays the same pending set; never reset() a journal that still
 * holds un-resumed jobs.
 */
class JobJournal
{
  public:
    explicit JobJournal(std::string path, FileOps *ops = nullptr);

    /** One journaled-but-not-completed job. */
    struct PendingJob
    {
        std::uint64_t id = 0; ///< WAL record id (adoption token)
        int priority = 0;
        std::string tenant;
        std::string spec;
    };

    /**
     * Journal an admission (flushed before returning). With @p adopted
     * == kNoJournalId a fresh `A` record is appended under a new WAL
     * id; otherwise nothing is written and @p job_id is bound to the
     * existing WAL record @p adopted (restart re-admission of a
     * compacted pending job).
     */
    bool appendAdmit(std::uint64_t job_id, const std::string &spec,
                     int priority, const std::string &tenant,
                     std::uint64_t adopted = kNoJournalId);

    /** Journal the completion of @p job_id (resolved to its WAL id). */
    bool appendComplete(std::uint64_t job_id);

    /** Admitted jobs without a completion record, in admission order. */
    std::vector<PendingJob> replay() const;

    /**
     * Atomically rewrite the WAL to exactly @p pending (their ids kept
     * verbatim), dropping completed and torn records; an empty set
     * removes the file. Future appends use ids past the kept maximum.
     * On failure the old WAL is left untouched (still replayable).
     */
    bool compact(const std::vector<PendingJob> &pending);

    /** Remove the journal file (only when nothing is pending — a
     *  restart must use compact() + adoption instead, see above). */
    bool reset();

    const std::string &path() const { return path_; }

  private:
    /** Next fresh WAL id (scans the file past existing ids once). */
    std::uint64_t nextWalId();
    /** Truncate an unterminated last line left by a torn append, so it
     *  cannot concatenate with the record about to be written. */
    void healTornTail();

    std::string path_;
    FileOps *ops_;
    /** WAL record id each live job id was journaled under. */
    std::unordered_map<std::uint64_t, std::uint64_t> wal_id_of_job_;
    std::uint64_t next_wal_id_ = 0;
    bool wal_id_known_ = false;
    /** Tail verified '\n'-terminated; re-armed after a failed append. */
    bool tail_checked_ = false;
};

} // namespace digraph::storage
