#include "storage/file_ops.hpp"

#include "common/atomic_file.hpp"

#include <cstring>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace digraph::storage {

namespace {

/** RAII fd so every early return closes the descriptor. */
struct Fd
{
    int fd = -1;
    explicit Fd(int f) : fd(f) {}
    ~Fd()
    {
        if (fd >= 0)
            ::close(fd);
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
};

} // namespace

bool
RealFileOps::writeFileAtomic(const std::string &path, const void *data,
                             std::size_t bytes)
{
    AtomicFileWriter writer(path, std::ios::out | std::ios::binary);
    if (!writer.ok())
        return false;
    if (bytes > 0)
        writer.stream().write(static_cast<const char *>(data),
                              static_cast<std::streamsize>(bytes));
    return writer.commit();
}

MappedFile
RealFileOps::mapFile(const std::string &path)
{
    Fd fd(::open(path.c_str(), O_RDONLY));
    if (fd.fd < 0)
        return {};
    struct stat st;
    if (::fstat(fd.fd, &st) != 0 || !S_ISREG(st.st_mode))
        return {};
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        // An empty file is a valid (empty) mapping; mmap(0) would fail.
        static const std::uint8_t kEmpty = 0;
        return MappedFile(nullptr, &kEmpty, 0);
    }
    void *addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
    if (addr != MAP_FAILED) {
        std::shared_ptr<const void> owner(
            addr, [size](const void *p) {
                ::munmap(const_cast<void *>(p), size);
            });
        return MappedFile(std::move(owner),
                          static_cast<const std::uint8_t *>(addr), size);
    }
    // mmap unavailable (e.g. special filesystem): buffered fallback.
    auto buf = std::make_shared<std::vector<std::uint8_t>>(size);
    std::size_t off = 0;
    while (off < size) {
        const ssize_t got = ::read(fd.fd, buf->data() + off, size - off);
        if (got <= 0)
            return {};
        off += static_cast<std::size_t>(got);
    }
    const std::uint8_t *ptr = buf->data();
    return MappedFile(std::shared_ptr<const void>(std::move(buf), ptr), ptr,
                      size);
}

bool
RealFileOps::appendLine(const std::string &path, const std::string &line)
{
    Fd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644));
    if (fd.fd < 0)
        return false;
    std::string record = line;
    record.push_back('\n');
    // A single O_APPEND write is atomic with respect to concurrent
    // appenders; a crash mid-write can still tear the record, which the
    // journal reader tolerates by discarding an unterminated tail.
    std::size_t off = 0;
    while (off < record.size()) {
        const ssize_t put =
            ::write(fd.fd, record.data() + off, record.size() - off);
        if (put <= 0)
            return false;
        off += static_cast<std::size_t>(put);
    }
    return ::fsync(fd.fd) == 0;
}

bool
RealFileOps::exists(const std::string &path)
{
    std::error_code ec;
    return std::filesystem::exists(path, ec);
}

bool
RealFileOps::remove(const std::string &path)
{
    std::error_code ec;
    const bool existed = std::filesystem::remove(path, ec);
    return existed && !ec;
}

bool
RealFileOps::truncateFile(const std::string &path, std::uint64_t bytes)
{
    std::error_code ec;
    std::filesystem::resize_file(path, bytes, ec);
    return !ec;
}

std::vector<std::string>
RealFileOps::listDir(const std::string &dir)
{
    std::vector<std::string> names;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec))
            names.push_back(it->path().filename().string());
    }
    return names;
}

bool
RealFileOps::createDir(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return !ec && std::filesystem::is_directory(dir, ec);
}

RealFileOps &
RealFileOps::instance()
{
    static RealFileOps ops;
    return ops;
}

bool
FaultyFileOps::writeFileAtomic(const std::string &path, const void *data,
                               std::size_t bytes)
{
    const long n = writes_++;
    if (n == plan_.fail_write_at)
        return false; // Crash before the rename: no file appears.
    if (plan_.fail_writes_from >= 0 && n >= plan_.fail_writes_from)
        return false; // Media failure: every later write is rejected.
    if (n == plan_.torn_write_at) {
        // Torn writeback: a truncated prefix lands under the final
        // name — exactly what a non-atomic filesystem leaves behind.
        base_->writeFileAtomic(path, data, bytes / 2);
        return false;
    }
    return base_->writeFileAtomic(path, data, bytes);
}

MappedFile
FaultyFileOps::mapFile(const std::string &path)
{
    MappedFile mapped = base_->mapFile(path);
    if (reads_++ == plan_.short_read_at && mapped.valid()) {
        // Copy the surviving prefix so the short view owns its bytes.
        auto buf = std::make_shared<std::vector<std::uint8_t>>(
            mapped.data(), mapped.data() + mapped.size() / 2);
        const std::uint8_t *ptr = buf->data();
        return MappedFile(std::shared_ptr<const void>(std::move(buf), ptr),
                          ptr, mapped.size() / 2);
    }
    return mapped;
}

bool
FaultyFileOps::appendLine(const std::string &path, const std::string &line)
{
    const long n = appends_++;
    if (n == plan_.fail_append_at)
        return false;
    if (n == plan_.torn_append_at) {
        // Write a prefix with no terminating newline, then report
        // failure — the crash happened mid-append.
        const std::string prefix = line.substr(0, line.size() / 2);
        Fd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644));
        if (fd.fd >= 0) {
            const ssize_t ignored =
                ::write(fd.fd, prefix.data(), prefix.size());
            (void)ignored;
        }
        return false;
    }
    return base_->appendLine(path, line);
}

} // namespace digraph::storage
