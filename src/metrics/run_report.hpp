/**
 * @file
 * The uniform run report every engine produces — the raw material for all
 * of the paper's figures (updates, traffic, utilization, scalability).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace digraph::metrics {

/** Metrics of one (system, algorithm, dataset, #GPUs) run. */
struct RunReport
{
    /** System name ("digraph", "digraph-t", "digraph-w", "bsp",
     *  "async"). */
    std::string system;
    /** Algorithm name. */
    std::string algorithm;
    /** Dataset name. */
    std::string dataset;
    /** Number of simulated GPUs. */
    unsigned num_gpus = 0;

    /** Final vertex states (master values). */
    std::vector<Value> final_state;

    // --- work counts ---
    /** processEdge invocations. */
    std::uint64_t edge_processings = 0;
    /** Vertex state updates (destination changed). */
    std::uint64_t vertex_updates = 0;
    /** Global rounds / dispatch waves until convergence. */
    std::uint64_t rounds = 0;
    /** Partition dispatches (a partition processed r times counts r). */
    std::uint64_t partition_processings = 0;
    /** Number of partitions. */
    std::uint64_t num_partitions = 0;

    // --- traffic ---
    /** Host <-> device transfer bytes. */
    std::uint64_t host_transfer_bytes = 0;
    /** Device <-> device (ring) transfer bytes. */
    std::uint64_t ring_transfer_bytes = 0;
    /** Bytes loaded from device global memory into cores. */
    std::uint64_t global_load_bytes = 0;
    /** Vertex slots loaded into cores. */
    std::uint64_t loaded_vertices = 0;
    /** Loaded vertex slots that performed useful work. */
    std::uint64_t used_vertices = 0;

    // --- fault tolerance (all zero when no FaultPlan was active) ---
    /** Discrete faults injected (device losses + SMX stalls). */
    std::uint64_t faults_injected = 0;
    /** Dropped transfer attempts that were retried. */
    std::uint64_t transfer_retries = 0;
    /** Merge-barrier checkpoints taken. */
    std::uint64_t checkpoints = 0;
    /** Device-loss recoveries (checkpoint restore + redistribute). */
    std::uint64_t recoveries = 0;
    /** Durable-store versions this run committed (checkpoint
     *  flush-through; see EngineOptions::store). */
    std::uint64_t store_commits = 0;
    /** Checkpoint flushes the store rejected (I/O failure); their dirty
     *  partitions are carried into the next flush and device-loss
     *  recovery ignores the (stale) disk copy until a flush lands. */
    std::uint64_t store_commit_fails = 0;
    /** Durable-store recoveries feeding this run (device-loss restarts
     *  reloaded from disk). */
    std::uint64_t store_recovers = 0;

    // --- time ---
    /** Simulated makespan, cycles (primary "time" metric). */
    double sim_cycles = 0.0;
    /** Host wall-clock of the processing phase, seconds. */
    double wall_seconds = 0.0;
    /** Host wall-clock spent in the parallel compute phase of the waves
     *  (partition-local path processing), seconds. */
    double wall_compute_seconds = 0.0;
    /** Host wall-clock spent in the serial wave barrier (master merge +
     *  platform cost replay in dispatch order), seconds. */
    double wall_barrier_seconds = 0.0;
    /** Host wall-clock spent in the parallel commutative merge commit
     *  (delta-accumulative family only; 0 under ordered replay),
     *  seconds. */
    double wall_merge_seconds = 0.0;
    /** Host wall-clock spent selecting dispatch batches (readiness and
     *  priority scans), seconds. */
    double wall_schedule_seconds = 0.0;
    /** Host worker threads the engine used for wave execution. */
    std::uint32_t engine_threads = 1;
    /** Wave-kernel the run resolved to ("pagerank", "sssp", ...;
     *  "generic:<name>" = virtual-dispatch fallback). Empty for
     *  non-wave engines (baselines). */
    std::string kernel;
    /** Whether the wave hot loop ran a compile-time-specialized kernel
     *  (zero virtual algorithm calls per edge). */
    bool kernel_specialized = false;
    /** Whether masters were committed via the lock-free delta merge
     *  (accumulative family) instead of ordered replay. */
    bool kernel_delta_merge = false;
    /** Dispatch waves executed (a wave batches concurrent dispatches). */
    std::uint64_t waves = 0;
    /** Preprocessing wall-clock, seconds. */
    double preprocess_seconds = 0.0;
    /** Mean SMX utilization in [0,1]. */
    double utilization = 0.0;
    /** Simulated cycles spent computing. */
    double compute_cycles = 0.0;
    /** Simulated cycles spent on transfers (serialized view). */
    double comm_cycles = 0.0;

    /** Total transfer traffic + global loads (the paper's Fig 12
     *  "traffic volume"). */
    std::uint64_t
    trafficVolume() const
    {
        return host_transfer_bytes + ring_transfer_bytes +
               global_load_bytes;
    }

    /** Used/loaded vertex ratio (Fig 13); 0 when nothing was loaded. */
    double
    loadedDataUtilization() const
    {
        return loaded_vertices
                   ? static_cast<double>(used_vertices) /
                         static_cast<double>(loaded_vertices)
                   : 0.0;
    }
};

} // namespace digraph::metrics
