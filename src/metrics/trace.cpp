#include "metrics/trace.hpp"

#include <fstream>
#include <map>
#include <thread>

#include "common/atomic_file.hpp"
#include "common/logging.hpp"

namespace digraph::metrics {

namespace {

/** Dense per-process thread ids (0 = the thread that records first,
 *  normally the serial scheduler/barrier thread). */
std::uint32_t
denseThreadId()
{
    static std::mutex mu;
    static std::map<std::thread::id, std::uint32_t> ids;
    std::lock_guard<std::mutex> lock(mu);
    const auto [it, inserted] = ids.try_emplace(
        std::this_thread::get_id(),
        static_cast<std::uint32_t>(ids.size()));
    return it->second;
}

/** Print a double as a JSON-safe number (no inf/nan, fixed point). */
void
writeJsonNumber(std::ostream &out, double v)
{
    if (!(v == v) || v > 1e300 || v < -1e300)
        v = 0.0;
    const auto flags = out.flags();
    out.setf(std::ios::fixed);
    const auto prec = out.precision(3);
    out << v;
    out.flags(flags);
    out.precision(prec);
}

} // namespace

void
TraceSink::record(TraceEvent event)
{
    event.tid = denseThreadId();
    std::lock_guard<std::mutex> lock(mutex_);
    event.wall_seconds = epoch_.seconds();
    events_.push_back(event);
}

std::vector<TraceEvent>
TraceSink::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::size_t
TraceSink::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::size_t
TraceSink::count(TraceEventType type) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const TraceEvent &e : events_)
        n += e.type == type ? 1 : 0;
    return n;
}

void
TraceSink::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    counters_.reset();
    epoch_.reset();
}

void
TraceSink::setCounters(const CounterRegistry &counters)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_ = counters;
}

CounterRegistry
TraceSink::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
TraceSink::writeChromeJson(const std::string &path) const
{
    const auto events = this->events();
    const auto counters = this->counters();

    AtomicFileWriter writer(path);
    if (!writer.ok())
        fatal("TraceSink::writeChromeJson: cannot open ", path);
    std::ofstream &out = writer.stream();

    // Trace Event Format: "ts"/"dur" are microseconds in real traces;
    // here one simulated cycle maps to one "microsecond" so the viewer's
    // timeline is the simulated timeline.
    out << "{\n\"displayTimeUnit\": \"ms\",\n\"counters\": {";
    bool first = true;
    counters.forEach([&](Counter c, std::uint64_t v) {
        out << (first ? "\n" : ",\n") << "  \"" << counterName(c)
            << "\": " << v;
        first = false;
    });
    out << "\n},\n\"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        out << (i ? ",\n" : "\n");
        out << "  {\"name\": \"" << traceEventName(e.type)
            << "\", \"cat\": \"engine\", \"ph\": \"X\", \"ts\": ";
        writeJsonNumber(out, e.sim_begin);
        out << ", \"dur\": ";
        writeJsonNumber(out, e.sim_dur);
        out << ", \"pid\": 0, \"tid\": " << e.tid
            << ", \"args\": {\"wave\": " << e.wave;
        if (e.partition != kTraceNoPartition)
            out << ", \"partition\": " << e.partition;
        out << ", \"arg0\": " << e.arg0 << ", \"arg1\": " << e.arg1
            << ", \"wall_s\": ";
        writeJsonNumber(out, e.wall_seconds);
        out << "}}";
    }
    out << "\n]\n}\n";
    if (!writer.commit())
        fatal("TraceSink::writeChromeJson: write failed for ", path);
}

void
TraceSink::writeCsv(const std::string &path) const
{
    const auto events = this->events();

    AtomicFileWriter writer(path);
    if (!writer.ok())
        fatal("TraceSink::writeCsv: cannot open ", path);
    std::ofstream &out = writer.stream();
    out << "event,tid,wave,partition,sim_begin,sim_dur,wall_seconds,"
           "arg0,arg1\n";
    const auto flags = out.flags();
    out.setf(std::ios::fixed);
    out.precision(3);
    for (const TraceEvent &e : events) {
        out << traceEventName(e.type) << ',' << e.tid << ',' << e.wave
            << ',';
        if (e.partition != kTraceNoPartition)
            out << e.partition;
        out << ',' << e.sim_begin << ',' << e.sim_dur << ','
            << e.wall_seconds << ',' << e.arg0 << ',' << e.arg1 << '\n';
    }
    out.flags(flags);
    if (!writer.commit())
        fatal("TraceSink::writeCsv: write failed for ", path);
}

} // namespace digraph::metrics
