/**
 * @file
 * Typed counter registry shared by every engine family.
 *
 * The registry subsumes the ad-hoc work/traffic counters the engines used
 * to accumulate directly on RunReport fields: each engine owns one
 * CounterRegistry per run, increments it at the instrumentation points,
 * and exports the totals into the report at the end. Exporters (the trace
 * sinks, the CI schema check) read the same registry, so "the trace says
 * X" and "the report says X" can never drift apart.
 *
 * Not thread-safe by design: the DiGraph engine only mutates counters from
 * the serial wave barrier (parallel dispatches accumulate into their
 * private DispatchOutcome first), and the baselines are single-threaded.
 */

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "metrics/run_report.hpp"

namespace digraph::metrics {

/** Every engine-level counter with a RunReport aggregate. */
enum class Counter : unsigned {
    EdgeProcessings,
    VertexUpdates,
    Rounds,
    Waves,
    PartitionProcessings,
    NumPartitions,
    HostTransferBytes,
    RingTransferBytes,
    GlobalLoadBytes,
    LoadedVertices,
    UsedVertices,
    FaultsInjected,
    TransferRetries,
    Checkpoints,
    Recoveries,
    StoreCommits,
    StoreCommitFails,
    StoreRecovers,
    Count_ // sentinel, keep last
};

/** Number of counters in the registry. */
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::Count_);

/** Stable snake_case name of a counter (trace/CSV/JSON key). */
constexpr const char *
counterName(Counter c)
{
    switch (c) {
      case Counter::EdgeProcessings:      return "edge_processings";
      case Counter::VertexUpdates:        return "vertex_updates";
      case Counter::Rounds:               return "rounds";
      case Counter::Waves:                return "waves";
      case Counter::PartitionProcessings: return "partition_processings";
      case Counter::NumPartitions:        return "num_partitions";
      case Counter::HostTransferBytes:    return "host_transfer_bytes";
      case Counter::RingTransferBytes:    return "ring_transfer_bytes";
      case Counter::GlobalLoadBytes:      return "global_load_bytes";
      case Counter::LoadedVertices:       return "loaded_vertices";
      case Counter::UsedVertices:         return "used_vertices";
      case Counter::FaultsInjected:       return "faults_injected";
      case Counter::TransferRetries:      return "transfer_retries";
      case Counter::Checkpoints:          return "checkpoints";
      case Counter::Recoveries:           return "recoveries";
      case Counter::StoreCommits:         return "store_commits";
      case Counter::StoreCommitFails:     return "store_commit_fails";
      case Counter::StoreRecovers:        return "store_recovers";
      case Counter::Count_:               break;
    }
    return "?";
}

/** Fixed-slot registry of the Counter enum (no hashing on the hot path). */
class CounterRegistry
{
  public:
    /** Add @p delta to counter @p c. */
    void
    add(Counter c, std::uint64_t delta = 1)
    {
        values_[static_cast<std::size_t>(c)] += delta;
    }

    /** Overwrite counter @p c with @p value (end-of-run platform sums). */
    void
    set(Counter c, std::uint64_t value)
    {
        values_[static_cast<std::size_t>(c)] = value;
    }

    /** Current value of counter @p c. */
    std::uint64_t
    get(Counter c) const
    {
        return values_[static_cast<std::size_t>(c)];
    }

    /** Zero every counter. */
    void reset() { values_.fill(0); }

    /** Add every counter of @p other into this registry. */
    void
    merge(const CounterRegistry &other)
    {
        for (std::size_t i = 0; i < kNumCounters; ++i)
            values_[i] += other.values_[i];
    }

    /** Invoke @p fn(Counter, value) for every counter in enum order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < kNumCounters; ++i)
            fn(static_cast<Counter>(i), values_[i]);
    }

    /** Write the totals into the matching RunReport aggregate fields. */
    void
    exportTo(RunReport &report) const
    {
        report.edge_processings = get(Counter::EdgeProcessings);
        report.vertex_updates = get(Counter::VertexUpdates);
        report.rounds = get(Counter::Rounds);
        report.waves = get(Counter::Waves);
        report.partition_processings = get(Counter::PartitionProcessings);
        report.num_partitions = get(Counter::NumPartitions);
        report.host_transfer_bytes = get(Counter::HostTransferBytes);
        report.ring_transfer_bytes = get(Counter::RingTransferBytes);
        report.global_load_bytes = get(Counter::GlobalLoadBytes);
        report.loaded_vertices = get(Counter::LoadedVertices);
        report.used_vertices = get(Counter::UsedVertices);
        report.faults_injected = get(Counter::FaultsInjected);
        report.transfer_retries = get(Counter::TransferRetries);
        report.checkpoints = get(Counter::Checkpoints);
        report.recoveries = get(Counter::Recoveries);
        report.store_commits = get(Counter::StoreCommits);
        report.store_commit_fails = get(Counter::StoreCommitFails);
        report.store_recovers = get(Counter::StoreRecovers);
    }

    /** Registry holding the aggregates of @p report (test cross-checks). */
    static CounterRegistry
    fromReport(const RunReport &report)
    {
        CounterRegistry reg;
        reg.set(Counter::EdgeProcessings, report.edge_processings);
        reg.set(Counter::VertexUpdates, report.vertex_updates);
        reg.set(Counter::Rounds, report.rounds);
        reg.set(Counter::Waves, report.waves);
        reg.set(Counter::PartitionProcessings,
                report.partition_processings);
        reg.set(Counter::NumPartitions, report.num_partitions);
        reg.set(Counter::HostTransferBytes, report.host_transfer_bytes);
        reg.set(Counter::RingTransferBytes, report.ring_transfer_bytes);
        reg.set(Counter::GlobalLoadBytes, report.global_load_bytes);
        reg.set(Counter::LoadedVertices, report.loaded_vertices);
        reg.set(Counter::UsedVertices, report.used_vertices);
        reg.set(Counter::FaultsInjected, report.faults_injected);
        reg.set(Counter::TransferRetries, report.transfer_retries);
        reg.set(Counter::Checkpoints, report.checkpoints);
        reg.set(Counter::Recoveries, report.recoveries);
        reg.set(Counter::StoreCommits, report.store_commits);
        reg.set(Counter::StoreCommitFails, report.store_commit_fails);
        reg.set(Counter::StoreRecovers, report.store_recovers);
        return reg;
    }

    friend bool
    operator==(const CounterRegistry &a, const CounterRegistry &b)
    {
        return a.values_ == b.values_;
    }

  private:
    std::array<std::uint64_t, kNumCounters> values_{};
};

} // namespace digraph::metrics
