/**
 * @file
 * Structured execution tracing for the engines.
 *
 * A TraceSink records typed events (wave start/end, partition dispatch,
 * merge barrier, mirror-push batches, path-schedule decisions, work
 * steals) carrying both a simulated-cycle timestamp and a wall-clock
 * timestamp relative to the sink's epoch. Engines hold a `TraceSink *`
 * that defaults to nullptr; every instrumentation point is guarded by a
 * null check, so a disabled trace costs one predictable branch and no
 * allocation — the hot loop is unchanged.
 *
 * Event *order* in the sink may differ between runs with different
 * engine_threads values (compute-phase events are appended as worker
 * threads reach them); counter totals and per-event payloads must not.
 *
 * Exporters: writeChromeJson() emits chrome://tracing "Trace Event
 * Format" JSON (open in chrome://tracing or https://ui.perfetto.dev),
 * writeCsv() a flat table for scripting. Both embed the final
 * CounterRegistry totals so traces are self-describing.
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "metrics/counter_registry.hpp"

namespace digraph::metrics {

/** Event taxonomy (see DESIGN.md "Observability layer"). */
enum class TraceEventType : std::uint8_t {
    /** A dispatch wave's schedule was frozen (arg0 = batch size,
     *  arg1 = first partition of the batch). */
    WaveStart,
    /** All chunks of the wave committed (arg0 = partitions run). */
    WaveEnd,
    /** One partition dispatch's simulated kernel span (arg0 = local
     *  rounds, arg1 = edges processed). */
    Dispatch,
    /** Serial barrier commit of one dispatch (arg0 = master pushes
     *  replayed, arg1 = masters changed). */
    MergeBarrier,
    /** One local round's mirror->master push batch (arg0 = pushes,
     *  arg1 = local round index). */
    MirrorPush,
    /** Pri(p) path-schedule decision for one local round (arg0 = active
     *  paths, arg1 = highest-priority path id). */
    PathSchedule,
    /** A surplus work-stealing group ran on a stolen SMX (arg0 = group
     *  index, arg1 = stolen SMX id). */
    Steal,
    /** An injected fault became visible (arg0 = device, arg1 = 0 for a
     *  device loss, 1 for an SMX stall). */
    FaultInjected,
    /** One dropped transfer attempt was retried after backoff (arg0 =
     *  retry index within the transfer, arg1 = transfer bytes). */
    TransferRetry,
    /** A merge-barrier checkpoint epoch advanced (arg0 = dirty vertices
     *  flushed, arg1 = dirty partitions flushed). */
    Checkpoint,
    /** Device-loss recovery: checkpoint restore + redistribution
     *  (arg0 = dead device, arg1 = recovery ordinal). */
    Recovery,
    /** GraphService admitted a job (arg0 = job id, arg1 = priority).
     *  Service-level sinks only (ServiceConfig::trace). */
    JobAdmit,
    /** The inter-job scheduler granted a job an execution slot
     *  (arg0 = job id, arg1 = worker threads allocated). */
    JobGrant,
    /** A job parked at a wave boundary — preempted until its next
     *  grant (arg0 = job id, arg1 = waves run in the quantum). */
    JobPark,
    /** A job ran to convergence and left the session
     *  (arg0 = job id, arg1 = times it was parked). */
    JobDone,
    /** The durable store committed a version (arg0 = version id,
     *  arg1 = shards written; reused parent shards not included). */
    StoreCommit,
    /** The durable store recovered a version (arg0 = version id,
     *  arg1 = corrupt newer versions skipped on the way down). */
    StoreRecover,
};

/** Stable name of an event type (trace/CSV/JSON key). */
constexpr const char *
traceEventName(TraceEventType t)
{
    switch (t) {
      case TraceEventType::WaveStart:    return "wave_start";
      case TraceEventType::WaveEnd:      return "wave_end";
      case TraceEventType::Dispatch:     return "dispatch";
      case TraceEventType::MergeBarrier: return "merge_barrier";
      case TraceEventType::MirrorPush:   return "mirror_push";
      case TraceEventType::PathSchedule: return "path_schedule";
      case TraceEventType::Steal:        return "steal";
      case TraceEventType::FaultInjected: return "fault_injected";
      case TraceEventType::TransferRetry: return "transfer_retry";
      case TraceEventType::Checkpoint:    return "checkpoint";
      case TraceEventType::Recovery:      return "recovery";
      case TraceEventType::JobAdmit:      return "job_admit";
      case TraceEventType::JobGrant:      return "job_grant";
      case TraceEventType::JobPark:       return "job_park";
      case TraceEventType::JobDone:       return "job_done";
      case TraceEventType::StoreCommit:   return "store_commit";
      case TraceEventType::StoreRecover:  return "store_recover";
    }
    return "?";
}

/** Sentinel for "no partition" in TraceEvent::partition. */
inline constexpr std::uint64_t kTraceNoPartition = ~0ull;

/** One recorded event. */
struct TraceEvent
{
    TraceEventType type = TraceEventType::WaveStart;
    /** Recording thread's dense id (0 = the serial scheduler/barrier
     *  thread; workers get 1..N in first-record order). */
    std::uint32_t tid = 0;
    /** Dispatch wave the event belongs to. */
    std::uint64_t wave = 0;
    /** Partition, or kTraceNoPartition for wave-level events. */
    std::uint64_t partition = kTraceNoPartition;
    /** Simulated-cycle timestamp (start). */
    double sim_begin = 0.0;
    /** Simulated duration in cycles (0 for instantaneous events). */
    double sim_dur = 0.0;
    /** Wall-clock seconds since the sink's epoch. */
    double wall_seconds = 0.0;
    /** Event-type-specific payload (see TraceEventType docs). */
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
};

/**
 * Thread-safe event collector plus exporter.
 *
 * One sink may observe several runs; clear() between runs (or use one
 * sink per run) to keep traces separable.
 */
class TraceSink
{
  public:
    TraceSink() = default;

    /** Append @p event, stamping wall_seconds and tid. Thread-safe. */
    void record(TraceEvent event);

    /** Convenience wrapper building the TraceEvent in place. */
    void
    event(TraceEventType type, std::uint64_t wave, std::uint64_t partition,
          double sim_begin, double sim_dur = 0.0, std::uint64_t arg0 = 0,
          std::uint64_t arg1 = 0)
    {
        TraceEvent e;
        e.type = type;
        e.wave = wave;
        e.partition = partition;
        e.sim_begin = sim_begin;
        e.sim_dur = sim_dur;
        e.arg0 = arg0;
        e.arg1 = arg1;
        record(e);
    }

    /** Snapshot of the recorded events. Thread-safe. */
    std::vector<TraceEvent> events() const;

    /** Number of recorded events. Thread-safe. */
    std::size_t size() const;

    /** Count events of one type. Thread-safe. */
    std::size_t count(TraceEventType type) const;

    /** Drop all events and counters, restart the wall epoch. */
    void clear();

    /** Attach the final per-run counter totals (exported alongside the
     *  events; must equal the RunReport aggregates). */
    void setCounters(const CounterRegistry &counters);

    /** The attached counter totals. */
    CounterRegistry counters() const;

    /** Write chrome://tracing JSON ("ts"/"dur" are simulated cycles,
     *  wall timestamps travel in args). Fatal on I/O errors. */
    void writeChromeJson(const std::string &path) const;

    /** Write a flat CSV (one row per event, header included). */
    void writeCsv(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    CounterRegistry counters_;
    WallTimer epoch_;
};

} // namespace digraph::metrics
