/**
 * @file
 * Configuration of the simulated multi-GPU platform.
 *
 * The paper's testbed is four NVIDIA K80s (26 SMXs, 24 GB each) behind
 * PCIe 3.0 x16 with NCCL ring collectives. This simulator reproduces that
 * *structure* with a deterministic cycle-level cost model: SIMT warps in
 * lock-step (divergence costs the max over lanes), coalesced global-memory
 * accesses at a discount, PCIe-style serialized host links, and a ring
 * interconnect routed through host memory. Absolute cycle counts are
 * arbitrary units; all paper comparisons are ratios between systems run on
 * identical configurations.
 */

#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace digraph::gpusim {

/** Tunable parameters of the simulated platform. */
struct PlatformConfig
{
    /** Number of GPU devices. */
    unsigned num_devices = 4;
    /** Streaming multiprocessors per device. The K80 has 26; the default
     *  is scaled down with the stand-in graphs so a single device is
     *  compute-saturated (otherwise multi-GPU scaling would be pure
     *  communication overhead at laptop scale). */
    unsigned smx_per_device = 8;
    /** Hardware threads (lanes) per SMX made available to one kernel:
     *  warps_per_smx * kWarpSize. */
    unsigned warps_per_smx = 2;
    /** Global memory per device, bytes (scaled down from the K80's 24 GB
     *  to match the scaled-down stand-in graphs). */
    std::size_t global_mem_bytes = 256ull << 20;
    /** Shared memory per SMX, bytes (K80: 48 KiB). */
    std::size_t shared_mem_per_smx = 48u << 10;

    // --- compute cost model (cycles) ---
    /** Cycles to process one edge (gather+apply+scatter arithmetic). */
    double cycles_per_edge = 6.0;
    /** Cycles per un-coalesced global-memory word access. */
    double cycles_per_global_access = 8.0;
    /** Multiplier applied when a warp's accesses are coalesced. */
    double coalesced_factor = 0.125;
    /** Cycles per shared-memory (proxy vertex) access. */
    double cycles_per_shared_access = 1.0;
    /** Cycles per atomic global update (write contention). */
    double cycles_per_atomic = 8.0;

    // --- transfer cost model ---
    /** Host<->device link bandwidth, bytes per cycle (PCIe-ish). */
    double host_link_bytes_per_cycle = 32.0;
    /** Device<->device ring bandwidth, bytes per cycle per hop. */
    double ring_bytes_per_cycle = 64.0;
    /** Fixed latency per transfer, cycles (kernel-launch / DMA setup). */
    double transfer_latency_cycles = 50.0;
    /** Concurrent copy streams per device (Hyper-Q modeling). */
    unsigned num_streams = 8;

    /** Lanes usable by a single kernel on one SMX. */
    unsigned
    lanesPerSmx() const
    {
        return warps_per_smx * kWarpSize;
    }
};

} // namespace digraph::gpusim
