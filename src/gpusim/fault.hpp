/**
 * @file
 * Deterministic fault injection for the simulated platform.
 *
 * A FaultPlan describes *what* goes wrong and *when*, in simulated
 * cycles: whole-device loss at a cycle, per-transfer drop with a fixed
 * probability, or an SMX slowdown (thermal-throttle style stall) from a
 * cycle on. A FaultInjector executes the plan: it hands newly-due
 * discrete faults to the engine and drives the transfer-drop coin from
 * one SplitMix64 stream, so a (plan, seed) pair reproduces the exact
 * same fault sequence on every run — the property the fault-determinism
 * tests build on.
 *
 * Faults surface as *typed outcomes* (which device died, how many
 * attempts a transfer took, how long the backoff stalled it), never as
 * silent success; consuming them (retry accounting, checkpoint restore,
 * repartitioning) is the engine's job. The injector must only be
 * consumed from serial engine phases: the coin stream is ordered, so
 * draws from concurrent threads would break run-to-run determinism.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "gpusim/config.hpp"

namespace digraph::gpusim {

/** Whole-device loss: the device fails permanently at a cycle. */
struct DeviceLossFault
{
    DeviceId device = 0;
    /** Simulated cycle at which the loss becomes visible. */
    double at_cycle = 0.0;
};

/** SMX stall: one SMX runs @p factor times slower from a cycle on. */
struct SmxStallFault
{
    DeviceId device = 0;
    SmxId smx = 0;
    double at_cycle = 0.0;
    /** Kernel-cycle multiplier (> 1 slows the SMX down). */
    double factor = 8.0;
};

/**
 * The full injection schedule. An empty plan (the default) disables
 * fault tolerance entirely — engines must not pay any checkpointing or
 * retry cost for it.
 */
struct FaultPlan
{
    /** Seed of the transfer-drop coin stream. */
    std::uint64_t seed = 0x5eedULL;
    /** Probability that any single transfer attempt is dropped. */
    double transfer_drop_p = 0.0;
    std::vector<DeviceLossFault> device_loss;
    std::vector<SmxStallFault> smx_stalls;

    /** True when the plan injects nothing. */
    bool
    empty() const
    {
        return transfer_drop_p <= 0.0 && device_loss.empty() &&
               smx_stalls.empty();
    }

    /**
     * Parse a CLI spec: comma-separated clauses
     *   seed=N          coin-stream seed
     *   xfer=P          transfer drop probability in [0, 1]
     *   device=D@T      kill device D at cycle T
     *   smx=D.S@T       stall SMX S of device D at cycle T (factor 8)
     *   smx=D.S@TxF     same with an explicit factor F
     * e.g. "seed=7,device=1@50000,xfer=0.01,smx=0.3@20000x16".
     * @param error Receives a diagnostic; empty on success.
     */
    static FaultPlan parse(const std::string &spec, std::string &error);

    /** Human-readable one-line summary of the plan. */
    std::string describe() const;

    /** Check the plan against a platform (device/SMX ids in range,
     *  probability in [0,1], cycles and factors sane).
     *  @return a diagnostic, or "" when valid. */
    std::string validate(const PlatformConfig &cfg) const;
};

/** Typed outcome of one (possibly retried) transfer attempt series. */
struct TransferOutcome
{
    /** Attempts made (1 = first try succeeded). */
    unsigned attempts = 1;
    /** Backoff delay accumulated before the successful attempt,
     *  simulated cycles. */
    double delay_cycles = 0.0;
    /** False when the retry budget was exhausted. */
    bool delivered = true;
};

/**
 * Executes a FaultPlan. One injector per engine run; reset() rewinds
 * the coin stream and re-arms the discrete faults for a rerun.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan = {})
        : plan_(std::move(plan)), rng_(plan_.seed)
    {
        reset();
    }

    const FaultPlan &plan() const { return plan_; }

    /** True when the plan injects anything at all. */
    bool enabled() const { return !plan_.empty(); }

    /** Rewind: re-arm every discrete fault, reseed the coin stream. */
    void
    reset()
    {
        rng_ = SplitMix64(plan_.seed);
        loss_fired_.assign(plan_.device_loss.size(), 0);
        stall_fired_.assign(plan_.smx_stalls.size(), 0);
    }

    /** Device losses due at simulated time @p now that have not fired
     *  yet (each fires exactly once per run), appended to @p out. */
    void
    drainDueDeviceLoss(double now, std::vector<DeviceId> &out)
    {
        for (std::size_t i = 0; i < plan_.device_loss.size(); ++i) {
            if (!loss_fired_[i] && plan_.device_loss[i].at_cycle <= now) {
                loss_fired_[i] = 1;
                out.push_back(plan_.device_loss[i].device);
            }
        }
    }

    /** SMX stalls due at @p now that have not fired yet. */
    void
    drainDueSmxStalls(double now, std::vector<SmxStallFault> &out)
    {
        for (std::size_t i = 0; i < plan_.smx_stalls.size(); ++i) {
            if (!stall_fired_[i] && plan_.smx_stalls[i].at_cycle <= now) {
                stall_fired_[i] = 1;
                out.push_back(plan_.smx_stalls[i]);
            }
        }
    }

    /**
     * Run the drop coin for one transfer: each attempt fails with the
     * plan's probability; a failed attempt costs
     * backoff_base * 2^(attempt-1) cycles before the next try.
     * Serial-phase only (ordered coin stream).
     */
    TransferOutcome
    attemptTransfer(unsigned max_retries, double backoff_base_cycles)
    {
        TransferOutcome out;
        if (plan_.transfer_drop_p <= 0.0)
            return out;
        unsigned failed = 0;
        while (rng_.nextBool(plan_.transfer_drop_p)) {
            if (failed >= max_retries) {
                out.attempts = failed + 1;
                out.delivered = false;
                return out;
            }
            out.delay_cycles +=
                backoff_base_cycles *
                static_cast<double>(1ull << std::min(failed, 30u));
            ++failed;
        }
        out.attempts = failed + 1;
        return out;
    }

  private:
    FaultPlan plan_;
    SplitMix64 rng_;
    std::vector<std::uint8_t> loss_fired_;
    std::vector<std::uint8_t> stall_fired_;
};

} // namespace digraph::gpusim
