/**
 * @file
 * The simulated multi-GPU platform: devices, SMXs, host links, and the
 * ring interconnect — with deterministic cycle clocks and byte-exact
 * traffic accounting.
 *
 * Execution is modeled as greedy list scheduling: engines ask a device for
 * its least-loaded SMX, run kernels on it (advancing its clock), and issue
 * transfers whose completion times gate kernel starts. The makespan is the
 * maximum clock over all components; utilization is busy/makespan.
 */

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "gpusim/config.hpp"

namespace digraph::gpusim {

/**
 * One streaming multiprocessor: a cycle clock plus busy accounting.
 */
class Smx
{
  public:
    /** Current clock, cycles. */
    double clock() const { return clock_; }

    /** Cycles spent computing (excludes waiting). */
    double busyCycles() const { return busy_; }

    /**
     * Run a kernel of @p cycles cycles that cannot start before
     * @p ready_time (data dependency / transfer completion).
     * @return the completion time.
     */
    double
    run(double ready_time, double cycles)
    {
        clock_ = std::max(clock_, ready_time) + cycles;
        busy_ += cycles;
        return clock_;
    }

    /** Reset clock and accounting. */
    void reset() { clock_ = busy_ = 0.0; }

  private:
    double clock_ = 0.0;
    double busy_ = 0.0;
};

/**
 * A serialized transfer channel (PCIe host link or one ring hop):
 * transfers queue behind each other; each costs latency + bytes/bandwidth.
 */
class LinkModel
{
  public:
    LinkModel() = default;

    /** @param bytes_per_cycle Bandwidth. @param latency Setup cycles.
     *  @param streams Concurrent copy streams (Hyper-Q lanes). */
    LinkModel(double bytes_per_cycle, double latency, unsigned streams)
        : bandwidth_(bytes_per_cycle), latency_(latency),
          stream_clock_(std::max(1u, streams), 0.0)
    {}

    /**
     * Issue a transfer of @p bytes at @p issue_time.
     * @return completion time (the earliest-free stream is used).
     */
    double
    transfer(double issue_time, std::uint64_t bytes)
    {
        auto it = std::min_element(stream_clock_.begin(),
                                   stream_clock_.end());
        const double start = std::max(*it, issue_time);
        *it = start + latency_ +
              static_cast<double>(bytes) / bandwidth_;
        total_bytes_ += bytes;
        ++total_transfers_;
        return *it;
    }

    /** Intrinsic cost of moving @p bytes (latency + serialization),
     *  ignoring queueing. */
    double
    cost(std::uint64_t bytes) const
    {
        return latency_ + static_cast<double>(bytes) / bandwidth_;
    }

    /** Total bytes moved. */
    std::uint64_t totalBytes() const { return total_bytes_; }

    /** Number of transfers issued. */
    std::uint64_t totalTransfers() const { return total_transfers_; }

    /** Latest stream completion time. */
    double
    clock() const
    {
        return stream_clock_.empty()
                   ? 0.0
                   : *std::max_element(stream_clock_.begin(),
                                       stream_clock_.end());
    }

    /** Reset clocks and accounting. */
    void
    reset()
    {
        std::fill(stream_clock_.begin(), stream_clock_.end(), 0.0);
        total_bytes_ = 0;
        total_transfers_ = 0;
    }

  private:
    double bandwidth_ = 8.0;
    double latency_ = 0.0;
    std::vector<double> stream_clock_{0.0};
    std::uint64_t total_bytes_ = 0;
    std::uint64_t total_transfers_ = 0;
};

/**
 * One simulated GPU: SMXs plus a host link and global-memory accounting.
 *
 * Threading contract: clocks (SMXs, links) are single-writer — the engine
 * mutates them only from the serial wave-barrier replay. Global-load
 * accounting is the one counter fed from the *parallel* compute phase of a
 * wave (several dispatches resident on one device at once), so it is
 * atomic; relaxed ordering suffices because it is a pure sum.
 */
class Device
{
  public:
    Device(DeviceId id, const PlatformConfig &cfg)
        : id_(id), smxs_(cfg.smx_per_device),
          host_link_(cfg.host_link_bytes_per_cycle,
                     cfg.transfer_latency_cycles, cfg.num_streams)
    {}

    Device(Device &&other) noexcept
        : id_(other.id_), smxs_(std::move(other.smxs_)),
          host_link_(std::move(other.host_link_)),
          failed_(other.failed_),
          global_load_bytes_(other.global_load_bytes_.load(
              std::memory_order_relaxed))
    {}

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;
    Device &operator=(Device &&) = delete;

    DeviceId id() const { return id_; }

    /** Number of SMXs. */
    unsigned numSmxs() const { return static_cast<unsigned>(smxs_.size()); }

    /** SMX accessor. */
    Smx &smx(SmxId s) { return smxs_[s]; }
    const Smx &smx(SmxId s) const { return smxs_[s]; }

    /** Index of the SMX with the smallest clock (greedy dispatch). */
    SmxId
    leastLoadedSmx() const
    {
        SmxId best = 0;
        for (SmxId s = 1; s < smxs_.size(); ++s) {
            if (smxs_[s].clock() < smxs_[best].clock())
                best = s;
        }
        return best;
    }

    /** Host link of this device. */
    LinkModel &hostLink() { return host_link_; }
    const LinkModel &hostLink() const { return host_link_; }

    /** Max clock over SMXs and the host link. */
    double
    clock() const
    {
        double t = host_link_.clock();
        for (const Smx &s : smxs_)
            t = std::max(t, s.clock());
        return t;
    }

    /** Sum of busy cycles over SMXs. */
    double
    totalBusy() const
    {
        double b = 0.0;
        for (const Smx &s : smxs_)
            b += s.busyCycles();
        return b;
    }

    /** Record @p bytes loaded from global memory into cores.
     *  Thread-safe: callable from concurrent wave dispatches. */
    void
    addGlobalLoad(std::uint64_t bytes)
    {
        global_load_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }

    /** Bytes loaded from global memory into cores. */
    std::uint64_t
    globalLoadBytes() const
    {
        return global_load_bytes_.load(std::memory_order_relaxed);
    }

    /** Mark the device as permanently lost (fault injection). Clocks
     *  and accounting are kept — work done before the loss happened. */
    void markFailed() { failed_ = true; }

    /** True when the device was lost to an injected fault. */
    bool failed() const { return failed_; }

    /** Reset clocks and accounting; a failed device is resurrected
     *  (reset() starts a fresh simulated run). */
    void
    reset()
    {
        for (Smx &s : smxs_)
            s.reset();
        host_link_.reset();
        failed_ = false;
        global_load_bytes_.store(0, std::memory_order_relaxed);
    }

  private:
    DeviceId id_;
    std::vector<Smx> smxs_;
    LinkModel host_link_;
    bool failed_ = false;
    std::atomic<std::uint64_t> global_load_bytes_{0};
};

/**
 * NCCL-style ring over the devices, routed through host memory: a
 * transfer from device a to device b crosses min ring distance hops.
 */
class RingInterconnect
{
  public:
    RingInterconnect() = default;

    RingInterconnect(unsigned num_devices, const PlatformConfig &cfg)
        : num_devices_(num_devices)
    {
        hops_.reserve(num_devices);
        for (unsigned i = 0; i < num_devices; ++i) {
            hops_.emplace_back(cfg.ring_bytes_per_cycle,
                               cfg.transfer_latency_cycles,
                               cfg.num_streams);
        }
    }

    /** Ring distance between two devices. */
    unsigned
    distance(DeviceId a, DeviceId b) const
    {
        const unsigned d =
            (b + num_devices_ - a) % num_devices_;
        return std::min(d, num_devices_ - d);
    }

    /**
     * Send @p bytes from @p src to @p dst starting at @p issue_time,
     * hop by hop. @return delivery time.
     */
    double
    transfer(DeviceId src, DeviceId dst, double issue_time,
             std::uint64_t bytes)
    {
        if (src == dst || num_devices_ < 2)
            return issue_time;
        double t = issue_time;
        const unsigned fwd = (dst + num_devices_ - src) % num_devices_;
        const bool forward = fwd <= num_devices_ - fwd;
        DeviceId cur = src;
        while (cur != dst) {
            t = hops_[cur].transfer(t, bytes);
            cur = forward ? (cur + 1) % num_devices_
                          : (cur + num_devices_ - 1) % num_devices_;
        }
        return t;
    }

    /** Total bytes moved across all hops (multi-hop counts each hop). */
    std::uint64_t
    totalBytes() const
    {
        std::uint64_t total = 0;
        for (const LinkModel &hop : hops_)
            total += hop.totalBytes();
        return total;
    }

    /** Reset all hop links. */
    void
    reset()
    {
        for (LinkModel &hop : hops_)
            hop.reset();
    }

  private:
    unsigned num_devices_ = 0;
    std::vector<LinkModel> hops_;
};

/**
 * The whole simulated machine: devices + ring + a stats registry.
 */
class Platform
{
  public:
    explicit Platform(const PlatformConfig &cfg = {});

    const PlatformConfig &config() const { return cfg_; }

    unsigned numDevices() const
    {
        return static_cast<unsigned>(devices_.size());
    }

    Device &device(DeviceId d) { return devices_[d]; }
    const Device &device(DeviceId d) const { return devices_[d]; }

    RingInterconnect &ring() { return ring_; }
    const RingInterconnect &ring() const { return ring_; }

    /** Device with the smallest clock. */
    DeviceId leastLoadedDevice() const;

    /** Mark @p d as permanently lost (fault injection). */
    void markFailed(DeviceId d) { devices_[d].markFailed(); }

    /** Number of devices that have not failed. */
    unsigned
    numAlive() const
    {
        unsigned alive = 0;
        for (const Device &d : devices_)
            alive += d.failed() ? 0 : 1;
        return alive;
    }

    /** Simulated makespan: max clock over every component. */
    double makespan() const;

    /** Mean SMX utilization: busy cycles / makespan, averaged. */
    double utilization() const;

    /** Total traffic: host links + ring, bytes. */
    std::uint64_t transferBytes() const;

    /** Total bytes loaded from global memory into GPU cores. */
    std::uint64_t globalLoadBytes() const;

    /** Named counters for engine-specific metrics. */
    StatsRegistry &stats() { return stats_; }
    const StatsRegistry &stats() const { return stats_; }

    /** Reset every clock and counter. */
    void reset();

  private:
    PlatformConfig cfg_;
    std::vector<Device> devices_;
    RingInterconnect ring_;
    StatsRegistry stats_;
};

/**
 * Lock-step warp cost: lanes execute in SIMT fashion, so each instruction
 * costs the maximum lane trip count. @p lane_work holds per-lane work
 * units (e.g. edges); the result is max * cycles_per_unit.
 */
double warpCost(const std::vector<std::uint64_t> &lane_work,
                double cycles_per_unit);

} // namespace digraph::gpusim
