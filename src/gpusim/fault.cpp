#include "gpusim/fault.hpp"

#include <cstdlib>
#include <sstream>

namespace digraph::gpusim {

namespace {

/** Split @p s at every @p sep (no empty-token suppression). */
std::vector<std::string>
splitAt(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string token;
    std::istringstream iss(s);
    while (std::getline(iss, token, sep))
        out.push_back(token);
    return out;
}

/** Strict full-string double parse. */
bool
parseDouble(const std::string &s, double &value)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    value = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
}

/** Strict full-string unsigned parse. */
bool
parseUnsigned(const std::string &s, std::uint64_t &value)
{
    if (s.empty() || s[0] == '-')
        return false;
    char *end = nullptr;
    value = std::strtoull(s.c_str(), &end, 10);
    return end == s.c_str() + s.size();
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec, std::string &error)
{
    FaultPlan plan;
    error.clear();
    for (const std::string &clause : splitAt(spec, ',')) {
        if (clause.empty())
            continue;
        const auto eq = clause.find('=');
        if (eq == std::string::npos) {
            error = "fault clause '" + clause + "' has no '='";
            return plan;
        }
        const std::string key = clause.substr(0, eq);
        const std::string val = clause.substr(eq + 1);
        if (key == "seed") {
            if (!parseUnsigned(val, plan.seed)) {
                error = "bad seed '" + val + "'";
                return plan;
            }
        } else if (key == "xfer") {
            if (!parseDouble(val, plan.transfer_drop_p)) {
                error = "bad transfer probability '" + val + "'";
                return plan;
            }
        } else if (key == "device") {
            // device=D@T
            const auto at = val.find('@');
            std::uint64_t dev = 0;
            double cycle = 0.0;
            if (at == std::string::npos ||
                !parseUnsigned(val.substr(0, at), dev) ||
                !parseDouble(val.substr(at + 1), cycle)) {
                error = "bad device-loss clause '" + val +
                        "' (want D@T)";
                return plan;
            }
            plan.device_loss.push_back(
                {static_cast<DeviceId>(dev), cycle});
        } else if (key == "smx") {
            // smx=D.S@T or smx=D.S@TxF
            SmxStallFault stall;
            const auto dot = val.find('.');
            const auto at = val.find('@');
            std::uint64_t dev = 0, smx = 0;
            if (dot == std::string::npos || at == std::string::npos ||
                at < dot ||
                !parseUnsigned(val.substr(0, dot), dev) ||
                !parseUnsigned(val.substr(dot + 1, at - dot - 1), smx)) {
                error = "bad smx-stall clause '" + val +
                        "' (want D.S@T or D.S@TxF)";
                return plan;
            }
            std::string when = val.substr(at + 1);
            const auto x = when.find('x');
            if (x != std::string::npos) {
                if (!parseDouble(when.substr(x + 1), stall.factor)) {
                    error = "bad smx-stall factor in '" + val + "'";
                    return plan;
                }
                when = when.substr(0, x);
            }
            if (!parseDouble(when, stall.at_cycle)) {
                error = "bad smx-stall cycle in '" + val + "'";
                return plan;
            }
            stall.device = static_cast<DeviceId>(dev);
            stall.smx = static_cast<SmxId>(smx);
            plan.smx_stalls.push_back(stall);
        } else {
            error = "unknown fault clause '" + key + "'";
            return plan;
        }
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream out;
    out << "seed=" << seed;
    if (transfer_drop_p > 0.0)
        out << ", xfer-drop p=" << transfer_drop_p;
    for (const auto &loss : device_loss) {
        out << ", device " << loss.device << " dies @" << loss.at_cycle;
    }
    for (const auto &stall : smx_stalls) {
        out << ", smx " << stall.device << "." << stall.smx << " x"
            << stall.factor << " @" << stall.at_cycle;
    }
    return out.str();
}

std::string
FaultPlan::validate(const PlatformConfig &cfg) const
{
    // p == 1 is allowed: it deterministically exhausts the retry budget,
    // which the hard-abort tests rely on.
    if (transfer_drop_p < 0.0 || transfer_drop_p > 1.0)
        return "faults: transfer drop probability must be in [0, 1]";
    for (const auto &loss : device_loss) {
        if (loss.device >= cfg.num_devices) {
            return "faults: device-loss id " +
                   std::to_string(loss.device) + " out of range (" +
                   std::to_string(cfg.num_devices) + " devices)";
        }
        if (!(loss.at_cycle >= 0.0))
            return "faults: device-loss cycle must be >= 0";
    }
    for (const auto &stall : smx_stalls) {
        if (stall.device >= cfg.num_devices) {
            return "faults: smx-stall device " +
                   std::to_string(stall.device) + " out of range";
        }
        if (stall.smx >= cfg.smx_per_device) {
            return "faults: smx-stall smx " + std::to_string(stall.smx) +
                   " out of range (" +
                   std::to_string(cfg.smx_per_device) + " per device)";
        }
        if (!(stall.at_cycle >= 0.0))
            return "faults: smx-stall cycle must be >= 0";
        if (!(stall.factor > 0.0))
            return "faults: smx-stall factor must be > 0";
    }
    return "";
}

} // namespace digraph::gpusim
