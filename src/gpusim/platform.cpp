#include "gpusim/platform.hpp"

namespace digraph::gpusim {

Platform::Platform(const PlatformConfig &cfg)
    : cfg_(cfg), ring_(cfg.num_devices, cfg)
{
    devices_.reserve(cfg.num_devices);
    for (DeviceId d = 0; d < cfg.num_devices; ++d)
        devices_.emplace_back(d, cfg);
}

DeviceId
Platform::leastLoadedDevice() const
{
    DeviceId best = 0;
    for (DeviceId d = 1; d < devices_.size(); ++d) {
        if (devices_[d].clock() < devices_[best].clock())
            best = d;
    }
    return best;
}

double
Platform::makespan() const
{
    double t = 0.0;
    for (const Device &d : devices_)
        t = std::max(t, d.clock());
    return t;
}

double
Platform::utilization() const
{
    const double span = makespan();
    if (span <= 0.0 || devices_.empty())
        return 0.0;
    double busy = 0.0;
    std::size_t smxs = 0;
    for (const Device &d : devices_) {
        busy += d.totalBusy();
        smxs += d.numSmxs();
    }
    return busy / (span * static_cast<double>(smxs));
}

std::uint64_t
Platform::transferBytes() const
{
    std::uint64_t total = ring_.totalBytes();
    for (const Device &d : devices_)
        total += d.hostLink().totalBytes();
    return total;
}

std::uint64_t
Platform::globalLoadBytes() const
{
    std::uint64_t total = 0;
    for (const Device &d : devices_)
        total += d.globalLoadBytes();
    return total;
}

void
Platform::reset()
{
    for (Device &d : devices_)
        d.reset();
    ring_.reset();
    stats_.resetAll();
}

double
warpCost(const std::vector<std::uint64_t> &lane_work,
         double cycles_per_unit)
{
    std::uint64_t worst = 0;
    for (std::size_t i = 0; i < lane_work.size(); i += kWarpSize) {
        std::uint64_t warp_max = 0;
        for (std::size_t j = i;
             j < std::min(lane_work.size(),
                          i + static_cast<std::size_t>(kWarpSize));
             ++j) {
            warp_max = std::max(warp_max, lane_work[j]);
        }
        worst += warp_max;
    }
    return static_cast<double>(worst) * cycles_per_unit;
}

} // namespace digraph::gpusim
