#include "engine/options.hpp"

#include <algorithm>

namespace digraph::engine {

void
EngineOptions::resolvePartitionBudget(EdgeId num_edges)
{
    if (!auto_partition_budget)
        return;
    const std::size_t units = static_cast<std::size_t>(
        std::max(1u, 16 * platform.smx_per_device));
    preprocess.partition.edges_per_partition = std::max<std::size_t>(
        256, static_cast<std::size_t>(num_edges) / units);
}

std::string
EngineOptions::validate() const
{
    const auto &pc = platform;
    if (pc.num_devices == 0)
        return "platform.num_devices must be > 0";
    if (pc.smx_per_device == 0)
        return "platform.smx_per_device must be > 0";
    if (pc.warps_per_smx == 0)
        return "platform.warps_per_smx must be > 0";
    if (pc.global_mem_bytes == 0)
        return "platform.global_mem_bytes must be > 0";
    if (!(pc.host_link_bytes_per_cycle > 0.0))
        return "platform.host_link_bytes_per_cycle must be > 0";
    if (!(pc.ring_bytes_per_cycle > 0.0))
        return "platform.ring_bytes_per_cycle must be > 0";
    if (pc.transfer_latency_cycles < 0.0)
        return "platform.transfer_latency_cycles must be >= 0";
    if (pc.cycles_per_edge < 0.0)
        return "platform.cycles_per_edge must be >= 0";
    if (pc.num_streams == 0)
        return "platform.num_streams must be > 0";
    if (use_proxy && proxy_indegree_threshold == 0)
        return "proxy_indegree_threshold must be > 0 when proxies are on";
    if (max_local_rounds == 0)
        return "max_local_rounds must be > 0";
    if (!faults.empty()) {
        if (checkpoint_interval == 0)
            return "checkpoint_interval must be > 0 with faults enabled";
        if (!(transfer_backoff_cycles >= 0.0))
            return "transfer_backoff_cycles must be >= 0";
        if (const std::string err = faults.validate(pc); !err.empty())
            return err;
    }
    return "";
}

} // namespace digraph::engine
