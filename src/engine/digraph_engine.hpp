/**
 * @file
 * The DiGraph engine (Section 3): path-based asynchronous iterative
 * directed-graph processing over the simulated multi-GPU platform.
 *
 * Pipeline: the constructor runs the CPU preprocessing (path
 * decomposition, merge, dependency graph, DAG sketch, partitions) and
 * materializes the four-array storage; run() executes one algorithm to
 * convergence with dependency-aware dispatching, per-SMX path scheduling,
 * master/mirror batched synchronization, proxy vertices, and work
 * stealing, producing a full metrics::RunReport.
 *
 * Activation is tracked per *mirror slot*: a set flag means "this replica
 * holds a state its on-path out-edge has not propagated yet". Within a
 * round a processed edge clears its source flag and immediately sets its
 * destination flag, which realizes the paper's within-round propagation
 * along the whole path; in VertexAsync mode (DiGraph-t) sources are read
 * from a round-start snapshot and new flags are applied at round end, so
 * state crosses one hop per round, as in traditional async engines.
 *
 * Host execution model (see DESIGN.md "Host execution model"): the
 * partitions dispatched in one wave run *concurrently* on host worker
 * threads. Each dispatch reads only wave-start shared state (masters,
 * versions) plus its own partition-sliced state, buffers its master
 * merges in a private overlay, and emits a DispatchOutcome; at the wave
 * barrier the outcomes are committed serially in dispatch order (master
 * merge replay, version bumps, activation fan-out, simulated platform
 * costs), so results are bit-identical for every engine_threads value.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

#include "algorithms/algorithm.hpp"
#include "engine/options.hpp"
#include "gpusim/platform.hpp"
#include "graph/digraph.hpp"
#include "metrics/counter_registry.hpp"
#include "metrics/run_report.hpp"
#include "metrics/trace.hpp"
#include "partition/preprocess.hpp"
#include "storage/path_storage.hpp"

namespace digraph::engine {

/** Warm-start input for run(): converged states from a previous run
 *  plus the vertices whose neighborhood changed. */
struct WarmStart
{
    /** Vertex states to resume from (size = numVertices). */
    const std::vector<Value> *vertex_state = nullptr;
    /** Explicit per-edge caches (size = numEdges); when null they are
     *  derived via Algorithm::warmEdgeState(). */
    const std::vector<Value> *edge_state = nullptr;
    /** Activation seed (e.g. sources of inserted edges). */
    const std::vector<VertexId> *active_vertices = nullptr;
};

/**
 * Path-based iterative directed-graph processing engine.
 *
 * One engine instance is bound to a graph; run() may be called repeatedly
 * with different algorithms (all run state is reset).
 */
class DiGraphEngine
{
  public:
    /** Preprocess @p g per @p options (the graph must outlive the
     *  engine). */
    explicit DiGraphEngine(const graph::DirectedGraph &g,
                           EngineOptions options = {});

    /**
     * Adopt a prebuilt preprocessing result for @p g instead of running
     * the pipeline (evolving-graph incremental ingestion: the caller
     * produced @p pre via preprocess() or appendPreprocess()). Only the
     * storage arrays and dispatch indexes are built here.
     * @pre pre covers exactly g's edge set (checked).
     */
    DiGraphEngine(const graph::DirectedGraph &g,
                  partition::Preprocessed pre, EngineOptions options);

    /** Execute @p algo to convergence; returns the full report.
     *  @param warm Optional warm start (evolving-graph reruns): vertex
     *  states resume from the given vector, edge caches are initialized
     *  consistently via Algorithm::warmEdgeState(), and only the given
     *  seed vertices start active. */
    metrics::RunReport run(const algorithms::Algorithm &algo,
                           const WarmStart *warm = nullptr);

    /** The preprocessing result (paths, DAG sketch, partitions). */
    const partition::Preprocessed &preprocessed() const { return pre_; }

    /** Preprocessing wall-clock seconds. */
    double preprocessSeconds() const { return pre_.timings.total(); }

    /** Engine options in effect. */
    const EngineOptions &options() const { return options_; }

    /** Attach (or detach, with nullptr) a trace sink for subsequent
     *  run() calls. Tracing never changes results; a null sink keeps
     *  every instrumentation point a single branch. */
    void setTrace(metrics::TraceSink *sink) { options_.trace = sink; }

    /** Counter totals of the most recent run (always equal to the
     *  matching RunReport aggregate fields). */
    const metrics::CounterRegistry &counters() const { return counters_; }

    /** The simulated platform state of the most recent run. */
    const gpusim::Platform &platform() const { return platform_; }

    /** Per-partition dispatch counts of the most recent run. */
    const std::vector<std::uint32_t> &partitionProcessCounts() const
    {
        return partition_process_count_;
    }

    /** Dependency group of partition @p q (introspection / tests). */
    SccId partitionGroup(PartitionId q) const
    {
        return partition_group_[q];
    }

    /** Direct precursor partitions of @p q (introspection / tests). */
    const std::vector<PartitionId> &
    partitionPrecursors(PartitionId q) const
    {
        return precursor_parts_[q];
    }

    /**
     * Validate the incremental activation bookkeeping (tests): per-path
     * active-slot counters must equal a full recount of slot flags, and
     * every path with a nonzero counter must sit in its partition's
     * worklist. O(total slots) — debug/tests only.
     */
    bool activationBookkeepingConsistent() const;

    /** Worker threads run() will use (resolves engine_threads == 0). */
    std::size_t engineThreads() const;

    /** Result of the post-run invariant checker (see
     *  postRunInvariants()). */
    struct InvariantReport
    {
        /** No edge would still move its destination by more than the
         *  residual slack at the converged state. */
        bool residual_ok = true;
        /** No mirror holds an un-pushed value (hasPush false
         *  everywhere). */
        bool coherence_ok = true;
        /** Activation bookkeeping recounts cleanly and the engine is
         *  quiescent (no active slot or partition). */
        bool activation_ok = true;
        /** Largest |destination movement| any edge could still cause. */
        double max_residual = 0.0;
        /** Edges exceeding the slack. */
        std::uint64_t residual_violations = 0;
        /** First violation, human-readable (empty when ok). */
        std::string detail;

        bool
        ok() const
        {
            return residual_ok && coherence_ok && activation_ok;
        }
    };

    /**
     * Post-run invariant checker (debug/CI): re-examines the converged
     * state of the most recent run() — convergence residual (re-running
     * processEdge on a copy must not move any destination by more than
     * @p residual_slack * epsilon), master/mirror coherence, and an
     * activation recount. Used standalone by tests and, with
     * EngineOptions::verify_invariants, inside run() (panic on
     * violation).
     */
    InvariantReport
    postRunInvariants(const algorithms::Algorithm &algo,
                      double residual_slack = 64.0);

  private:
    /**
     * Everything one partition dispatch produces during the parallel
     * compute phase of a wave, committed serially at the wave barrier.
     */
    struct DispatchOutcome
    {
        PartitionId partition = kInvalidPartition;
        /** Vertices whose mirrors were stale at dispatch start (sorted;
         *  drives the ring master-refresh pulls at replay). */
        std::vector<VertexId> stale_vertices;
        /** Per local round, per work-stealing group: kernel cycles. */
        std::vector<std::vector<double>> round_group_cycles;
        /** Master push log in generation order (replayed via
         *  Algorithm::mergeMaster against the true masters). */
        std::vector<std::pair<VertexId, Value>> pushes;
        /** Privately merged master values (wave-start master + own
         *  pushes); the barrier compares these against the committed
         *  masters to decide whether this partition's own mirrors went
         *  stale (another wave member also pushed the vertex). */
        std::unordered_map<VertexId, Value> overlay;
        /** Partition hit max_local_rounds; redispatch it. */
        bool reactivate_self = false;
        /** Global-load bytes that could not be accounted during compute
         *  (partition had no resident device at wave start). */
        std::uint64_t deferred_load_bytes = 0;
        // Work counters merged into the report at the barrier.
        std::uint64_t edge_processings = 0;
        std::uint64_t vertex_updates = 0;
        std::uint64_t local_rounds = 0;
        std::uint64_t loaded_vertices = 0;
        std::uint64_t global_load_bytes = 0;
    };

    void buildIndexes();
    std::vector<std::uint8_t> blockedGroups() const;
    PartitionId choosePartition(const std::vector<std::uint64_t> &stamp,
                                std::uint64_t wave,
                                const std::vector<std::uint8_t> *blocked);
    DeviceId chooseDevice(PartitionId p) const;
    double ensureResident(PartitionId p, DeviceId dev, double issue_time,
                          metrics::RunReport &report);
    DispatchOutcome computeDispatch(PartitionId p,
                                    const algorithms::Algorithm &algo);
    void replayDispatch(DispatchOutcome &outcome,
                        const algorithms::Algorithm &algo,
                        metrics::RunReport &report);

    /** True when the slot is a source position (not a path tail). */
    bool isSrcSlot(std::uint64_t slot) const { return is_src_slot_[slot]; }

    /** Set a slot's activation flag, maintaining the per-path active
     *  counter and the owning partition's path worklist. Only the
     *  partition owning the slot may call this (partition-sliced
     *  state, safe under concurrent wave dispatches). */
    void
    activateSlot(std::uint64_t slot)
    {
        if (slot_active_[slot])
            return;
        slot_active_[slot] = 1;
        const PathId q = path_of_slot_[slot];
        if (path_active_count_[q]++ == 0 && !path_in_worklist_[q]) {
            path_in_worklist_[q] = 1;
            partition_worklist_[partition_of_path_[q]].push_back(q);
        }
    }

    /** Clear a processed slot's activation flag (counter bookkeeping). */
    void
    deactivateSlot(std::uint64_t slot)
    {
        if (slot_active_[slot]) {
            slot_active_[slot] = 0;
            --path_active_count_[path_of_slot_[slot]];
        }
    }

    // --- fault tolerance (implemented in fault_recovery.cpp; all
    // methods are serial-phase only — see DESIGN.md §10) ---

    /** Reset the injector and take the epoch-0 checkpoint (full V_val +
     *  E_val copy). Called from run() after storage initialization. */
    void initFaultTolerance();

    /** Fire discrete faults due at the current makespan: device losses
     *  trigger checkpoint-restore recovery, SMX stalls arm their cycle
     *  multiplier. Called at every wave start. */
    void pollFaults(std::uint64_t wave, metrics::RunReport &report);

    /** Journal a master mutation since the last checkpoint epoch. */
    void
    markVertexDirty(VertexId v)
    {
        if (!ckpt_v_dirty_[v]) {
            ckpt_v_dirty_[v] = 1;
            ckpt_v_dirty_list_.push_back(v);
        }
    }

    /** Journal a partition whose E_val slice a dispatch may mutate. */
    void
    markPartitionDirty(PartitionId p)
    {
        if (!ckpt_part_dirty_[p]) {
            ckpt_part_dirty_[p] = 1;
            ckpt_part_dirty_list_.push_back(p);
        }
    }

    /** Advance the checkpoint epoch when the interval elapsed: flush
     *  dirty masters/E_val slices into the shadow arrays, charging the
     *  simulated flush traffic. Called at every wave end. */
    void maybeCheckpoint(std::uint64_t wave, metrics::RunReport &report);

    /** Degrade-and-redistribute recovery from losing @p dead: roll every
     *  dirty master/E_val slice back to the checkpoint, clear the
     *  volatile run state, re-activate all source slots, and drop all
     *  device residency so the DAG dispatcher restripes partitions over
     *  the survivors. Hard-aborts past max_recoveries or when no device
     *  survives. */
    void recoverFromDeviceLoss(DeviceId dead, std::uint64_t wave,
                               metrics::RunReport &report);

    /** Issue-time penalty of the transfer-drop coin for one transfer of
     *  @p bytes: 0 when delivered first try, the accumulated exponential
     *  backoff otherwise; hard-aborts when the retry budget is
     *  exhausted. Every simulated transfer issue passes through this. */
    double transferFaultPenalty(std::uint64_t bytes,
                                metrics::RunReport &report);

    /** Kernel-cycle multiplier of (device, smx) under active stalls. */
    double
    smxStallFactor(DeviceId d, SmxId s) const
    {
        return ft_enabled_
                   ? smx_stall_factor_[static_cast<std::size_t>(d) *
                                           options_.platform
                                               .smx_per_device +
                                       s]
                   : 1.0;
    }

    /** Copy partition @p p's E_val slice between live and shadow
     *  arrays (@p to_checkpoint: live -> shadow, else shadow -> live). */
    void copyPartitionEval(PartitionId p, bool to_checkpoint);

    const graph::DirectedGraph &g_;
    EngineOptions options_;
    partition::Preprocessed pre_;
    storage::PathStorage storage_;
    gpusim::Platform platform_;
    /** Typed counters of the current run (mutated only by the serial
     *  scheduler/barrier thread; exported into the RunReport at run
     *  end). */
    metrics::CounterRegistry counters_;
    /** Trace sink of the current run (= options_.trace; nullptr when
     *  tracing is disabled). */
    metrics::TraceSink *trace_ = nullptr;
    /** Wave context for compute-phase trace events (written by the
     *  serial scheduler before the parallel phase, read-only during
     *  it). */
    std::uint64_t trace_wave_ = 0;
    double trace_wave_sim_ = 0.0;

    // --- static indexes (built once) ---
    /** Path owning each E_idx slot. */
    std::vector<PathId> path_of_slot_;
    /** Whether each slot is a source position (not a path tail). */
    std::vector<std::uint8_t> is_src_slot_;
    /** Partition of each path. */
    std::vector<PartitionId> partition_of_path_;
    /** CSR: vertex -> its occurrence slots across all paths. */
    std::vector<std::uint64_t> occur_offsets_;
    std::vector<std::uint64_t> occur_slots_;
    /** CSR: vertex -> partitions holding one of its source occurrences
     *  (deduplicated; used for activation fan-out). */
    std::vector<std::uint64_t> consumer_offsets_;
    std::vector<PartitionId> consumer_parts_;
    /** CSR: vertex -> partitions holding ANY occurrence (deduplicated;
     *  used for the stale-vertex queue fan-out at the wave barrier). */
    std::vector<std::uint64_t> mirror_offsets_;
    std::vector<PartitionId> mirror_parts_;
    /** Per-partition precursor partitions (deduped, from the DAG). */
    std::vector<std::vector<PartitionId>> precursor_parts_;
    /** Symmetric partition-interference matrix (nparts x nparts, row
     *  major): set when two partitions mirror a common vertex. Only
     *  mutually non-interfering partitions are dispatched concurrently —
     *  their dispatches are then exactly order-independent, so the
     *  parallel wave does the same work the serial engine would. */
    std::vector<std::uint8_t> interference_;
    /** Partitions mirroring a very-high-fanout (hub) vertex; treated as
     *  interfering with everything (keeps the matrix build O(fanout
     *  cap * occurrences) instead of quadratic in the hub fanout). */
    std::vector<std::uint8_t> interferes_all_;
    /** SCC group of each partition in the partition dependency graph:
     *  partitions of one group form a dependency cycle and iterate
     *  together; a group is *ready* when no group transitively upstream
     *  of it holds an active partition (checked at wave start). */
    std::vector<SccId> partition_group_;
    /** Condensed DAG over partition groups. */
    graph::DirectedGraph group_dag_;
    /** Topological order of the group DAG. */
    std::vector<VertexId> group_topo_;
    /** Per-partition byte footprint. */
    std::vector<std::size_t> partition_bytes_;
    /** Pri(p) scaling factor alpha = 1 / (maxAvgDeg * maxN). */
    double pri_alpha_ = 1.0;

    // --- per-run state ---
    /** Chain activation within the current dispatch (set by processed
     *  edges and local refreshes). */
    std::vector<std::uint8_t> slot_active_;
    /** Master change counter per vertex; a source slot whose seen
     *  version lags must re-propagate (cross-partition activation
     *  without per-slot broadcasts). */
    std::vector<std::uint32_t> master_version_;
    /** Last master version each source slot has propagated. */
    std::vector<std::uint32_t> slot_seen_version_;
    std::vector<std::uint8_t> partition_active_;
    std::vector<std::uint32_t> partition_process_count_;
    std::vector<DeviceId> partition_device_; // last residence
    std::vector<double> partition_done_;      // last dispatch completion
    std::vector<double> partition_msg_ready_; // last activation arrival
    /** Device that last wrote each vertex's master (buffered results stay
     *  in that device's global memory; other devices fetch via host). */
    std::vector<DeviceId> master_writer_;
    std::vector<std::vector<PartitionId>> device_resident_; // LRU order
    std::vector<std::size_t> device_resident_bytes_;

    // --- incremental worklists (partition-sliced; each structure is
    // touched only by the dispatch owning the partition during a wave's
    // compute phase, and by the serial barrier otherwise) ---
    /** Active source slots per path (incremental activation counter). */
    std::vector<std::uint32_t> path_active_count_;
    /** Whether the path currently sits in its partition's worklist. */
    std::vector<std::uint8_t> path_in_worklist_;
    /** Per partition: paths with (possibly) active slots; swept lazily
     *  each local round, so active-path collection is O(active paths)
     *  instead of O(partition slots). */
    std::vector<std::vector<PathId>> partition_worklist_;
    /** Per partition: vertices whose master version bumped since the
     *  partition last absorbed them (fed at the wave barrier; consumed
     *  at dispatch start instead of a full slot-range version scan). */
    std::vector<std::vector<VertexId>> stale_queue_;
    /** Per partition: dirty-slot worklist for the mirror-push phase. */
    std::vector<storage::SlotDirtySet> partition_dirty_;

    // --- fault tolerance state (allocated only when a FaultPlan is
    // active; ft_enabled_ == false keeps every hot-path hook a single
    // branch) ---
    /** True when options_.faults is non-empty. */
    bool ft_enabled_ = false;
    gpusim::FaultInjector injector_;
    /** Per (device, smx) kernel-cycle multiplier (armed stalls). */
    std::vector<double> smx_stall_factor_;
    /** Shadow copy of V_val at the last checkpoint epoch. */
    std::vector<Value> ckpt_v_;
    /** Shadow copy of E_val at the last checkpoint epoch. */
    std::vector<Value> ckpt_e_;
    /** Masters mutated since the last epoch (flag + journal). */
    std::vector<std::uint8_t> ckpt_v_dirty_;
    std::vector<VertexId> ckpt_v_dirty_list_;
    /** Partitions whose E_val slice was dispatched since the epoch. */
    std::vector<std::uint8_t> ckpt_part_dirty_;
    std::vector<PartitionId> ckpt_part_dirty_list_;
    /** Wave of the last checkpoint epoch. */
    std::uint64_t ckpt_wave_ = 0;
    /** Device-loss recoveries performed this run. */
    std::size_t recoveries_ = 0;
    /** pollFaults scratch. */
    std::vector<DeviceId> due_loss_;
    std::vector<gpusim::SmxStallFault> due_stalls_;

    /** Host workers for the wave compute phase (created on first use). */
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace digraph::engine
