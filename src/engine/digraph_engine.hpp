/**
 * @file
 * The DiGraph engine (Section 3): path-based asynchronous iterative
 * directed-graph processing over the simulated multi-GPU platform.
 *
 * Since the layered-substrate refactor (DESIGN.md §12) the engine is a
 * thin coordinator over four layers:
 *
 *  - EngineSubstrate (shared, immutable): the preprocessing result, the
 *    PathLayout topology, the ReplicaSync indexes, and the Dispatcher
 *    dependency structures — shareable by concurrent jobs;
 *  - ValuePlane (per job): all mutable value/activation/checkpoint
 *    state;
 *  - Transport (per job): the simulated platform, residency and every
 *    byte-moving operation including the fault/retry path.
 *
 * run() wires them together: dependency-aware wave dispatching,
 * per-SMX path scheduling, master/mirror batched synchronization, proxy
 * vertices, and work stealing, producing a full metrics::RunReport.
 *
 * Activation is tracked per *mirror slot*: a set flag means "this replica
 * holds a state its on-path out-edge has not propagated yet". Within a
 * round a processed edge clears its source flag and immediately sets its
 * destination flag, which realizes the paper's within-round propagation
 * along the whole path; in VertexAsync mode (DiGraph-t) sources are read
 * from a round-start snapshot and new flags are applied at round end, so
 * state crosses one hop per round, as in traditional async engines.
 *
 * Host execution model (see DESIGN.md "Host execution model"): the
 * partitions dispatched in one wave run *concurrently* on host worker
 * threads. Each dispatch reads only wave-start shared state (masters,
 * versions) plus its own partition-sliced state, buffers its master
 * merges in a private overlay, and emits a DispatchOutcome; at the wave
 * barrier the outcomes are committed serially in dispatch order (master
 * merge replay, version bumps, activation fan-out, simulated platform
 * costs), so results are bit-identical for every engine_threads value.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

#include "algorithms/algorithm.hpp"
#include "engine/options.hpp"
#include "engine/substrate.hpp"
#include "engine/wave_kernel.hpp"
#include "engine/transport.hpp"
#include "engine/value_plane.hpp"
#include "gpusim/platform.hpp"
#include "graph/digraph.hpp"
#include "metrics/counter_registry.hpp"
#include "metrics/run_report.hpp"
#include "metrics/trace.hpp"
#include "partition/preprocess.hpp"
#include "storage/path_storage.hpp"

namespace digraph::engine {

struct WaveKernels;

/**
 * Everything one partition dispatch produces during the parallel
 * compute phase of a wave, committed at the wave barrier.
 */
struct DispatchOutcome
{
    PartitionId partition = kInvalidPartition;
    /** Vertices whose mirrors were stale at dispatch start (sorted;
     *  drives the ring master-refresh pulls at replay). */
    std::vector<VertexId> stale_vertices;
    /** Per local round, per work-stealing group: kernel cycles. */
    std::vector<std::vector<double>> round_group_cycles;
    /** Master push log in generation order (replayed via
     *  Algorithm::mergeMaster against the true masters). Left empty by
     *  delta-merge kernels, which commit the overlay directly. */
    std::vector<std::pair<VertexId, Value>> pushes;
    /** Privately merged master values (wave-start master + own
     *  pushes); the barrier compares these against the committed
     *  masters to decide whether this partition's own mirrors went
     *  stale (another wave member also pushed the vertex). Under the
     *  delta merge this IS what gets committed. */
    std::unordered_map<VertexId, Value> overlay;
    /** Activation-worthy master changes accumulated across the local
     *  rounds (sorted/deduplicated; delta-merge kernels only — the
     *  ordered replay recomputes this from the push log). */
    std::vector<VertexId> changed;
    /** Mirror pushes performed (= pushes.size() when the log is kept;
     *  still counted when it is not). */
    std::uint64_t push_count = 0;
    /** Partition hit max_local_rounds; redispatch it. */
    bool reactivate_self = false;
    /** Global-load bytes that could not be accounted during compute
     *  (partition had no resident device at wave start). */
    std::uint64_t deferred_load_bytes = 0;
    // Work counters merged into the report at the barrier.
    std::uint64_t edge_processings = 0;
    std::uint64_t vertex_updates = 0;
    std::uint64_t local_rounds = 0;
    std::uint64_t loaded_vertices = 0;
    std::uint64_t global_load_bytes = 0;
};

/**
 * Path-based iterative directed-graph processing engine.
 *
 * One engine instance is bound to a graph; run() may be called repeatedly
 * with different algorithms (all run state is reset).
 */
class DiGraphEngine
{
  public:
    /** Preprocess @p g per @p options (the graph must outlive the
     *  engine). */
    explicit DiGraphEngine(const graph::DirectedGraph &g,
                           EngineOptions options = {});

    /**
     * Adopt a prebuilt preprocessing result for @p g instead of running
     * the pipeline (evolving-graph incremental ingestion: the caller
     * produced @p pre via preprocess() or appendPreprocess()). Only the
     * substrate indexes and storage arrays are built here.
     * @pre pre covers exactly g's edge set (checked).
     */
    DiGraphEngine(const graph::DirectedGraph &g,
                  partition::Preprocessed pre, EngineOptions options);

    /**
     * Share a prebuilt substrate (concurrent jobs over one immutable
     * Preprocessed — see JobManager): only this job's ValuePlane and
     * Transport are allocated.
     * @pre sub was built for @p g (edge count checked).
     */
    DiGraphEngine(const graph::DirectedGraph &g,
                  std::shared_ptr<const EngineSubstrate> sub,
                  EngineOptions options);

    /** Execute @p algo to convergence; returns the full report.
     *  @param warm Optional warm start (evolving-graph reruns): vertex
     *  states resume from the given vector, edge caches are initialized
     *  consistently via Algorithm::warmEdgeState(), and only the given
     *  seed vertices start active. */
    metrics::RunReport run(const algorithms::Algorithm &algo,
                           const WarmStart *warm = nullptr);

    /** The preprocessing result (paths, DAG sketch, partitions). */
    const partition::Preprocessed &preprocessed() const { return pre_; }

    /** The shared substrate (pass to other engines to share it). */
    const std::shared_ptr<const EngineSubstrate> &substrate() const
    {
        return sub_;
    }

    /** Preprocessing wall-clock seconds. */
    double preprocessSeconds() const { return pre_.timings.total(); }

    /** Engine options in effect. */
    const EngineOptions &options() const { return options_; }

    /** Attach (or detach, with nullptr) a trace sink for subsequent
     *  run() calls. Tracing never changes results; a null sink keeps
     *  every instrumentation point a single branch. */
    void setTrace(metrics::TraceSink *sink) { options_.trace = sink; }

    /** Attach (or detach, with nullptr) a wave-boundary scheduling
     *  hook for subsequent run() calls (see engine/wave_control.hpp).
     *  Parking at a boundary and thread reallocation never change
     *  results. */
    void setWaveControl(WaveControl *hook)
    {
        options_.wave_control = hook;
    }

    /** Override the worker-thread budget for subsequent run() calls
     *  (0 = hardware concurrency). The inter-job scheduler sets a
     *  job's initial allocation here; mid-run changes flow through
     *  WaveControl::onWaveBoundary(). Never changes results. */
    void setEngineThreads(std::size_t threads)
    {
        options_.engine_threads = threads;
    }

    /** Counter totals of the most recent run (always equal to the
     *  matching RunReport aggregate fields). */
    const metrics::CounterRegistry &counters() const { return counters_; }

    /** The simulated platform state of the most recent run. */
    const gpusim::Platform &platform() const
    {
        return transport_.platform();
    }

    /** Per-partition dispatch counts of the most recent run. */
    const std::vector<std::uint32_t> &partitionProcessCounts() const
    {
        return partition_process_count_;
    }

    /** Dependency group of partition @p q (introspection / tests). */
    SccId partitionGroup(PartitionId q) const { return sched_.group(q); }

    /** Direct precursor partitions of @p q (introspection / tests). */
    const std::vector<PartitionId> &
    partitionPrecursors(PartitionId q) const
    {
        return sched_.precursors(q);
    }

    /**
     * Validate the incremental activation bookkeeping (tests): per-path
     * active-slot counters must equal a full recount of slot flags, and
     * every path with a nonzero counter must sit in its partition's
     * worklist. O(total slots) — debug/tests only.
     */
    bool activationBookkeepingConsistent() const
    {
        return plane_.bookkeepingConsistent(pre_);
    }

    /** Worker threads run() will use (resolves engine_threads == 0). */
    std::size_t engineThreads() const;

    /** Host bytes of this job's private state (ValuePlane + transport
     *  bookkeeping) — what one extra concurrent job costs on a shared
     *  substrate. */
    std::size_t jobStateBytes() const;

    /** Result of the post-run invariant checker (see
     *  postRunInvariants()). */
    struct InvariantReport
    {
        /** No edge would still move its destination by more than the
         *  residual slack at the converged state. */
        bool residual_ok = true;
        /** No mirror holds an un-pushed value (hasPush false
         *  everywhere). */
        bool coherence_ok = true;
        /** Activation bookkeeping recounts cleanly and the engine is
         *  quiescent (no active slot or partition). */
        bool activation_ok = true;
        /** Largest |destination movement| any edge could still cause. */
        double max_residual = 0.0;
        /** Edges exceeding the slack. */
        std::uint64_t residual_violations = 0;
        /** First violation, human-readable (empty when ok). */
        std::string detail;

        bool
        ok() const
        {
            return residual_ok && coherence_ok && activation_ok;
        }
    };

    /**
     * Post-run invariant checker (debug/CI): re-examines the converged
     * state of the most recent run() — convergence residual (re-running
     * processEdge on a copy must not move any destination by more than
     * @p residual_slack * epsilon), master/mirror coherence, and an
     * activation recount. Used standalone by tests and, with
     * EngineOptions::verify_invariants, inside run() (panic on
     * violation).
     */
    InvariantReport
    postRunInvariants(const algorithms::Algorithm &algo,
                      double residual_slack = 64.0);

  private:
    /** The wave body templates read/write the engine internals
     *  directly (single shared body for the specialized kernels and
     *  the generic fallback — see wave_body.hpp). */
    friend struct WaveKernels;

    /** Commit one outcome's buffered master merges at the wave barrier
     *  per the resolved kernel: ordered push replay (bitwise family /
     *  fallback) happens here; under the delta merge the values were
     *  already stored by commitDeltas() and only the bookkeeping
     *  (checkpoint journal, version bumps, fan-out) runs. */
    void replayDispatch(DispatchOutcome &outcome,
                        metrics::RunReport &report);

    /** Lock-free parallel commit of a delta-merge outcome: store the
     *  overlay values into the masters. Race-free without locks because
     *  the chunk's partitions are vertex-disjoint by construction. */
    void commitDeltas(DispatchOutcome &outcome);

    // --- fault tolerance (implemented in fault_recovery.cpp; all
    // methods are serial-phase only — see DESIGN.md §10) ---

    /** Take the epoch-0 checkpoint (full V_val + E_val copy) and reset
     *  the recovery budget. Called from run() after storage
     *  initialization (the injector is armed by Transport::beginRun). */
    void initFaultTolerance();

    /** Fire discrete faults due at the current makespan: device losses
     *  trigger checkpoint-restore recovery, SMX stalls arm their cycle
     *  multiplier. Called at every wave start. */
    void pollFaults(std::uint64_t wave, metrics::RunReport &report);

    /** Advance the checkpoint epoch when the interval elapsed: flush
     *  dirty masters/E_val slices into the shadow arrays, charging the
     *  simulated flush traffic. Called at every wave end. */
    void maybeCheckpoint(std::uint64_t wave, metrics::RunReport &report);

    /** Degrade-and-redistribute recovery from losing @p dead: roll every
     *  dirty master/E_val slice back to the checkpoint, clear the
     *  volatile run state, re-activate all source slots, and drop all
     *  device residency so the DAG dispatcher restripes partitions over
     *  the survivors. Hard-aborts past max_recoveries or when no device
     *  survives. */
    void recoverFromDeviceLoss(DeviceId dead, std::uint64_t wave,
                               metrics::RunReport &report);

    const graph::DirectedGraph &g_;
    EngineOptions options_;
    /** Shared immutable substrate (owned or adopted). */
    std::shared_ptr<const EngineSubstrate> sub_;
    /** Convenience references into the substrate layers. */
    const partition::Preprocessed &pre_;
    const ReplicaSync &sync_;
    const Dispatcher &sched_;
    /** This job's mutable state. */
    ValuePlane plane_;
    /** This job's platform/transfer state. */
    Transport transport_;
    /** Typed counters of the current run (mutated only by the serial
     *  scheduler/barrier thread; exported into the RunReport at run
     *  end). */
    metrics::CounterRegistry counters_;
    /** Trace sink of the current run (= options_.trace; nullptr when
     *  tracing is disabled). */
    metrics::TraceSink *trace_ = nullptr;
    /** Wave context for compute-phase trace events (written by the
     *  serial scheduler before the parallel phase, read-only during
     *  it). */
    std::uint64_t trace_wave_ = 0;
    double trace_wave_sim_ = 0.0;
    std::vector<std::uint32_t> partition_process_count_;

    /** Wave kernel resolved for the current run (compile-time
     *  specialized body or generic fallback). */
    ResolvedKernel kernel_;
    /** ctx pointer the kernel entry points receive: the owned policy
     *  copy (specialized) or the Algorithm itself (fallback). */
    const void *kernel_ctx_ = nullptr;

    /** True when options_.faults is non-empty or a durable store is
     *  attached (every hot-path fault hook stays a single branch when
     *  false). */
    bool ft_enabled_ = false;
    /** Durable-store version the next value flush chains from: the
     *  topology parent before the first flush, then the last flushed
     *  version (see EngineOptions::store). */
    std::uint64_t store_version_ = 0;
    /** True while the on-disk version store_version_ is byte-identical
     *  to the in-memory checkpoint shadow — i.e. the last flush
     *  succeeded. Device-loss recovery substitutes the disk copy only
     *  then; after a failed flush the disk lags the shadow and must be
     *  ignored. */
    bool store_synced_ = false;
    /** True once any value flush of this run committed; until then
     *  every flush writes all partitions (a dirty-list flush may only
     *  chain on a parent that holds this run's values). */
    bool store_values_committed_ = false;
    /** Dirty partitions of checkpoint epochs whose flush failed (or is
     *  still pending), merged into the next flush's dirty set so a
     *  failed commit can never mark them clean against a stale
     *  parent shard. Flag array mirrors membership. */
    std::vector<PartitionId> store_backlog_;
    std::vector<std::uint8_t> store_backlog_flag_;
    /** Device-loss recoveries performed this run. */
    std::size_t recoveries_ = 0;
    /** pollFaults scratch. */
    std::vector<DeviceId> due_loss_;
    std::vector<gpusim::SmxStallFault> due_stalls_;

    /** Host workers for the wave compute phase (created on first use). */
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace digraph::engine
