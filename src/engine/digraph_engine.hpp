/**
 * @file
 * The DiGraph engine (Section 3): path-based asynchronous iterative
 * directed-graph processing over the simulated multi-GPU platform.
 *
 * Pipeline: the constructor runs the CPU preprocessing (path
 * decomposition, merge, dependency graph, DAG sketch, partitions) and
 * materializes the four-array storage; run() executes one algorithm to
 * convergence with dependency-aware dispatching, per-SMX path scheduling,
 * master/mirror batched synchronization, proxy vertices, and work
 * stealing, producing a full metrics::RunReport.
 *
 * Activation is tracked per *mirror slot*: a set flag means "this replica
 * holds a state its on-path out-edge has not propagated yet". Within a
 * round a processed edge clears its source flag and immediately sets its
 * destination flag, which realizes the paper's within-round propagation
 * along the whole path; in VertexAsync mode (DiGraph-t) sources are read
 * from a round-start snapshot and new flags are applied at round end, so
 * state crosses one hop per round, as in traditional async engines.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "engine/options.hpp"
#include "gpusim/platform.hpp"
#include "graph/digraph.hpp"
#include "metrics/run_report.hpp"
#include "partition/preprocess.hpp"
#include "storage/path_storage.hpp"

namespace digraph::engine {

/** Warm-start input for run(): converged states from a previous run
 *  plus the vertices whose neighborhood changed. */
struct WarmStart
{
    /** Vertex states to resume from (size = numVertices). */
    const std::vector<Value> *vertex_state = nullptr;
    /** Explicit per-edge caches (size = numEdges); when null they are
     *  derived via Algorithm::warmEdgeState(). */
    const std::vector<Value> *edge_state = nullptr;
    /** Activation seed (e.g. sources of inserted edges). */
    const std::vector<VertexId> *active_vertices = nullptr;
};

/**
 * Path-based iterative directed-graph processing engine.
 *
 * One engine instance is bound to a graph; run() may be called repeatedly
 * with different algorithms (all run state is reset).
 */
class DiGraphEngine
{
  public:
    /** Preprocess @p g per @p options (the graph must outlive the
     *  engine). */
    explicit DiGraphEngine(const graph::DirectedGraph &g,
                           EngineOptions options = {});

    /** Execute @p algo to convergence; returns the full report.
     *  @param warm Optional warm start (evolving-graph reruns): vertex
     *  states resume from the given vector, edge caches are initialized
     *  consistently via Algorithm::warmEdgeState(), and only the given
     *  seed vertices start active. */
    metrics::RunReport run(const algorithms::Algorithm &algo,
                           const WarmStart *warm = nullptr);

    /** The preprocessing result (paths, DAG sketch, partitions). */
    const partition::Preprocessed &preprocessed() const { return pre_; }

    /** Preprocessing wall-clock seconds. */
    double preprocessSeconds() const { return pre_.timings.total(); }

    /** Engine options in effect. */
    const EngineOptions &options() const { return options_; }

    /** The simulated platform state of the most recent run. */
    const gpusim::Platform &platform() const { return platform_; }

    /** Per-partition dispatch counts of the most recent run. */
    const std::vector<std::uint32_t> &partitionProcessCounts() const
    {
        return partition_process_count_;
    }

    /** Dependency group of partition @p q (introspection / tests). */
    SccId partitionGroup(PartitionId q) const
    {
        return partition_group_[q];
    }

    /** Direct precursor partitions of @p q (introspection / tests). */
    const std::vector<PartitionId> &
    partitionPrecursors(PartitionId q) const
    {
        return precursor_parts_[q];
    }

  private:
    void buildIndexes();
    std::vector<std::uint8_t> blockedGroups() const;
    PartitionId choosePartition(const std::vector<std::uint64_t> &stamp,
                                std::uint64_t wave,
                                const std::vector<std::uint8_t> *blocked);
    DeviceId chooseDevice(PartitionId p) const;
    double ensureResident(PartitionId p, DeviceId dev, double issue_time,
                          metrics::RunReport &report);
    void processPartition(PartitionId p, const algorithms::Algorithm &algo,
                          metrics::RunReport &report);

    /** True when the slot is a source position (not a path tail). */
    bool isSrcSlot(std::uint64_t slot) const { return is_src_slot_[slot]; }

    const graph::DirectedGraph &g_;
    EngineOptions options_;
    partition::Preprocessed pre_;
    storage::PathStorage storage_;
    gpusim::Platform platform_;

    // --- static indexes (built once) ---
    /** Path owning each E_idx slot. */
    std::vector<PathId> path_of_slot_;
    /** Whether each slot is a source position (not a path tail). */
    std::vector<std::uint8_t> is_src_slot_;
    /** Partition of each path. */
    std::vector<PartitionId> partition_of_path_;
    /** CSR: vertex -> its occurrence slots across all paths. */
    std::vector<std::uint64_t> occur_offsets_;
    std::vector<std::uint64_t> occur_slots_;
    /** CSR: vertex -> partitions holding one of its source occurrences
     *  (deduplicated; used for activation fan-out). */
    std::vector<std::uint64_t> consumer_offsets_;
    std::vector<PartitionId> consumer_parts_;
    /** Per-partition precursor partitions (deduped, from the DAG). */
    std::vector<std::vector<PartitionId>> precursor_parts_;
    /** SCC group of each partition in the partition dependency graph:
     *  partitions of one group form a dependency cycle and iterate
     *  together; a group is *ready* when no group transitively upstream
     *  of it holds an active partition (checked at wave start). */
    std::vector<SccId> partition_group_;
    /** Condensed DAG over partition groups. */
    graph::DirectedGraph group_dag_;
    /** Topological order of the group DAG. */
    std::vector<VertexId> group_topo_;
    /** Per-partition byte footprint. */
    std::vector<std::size_t> partition_bytes_;
    /** Pri(p) scaling factor alpha = 1 / (maxAvgDeg * maxN). */
    double pri_alpha_ = 1.0;

    // --- per-run state ---
    /** Chain activation within the current dispatch (set by processed
     *  edges and local refreshes). */
    std::vector<std::uint8_t> slot_active_;
    /** Master change counter per vertex; a source slot whose seen
     *  version lags must re-propagate (cross-partition activation
     *  without per-slot broadcasts). */
    std::vector<std::uint32_t> master_version_;
    /** Last master version each source slot has propagated. */
    std::vector<std::uint32_t> slot_seen_version_;
    std::vector<std::uint8_t> partition_active_;
    std::vector<std::uint32_t> partition_process_count_;
    std::vector<DeviceId> partition_device_; // last residence
    std::vector<double> partition_done_;      // last dispatch completion
    std::vector<double> partition_msg_ready_; // last activation arrival
    /** Device that last wrote each vertex's master (buffered results stay
     *  in that device's global memory; other devices fetch via host). */
    std::vector<DeviceId> master_writer_;
    std::vector<std::vector<PartitionId>> device_resident_; // LRU order
    std::vector<std::size_t> device_resident_bytes_;
};

} // namespace digraph::engine
