/**
 * @file
 * Compile-time wave-kernel registry (DESIGN.md §14).
 *
 * The wave compute phase is a single body template (wave_body.hpp)
 * instantiated per (algorithm kernel policy x execution mode x trace
 * on/off x push-log on/off). resolveWaveKernel() maps a concrete
 * Algorithm plus the engine options to one such instantiation ONCE per
 * run: the hot loop then calls the algorithm's per-edge math through an
 * inlined policy copy — zero virtual dispatch per edge, dead feature
 * branches (tracing, unused weight/out-degree loads, the VertexAsync
 * snapshot machinery) compiled out.
 *
 * Resolution is gated on Algorithm::kernelTag(): a subclass that
 * overrides processing semantics must return "" (contract documented on
 * kernelTag()) and falls back to the generic instantiation, which keeps
 * the same body but calls through the virtual interface.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "engine/options.hpp"

namespace digraph::algorithms {
class Algorithm;
} // namespace digraph::algorithms

namespace digraph::engine {

class DiGraphEngine;
struct DispatchOutcome;

/**
 * One resolved wave kernel: the compute/merge entry points of the
 * selected body instantiation plus the owned policy copy they run on.
 *
 * The `ctx` argument of both entry points is the kernel policy copy for
 * specialized kernels (ResolvedKernel::policy) and the Algorithm itself
 * for the generic fallback — the engine passes whichever it stored at
 * resolution (DiGraphEngine::kernel_ctx_).
 */
struct ResolvedKernel
{
    using ComputeFn = DispatchOutcome (*)(DiGraphEngine &, PartitionId,
                                          const void *ctx);
    using MergeFn = void (*)(DiGraphEngine &, DispatchOutcome &,
                             const void *ctx,
                             std::vector<VertexId> &changed);

    /** Kernel name ("pagerank", ...; "generic:<name>" = fallback). */
    std::string name = "generic";
    /** Policy-inlined compute loop (no virtual calls per edge). */
    bool specialized = false;
    /** Masters commit via the lock-free parallel delta merge at the
     *  barrier (accumulative family with EngineOptions::delta_merge);
     *  otherwise the ordered serial replay runs. */
    bool delta_merge = false;
    /** Parallel compute phase of one partition dispatch. */
    ComputeFn compute = nullptr;
    /** Ordered master-merge replay of one outcome's push log (unused
     *  when delta_merge). */
    MergeFn ordered_merge = nullptr;
    /** Owned copy of the kernel policy (null for the fallback). */
    std::shared_ptr<const void> policy;
};

/**
 * Resolve @p algo against the kernel registry under @p options.
 * @param trace_on Whether a trace sink is attached for this run (selects
 *        the TraceOn body so a disabled trace costs nothing at all).
 * Never fails: unknown algorithms get the generic fallback kernel.
 */
ResolvedKernel resolveWaveKernel(const algorithms::Algorithm &algo,
                                 const EngineOptions &options,
                                 bool trace_on);

} // namespace digraph::engine
