/**
 * @file
 * Cooperative wave-boundary control: the hook through which an
 * inter-job scheduler (GraphService) steers a running DiGraphEngine.
 *
 * DiGraphEngine::run() consults the hook once per dispatch wave, right
 * after the wave's merge barrier committed every outcome — the only
 * point where the job's state is fully consistent and *nothing is in
 * flight*. The hook may block: the engine simply parks on its calling
 * thread. No snapshot is taken because none is needed — the job's
 * ValuePlane IS its state, so a parked run resumes bit-identical to an
 * uninterrupted one (the same guarantee that makes results independent
 * of engine_threads extends to arbitrary pauses between waves).
 *
 * The return value is the worker-thread budget for the next wave,
 * which is how the inter-job level reallocates session threads across
 * running jobs dynamically (DESIGN.md §15). Thread-count changes never
 * change results — chunk composition and the barrier replay order are
 * thread-count independent by construction (DESIGN.md §6).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace digraph::engine {

/**
 * Wave-boundary scheduling hook (see EngineOptions::wave_control).
 * Implemented by GraphService; null disables the whole mechanism (the
 * engine runs to convergence uninterrupted, as before).
 */
class WaveControl
{
  public:
    virtual ~WaveControl() = default;

    /**
     * Called after wave @p wave's merge barrier. May block (the job is
     * preempted until the scheduler grants it a new quantum).
     * @param partition_active The job's partition worklist flags at the
     *        boundary — the inter-job scheduler's co-scheduling signal
     *        (jobs with overlapping worklists share substrate cache
     *        residency when run in the same quantum).
     * @return Worker-thread budget for the next wave; 0 keeps the
     *         current budget.
     */
    virtual std::size_t
    onWaveBoundary(std::uint64_t wave,
                   const std::vector<std::uint8_t> &partition_active) = 0;
};

} // namespace digraph::engine
