/**
 * @file
 * Evolving directed graphs — the extension the paper lists as future
 * work ("extend our approach to efficiently support the analysis of
 * evolving directed graph on GPUs", Section 6).
 *
 * The engine maintains an owned graph and the converged state of the
 * last run per algorithm. A batch of edge insertions triggers an
 * incremental re-run on two levels:
 *
 *  - *Ingestion* is incremental: the CSR is extended by a delta-aware
 *    GraphBuilder::append (no O(m log m) re-sort of existing edges) and
 *    the path pipeline is extended by appendPreprocess() — previous
 *    paths, DAG-sketch layers and partition assignments are reused
 *    verbatim, only the batch edges are decomposed, and the
 *    degree-sorted adjacency cache is patched rather than rebuilt.
 *    EvolvingOptions::incremental = false restores the pre-incremental
 *    full per-batch rebuild (the benchmark baseline).
 *
 *  - The *algorithm* resumes from the previous fixed point: existing
 *    edges get warm-consistent caches (Algorithm::warmEdgeState) so no
 *    mass is double-counted, and only the insertion endpoints start
 *    active. Edge classification (inserted vs. existing) comes straight
 *    from the append's delta journal — O(|batch|), no O(m) hasEdge
 *    probes, and the pre-append graph is never kept alive. On monotone
 *    and delta-accumulative algorithms this converges to the same fixed
 *    point as a cold run while touching only the affected region.
 *
 * Algorithms whose states can move against the propagation direction
 * under insertions (KCore) report supportsIncremental() == false and
 * fall back to a cold run automatically.
 */

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/digraph_engine.hpp"
#include "graph/builder.hpp"

namespace digraph::engine {

/** Ingestion-policy knobs of the evolving engine. */
struct EvolvingOptions
{
    /** Extend the preprocessing incrementally per batch (false = full
     *  per-batch rebuild, the pre-incremental behavior, kept as the
     *  benchmark baseline). */
    bool incremental = true;
    /** Structure-quality guard: once the edges appended since the last
     *  full pipeline run exceed this fraction of the graph, the next
     *  batch triggers a full re-decomposition (append-only structures
     *  under-approximate path merges and sketch dependencies, which
     *  costs dispatch quality, never correctness). <= 0 disables the
     *  guard. */
    double full_rebuild_fraction = 0.25;
};

/** Report of one evolving-graph step. */
struct EvolvingStepReport
{
    /** The algorithm run report. */
    metrics::RunReport run;
    /** Whether the warm start was used (false = cold fallback). */
    bool warm = false;
    /** Whether this step's structures came from the incremental append
     *  pipeline (false = full pipeline run). */
    bool incremental = false;
    /** Batch edges actually inserted (after dedupe/self-loop/
     *  already-present normalization). */
    std::size_t inserted_edges = 0;
    /** Seconds extending (or rebuilding) the CSR graph. */
    double graph_seconds = 0.0;
    /** Seconds in the preprocessing pipeline (appendPreprocess or full
     *  preprocess). */
    double preprocess_seconds = 0.0;
    /** Seconds materializing the engine over the preprocessed result
     *  (storage arrays + dispatch indexes). */
    double engine_seconds = 0.0;
    /** Paths reused verbatim / freshly decomposed (incremental steps). */
    PathId reused_paths = 0;
    PathId new_paths = 0;

    /** Total ingestion seconds of this step (everything but the run). */
    double
    ingestSeconds() const
    {
        return graph_seconds + preprocess_seconds + engine_seconds;
    }
};

/**
 * Engine wrapper for insert-only evolving directed graphs.
 */
class EvolvingEngine
{
  public:
    /** Take ownership of the initial graph snapshot. */
    explicit EvolvingEngine(graph::DirectedGraph initial,
                            EngineOptions options = {},
                            EvolvingOptions evolve = {});

    /** Current graph snapshot. */
    const graph::DirectedGraph &graph() const { return graph_; }

    /** Run @p algo on the current snapshot (cold), remembering its
     *  result for later warm re-runs. */
    EvolvingStepReport run(const algorithms::Algorithm &algo);

    /**
     * Insert @p new_edges (first-occurrence deduplicated, self-loops and
     * already-existing (src, dst) pairs dropped) and re-run @p algo,
     * warm-started from its previous fixed point when the algorithm
     * supports it.
     */
    EvolvingStepReport insertAndRun(
        const algorithms::Algorithm &algo,
        const std::vector<graph::Edge> &new_edges);

    /** Number of insertion batches applied so far. */
    std::size_t batchesApplied() const { return batches_; }

    /** The current preprocessing structures (introspection / tests). */
    const partition::Preprocessed &preprocessed() const { return pre_; }

    /** The current inner engine (introspection / tests). */
    const DiGraphEngine &engine() const { return *engine_; }

    /** Ingestion policy in effect. */
    const EvolvingOptions &evolvingOptions() const
    {
        return evolve_options_;
    }

  private:
    /** Full pipeline + engine rebuild for the current graph. @p cache
     *  optionally seeds the adjacency scratch (must already match the
     *  current graph). */
    void rebuildFull(std::shared_ptr<partition::SortedAdjacency> cache,
                     EvolvingStepReport *step);

    graph::DirectedGraph graph_;
    EngineOptions options_;
    EvolvingOptions evolve_options_;
    /** Master copy of the preprocessing structures; appendPreprocess
     *  extends it in place, engines get a copy. */
    partition::Preprocessed pre_;
    std::unique_ptr<DiGraphEngine> engine_;
    /** Last converged state per algorithm name. */
    std::unordered_map<std::string, std::vector<Value>> last_state_;
    std::size_t batches_ = 0;
    /** Edges appended since the last full pipeline run (feeds the
     *  full_rebuild_fraction guard). */
    std::size_t appended_since_full_ = 0;
};

} // namespace digraph::engine
