/**
 * @file
 * Evolving directed graphs — the extension the paper lists as future
 * work ("extend our approach to efficiently support the analysis of
 * evolving directed graph on GPUs", Section 6).
 *
 * The engine maintains an owned graph and the converged state of the
 * last run per algorithm. A batch of edge insertions triggers an
 * incremental re-run: the path pipeline is re-executed on the updated
 * graph (preprocessing is cheap and parallel), but the *algorithm*
 * resumes from the previous fixed point — existing edges are given
 * warm-consistent caches (Algorithm::warmEdgeState) so no mass is
 * double-counted, and only the insertion endpoints start active. On
 * monotone and delta-accumulative algorithms this converges to the same
 * fixed point as a cold run while touching only the affected region.
 *
 * Algorithms whose states can move against the propagation direction
 * under insertions (KCore) report supportsIncremental() == false and
 * fall back to a cold run automatically.
 */

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/digraph_engine.hpp"
#include "graph/builder.hpp"

namespace digraph::engine {

/** Report of one evolving-graph step. */
struct EvolvingStepReport
{
    /** The algorithm run report. */
    metrics::RunReport run;
    /** Whether the warm start was used (false = cold fallback). */
    bool warm = false;
    /** Preprocessing seconds of the rebuild. */
    double preprocess_seconds = 0.0;
};

/**
 * Engine wrapper for insert-only evolving directed graphs.
 */
class EvolvingEngine
{
  public:
    /** Take ownership of the initial graph snapshot. */
    explicit EvolvingEngine(graph::DirectedGraph initial,
                            EngineOptions options = {});

    /** Current graph snapshot. */
    const graph::DirectedGraph &graph() const { return graph_; }

    /** Run @p algo on the current snapshot (cold), remembering its
     *  result for later warm re-runs. */
    EvolvingStepReport run(const algorithms::Algorithm &algo);

    /**
     * Insert @p new_edges (deduplicated against the existing edge set)
     * and re-run @p algo, warm-started from its previous fixed point
     * when the algorithm supports it.
     */
    EvolvingStepReport insertAndRun(
        const algorithms::Algorithm &algo,
        const std::vector<graph::Edge> &new_edges);

    /** Number of insertion batches applied so far. */
    std::size_t batchesApplied() const { return batches_; }

  private:
    void rebuild();

    graph::DirectedGraph graph_;
    EngineOptions options_;
    std::unique_ptr<DiGraphEngine> engine_;
    /** Last converged state per algorithm name. */
    std::unordered_map<std::string, std::vector<Value>> last_state_;
    std::size_t batches_ = 0;
};

} // namespace digraph::engine
