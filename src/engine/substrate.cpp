#include "engine/substrate.hpp"

#include "storage/durable_store.hpp"

namespace digraph::engine {

std::shared_ptr<const EngineSubstrate>
EngineSubstrate::build(const graph::DirectedGraph &g,
                       partition::Preprocessed pre)
{
    auto sub = std::make_shared<EngineSubstrate>();
    sub->pre = std::move(pre);
    sub->num_vertices = g.numVertices();
    sub->layout =
        std::make_shared<const storage::PathLayout>(sub->pre.paths);
    sub->sync.build(sub->pre, *sub->layout, g.numVertices());
    sub->dispatcher.build(sub->pre, sub->sync, *sub->layout,
                          g.numVertices());
    return sub;
}

std::uint64_t
EngineSubstrate::saveTo(storage::DurableStore &store,
                        const graph::DirectedGraph &g,
                        std::uint64_t parent) const
{
    return store.commitTopology(g, pre, parent);
}

std::shared_ptr<const EngineSubstrate>
EngineSubstrate::openFrom(storage::DurableStore &store,
                          const graph::DirectedGraph &g,
                          std::uint64_t version)
{
    if (version == 0) {
        version = store.recoverVersion(&g);
        if (version == 0)
            return nullptr;
    }
    auto pre = store.loadTopology(version, g);
    if (!pre)
        return nullptr;
    return build(g, std::move(*pre));
}

std::size_t
EngineSubstrate::memoryBytes() const
{
    return pre.memoryBytes() + (layout ? layout->memoryBytes() : 0) +
           sync.memoryBytes() + dispatcher.memoryBytes();
}

} // namespace digraph::engine
