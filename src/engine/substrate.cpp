#include "engine/substrate.hpp"

namespace digraph::engine {

std::shared_ptr<const EngineSubstrate>
EngineSubstrate::build(const graph::DirectedGraph &g,
                       partition::Preprocessed pre)
{
    auto sub = std::make_shared<EngineSubstrate>();
    sub->pre = std::move(pre);
    sub->num_vertices = g.numVertices();
    sub->layout =
        std::make_shared<const storage::PathLayout>(sub->pre.paths);
    sub->sync.build(sub->pre, *sub->layout, g.numVertices());
    sub->dispatcher.build(sub->pre, sub->sync, *sub->layout,
                          g.numVertices());
    return sub;
}

std::size_t
EngineSubstrate::memoryBytes() const
{
    return pre.memoryBytes() + (layout ? layout->memoryBytes() : 0) +
           sync.memoryBytes() + dispatcher.memoryBytes();
}

} // namespace digraph::engine
