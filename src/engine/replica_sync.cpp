#include "engine/replica_sync.hpp"

#include <algorithm>

#include "engine/replica_sync_impl.hpp"
#include "engine/value_plane.hpp"

namespace digraph::engine {

void
ReplicaSync::build(const partition::Preprocessed &pre,
                   const storage::PathLayout &layout,
                   VertexId num_vertices)
{
    const PathId np = pre.paths.numPaths();
    const PartitionId nparts = pre.numPartitions();

    // Path of each slot, partition of each path.
    path_of_slot_.resize(layout.numSlots());
    is_src_slot_.assign(layout.numSlots(), 0);
    for (PathId p = 0; p < np; ++p) {
        for (std::uint64_t s = layout.pathOffset(p);
             s < layout.pathOffset(p + 1); ++s) {
            path_of_slot_[s] = p;
            is_src_slot_[s] = s + 1 < layout.pathOffset(p + 1);
        }
    }
    partition_of_path_.resize(np);
    for (PartitionId q = 0; q < nparts; ++q) {
        for (std::uint32_t p = pre.partition_offsets[q];
             p < pre.partition_offsets[q + 1]; ++p) {
            partition_of_path_[p] = q;
        }
    }

    // Occurrence CSR: vertex -> slots.
    const auto e_idx = layout.eIdx();
    occur_offsets_.assign(num_vertices + 1, 0);
    for (const VertexId v : e_idx)
        ++occur_offsets_[v + 1];
    for (VertexId v = 0; v < num_vertices; ++v)
        occur_offsets_[v + 1] += occur_offsets_[v];
    occur_slots_.resize(e_idx.size());
    {
        std::vector<std::uint64_t> cursor(occur_offsets_.begin(),
                                          occur_offsets_.end() - 1);
        for (std::uint64_t s = 0; s < e_idx.size(); ++s)
            occur_slots_[cursor[e_idx[s]]++] = s;
    }

    // Consumer-partition CSR (vertex -> partitions with a source
    // occurrence) and mirror-partition CSR (vertex -> partitions with any
    // occurrence), both deduplicated. A vertex's occurrence slots are
    // ascending and partitions own contiguous path (hence slot) ranges,
    // so the partition sequence along the occurrence list is already
    // non-decreasing: one streaming pass with a last-seen compare
    // replaces a per-vertex sort/unique scratch loop.
    consumer_offsets_.assign(num_vertices + 1, 0);
    consumer_parts_.clear();
    mirror_offsets_.assign(num_vertices + 1, 0);
    mirror_parts_.clear();
    for (VertexId v = 0; v < num_vertices; ++v) {
        PartitionId last_consumer = kInvalidPartition;
        PartitionId last_mirror = kInvalidPartition;
        for (std::uint64_t k = occur_offsets_[v];
             k < occur_offsets_[v + 1]; ++k) {
            const std::uint64_t slot = occur_slots_[k];
            const PartitionId part =
                partition_of_path_[path_of_slot_[slot]];
            if (part != last_mirror) {
                mirror_parts_.push_back(part);
                last_mirror = part;
            }
            if (is_src_slot_[slot] && part != last_consumer) {
                consumer_parts_.push_back(part);
                last_consumer = part;
            }
        }
        consumer_offsets_[v + 1] = consumer_parts_.size();
        mirror_offsets_[v + 1] = mirror_parts_.size();
    }
}

void
ReplicaSync::activateVertex(ValuePlane &plane, VertexId v) const
{
    for (std::uint64_t k = occur_offsets_[v]; k < occur_offsets_[v + 1];
         ++k) {
        const std::uint64_t slot = occur_slots_[k];
        if (is_src_slot_[slot]) {
            plane.activateSlot(slot);
            plane.partition_active[partitionOfSlot(slot)] = 1;
        }
    }
}

void
ReplicaSync::convertStaleQueue(ValuePlane &plane, PartitionId p,
                               std::uint64_t slot_lo,
                               std::uint64_t slot_hi,
                               std::vector<VertexId> &stale_vertices) const
{
    auto &queue = plane.stale_queue[p];
    std::sort(queue.begin(), queue.end());
    queue.erase(std::unique(queue.begin(), queue.end()), queue.end());
    for (const VertexId v : queue) {
        bool any_stale = false;
        const auto occ_begin =
            occur_slots_.begin() +
            static_cast<std::ptrdiff_t>(occur_offsets_[v]);
        const auto occ_end =
            occur_slots_.begin() +
            static_cast<std::ptrdiff_t>(occur_offsets_[v + 1]);
        for (auto it = std::lower_bound(occ_begin, occ_end, slot_lo);
             it != occ_end && *it < slot_hi; ++it) {
            const std::uint64_t slot = *it;
            if (plane.slot_seen_version[slot] !=
                plane.master_version[v]) {
                any_stale = true;
                plane.slot_seen_version[slot] = plane.master_version[v];
                if (is_src_slot_[slot])
                    plane.activateSlot(slot);
            }
        }
        if (any_stale)
            stale_vertices.push_back(v);
    }
    queue.clear();
}

PushStats
ReplicaSync::pushDirtyMirrors(
    ValuePlane &plane, PartitionId p, const algorithms::Algorithm &algo,
    const graph::DirectedGraph &g, bool use_proxy,
    std::uint32_t proxy_indegree_threshold,
    std::unordered_map<VertexId, Value> &overlay,
    std::vector<std::pair<VertexId, Value>> &pushes,
    std::vector<VertexId> &changed) const
{
    // Virtual-dispatch wrapper over the shared template (single source
    // of truth for the batch merge — see replica_sync_impl.hpp).
    return pushDirtyMirrorsT<algorithms::Algorithm, true>(
        plane, p, algo, g, use_proxy, proxy_indegree_threshold, overlay,
        pushes, changed);
}

void
ReplicaSync::refreshLocalMirrors(
    ValuePlane &plane, const algorithms::Algorithm &algo,
    std::uint64_t slot_lo, std::uint64_t slot_hi,
    const std::unordered_map<VertexId, Value> &overlay,
    const std::vector<VertexId> &changed) const
{
    refreshLocalMirrorsT<algorithms::Algorithm>(plane, algo, slot_lo,
                                                slot_hi, overlay, changed);
}

void
ReplicaSync::fanOutChanged(
    ValuePlane &plane, PartitionId p,
    const std::vector<VertexId> &changed,
    const std::unordered_map<VertexId, Value> &overlay,
    std::vector<PartitionId> &activated_parts) const
{
    for (const VertexId v : changed) {
        const Value master = plane.storage.vVal(v);
        const auto ov = overlay.find(v);
        const bool self_current =
            ov != overlay.end() && ov->second == master;
        for (std::uint64_t k = mirror_offsets_[v];
             k < mirror_offsets_[v + 1]; ++k) {
            const PartitionId part = mirror_parts_[k];
            if (part == p && self_current)
                continue;
            plane.stale_queue[part].push_back(v);
        }
        for (std::uint64_t k = consumer_offsets_[v];
             k < consumer_offsets_[v + 1]; ++k) {
            const PartitionId part = consumer_parts_[k];
            if (part == p) {
                if (!self_current)
                    plane.partition_active[p] = 1;
                continue;
            }
            if (!plane.partition_active[part]) {
                // Gate only on the activation that wakes the partition
                // up; later batches are picked up whenever it runs.
                plane.partition_active[part] = 1;
                activated_parts.push_back(part);
            }
        }
    }
}

std::size_t
ReplicaSync::memoryBytes() const
{
    return path_of_slot_.size() * sizeof(PathId) +
           is_src_slot_.size() * sizeof(std::uint8_t) +
           partition_of_path_.size() * sizeof(PartitionId) +
           (occur_offsets_.size() + occur_slots_.size()) *
               sizeof(std::uint64_t) +
           consumer_offsets_.size() * sizeof(std::uint64_t) +
           consumer_parts_.size() * sizeof(PartitionId) +
           mirror_offsets_.size() * sizeof(std::uint64_t) +
           mirror_parts_.size() * sizeof(PartitionId);
}

} // namespace digraph::engine
