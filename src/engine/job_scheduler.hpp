/**
 * @file
 * Inter-job scheduling policy — level 1 of the two-level scheduler
 * (DESIGN.md §15). Level 2 is the engine's intra-job path scheduling
 * (Dispatcher::orderByPriority, Section 3.2.3 of the paper); this
 * level decides, at every scheduling event of a GraphService session,
 * WHICH jobs occupy the session's execution slots and HOW the session
 * thread budget is divided among them.
 *
 * The policy is a pure function of an explicit snapshot: no clocks, no
 * randomness, no hidden state — the same snapshot always yields the
 * same grants, which is what makes service-level tests deterministic.
 *
 * Decision order per free slot:
 *   1. priority (higher first), then queue age (FIFO; parked jobs
 *      re-enter at the back of their class, giving round-robin under
 *      preemption), then job id;
 *   2. per-tenant quota: a tenant at its started-jobs quota is skipped
 *      (its jobs stay queued; other tenants pass it);
 *   3. state-byte budget: a job whose ValuePlane is not yet allocated
 *      is only started while charged + estimate fits the budget
 *      (admission control — parked jobs keep their charge because
 *      their plane IS their suspended state);
 *   4. co-scheduling: among equally-ranked candidates, prefer the one
 *      whose partition worklist overlaps the already-granted set most —
 *      jobs iterating the same partitions in the same quantum share
 *      substrate cache residency, not just substrate memory.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace digraph::engine {

/** Level-1 policy knobs (resolved values; see ServiceConfig for the
 *  user-facing defaults). */
struct SchedulerPolicy
{
    /** Session worker-thread budget, divided across granted jobs. */
    std::size_t session_threads = 1;
    /** Execution slots (concurrently running jobs); 0 = one per
     *  session thread. */
    std::size_t max_running_jobs = 0;
    /** In-flight job-state byte budget (admission control); 0 = off. */
    std::size_t state_budget_bytes = 0;
    /** Max started (running or parked) jobs per tenant; 0 = off. */
    std::size_t tenant_quota = 0;
    /** Prefer worklist-overlapping jobs within a priority class. */
    bool co_schedule = true;
};

/** One runnable job as the policy sees it. */
struct SchedJob
{
    std::uint64_t id = 0;
    int priority = 0;
    /** Dense tenant index (see GraphService tenant interning). */
    std::uint32_t tenant = 0;
    /** FIFO age within the priority class (re-assigned on park). */
    std::uint64_t queue_seq = 0;
    /** Engine built, state bytes already charged. */
    bool started = false;
    /** Bytes to charge if granted before started (estimate). */
    std::size_t state_bytes = 0;
    /** Partition worklist flags at the job's last wave boundary
     *  (null/empty until it has run once). */
    const std::vector<std::uint8_t> *worklist = nullptr;
};

/** Everything the policy may consult, frozen at the scheduling event. */
struct SchedSnapshot
{
    /** Runnable jobs (queued or parked), any order. */
    std::vector<SchedJob> waiting;
    /** Worklists of currently granted jobs (co-scheduling seed). */
    std::vector<const std::vector<std::uint8_t> *> running_worklists;
    /** Currently granted jobs (occupying slots). */
    std::size_t running_jobs = 0;
    /** Unallocated session threads right now. Grants may exceed it by
     *  at most 1 thread per job (running jobs shed surplus at their
     *  next wave boundary). */
    std::size_t free_threads = 0;
    /** Bytes charged by started, unfinished jobs. */
    std::size_t charged_bytes = 0;
    /** Started, unfinished jobs per dense tenant index. */
    std::vector<std::uint32_t> tenant_started;
};

/** One scheduling decision: run job @p id with @p threads workers. */
struct SchedGrant
{
    std::uint64_t id = 0;
    std::size_t threads = 1;
    /** Chosen by worklist overlap rather than plain rank order. */
    bool co_scheduled = false;
};

/**
 * Fill the session's free execution slots from @p snap.waiting.
 * Deterministic; returns grants in grant order (the order jobs should
 * be appended to the active list).
 */
std::vector<SchedGrant> scheduleJobs(const SchedulerPolicy &policy,
                                     const SchedSnapshot &snap);

/**
 * Fair thread share of the job at @p rank among @p running granted
 * jobs: session_threads / running, the first (session_threads %
 * running) ranks getting one extra, never below 1. Running jobs adopt
 * their share at each wave boundary, so allocations converge to fair
 * within one wave of any membership change.
 */
std::size_t fairThreadShare(const SchedulerPolicy &policy,
                            std::size_t rank, std::size_t running);

} // namespace digraph::engine
