#include "engine/value_plane.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace digraph::engine {

void
ValuePlane::beginRun(const partition::Preprocessed &pre)
{
    if (sync_ == nullptr)
        panic("ValuePlane::beginRun: no ReplicaSync attached");
    const PartitionId nparts = pre.numPartitions();
    const PathId npaths = pre.paths.numPaths();
    slot_active.assign(storage.eIdx().size(), 0);
    master_version.assign(storage.numVertices(), 0);
    slot_seen_version.assign(storage.eIdx().size(), 0);
    partition_active.assign(nparts, 0);
    path_active_count.assign(npaths, 0);
    path_in_worklist.assign(npaths, 0);
    partition_worklist.assign(nparts, {});
    stale_queue.assign(nparts, {});
    partition_dirty.resize(nparts);
    for (PartitionId q = 0; q < nparts; ++q) {
        partition_dirty[q].bind(
            storage.pathOffset(pre.partition_offsets[q]),
            storage.pathOffset(pre.partition_offsets[q + 1]));
    }
}

void
ValuePlane::initializeState(const graph::DirectedGraph &g,
                            const algorithms::Algorithm &algo,
                            const WarmStart *warm)
{
    std::vector<Value> vinit(g.numVertices());
    if (warm && warm->vertex_state) {
        if (warm->vertex_state->size() != g.numVertices())
            panic("DiGraphEngine::run: warm state size mismatch");
        vinit = *warm->vertex_state;
    } else {
        for (VertexId v = 0; v < g.numVertices(); ++v)
            vinit[v] = algo.initVertex(g, v);
    }
    std::vector<Value> einit(g.numEdges());
    if (warm && warm->edge_state) {
        if (warm->edge_state->size() != g.numEdges())
            panic("DiGraphEngine::run: warm edge-state size mismatch");
        einit = *warm->edge_state;
    } else {
        for (EdgeId e = 0; e < g.numEdges(); ++e) {
            einit[e] = warm ? algo.warmEdgeState(g, e,
                                                 vinit[g.edgeSource(e)])
                            : algo.initEdge(g, e);
        }
    }
    storage.initialize(vinit, einit);
}

void
ValuePlane::initFlat(const graph::DirectedGraph &g,
                     const algorithms::Algorithm &algo, bool double_buffer)
{
    vertex_values.resize(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        vertex_values[v] = algo.initVertex(g, v);
    edge_values.resize(g.numEdges());
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        edge_values[e] = algo.initEdge(g, e);
    vertex_active.assign(g.numVertices(), 0);
    if (double_buffer) {
        vertex_values_next = vertex_values;
        vertex_active_next.assign(g.numVertices(), 0);
    } else {
        vertex_values_next.clear();
        vertex_active_next.clear();
    }
}

void
ValuePlane::initCheckpoint(const graph::DirectedGraph &g,
                           const partition::Preprocessed &pre)
{
    // Epoch-0 checkpoint: the freshly-initialized state. Later epochs
    // only copy journalled-dirty entries.
    const auto vvals = storage.vVals();
    ckpt_v.assign(vvals.begin(), vvals.end());
    const auto evals = storage.eVal();
    ckpt_e.assign(evals.begin(), evals.end());
    ckpt_v_dirty.assign(g.numVertices(), 0);
    ckpt_v_dirty_list.clear();
    ckpt_part_dirty.assign(pre.numPartitions(), 0);
    ckpt_part_dirty_list.clear();
    ckpt_wave = 0;
}

void
ValuePlane::copyPartitionEval(const partition::Preprocessed &pre,
                              PartitionId p, bool to_checkpoint)
{
    // Path q's edges occupy E_val indexes
    // [pathOffset(q) - q, pathOffset(q + 1) - q - 1); for the contiguous
    // path range [path_lo, path_hi) of a partition the union telescopes
    // to [pathOffset(path_lo) - path_lo, pathOffset(path_hi) - path_hi).
    const std::uint32_t path_lo = pre.partition_offsets[p];
    const std::uint32_t path_hi = pre.partition_offsets[p + 1];
    const std::uint64_t lo = storage.pathOffset(path_lo) - path_lo;
    const std::uint64_t hi = storage.pathOffset(path_hi) - path_hi;
    auto live = storage.eVals();
    if (to_checkpoint) {
        std::copy(live.begin() + static_cast<std::ptrdiff_t>(lo),
                  live.begin() + static_cast<std::ptrdiff_t>(hi),
                  ckpt_e.begin() + static_cast<std::ptrdiff_t>(lo));
    } else {
        std::copy(ckpt_e.begin() + static_cast<std::ptrdiff_t>(lo),
                  ckpt_e.begin() + static_cast<std::ptrdiff_t>(hi),
                  live.begin() + static_cast<std::ptrdiff_t>(lo));
    }
}

bool
ValuePlane::bookkeepingConsistent(const partition::Preprocessed &pre) const
{
    const PathId np = pre.paths.numPaths();
    if (path_active_count.size() != np)
        return slot_active.empty(); // run() has not initialized yet
    std::vector<std::uint32_t> recount(np, 0);
    for (std::uint64_t s = 0; s < slot_active.size(); ++s) {
        if (slot_active[s])
            ++recount[sync_->pathOfSlot(s)];
    }
    for (PathId q = 0; q < np; ++q) {
        if (recount[q] != path_active_count[q])
            return false;
        if (recount[q] > 0 && !path_in_worklist[q])
            return false;
    }
    std::vector<std::uint8_t> listed(np, 0);
    for (PartitionId q = 0; q < pre.numPartitions(); ++q) {
        for (const PathId path : partition_worklist[q]) {
            if (listed[path] || !path_in_worklist[path] ||
                sync_->partitionOfPath(path) != q) {
                return false;
            }
            listed[path] = 1;
        }
    }
    for (PathId q = 0; q < np; ++q) {
        if (path_in_worklist[q] && !listed[q])
            return false;
    }
    return true;
}

std::size_t
ValuePlane::memoryBytes() const
{
    std::size_t bytes = storage.valueBytes();
    bytes += slot_active.size() * sizeof(std::uint8_t);
    bytes += master_version.size() * sizeof(std::uint32_t);
    bytes += slot_seen_version.size() * sizeof(std::uint32_t);
    bytes += partition_active.size() * sizeof(std::uint8_t);
    bytes += path_active_count.size() * sizeof(std::uint32_t);
    bytes += path_in_worklist.size() * sizeof(std::uint8_t);
    for (const auto &wl : partition_worklist)
        bytes += wl.capacity() * sizeof(PathId);
    for (const auto &queue : stale_queue)
        bytes += queue.capacity() * sizeof(VertexId);
    for (const auto &dirty : partition_dirty)
        bytes += dirty.memoryBytes();
    bytes += (ckpt_v.size() + ckpt_e.size()) * sizeof(Value);
    bytes += ckpt_v_dirty.size() * sizeof(std::uint8_t);
    bytes += ckpt_v_dirty_list.capacity() * sizeof(VertexId);
    bytes += ckpt_part_dirty.size() * sizeof(std::uint8_t);
    bytes += ckpt_part_dirty_list.capacity() * sizeof(PartitionId);
    bytes += (vertex_values.size() + vertex_values_next.size() +
              edge_values.size()) *
             sizeof(Value);
    bytes += (vertex_active.size() + vertex_active_next.size()) *
             sizeof(std::uint8_t);
    return bytes;
}

} // namespace digraph::engine
