/**
 * @file
 * DiGraph engine configuration, including the execution-mode switches that
 * realize the paper's ablation systems (DiGraph-t, DiGraph-w).
 */

#pragma once

#include <cstddef>
#include <string>

#include "gpusim/config.hpp"
#include "gpusim/fault.hpp"
#include "partition/preprocess.hpp"

namespace digraph::metrics {
class TraceSink;
} // namespace digraph::metrics

namespace digraph::storage {
class DurableStore;
} // namespace digraph::storage

namespace digraph::engine {

class WaveControl;

/** Execution model selector. */
enum class ExecutionMode {
    /** The full system: path-based async execution + SMX path
     *  scheduling (the paper's DiGraph). */
    PathAsync,
    /** Path-based async execution without the priority path scheduling —
     *  paths run in storage order (the paper's DiGraph-w). */
    PathNoSched,
    /** Traditional vertex-centric asynchronous execution on the same
     *  infrastructure: source states are read from a round-start snapshot,
     *  so a new state only reaches already-processed vertices in the next
     *  round (the paper's DiGraph-t). */
    VertexAsync,
};

/** Display name for a mode ("digraph", "digraph-w", "digraph-t"). */
std::string modeName(ExecutionMode mode);

/** All engine knobs. */
struct EngineOptions
{
    ExecutionMode mode = ExecutionMode::PathAsync;
    /** Simulated platform. */
    gpusim::PlatformConfig platform;
    /** CPU preprocessing options (partition budget is derived from the
     *  platform when auto_partition_budget is set). */
    partition::PreprocessOptions preprocess;
    /** Derive edges_per_partition from the platform geometry. */
    bool auto_partition_budget = true;
    /** Steal suspended paths to free SMXs (Section 3.2.2). */
    bool work_stealing = true;
    /** Shared-memory proxy vertices for high in-degree masters. */
    bool use_proxy = true;
    /** In-degree at which a vertex gets a proxy. */
    std::size_t proxy_indegree_threshold = 8;
    /** Dependency-aware (DAG topological) dispatching; when off,
     *  partitions are dispatched in plain worklist order (the paper notes
     *  this is the only infeasible piece on fully bidirectional graphs). */
    bool dag_dispatch = true;
    /** Cap on partition-local iteration rounds per dispatch. */
    std::size_t max_local_rounds = 64;
    /** Host worker threads executing the partitions of a dispatch wave
     *  concurrently; 0 means hardware_concurrency(), 1 runs the wave
     *  inline on the calling thread. Results (final state, simulated
     *  cycles, traffic counters) are identical for every value — the
     *  wave-snapshot execution model commits all shared-state changes at
     *  a barrier in dispatch order. */
    std::size_t engine_threads = 0;
    /** Activate every vertex initially (Fig 2 methodology) regardless of
     *  the algorithm's initActive(). */
    bool force_all_active = false;
    /** Commit the delta-accumulative algorithm family (pagerank, katz,
     *  adsorption — commutative mergeMaster) through the lock-free
     *  parallel overlay commit at the wave barrier instead of the
     *  ordered serial push replay. Results are identical either way
     *  (wave chunks are vertex-disjoint, so the overlay value IS the
     *  replay result); off forces the ordered-replay oracle, which the
     *  equivalence tests compare against. Ignored by the bitwise
     *  family (sssp/bfs/wcc/kcore), which always replays in order. */
    bool delta_merge = true;
    /** Structured trace sink; nullptr disables tracing (every
     *  instrumentation point reduces to one null check — see
     *  src/metrics/trace.hpp). Tracing never changes results. */
    metrics::TraceSink *trace = nullptr;
    /** Wave-boundary scheduling hook (see engine/wave_control.hpp):
     *  consulted after every wave's merge barrier; may block the run
     *  (cooperative preemption) and reallocate the worker-thread
     *  budget. nullptr (default) runs to convergence uninterrupted.
     *  Yielding and thread reallocation never change results. */
    WaveControl *wave_control = nullptr;

    // --- fault tolerance (see DESIGN.md "Fault model and recovery") ---
    /** Deterministic fault-injection plan. An empty plan (default)
     *  disables the whole fault-tolerance layer: no checkpoint copies,
     *  no retry coins, zero overhead. */
    gpusim::FaultPlan faults;
    /** Waves between merge-barrier checkpoints while faults are
     *  enabled. Must be >= 1; larger intervals checkpoint less often
     *  but lose more work per recovery. */
    std::size_t checkpoint_interval = 4;
    /** Dropped-transfer retries before the run hard-aborts. */
    std::size_t max_transfer_retries = 6;
    /** Backoff after the first dropped attempt, simulated cycles; each
     *  further retry doubles it. */
    double transfer_backoff_cycles = 200.0;
    /** Device-loss recoveries tolerated before the run hard-aborts. */
    std::size_t max_recoveries = 4;
    /** Run the post-run invariant checker (convergence residual,
     *  master/mirror coherence, activation recount) inside run() and
     *  panic on violation. Debug/CI tool; off by default. */
    bool verify_invariants = false;

    // --- durable store (DESIGN.md §16) ---
    /** When set (and store_parent names a committed topology version of
     *  this substrate), merge-barrier checkpoints are also flushed
     *  through the durable store as incremental value commits, and
     *  device-loss rollback reloads the checkpoint from disk — a
     *  crashed process can restart from the last flushed version.
     *  Attaching a store enables the checkpoint machinery even with an
     *  empty fault plan. Never changes results (the disk copy is the
     *  in-memory shadow, byte for byte). */
    storage::DurableStore *store = nullptr;
    /** Durable-store version the first value flush chains from (the
     *  substrate's topology version, from EngineSubstrate::saveTo).
     *  0 disables flushing even when store is set. */
    std::uint64_t store_parent = 0;

    /**
     * Reject nonsensical knob combinations before they become UB deep
     * in preprocessing or the cost model.
     * @return a diagnostic, or "" when the options are usable.
     */
    std::string validate() const;

    /**
     * Resolve auto_partition_budget against a graph with @p num_edges
     * edges: derives preprocess.partition.edges_per_partition from the
     * platform geometry (no-op when auto_partition_budget is off). The
     * budget is independent of the device count so scaling studies
     * compare identical partitionings. The engine constructor and the
     * evolving engine share this, so full and incremental preprocessing
     * cut partitions with the same budget.
     */
    void resolvePartitionBudget(EdgeId num_edges);
};

} // namespace digraph::engine
