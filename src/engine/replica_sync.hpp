/**
 * @file
 * Replica-synchronization layer of the execution substrate (DESIGN.md
 * §12): the immutable vertex-replication indexes (slot ownership,
 * occurrence / consumer / mirror CSRs) plus the batched master<->mirror
 * synchronization operations that run against a job's ValuePlane.
 *
 * A ReplicaSync instance is built once per preprocessing result and is
 * strictly read-only afterwards, so any number of concurrent jobs may
 * share one instance; all mutable state lives in the ValuePlane passed
 * into each operation.
 */

#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "common/types.hpp"
#include "graph/digraph.hpp"
#include "partition/preprocess.hpp"
#include "storage/path_storage.hpp"

namespace digraph::engine {

class ValuePlane;

/** Proxy-vs-atomic push split of one mirror-push phase (feeds the
 *  simulated sync-cost model). */
struct PushStats
{
    std::uint64_t proxy_pushes = 0;
    std::uint64_t atomic_pushes = 0;
};

/**
 * Shared, immutable replica indexes + the master/mirror sync operations.
 */
class ReplicaSync
{
  public:
    /** Build every index from @p pre / @p layout (called once). */
    void build(const partition::Preprocessed &pre,
               const storage::PathLayout &layout, VertexId num_vertices);

    /** Path owning E_idx slot @p slot. */
    PathId pathOfSlot(std::uint64_t slot) const
    {
        return path_of_slot_[slot];
    }

    /** True when the slot is a source position (not a path tail). */
    bool isSrcSlot(std::uint64_t slot) const { return is_src_slot_[slot]; }

    /** Partition of path @p p. */
    PartitionId partitionOfPath(PathId p) const
    {
        return partition_of_path_[p];
    }

    /** Partition owning E_idx slot @p slot. */
    PartitionId partitionOfSlot(std::uint64_t slot) const
    {
        return partition_of_path_[path_of_slot_[slot]];
    }

    /** Occurrence slots of vertex @p v (ascending). */
    std::span<const std::uint64_t>
    occurrences(VertexId v) const
    {
        return {occur_slots_.data() + occur_offsets_[v],
                occur_slots_.data() + occur_offsets_[v + 1]};
    }

    /** Partitions holding ANY occurrence of @p v (deduplicated). */
    std::span<const PartitionId>
    mirrorPartitions(VertexId v) const
    {
        return {mirror_parts_.data() + mirror_offsets_[v],
                mirror_parts_.data() + mirror_offsets_[v + 1]};
    }

    /** Partitions holding a SOURCE occurrence of @p v (deduplicated). */
    std::span<const PartitionId>
    consumerPartitions(VertexId v) const
    {
        return {consumer_parts_.data() + consumer_offsets_[v],
                consumer_parts_.data() + consumer_offsets_[v + 1]};
    }

    /** Total E_idx slots covered by the indexes. */
    std::size_t numSlots() const { return path_of_slot_.size(); }

    // --- batched sync operations (mutate only @p plane) ---

    /** Activate every source occurrence of @p v and mark the owning
     *  partitions active (initial activation / warm-start seeds /
     *  degrade-recovery reseeding). */
    void activateVertex(ValuePlane &plane, VertexId v) const;

    /**
     * Consume partition @p p's stale-vertex queue: for each queued
     * vertex whose master version bumped since a local slot last
     * absorbed it, update the slot's seen version, activate source
     * slots, and append the vertex to @p stale_vertices (sorted by the
     * queue's sort; drives the ring master-refresh pulls at replay).
     * Replaces a dispatch-start full version scan of the slot range.
     */
    void convertStaleQueue(ValuePlane &plane, PartitionId p,
                           std::uint64_t slot_lo, std::uint64_t slot_hi,
                           std::vector<VertexId> &stale_vertices) const;

    /**
     * Mirror->master push phase over partition @p p's dirty-slot
     * worklist (ascending slot order): each mirror with a pending push
     * merges into the private @p overlay (master values frozen for the
     * wave live in plane.storage), logs into @p pushes, and collects
     * masters whose overlaid value changed into @p changed
     * (sorted/deduplicated). Returns the proxy/atomic split.
     */
    PushStats
    pushDirtyMirrors(ValuePlane &plane, PartitionId p,
                     const algorithms::Algorithm &algo,
                     const graph::DirectedGraph &g, bool use_proxy,
                     std::uint32_t proxy_indegree_threshold,
                     std::unordered_map<VertexId, Value> &overlay,
                     std::vector<std::pair<VertexId, Value>> &pushes,
                     std::vector<VertexId> &changed) const;

    /**
     * Static-dispatch variant of pushDirtyMirrors(): @p AlgoT is either
     * a non-virtual kernel policy (specialized wave kernels — the merge
     * math inlines into the batch loop) or algorithms::Algorithm (the
     * .cpp wrapper above). @p LogPushes false skips the push log
     * entirely (delta-merge kernels commit the overlay instead).
     * Defined in replica_sync_impl.hpp.
     */
    template <class AlgoT, bool LogPushes>
    PushStats
    pushDirtyMirrorsT(ValuePlane &plane, PartitionId p, const AlgoT &algo,
                      const graph::DirectedGraph &g, bool use_proxy,
                      std::uint32_t proxy_indegree_threshold,
                      std::unordered_map<VertexId, Value> &overlay,
                      std::vector<std::pair<VertexId, Value>> &pushes,
                      std::vector<VertexId> &changed) const;

    /**
     * Refresh phase: re-pull and re-activate partition-local mirrors
     * ([slot_lo, slot_hi)) of each vertex in @p changed from the
     * overlaid master (the proxy-vertex effect — accumulated results
     * are reusable within the next local round).
     */
    void refreshLocalMirrors(
        ValuePlane &plane, const algorithms::Algorithm &algo,
        std::uint64_t slot_lo, std::uint64_t slot_hi,
        const std::unordered_map<VertexId, Value> &overlay,
        const std::vector<VertexId> &changed) const;

    /** Static-dispatch variant of refreshLocalMirrors() (see
     *  pushDirtyMirrorsT()). Defined in replica_sync_impl.hpp. */
    template <class AlgoT>
    void refreshLocalMirrorsT(
        ValuePlane &plane, const AlgoT &algo, std::uint64_t slot_lo,
        std::uint64_t slot_hi,
        const std::unordered_map<VertexId, Value> &overlay,
        const std::vector<VertexId> &changed) const;

    /**
     * Wave-barrier activation fan-out of the committed @p changed
     * masters (serial phase): feed the stale queues of mirroring
     * partitions and wake consumer partitions. The dispatching
     * partition @p p skips itself only when its private @p overlay
     * already equals the committed master (sole writer). Partitions
     * woken from inactive are appended to @p activated_parts
     * (unsorted; caller dedups) for the notification transfers.
     */
    void fanOutChanged(ValuePlane &plane, PartitionId p,
                       const std::vector<VertexId> &changed,
                       const std::unordered_map<VertexId, Value> &overlay,
                       std::vector<PartitionId> &activated_parts) const;

    /** Host bytes of the shared indexes. */
    std::size_t memoryBytes() const;

  private:
    /** Path owning each E_idx slot. */
    std::vector<PathId> path_of_slot_;
    /** Whether each slot is a source position (not a path tail). */
    std::vector<std::uint8_t> is_src_slot_;
    /** Partition of each path. */
    std::vector<PartitionId> partition_of_path_;
    /** CSR: vertex -> its occurrence slots across all paths. */
    std::vector<std::uint64_t> occur_offsets_;
    std::vector<std::uint64_t> occur_slots_;
    /** CSR: vertex -> partitions holding one of its source occurrences
     *  (deduplicated; used for activation fan-out). */
    std::vector<std::uint64_t> consumer_offsets_;
    std::vector<PartitionId> consumer_parts_;
    /** CSR: vertex -> partitions holding ANY occurrence (deduplicated;
     *  used for the stale-vertex queue fan-out at the wave barrier). */
    std::vector<std::uint64_t> mirror_offsets_;
    std::vector<PartitionId> mirror_parts_;
};

} // namespace digraph::engine
