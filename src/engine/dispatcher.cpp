#include "engine/dispatcher.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "graph/builder.hpp"
#include "graph/scc.hpp"
#include "graph/traversal.hpp"
#include "gpusim/platform.hpp"

namespace digraph::engine {

void
Dispatcher::build(const partition::Preprocessed &pre,
                  const ReplicaSync &sync,
                  const storage::PathLayout &layout,
                  VertexId num_vertices)
{
    pre_ = &pre;
    const PathId np = pre.paths.numPaths();
    const PartitionId nparts = pre.numPartitions();
    nparts_ = nparts;

    // Partition-interference matrix: partitions sharing any vertex must
    // not run concurrently (a dispatch could consume the other's stale
    // master and redo the propagation after the merge). Vertices
    // mirrored by more partitions than the cap are hubs: their
    // partitions are flagged as interfering with everything, which
    // bounds the build at kHubFanoutCap * mirror entries.
    constexpr std::uint64_t kHubFanoutCap = 32;
    interference_.assign(static_cast<std::size_t>(nparts) * nparts, 0);
    interferes_all_.assign(nparts, 0);
    for (VertexId v = 0; v < num_vertices; ++v) {
        const auto parts = sync.mirrorPartitions(v);
        const std::uint64_t fanout = parts.size();
        if (fanout < 2)
            continue;
        if (fanout > kHubFanoutCap) {
            for (const PartitionId q : parts)
                interferes_all_[q] = 1;
            continue;
        }
        for (std::size_t i = 0; i < parts.size(); ++i) {
            for (std::size_t j = i + 1; j < parts.size(); ++j) {
                const PartitionId a = parts[i];
                const PartitionId b = parts[j];
                interference_[static_cast<std::size_t>(a) * nparts + b] =
                    1;
                interference_[static_cast<std::size_t>(b) * nparts + a] =
                    1;
            }
        }
    }

    // Partition precursors via the DAG sketch: partitions holding paths
    // of precursor SCC-vertices. SCC-vertices consisting only of
    // auxiliary star hubs (see buildDependencyGraph) carry no paths, so
    // dependencies are resolved *through* them to the nearest
    // path-bearing ancestors.
    std::vector<std::vector<PartitionId>> parts_of_scc(pre.dag.num_sccs);
    for (PathId p = 0; p < np; ++p)
        parts_of_scc[pre.scc_of_path[p]].push_back(
            sync.partitionOfPath(p));
    for (auto &v : parts_of_scc) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }

    // eff_parts[s]: partitions holding paths of the nearest path-bearing
    // ancestor SCC-vertices of s, resolved *through* path-less (aux-only)
    // SCC-vertices in topological order. Partition sets stay small
    // (bounded by the partition count), so relaying through the
    // dependency graph's star hubs cannot re-expand the quadratic
    // producer x consumer structure the stars compressed.
    std::vector<std::vector<PartitionId>> eff_parts(pre.dag.num_sccs);
    for (const VertexId s : graph::topologicalOrder(pre.dag.sketch)) {
        auto &mine = eff_parts[s];
        for (const VertexId t : pre.dag.sketch.inNeighbors(s)) {
            const auto &src = pre.dag.paths_in_scc[t].empty()
                                  ? eff_parts[t]
                                  : parts_of_scc[t];
            mine.insert(mine.end(), src.begin(), src.end());
        }
        std::sort(mine.begin(), mine.end());
        mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
    }

    precursor_parts_.assign(nparts, {});
    for (PartitionId q = 0; q < nparts; ++q) {
        std::vector<PartitionId> pre_parts;
        SccId last = kInvalidScc;
        for (std::uint32_t p = pre.partition_offsets[q];
             p < pre.partition_offsets[q + 1]; ++p) {
            const SccId sv = pre.scc_of_path[p];
            if (sv == last)
                continue; // partition paths are SCC-sorted
            last = sv;
            pre_parts.insert(pre_parts.end(), eff_parts[sv].begin(),
                             eff_parts[sv].end());
        }
        std::sort(pre_parts.begin(), pre_parts.end());
        pre_parts.erase(std::unique(pre_parts.begin(), pre_parts.end()),
                        pre_parts.end());
        std::erase(pre_parts, q);
        precursor_parts_[q] = std::move(pre_parts);
    }

    // Partition-level dependency SCC groups (cyclically dependent
    // partitions must iterate together) and their condensed DAG, used
    // for the transitive upstream-quiescence readiness test. Besides the
    // inter-SCC precursor edges, partitions sharing one SCC-vertex are
    // mutually dependent (intra-SCC path dependencies are invisible in
    // the sketch), so a cycle is threaded through each such partition
    // set.
    {
        graph::GraphBuilder builder(nparts);
        for (PartitionId q = 0; q < nparts; ++q) {
            for (const PartitionId t : precursor_parts_[q])
                builder.addEdge(t, q);
        }
        for (SccId s = 0; s < pre.dag.num_sccs; ++s) {
            const auto &parts = parts_of_scc[s];
            if (parts.size() < 2)
                continue;
            for (std::size_t i = 0; i < parts.size(); ++i) {
                builder.addEdge(parts[i],
                                parts[(i + 1) % parts.size()]);
            }
        }
        const auto part_graph = builder.build();
        const auto scc = graph::computeScc(part_graph);
        partition_group_ = scc.component;
        group_dag_ = graph::condense(part_graph, scc);
        group_topo_ = graph::topologicalOrder(group_dag_);
    }

    // Partition byte footprints.
    partition_bytes_.resize(nparts);
    for (PartitionId q = 0; q < nparts; ++q) {
        partition_bytes_[q] = layout.rangeBytes(
            pre.partition_offsets[q], pre.partition_offsets[q + 1]);
    }

    // Pri(p) scale: alpha = 1 / (maxAvgDeg * maxN).
    double max_deg = 1.0;
    std::size_t max_n = 1;
    for (PathId p = 0; p < np; ++p) {
        max_deg = std::max(max_deg, pre.path_avg_degree[p]);
        max_n = std::max(max_n, pre.paths.pathLength(p) + 1);
    }
    pri_alpha_ = 1.0 / (max_deg * static_cast<double>(max_n));
}

std::vector<std::uint8_t>
Dispatcher::blockedGroups(
    const std::vector<std::uint8_t> &partition_active) const
{
    std::vector<std::uint8_t> active(group_dag_.numVertices(), 0);
    for (PartitionId q = 0; q < nparts_; ++q) {
        if (partition_active[q])
            active[partition_group_[q]] = 1;
    }
    std::vector<std::uint8_t> blocked(group_dag_.numVertices(), 0);
    for (const VertexId gid : group_topo_) {
        for (const VertexId succ : group_dag_.outNeighbors(gid)) {
            if (active[gid] || blocked[gid])
                blocked[succ] = 1;
        }
    }
    return blocked;
}

PartitionId
Dispatcher::choosePartition(
    const std::vector<std::uint64_t> &stamp, std::uint64_t wave,
    const std::vector<std::uint8_t> *blocked,
    const std::vector<std::uint8_t> &partition_active,
    bool dag_dispatch) const
{
    PartitionId best = kInvalidPartition;
    std::size_t best_pre = SIZE_MAX;
    std::uint32_t best_layer = UINT32_MAX;
    for (PartitionId q = 0; q < nparts_; ++q) {
        if (!partition_active[q] || stamp[q] >= wave)
            continue;
        if (blocked && dag_dispatch && (*blocked)[partition_group_[q]])
            continue;
        std::size_t active_pre = 0;
        if (!blocked && dag_dispatch) {
            for (const PartitionId t : precursor_parts_[q]) {
                if (partition_active[t] &&
                    partition_group_[t] != partition_group_[q]) {
                    ++active_pre;
                }
            }
        }
        const std::uint32_t layer = pre_->partition_layer[q];
        if (active_pre < best_pre ||
            (active_pre == best_pre && layer < best_layer)) {
            best = q;
            best_pre = active_pre;
            best_layer = layer;
        }
    }
    return best;
}

void
Dispatcher::nextChunk(const std::vector<PartitionId> &batch,
                      std::vector<std::uint8_t> &taken,
                      std::vector<PartitionId> &chunk) const
{
    chunk.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (taken[i])
            continue;
        const PartitionId p = batch[i];
        const bool compatible =
            chunk.empty() ||
            (!interferes_all_[p] &&
             std::none_of(chunk.begin(), chunk.end(),
                          [&](PartitionId m) {
                              return interferes_all_[m] ||
                                     interference_
                                         [static_cast<std::size_t>(p) *
                                              nparts_ +
                                          m];
                          }));
        if (!compatible)
            continue;
        chunk.push_back(p);
        taken[i] = 1;
    }
}

void
Dispatcher::orderByPriority(
    std::vector<PathId> &active_paths,
    const std::vector<std::uint32_t> &active_counts) const
{
    std::vector<std::size_t> idx(active_paths.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                         const PathId pa = active_paths[a];
                         const PathId pb = active_paths[b];
                         const double pri_a =
                             pri_alpha_ * pre_->path_avg_degree[pa] *
                                 active_counts[a] -
                             static_cast<double>(pre_->path_layer[pa]);
                         const double pri_b =
                             pri_alpha_ * pre_->path_avg_degree[pb] *
                                 active_counts[b] -
                             static_cast<double>(pre_->path_layer[pb]);
                         return pri_a > pri_b;
                     });
    std::vector<PathId> ordered(active_paths.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        ordered[i] = active_paths[idx[i]];
    active_paths.swap(ordered);
}

std::vector<double>
Dispatcher::roundCost(const EngineOptions &options,
                      double per_edge_cycles,
                      const std::vector<PathId> &active_paths,
                      const std::vector<std::uint64_t> &processed_edges,
                      std::uint64_t proxy_pushes,
                      std::uint64_t atomic_pushes) const
{
    // Per-thread load balancing: paths are packed into lane bins by
    // work units (longest first); work stealing spreads bins over
    // several SMXs of the device. A path's work is its processed edges
    // at full cost plus a cheap coalesced skip-scan of its inactive
    // positions.
    const unsigned lanes = options.platform.lanesPerSmx();
    const double skip_frac = options.platform.cycles_per_global_access *
                             options.platform.coalesced_factor /
                             per_edge_cycles;
    std::vector<std::uint64_t> path_work(active_paths.size());
    for (std::size_t ap = 0; ap < active_paths.size(); ++ap) {
        const std::uint64_t len = pre_->paths.pathLength(active_paths[ap]);
        path_work[ap] = processed_edges[ap] +
                        static_cast<std::uint64_t>(
                            static_cast<double>(len -
                                                processed_edges[ap]) *
                            skip_frac);
    }
    std::stable_sort(path_work.begin(), path_work.end(),
                     std::greater<>());
    const unsigned max_groups =
        options.work_stealing ? options.platform.smx_per_device : 1;
    const unsigned n_bins = static_cast<unsigned>(std::min<std::size_t>(
        path_work.size(), static_cast<std::size_t>(lanes) * max_groups));
    std::vector<std::uint64_t> bins(std::max(1u, n_bins), 0);
    for (std::size_t i = 0; i < path_work.size(); ++i)
        bins[i % bins.size()] += path_work[i];
    // Pushes are issued by all participating threads in parallel;
    // per-lane sync cost is the per-thread share.
    const double sync_cycles =
        (static_cast<double>(proxy_pushes) *
             options.platform.cycles_per_shared_access +
         static_cast<double>(atomic_pushes) *
             options.platform.cycles_per_atomic) /
        std::max(1u, n_bins);
    // Work-stealing groups start together on different SMXs; the round
    // ends when the slowest group finishes.
    const unsigned groups = (n_bins + lanes - 1) / lanes;
    std::vector<double> group_cycles;
    group_cycles.reserve(std::max(1u, groups));
    for (unsigned k = 0; k < std::max(1u, groups); ++k) {
        std::vector<std::uint64_t> group(
            bins.begin() +
                std::min<std::size_t>(bins.size(), k * lanes),
            bins.begin() +
                std::min<std::size_t>(bins.size(), (k + 1) * lanes));
        if (group.empty())
            group.push_back(0);
        group_cycles.push_back(gpusim::warpCost(group, per_edge_cycles) +
                               sync_cycles);
    }
    return group_cycles;
}

std::size_t
Dispatcher::memoryBytes() const
{
    std::size_t bytes = interference_.size() * sizeof(std::uint8_t) +
                        interferes_all_.size() * sizeof(std::uint8_t) +
                        partition_group_.size() * sizeof(SccId) +
                        group_topo_.size() * sizeof(VertexId) +
                        partition_bytes_.size() * sizeof(std::size_t);
    for (const auto &v : precursor_parts_)
        bytes += v.size() * sizeof(PartitionId);
    return bytes;
}

} // namespace digraph::engine
