#include "engine/transport.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace digraph::engine {

void
Transport::beginRun(const EngineOptions &options, PartitionId nparts,
                    VertexId num_vertices,
                    metrics::CounterRegistry *counters)
{
    options_ = &options;
    counters_ = counters;
    trace_ = nullptr;
    trace_wave_ = 0;
    trace_wave_sim_ = 0.0;
    platform_.reset();
    partition_device.assign(nparts, kInvalidVertex);
    partition_done.assign(nparts, 0.0);
    partition_msg_ready.assign(nparts, 0.0);
    master_writer.assign(num_vertices, kInvalidVertex);
    device_resident.assign(platform_.numDevices(), {});
    device_resident_bytes.assign(platform_.numDevices(), 0);
    ft_enabled = !options.faults.empty();
    if (ft_enabled) {
        injector = gpusim::FaultInjector(options.faults);
        smx_stall_factor.assign(
            static_cast<std::size_t>(platform_.numDevices()) *
                options.platform.smx_per_device,
            1.0);
    }
}

DeviceId
Transport::chooseDevice(PartitionId p, const Dispatcher &sched) const
{
    const double xfer_cost =
        options_->platform.transfer_latency_cycles +
        static_cast<double>(sched.partitionBytes(p)) /
            options_->platform.host_link_bytes_per_cycle;
    DeviceId best = kInvalidVertex;
    double best_start = 0.0;
    for (DeviceId d = 0; d < platform_.numDevices(); ++d) {
        const auto &device = platform_.device(d);
        if (device.failed())
            continue; // degrade: survivors absorb the dead device's share
        double start = device.smx(device.leastLoadedSmx()).clock();
        if (partition_device[p] != d)
            start += xfer_cost;
        // Small bonus per resident precursor: remote results are local.
        for (const PartitionId t : sched.precursors(p)) {
            if (partition_device[t] == d)
                start -=
                    options_->platform.transfer_latency_cycles * 0.05;
        }
        if (best == kInvalidVertex || start < best_start) {
            best = d;
            best_start = start;
        }
    }
    if (best == kInvalidVertex)
        panic("DiGraphEngine::chooseDevice: no alive device");
    return best;
}

double
Transport::ensureResident(PartitionId p, DeviceId dev, double issue_time,
                          const Dispatcher &sched,
                          metrics::RunReport &report)
{
    auto &resident = device_resident[dev];
    const auto it = std::find(resident.begin(), resident.end(), p);
    if (it != resident.end()) {
        // LRU touch.
        resident.erase(it);
        resident.push_back(p);
        return issue_time;
    }

    // Evict least-recently-used partitions until the batch fits.
    auto &used = device_resident_bytes[dev];
    const std::size_t bytes = sched.partitionBytes(p);
    auto &device = platform_.device(dev);
    while (!resident.empty() &&
           used + bytes > options_->platform.global_mem_bytes) {
        const PartitionId victim = resident.front();
        resident.erase(resident.begin());
        used -= sched.partitionBytes(victim);
        if (partition_device[victim] == dev)
            partition_device[victim] = kInvalidVertex;
        // Buffered results written back to host memory.
        device.hostLink().transfer(
            issue_time +
                transferFaultPenalty(sched.partitionBytes(victim),
                                     report),
            sched.partitionBytes(victim));
        report.comm_cycles +=
            device.hostLink().cost(sched.partitionBytes(victim));
    }
    resident.push_back(p);
    used += bytes;

    const double done = device.hostLink().transfer(
        issue_time + transferFaultPenalty(bytes, report), bytes);
    report.comm_cycles += device.hostLink().cost(bytes);
    counters_->add(metrics::Counter::HostTransferBytes, bytes);
    return done;
}

void
Transport::prefetchAll(PartitionId nparts, const Dispatcher &sched,
                       metrics::RunReport &report)
{
    // Contiguous blocks keep SCC-affine neighbor partitions on the
    // same device (the partition order is already dependency-sorted).
    std::size_t total_bytes = 0;
    for (PartitionId q = 0; q < nparts; ++q)
        total_bytes += sched.partitionBytes(q);
    const std::size_t per_dev = total_bytes / platform_.numDevices() + 1;
    std::size_t filled = 0;
    for (PartitionId q = 0; q < nparts; ++q) {
        const auto dev = static_cast<DeviceId>(std::min<std::size_t>(
            platform_.numDevices() - 1, filled / per_dev));
        filled += sched.partitionBytes(q);
        auto &device = platform_.device(dev);
        const double done = device.hostLink().transfer(
            transferFaultPenalty(sched.partitionBytes(q), report),
            sched.partitionBytes(q));
        report.comm_cycles +=
            device.hostLink().cost(sched.partitionBytes(q));
        counters_->add(metrics::Counter::HostTransferBytes,
                       sched.partitionBytes(q));
        partition_device[q] = dev;
        partition_done[q] = done;
        device_resident[dev].push_back(q);
        device_resident_bytes[dev] += sched.partitionBytes(q);
    }
}

double
Transport::masterRefreshPulls(DeviceId dev,
                              const std::vector<VertexId> &stale_vertices,
                              double ready, metrics::RunReport &report)
{
    std::vector<std::uint64_t> pull_bytes(platform_.numDevices(), 0);
    for (const VertexId v : stale_vertices) {
        const DeviceId home = master_writer[v];
        if (home != kInvalidVertex && home != dev)
            pull_bytes[home] += kMessageBytes;
    }
    const double issue = ready;
    for (DeviceId home = 0; home < platform_.numDevices(); ++home) {
        if (pull_bytes[home] == 0)
            continue;
        ready = std::max(
            ready,
            platform_.ring().transfer(
                home, dev,
                issue + transferFaultPenalty(pull_bytes[home], report),
                pull_bytes[home]));
        report.comm_cycles +=
            options_->platform.transfer_latency_cycles +
            static_cast<double>(pull_bytes[home]) /
                options_->platform.ring_bytes_per_cycle;
    }
    return ready;
}

double
Transport::chargeKernelRounds(
    PartitionId p, DeviceId dev, SmxId home_smx,
    const std::vector<std::vector<double>> &round_group_cycles,
    double ready, metrics::RunReport &report)
{
    auto &device = platform_.device(dev);
    for (const auto &group_cycles : round_group_cycles) {
        const double round_start = ready;
        double round_end = round_start;
        for (std::size_t k = 0; k < group_cycles.size(); ++k) {
            const SmxId sid = k == 0 ? home_smx : device.leastLoadedSmx();
            // An armed SMX stall slows this group's kernel down.
            const double cycles =
                group_cycles[k] * smxStallFactor(dev, sid);
            if (trace_ && k > 0) {
                trace_->event(metrics::TraceEventType::Steal,
                              trace_wave_, p, round_start, cycles, k,
                              sid);
            }
            round_end = std::max(
                round_end, device.smx(sid).run(round_start, cycles));
        }
        ready = round_end;
    }
    (void)report;
    return ready;
}

void
Transport::notifyActivations(
    DeviceId dev, const std::vector<PartitionId> &activated_parts,
    double ready, metrics::RunReport &report)
{
    std::vector<std::uint64_t> notify_bytes(platform_.numDevices(), 0);
    for (const PartitionId dest : activated_parts) {
        const DeviceId dd = partition_device[dest];
        if (dd != kInvalidVertex && dd != dev)
            notify_bytes[dd] += kMessageBytes;
    }
    std::vector<double> notify_arrive(platform_.numDevices(), ready);
    for (DeviceId dd = 0; dd < platform_.numDevices(); ++dd) {
        if (notify_bytes[dd] == 0)
            continue;
        notify_arrive[dd] = platform_.ring().transfer(
            dev, dd,
            ready + transferFaultPenalty(notify_bytes[dd], report),
            notify_bytes[dd]);
        report.comm_cycles +=
            options_->platform.transfer_latency_cycles +
            static_cast<double>(notify_bytes[dd]) /
                options_->platform.ring_bytes_per_cycle;
    }
    for (const PartitionId dest : activated_parts) {
        const DeviceId dd = partition_device[dest];
        const double arrive = (dd == kInvalidVertex || dd == dev)
                                  ? ready
                                  : notify_arrive[dd];
        partition_msg_ready[dest] =
            std::max(partition_msg_ready[dest], arrive);
    }
}

double
Transport::transferFaultPenalty(std::uint64_t bytes,
                                metrics::RunReport &report)
{
    if (!ft_enabled)
        return 0.0;
    const gpusim::TransferOutcome outcome = injector.attemptTransfer(
        static_cast<unsigned>(options_->max_transfer_retries),
        options_->transfer_backoff_cycles);
    if (outcome.attempts > 1) {
        const std::uint64_t retries = outcome.attempts - 1;
        counters_->add(metrics::Counter::TransferRetries, retries);
        if (trace_) {
            for (std::uint64_t k = 1; k <= retries; ++k) {
                trace_->event(metrics::TraceEventType::TransferRetry,
                              trace_wave_, metrics::kTraceNoPartition,
                              platform_.makespan(), 0.0, k, bytes);
            }
        }
        report.comm_cycles += outcome.delay_cycles;
    }
    if (!outcome.delivered) {
        fatal("DiGraphEngine: transfer of ", bytes,
              " bytes permanently failed after ", outcome.attempts,
              " attempts (max_transfer_retries=",
              options_->max_transfer_retries, ")");
    }
    return outcome.delay_cycles;
}

void
Transport::dropResidency()
{
    for (DeviceId d = 0; d < platform_.numDevices(); ++d) {
        device_resident[d].clear();
        device_resident_bytes[d] = 0;
    }
    std::fill(partition_device.begin(), partition_device.end(),
              kInvalidVertex);
}

} // namespace digraph::engine
