/**
 * @file
 * Transport layer of the execution substrate (DESIGN.md §12): the
 * simulated multi-GPU platform plus everything that moves bytes —
 * estimated-start-time device selection, LRU residency with writeback
 * eviction, the prefetch distribution, ring master-refresh pulls,
 * kernel-round charging (with work-stealing SMX selection), activation
 * notifications, and the PR 3 transfer retry/fault path.
 *
 * A Transport instance is per-job (it owns the job's simulated clocks
 * and residency maps). All methods run in the engine's *serial* phases;
 * the parallel compute phase only reads the wave-start residency via
 * partition_device.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "engine/dispatcher.hpp"
#include "engine/options.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/platform.hpp"
#include "metrics/counter_registry.hpp"
#include "metrics/run_report.hpp"
#include "metrics/trace.hpp"

namespace digraph::engine {

/** Bytes per mirror-sync message (vertex id + value). */
inline constexpr std::size_t kMessageBytes =
    sizeof(VertexId) + sizeof(Value);

class Transport
{
  public:
    // --- per-run state (reset by beginRun; mutated only in serial
    // phases, read-only during the parallel compute phase) ---
    std::vector<DeviceId> partition_device; // last residence
    std::vector<double> partition_done;      // last dispatch completion
    std::vector<double> partition_msg_ready; // last activation arrival
    /** Device that last wrote each vertex's master (buffered results stay
     *  in that device's global memory; other devices fetch via host). */
    std::vector<DeviceId> master_writer;
    std::vector<std::vector<PartitionId>> device_resident; // LRU order
    std::vector<std::size_t> device_resident_bytes;
    /** True when the run has an active FaultPlan. */
    bool ft_enabled = false;
    gpusim::FaultInjector injector;
    /** Per (device, smx) kernel-cycle multiplier (armed stalls). */
    std::vector<double> smx_stall_factor;

    explicit Transport(const gpusim::PlatformConfig &config)
        : platform_(config)
    {
    }

    gpusim::Platform &platform() { return platform_; }
    const gpusim::Platform &platform() const { return platform_; }

    /** Reset the platform and every per-run structure. @p counters may
     *  be null only if no method charging counters is called. */
    void beginRun(const EngineOptions &options, PartitionId nparts,
                  VertexId num_vertices,
                  metrics::CounterRegistry *counters);

    /** Wave context for trace events (written by the serial scheduler
     *  before the parallel phase, read-only during it). */
    void
    setTraceContext(metrics::TraceSink *trace, std::uint64_t wave,
                    double wave_sim)
    {
        trace_ = trace;
        trace_wave_ = wave;
        trace_wave_sim_ = wave_sim;
    }

    /**
     * Estimated-start-time dispatch: a device already holding the
     * partition (or many of its precursors' buffered results) skips the
     * host transfer, but a busy device must not hoard work — pick the
     * device minimizing (least-loaded SMX clock + required transfer
     * cost). This realizes both the paper's precursor affinity and the
     * multi-GPU spreading of the giant SCC-vertex.
     */
    DeviceId chooseDevice(PartitionId p, const Dispatcher &sched) const;

    /** Make partition @p p resident on @p dev (LRU touch, or evict +
     *  host-link upload); returns the completion time. */
    double ensureResident(PartitionId p, DeviceId dev, double issue_time,
                          const Dispatcher &sched,
                          metrics::RunReport &report);

    /** Distribute all partitions over the devices up front, streamed
     *  via the copy queues so kernels start without waiting on host
     *  memory (Section 3.2.2's advance transfer). Contiguous
     *  byte-balanced blocks keep SCC-affine neighbors together. */
    void prefetchAll(PartitionId nparts, const Dispatcher &sched,
                     metrics::RunReport &report);

    /** Ring master-refresh pulls for @p stale_vertices at dispatch
     *  replay: masters written on another device are pulled over the
     *  ring, one batch per source device; locally-written masters are
     *  free. Returns the updated ready time. */
    double masterRefreshPulls(DeviceId dev,
                              const std::vector<VertexId> &stale_vertices,
                              double ready, metrics::RunReport &report);

    /** Charge recorded kernel rounds to the device clocks, exactly as
     *  the interleaved execution would have: group 0 chains on
     *  @p home_smx, surplus groups steal the momentarily least-loaded
     *  SMX (Steal trace per stolen group). Returns the completion
     *  time. */
    double chargeKernelRounds(
        PartitionId p, DeviceId dev, SmxId home_smx,
        const std::vector<std::vector<double>> &round_group_cycles,
        double ready, metrics::RunReport &report);

    /** Ring notification transfers to the partitions in
     *  @p activated_parts (sorted/deduped) woken by partition @p p's
     *  barrier; advances their partition_msg_ready. */
    void notifyActivations(DeviceId dev,
                           const std::vector<PartitionId> &activated_parts,
                           double ready, metrics::RunReport &report);

    /** Issue-time penalty of the transfer-drop coin for one transfer of
     *  @p bytes: 0 when delivered first try, the accumulated exponential
     *  backoff otherwise; hard-aborts when the retry budget is
     *  exhausted. Every simulated transfer issue passes through this. */
    double transferFaultPenalty(std::uint64_t bytes,
                                metrics::RunReport &report);

    /** Kernel-cycle multiplier of (device, smx) under active stalls. */
    double
    smxStallFactor(DeviceId d, SmxId s) const
    {
        return ft_enabled
                   ? smx_stall_factor[static_cast<std::size_t>(d) *
                                          options_->platform
                                              .smx_per_device +
                                      s]
                   : 1.0;
    }

    /** Drop every partition's device residency (device-loss recovery:
     *  the next dispatch re-uploads from the host checkpoint). */
    void dropResidency();

  private:
    gpusim::Platform platform_;
    const EngineOptions *options_ = nullptr;
    metrics::CounterRegistry *counters_ = nullptr;
    metrics::TraceSink *trace_ = nullptr;
    std::uint64_t trace_wave_ = 0;
    double trace_wave_sim_ = 0.0;
};

} // namespace digraph::engine
