#include "engine/evolving.hpp"

#include <algorithm>

#include "common/timer.hpp"

namespace digraph::engine {

EvolvingEngine::EvolvingEngine(graph::DirectedGraph initial,
                               EngineOptions options,
                               EvolvingOptions evolve)
    : graph_(std::move(initial)), options_(std::move(options)),
      evolve_options_(evolve)
{
    rebuildFull(nullptr, nullptr);
}

void
EvolvingEngine::rebuildFull(
    std::shared_ptr<partition::SortedAdjacency> cache,
    EvolvingStepReport *step)
{
    EngineOptions opts = options_;
    opts.resolvePartitionBudget(graph_.numEdges());
    WallTimer timer;
    pre_ = partition::preprocess(graph_, opts.preprocess,
                                 std::move(cache));
    if (step)
        step->preprocess_seconds = timer.seconds();
    timer.reset();
    engine_ = std::make_unique<DiGraphEngine>(graph_, pre_, opts);
    if (step)
        step->engine_seconds = timer.seconds();
    appended_since_full_ = 0;
}

EvolvingStepReport
EvolvingEngine::run(const algorithms::Algorithm &algo)
{
    EvolvingStepReport step;
    step.run = engine_->run(algo);
    step.preprocess_seconds = pre_.timings.total();
    last_state_[algo.name()] = step.run.final_state;
    return step;
}

EvolvingStepReport
EvolvingEngine::insertAndRun(const algorithms::Algorithm &algo,
                             const std::vector<graph::Edge> &new_edges)
{
    EvolvingStepReport step;
    WallTimer timer;

    // Normalize the batch (hash-set first-occurrence dedupe, self-loop
    // and already-present filter) and extend the CSR in one journaled
    // row-merge pass — no re-sort of the m existing edges.
    graph::GraphDelta delta =
        graph::GraphBuilder::append(graph_, new_edges);
    graph_ = std::move(delta.graph);
    ++batches_;
    step.inserted_edges = delta.fresh.size();
    step.graph_seconds = timer.seconds();

    if (!delta.fresh.empty()) {
        appended_since_full_ += delta.fresh.size();
        const bool too_dirty =
            evolve_options_.full_rebuild_fraction > 0.0 &&
            static_cast<double>(appended_since_full_) >
                evolve_options_.full_rebuild_fraction *
                    static_cast<double>(graph_.numEdges());
        if (evolve_options_.incremental && !too_dirty) {
            EngineOptions opts = options_;
            opts.resolvePartitionBudget(graph_.numEdges());
            timer.reset();
            pre_ = partition::appendPreprocess(std::move(pre_), graph_,
                                               delta, opts.preprocess);
            step.preprocess_seconds = timer.seconds();
            step.incremental = true;
            step.reused_paths = pre_.incremental_stats.reused_paths;
            step.new_paths = pre_.incremental_stats.new_paths;
            timer.reset();
            engine_ =
                std::make_unique<DiGraphEngine>(graph_, pre_, opts);
            step.engine_seconds = timer.seconds();
        } else {
            // Full pipeline. The structure-quality fallback inside
            // incremental mode still reuses the adjacency cache (patched
            // through the journal); plain full mode reuses nothing — it
            // is the pre-incremental baseline benchmarks compare
            // against.
            std::shared_ptr<partition::SortedAdjacency> cache;
            if (evolve_options_.incremental && pre_.sorted_adjacency) {
                pre_.sorted_adjacency->applyDelta(graph_, delta);
                cache = pre_.sorted_adjacency;
            }
            rebuildFull(std::move(cache), &step);
        }
    }
    // An empty accepted batch leaves the graph identical (the journal is
    // an identity), so the existing structures and engine stay valid.

    auto it = last_state_.find(algo.name());
    const bool can_warm = algo.supportsIncremental() &&
                          it != last_state_.end() &&
                          it->second.size() <= graph_.numVertices();
    if (can_warm) {
        // Extend the previous fixed point to any newly appearing
        // vertices and activate the insertion endpoints.
        std::vector<Value> state = it->second;
        for (VertexId v = static_cast<VertexId>(state.size());
             v < graph_.numVertices(); ++v) {
            state.push_back(algo.initVertex(graph_, v));
        }
        std::vector<VertexId> seeds;
        seeds.reserve(delta.fresh.size() * 2);
        for (const graph::Edge &e : delta.fresh) {
            seeds.push_back(e.src);
            if (e.dst < delta.old_num_vertices)
                seeds.push_back(e.dst);
        }
        std::sort(seeds.begin(), seeds.end());
        seeds.erase(std::unique(seeds.begin(), seeds.end()),
                    seeds.end());

        // Existing edges resume with warm-consistent caches; inserted
        // edges start fresh so their contribution is pushed. Which is
        // which comes straight from the delta journal — O(|batch|)
        // marking instead of per-edge hasEdge probes against a retained
        // copy of the old graph.
        std::vector<std::uint8_t> inserted(graph_.numEdges(), 0);
        for (const EdgeId e : delta.fresh_ids)
            inserted[e] = 1;
        std::vector<Value> edge_state(graph_.numEdges());
        for (EdgeId e = 0; e < graph_.numEdges(); ++e) {
            edge_state[e] =
                inserted[e]
                    ? algo.initEdge(graph_, e)
                    : algo.warmEdgeState(graph_, e,
                                         state[graph_.edgeSource(e)]);
        }

        WarmStart warm;
        warm.vertex_state = &state;
        warm.edge_state = &edge_state;
        warm.active_vertices = &seeds;
        step.run = engine_->run(algo, &warm);
        step.warm = true;
    } else {
        step.run = engine_->run(algo);
        step.warm = false;
    }
    last_state_[algo.name()] = step.run.final_state;
    return step;
}

} // namespace digraph::engine
