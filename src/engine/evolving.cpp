#include "engine/evolving.hpp"

#include <algorithm>

#include "common/timer.hpp"

namespace digraph::engine {

EvolvingEngine::EvolvingEngine(graph::DirectedGraph initial,
                               EngineOptions options)
    : graph_(std::move(initial)), options_(std::move(options))
{
    rebuild();
}

void
EvolvingEngine::rebuild()
{
    engine_ = std::make_unique<DiGraphEngine>(graph_, options_);
}

EvolvingStepReport
EvolvingEngine::run(const algorithms::Algorithm &algo)
{
    EvolvingStepReport step;
    step.run = engine_->run(algo);
    step.preprocess_seconds = engine_->preprocessSeconds();
    last_state_[algo.name()] = step.run.final_state;
    return step;
}

EvolvingStepReport
EvolvingEngine::insertAndRun(const algorithms::Algorithm &algo,
                             const std::vector<graph::Edge> &new_edges)
{
    // Grow the snapshot (existing (src, dst) pairs are kept as-is).
    // A batch may repeat a pair; only its first occurrence counts, so
    // dedupe before the hasEdge filter — otherwise the repeats slip
    // through (the graph does not contain the pair yet) and inflate
    // `fresh`, which seeds the warm start and classifies edges as
    // inserted-vs-existing below.
    std::vector<graph::Edge> fresh;
    fresh.reserve(new_edges.size());
    for (const graph::Edge &e : new_edges) {
        if (e.src == e.dst || graph_.hasEdge(e.src, e.dst))
            continue;
        const bool seen_in_batch =
            std::any_of(fresh.begin(), fresh.end(),
                        [&](const graph::Edge &f) {
                            return f.src == e.src && f.dst == e.dst;
                        });
        if (!seen_in_batch)
            fresh.push_back(e);
    }
    const VertexId old_n = graph_.numVertices();
    graph::DirectedGraph old_graph = std::move(graph_);
    {
        graph::GraphBuilder builder(old_n);
        builder.addEdges(old_graph.edgeList());
        builder.addEdges(fresh);
        graph_ = builder.build();
    }
    ++batches_;

    WallTimer timer;
    rebuild(); // re-run the (parallel, cheap) path pipeline

    EvolvingStepReport step;
    step.preprocess_seconds = timer.seconds();

    auto it = last_state_.find(algo.name());
    const bool can_warm = algo.supportsIncremental() &&
                          it != last_state_.end() &&
                          it->second.size() <= graph_.numVertices();
    if (can_warm) {
        // Extend the previous fixed point to any newly appearing
        // vertices and activate the insertion sources.
        std::vector<Value> state = it->second;
        for (VertexId v = static_cast<VertexId>(state.size());
             v < graph_.numVertices(); ++v) {
            state.push_back(algo.initVertex(graph_, v));
        }
        std::vector<VertexId> seeds;
        seeds.reserve(fresh.size() * 2);
        for (const graph::Edge &e : fresh) {
            seeds.push_back(e.src);
            if (e.dst < old_n)
                seeds.push_back(e.dst);
        }
        std::sort(seeds.begin(), seeds.end());
        seeds.erase(std::unique(seeds.begin(), seeds.end()),
                    seeds.end());

        // Existing edges resume with warm-consistent caches; the
        // inserted edges start fresh so their contribution is pushed.
        std::vector<Value> edge_state(graph_.numEdges());
        for (EdgeId e = 0; e < graph_.numEdges(); ++e) {
            const VertexId src = graph_.edgeSource(e);
            const bool existed =
                src < old_n &&
                old_graph.hasEdge(src, graph_.edgeTarget(e));
            edge_state[e] =
                existed ? algo.warmEdgeState(graph_, e, state[src])
                        : algo.initEdge(graph_, e);
        }

        WarmStart warm;
        warm.vertex_state = &state;
        warm.edge_state = &edge_state;
        warm.active_vertices = &seeds;
        step.run = engine_->run(algo, &warm);
        step.warm = true;
    } else {
        step.run = engine_->run(algo);
        step.warm = false;
    }
    last_state_[algo.name()] = step.run.final_state;
    return step;
}

} // namespace digraph::engine
