/**
 * @file
 * Concurrent-job manager over one shared execution substrate
 * (DESIGN.md §12): N jobs — each an algorithm spec — run against a
 * single immutable EngineSubstrate (Preprocessed + PathLayout +
 * ReplicaSync + Dispatcher), each job owning only its private
 * ValuePlane and Transport. The substrate is built once; what an extra
 * job costs is DiGraphEngine::jobStateBytes(), not another copy of the
 * topology.
 *
 * Jobs are mutually isolated (no shared mutable state), so running them
 * concurrently over the thread pool produces results bit-identical to
 * running them one at a time, in any order, at any thread count.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/options.hpp"
#include "engine/substrate.hpp"
#include "graph/digraph.hpp"
#include "metrics/counter_registry.hpp"
#include "metrics/run_report.hpp"
#include "metrics/trace.hpp"

namespace digraph::engine {

/** One job's outputs after JobManager::runAll(). */
struct JobResult
{
    /** The "name[:param]" spec the job was queued with. */
    std::string spec;
    /** The full run report (final state, counters, timings). */
    metrics::RunReport report;
    /** The job engine's counter totals (equal to the report
     *  aggregates). */
    metrics::CounterRegistry counters;
    /** Per-job trace sink (null unless runAll(with_traces=true)). */
    std::shared_ptr<metrics::TraceSink> trace;
    /** Host bytes of the job's private state (ValuePlane + transport
     *  bookkeeping). */
    std::size_t job_state_bytes = 0;
};

/**
 * Runs N algorithm jobs concurrently on one shared substrate.
 */
class JobManager
{
  public:
    /** Preprocess @p g once and share the substrate across jobs. */
    JobManager(const graph::DirectedGraph &g, EngineOptions options);

    /** Adopt a prebuilt substrate (e.g. from another engine's
     *  substrate()). @pre sub was built for @p g. */
    JobManager(const graph::DirectedGraph &g,
               std::shared_ptr<const EngineSubstrate> sub,
               EngineOptions options);

    /** Queue one job from a "name[:param]" algorithm spec (validated at
     *  runAll() via makeAlgorithmSpec). */
    void addJob(const std::string &spec) { specs_.push_back(spec); }

    /** Queue jobs from a comma-separated spec list — the CLI --jobs
     *  syntax, e.g. "sssp:0,pagerank,wcc". Fatal on an empty entry. */
    void addJobs(const std::string &comma_specs);

    std::size_t numJobs() const { return specs_.size(); }

    /**
     * Run every queued job to convergence, one engine per job over the
     * shared substrate, distributed round-robin over a thread pool of
     * min(jobs, engineThreads()). Results are in queue order and
     * independent of the interleaving.
     * @param with_traces Give each job a private TraceSink (returned in
     *        its JobResult).
     */
    std::vector<JobResult> runAll(bool with_traces = false);

    /** The shared immutable substrate. */
    const std::shared_ptr<const EngineSubstrate> &substrate() const
    {
        return sub_;
    }

    /** Host bytes of the shared substrate (paid once, not per job). */
    std::size_t sharedBytes() const { return sub_->memoryBytes(); }

  private:
    const graph::DirectedGraph &g_;
    EngineOptions options_;
    std::shared_ptr<const EngineSubstrate> sub_;
    std::vector<std::string> specs_;
};

} // namespace digraph::engine
