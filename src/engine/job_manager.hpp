/**
 * @file
 * Concurrent-job manager over one shared execution substrate
 * (DESIGN.md §12): N jobs — each an algorithm spec — run against a
 * single immutable EngineSubstrate (Preprocessed + PathLayout +
 * ReplicaSync + Dispatcher), each job owning only its private
 * ValuePlane and Transport. The substrate is built once; what an extra
 * job costs is DiGraphEngine::jobStateBytes(), not another copy of the
 * topology.
 *
 * Since the GraphService daemon (DESIGN.md §15) this is a thin batch
 * front-end: runAll() opens a service session in batch mode (no
 * preemption, no quotas), submits every queued spec, and drains. The
 * session's thread budget is divided fairly across in-flight jobs —
 * two jobs on an 8-thread session get 4 threads each, not 1 each —
 * and shrinking shares rebalance as jobs finish. Jobs are mutually
 * isolated (no shared mutable state), so results stay bit-identical to
 * dedicated single-job runs, in any order, at any thread count.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/graph_service.hpp"
#include "engine/options.hpp"
#include "engine/substrate.hpp"
#include "graph/digraph.hpp"

namespace digraph::engine {

/**
 * Runs N algorithm jobs concurrently on one shared substrate.
 */
class JobManager
{
  public:
    /** Preprocess @p g once and share the substrate across jobs. */
    JobManager(const graph::DirectedGraph &g, EngineOptions options);

    /** Adopt a prebuilt substrate (e.g. from another engine's
     *  substrate()). @pre sub was built for @p g (vertex AND edge
     *  totals checked). */
    JobManager(const graph::DirectedGraph &g,
               std::shared_ptr<const EngineSubstrate> sub,
               EngineOptions options);

    /** Queue one job from a "name[:param]" algorithm spec (validated at
     *  runAll() via makeAlgorithmSpec). */
    void addJob(const std::string &spec) { specs_.push_back(spec); }

    /** Queue jobs from a comma-separated spec list — the CLI --jobs
     *  syntax, e.g. "sssp:0,pagerank,wcc". Entries are trimmed of
     *  surrounding whitespace and empty entries (trailing/doubled
     *  commas) are skipped; fatal only when the list yields no jobs
     *  at all. */
    void addJobs(const std::string &comma_specs);

    std::size_t numJobs() const { return specs_.size(); }

    /**
     * Run every queued job to convergence over the shared substrate via
     * a batch-mode GraphService session. Results are in queue order and
     * independent of the interleaving.
     * @param with_traces Give each job a private TraceSink (returned in
     *        its JobResult).
     */
    std::vector<JobResult> runAll(bool with_traces = false);

    /** The shared immutable substrate. */
    const std::shared_ptr<const EngineSubstrate> &substrate() const
    {
        return sub_;
    }

    /** Host bytes of the shared substrate (paid once, not per job). */
    std::size_t sharedBytes() const { return sub_->memoryBytes(); }

  private:
    const graph::DirectedGraph &g_;
    EngineOptions options_;
    std::shared_ptr<const EngineSubstrate> sub_;
    std::vector<std::string> specs_;
};

} // namespace digraph::engine
