/**
 * @file
 * Per-job value plane of the execution substrate (DESIGN.md §12): every
 * piece of *mutable* run state one job owns — the four-array value
 * storage (V_val/S_val/E_val over a shared PathLayout), activation
 * bitsets and incremental worklists, master version clocks, and the
 * checkpoint copy-on-write shadows of the fault layer.
 *
 * Ownership rule: the shared substrate layers (ReplicaSync, Dispatcher)
 * are read-only; anything a run mutates lives here, so N concurrent
 * jobs over one substrate are fully isolated by giving each its own
 * ValuePlane. Within one job, a partition's slice of the plane
 * (activation flags, worklist, dirty set) is touched only by the
 * dispatch owning that partition during a wave's compute phase, and by
 * the serial barrier otherwise.
 *
 * The flat-mode arrays serve the baseline engines (BSP/async/
 * sequential), which iterate on plain per-vertex/per-edge state without
 * path storage; they share the plane type so snapshotting, convergence
 * sweeps, and reporting are uniform across engine families.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "common/types.hpp"
#include "engine/replica_sync.hpp"
#include "graph/digraph.hpp"
#include "partition/preprocess.hpp"
#include "storage/path_storage.hpp"

namespace digraph::engine {

/** Warm-start input for a run: converged states from a previous run
 *  plus the vertices whose neighborhood changed. */
struct WarmStart
{
    /** Vertex states to resume from (size = numVertices). */
    const std::vector<Value> *vertex_state = nullptr;
    /** Explicit per-edge caches (size = numEdges); when null they are
     *  derived via Algorithm::warmEdgeState(). */
    const std::vector<Value> *edge_state = nullptr;
    /** Activation seed (e.g. sources of inserted edges). */
    const std::vector<VertexId> *active_vertices = nullptr;
};

/**
 * All mutable per-job state of one engine run.
 */
class ValuePlane
{
  public:
    // --- four-array value storage (path engines) ---
    storage::PathStorage storage;

    // --- activation / version state (path engines) ---
    /** Chain activation within the current dispatch (set by processed
     *  edges and local refreshes). */
    std::vector<std::uint8_t> slot_active;
    /** Master change counter per vertex; a source slot whose seen
     *  version lags must re-propagate (cross-partition activation
     *  without per-slot broadcasts). */
    std::vector<std::uint32_t> master_version;
    /** Last master version each source slot has propagated. */
    std::vector<std::uint32_t> slot_seen_version;
    std::vector<std::uint8_t> partition_active;

    // --- incremental worklists (partition-sliced) ---
    /** Active source slots per path (incremental activation counter). */
    std::vector<std::uint32_t> path_active_count;
    /** Whether the path currently sits in its partition's worklist. */
    std::vector<std::uint8_t> path_in_worklist;
    /** Per partition: paths with (possibly) active slots; swept lazily
     *  each local round, so active-path collection is O(active paths)
     *  instead of O(partition slots). */
    std::vector<std::vector<PathId>> partition_worklist;
    /** Per partition: vertices whose master version bumped since the
     *  partition last absorbed them (fed at the wave barrier; consumed
     *  at dispatch start instead of a full slot-range version scan). */
    std::vector<std::vector<VertexId>> stale_queue;
    /** Per partition: dirty-slot worklist for the mirror-push phase. */
    std::vector<storage::SlotDirtySet> partition_dirty;

    // --- checkpoint COW state (fault layer; allocated only when fault
    // tolerance is enabled) ---
    /** Shadow copy of V_val at the last checkpoint epoch. */
    std::vector<Value> ckpt_v;
    /** Shadow copy of E_val at the last checkpoint epoch. */
    std::vector<Value> ckpt_e;
    /** Masters mutated since the last epoch (flag + journal). */
    std::vector<std::uint8_t> ckpt_v_dirty;
    std::vector<VertexId> ckpt_v_dirty_list;
    /** Partitions whose E_val slice was dispatched since the epoch. */
    std::vector<std::uint8_t> ckpt_part_dirty;
    std::vector<PartitionId> ckpt_part_dirty_list;
    /** Wave of the last checkpoint epoch. */
    std::uint64_t ckpt_wave = 0;

    // --- flat-mode state (baseline engines) ---
    /** Per-vertex values (current iterate). */
    std::vector<Value> vertex_values;
    /** Per-vertex values of the next iterate (BSP double buffer). */
    std::vector<Value> vertex_values_next;
    /** Per-edge cached values. */
    std::vector<Value> edge_values;
    /** Per-vertex activation flags (current round). */
    std::vector<std::uint8_t> vertex_active;
    /** Per-vertex activation flags being built for the next round. */
    std::vector<std::uint8_t> vertex_active_next;

    /** Bind the storage to @p layout, sharing the immutable topology
     *  (the substrate path; fresh value arrays are allocated). */
    void
    bindLayout(std::shared_ptr<const storage::PathLayout> layout,
               VertexId num_vertices)
    {
        storage = storage::PathStorage(std::move(layout), num_vertices);
    }

    /** Attach the shared replica indexes the inline activation
     *  bookkeeping consults. Must precede beginRun(). */
    void attach(const ReplicaSync *sync) { sync_ = sync; }

    /** Reset/resize every per-run structure for a run over @p pre
     *  (storage values are initialized separately). */
    void beginRun(const partition::Preprocessed &pre);

    /** Initialize the four arrays from @p algo (or from @p warm).
     *  @throws via panic() on warm-start size mismatches. */
    void initializeState(const graph::DirectedGraph &g,
                         const algorithms::Algorithm &algo,
                         const WarmStart *warm);

    /** Allocate/initialize the flat-mode arrays from @p algo.
     *  @param double_buffer Also materialize vertex_values_next /
     *  vertex_active_next (BSP). */
    void initFlat(const graph::DirectedGraph &g,
                  const algorithms::Algorithm &algo, bool double_buffer);

    /** Set a slot's activation flag, maintaining the per-path active
     *  counter and the owning partition's path worklist. Only the
     *  partition owning the slot may call this (partition-sliced
     *  state, safe under concurrent wave dispatches). */
    void
    activateSlot(std::uint64_t slot)
    {
        if (slot_active[slot])
            return;
        slot_active[slot] = 1;
        const PathId q = sync_->pathOfSlot(slot);
        if (path_active_count[q]++ == 0 && !path_in_worklist[q]) {
            path_in_worklist[q] = 1;
            partition_worklist[sync_->partitionOfPath(q)].push_back(q);
        }
    }

    /** Clear a processed slot's activation flag (counter bookkeeping). */
    void
    deactivateSlot(std::uint64_t slot)
    {
        if (slot_active[slot]) {
            slot_active[slot] = 0;
            --path_active_count[sync_->pathOfSlot(slot)];
        }
    }

    /** Journal a master mutation since the last checkpoint epoch. */
    void
    markVertexDirty(VertexId v)
    {
        if (!ckpt_v_dirty[v]) {
            ckpt_v_dirty[v] = 1;
            ckpt_v_dirty_list.push_back(v);
        }
    }

    /** Journal a partition whose E_val slice a dispatch may mutate. */
    void
    markPartitionDirty(PartitionId p)
    {
        if (!ckpt_part_dirty[p]) {
            ckpt_part_dirty[p] = 1;
            ckpt_part_dirty_list.push_back(p);
        }
    }

    /** Take the epoch-0 checkpoint (full V_val + E_val copy) and reset
     *  the dirty journals. */
    void initCheckpoint(const graph::DirectedGraph &g,
                        const partition::Preprocessed &pre);

    /** Copy partition @p p's E_val slice between live and shadow
     *  arrays (@p to_checkpoint: live -> shadow, else shadow -> live). */
    void copyPartitionEval(const partition::Preprocessed &pre,
                           PartitionId p, bool to_checkpoint);

    /**
     * Validate the incremental activation bookkeeping (tests): per-path
     * active-slot counters must equal a full recount of slot flags, and
     * every path with a nonzero counter must sit in its partition's
     * worklist. O(total slots) — debug/tests only.
     */
    bool bookkeepingConsistent(const partition::Preprocessed &pre) const;

    /** Host bytes of every per-job array this plane owns (value
     *  storage, activation/worklist state, checkpoint shadows, flat
     *  arrays) — excludes the shared layout and indexes. */
    std::size_t memoryBytes() const;

  private:
    const ReplicaSync *sync_ = nullptr;
};

} // namespace digraph::engine
