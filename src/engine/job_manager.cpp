#include "engine/job_manager.hpp"

#include "common/logging.hpp"
#include "partition/preprocess.hpp"

namespace digraph::engine {

JobManager::JobManager(const graph::DirectedGraph &g,
                       EngineOptions options)
    : g_(g), options_(std::move(options))
{
    if (const std::string err = options_.validate(); !err.empty())
        fatal("JobManager: invalid options: ", err);
    options_.resolvePartitionBudget(g.numEdges());
    sub_ = EngineSubstrate::build(
        g, partition::preprocess(g, options_.preprocess));
}

JobManager::JobManager(const graph::DirectedGraph &g,
                       std::shared_ptr<const EngineSubstrate> sub,
                       EngineOptions options)
    : g_(g), options_(std::move(options)), sub_(std::move(sub))
{
    if (!sub_)
        fatal("JobManager: null shared substrate");
    if (sub_->pre.paths.numEdges() != g.numEdges()) {
        fatal("JobManager: shared substrate covers ",
              sub_->pre.paths.numEdges(), " edges but the graph has ",
              g.numEdges());
    }
    if (sub_->num_vertices != g.numVertices()) {
        fatal("JobManager: shared substrate was built for ",
              sub_->num_vertices, " vertices but the graph has ",
              g.numVertices());
    }
}

void
JobManager::addJobs(const std::string &comma_specs)
{
    const std::size_t before = specs_.size();
    std::size_t begin = 0;
    while (begin <= comma_specs.size()) {
        std::size_t end = comma_specs.find(',', begin);
        if (end == std::string::npos)
            end = comma_specs.size();
        std::string spec = comma_specs.substr(begin, end - begin);
        // Tolerate shell artifacts: surrounding whitespace and empty
        // entries from trailing/doubled commas.
        const std::size_t first = spec.find_first_not_of(" \t");
        if (first == std::string::npos) {
            begin = end + 1;
            continue;
        }
        spec = spec.substr(first,
                           spec.find_last_not_of(" \t") - first + 1);
        addJob(spec);
        begin = end + 1;
    }
    if (specs_.size() == before) {
        fatal("JobManager: no job specs in list '", comma_specs, "'");
    }
}

std::vector<JobResult>
JobManager::runAll(bool with_traces)
{
    if (specs_.empty())
        return {};

    // Batch mode: no preemption quantum, no quotas or budgets — every
    // job runs to convergence under the service's fair thread split
    // (the session budget divided across in-flight jobs, rebalanced at
    // wave boundaries as jobs finish).
    ServiceConfig config;
    config.quantum_waves = 0;
    config.with_traces = with_traces;
    GraphService service(g_, sub_, options_, config);
    for (const std::string &spec : specs_)
        service.addJobAsync(spec);
    return service.drain();
}

} // namespace digraph::engine
