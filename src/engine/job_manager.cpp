#include "engine/job_manager.hpp"

#include <algorithm>
#include <thread>

#include "algorithms/factory.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "engine/digraph_engine.hpp"
#include "partition/preprocess.hpp"

namespace digraph::engine {

JobManager::JobManager(const graph::DirectedGraph &g,
                       EngineOptions options)
    : g_(g), options_(std::move(options))
{
    if (const std::string err = options_.validate(); !err.empty())
        fatal("JobManager: invalid options: ", err);
    options_.resolvePartitionBudget(g.numEdges());
    sub_ = EngineSubstrate::build(
        g, partition::preprocess(g, options_.preprocess));
}

JobManager::JobManager(const graph::DirectedGraph &g,
                       std::shared_ptr<const EngineSubstrate> sub,
                       EngineOptions options)
    : g_(g), options_(std::move(options)), sub_(std::move(sub))
{
    if (!sub_)
        fatal("JobManager: null shared substrate");
    if (sub_->pre.paths.numEdges() != g.numEdges()) {
        fatal("JobManager: shared substrate covers ",
              sub_->pre.paths.numEdges(), " edges but the graph has ",
              g.numEdges());
    }
}

void
JobManager::addJobs(const std::string &comma_specs)
{
    std::size_t begin = 0;
    while (begin <= comma_specs.size()) {
        std::size_t end = comma_specs.find(',', begin);
        if (end == std::string::npos)
            end = comma_specs.size();
        const std::string spec = comma_specs.substr(begin, end - begin);
        if (spec.empty()) {
            fatal("JobManager: empty job entry in spec '", comma_specs,
                  "'");
        }
        addJob(spec);
        begin = end + 1;
    }
}

std::vector<JobResult>
JobManager::runAll(bool with_traces)
{
    std::vector<JobResult> results(specs_.size());
    if (specs_.empty())
        return results;

    // Engines are built serially (they only read the shared substrate,
    // but algorithm construction may precompute per-graph tables), then
    // run concurrently: one pool task per job, claimed round-robin by
    // min(jobs, engineThreads()) workers. Each job parallelizes its own
    // waves only when it has the threads to itself (a single job keeps
    // the session's engine_threads; concurrent jobs run their waves
    // serially so N jobs use N workers, not N * engine_threads).
    std::vector<std::unique_ptr<DiGraphEngine>> engines;
    std::vector<algorithms::AlgorithmPtr> algos;
    engines.reserve(specs_.size());
    algos.reserve(specs_.size());
    EngineOptions job_options = options_;
    if (specs_.size() > 1)
        job_options.engine_threads = 1;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        algos.push_back(algorithms::makeAlgorithmSpec(specs_[i], g_));
        engines.push_back(
            std::make_unique<DiGraphEngine>(g_, sub_, job_options));
        results[i].spec = specs_[i];
        if (with_traces) {
            results[i].trace = std::make_shared<metrics::TraceSink>();
            engines[i]->setTrace(results[i].trace.get());
        }
    }

    // Worker count comes from the SESSION's thread budget, not the
    // per-job override above (which would always be 1 for >1 job).
    const std::size_t session_threads =
        options_.engine_threads
            ? options_.engine_threads
            : std::max(1u, std::thread::hardware_concurrency());
    const std::size_t workers = std::min(specs_.size(), session_threads);
    ThreadPool pool(workers);
    pool.forEachIndex(specs_.size(), [&](std::size_t i) {
        results[i].report = engines[i]->run(*algos[i]);
        results[i].counters = engines[i]->counters();
        results[i].job_state_bytes = engines[i]->jobStateBytes();
    });
    return results;
}

} // namespace digraph::engine
