/**
 * @file
 * Shared convergence sweeps (DESIGN.md §12): every engine family ends a
 * round by asking "is any activation flag still set?". The three
 * baselines used to carry private copies of this loop; they and the
 * path engine now share these helpers so the convergence semantics can
 * only diverge in one place.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace digraph::engine {

/** True when any flag in @p flags is set (vertex- or partition-level
 *  activation sweep). */
inline bool
anyActive(const std::vector<std::uint8_t> &flags)
{
    return std::any_of(flags.begin(), flags.end(),
                       [](std::uint8_t f) { return f != 0; });
}

/** Subset-over-order variant: true when any flags[order[i]] is set for
 *  i in [begin, end) — the sequential-topological engine sweeps one
 *  SCC's contiguous slice of its vertex order. */
inline bool
anyActiveAmong(const std::vector<std::uint8_t> &flags,
               const std::vector<VertexId> &order, std::size_t begin,
               std::size_t end)
{
    for (std::size_t i = begin; i < end; ++i) {
        if (flags[order[i]])
            return true;
    }
    return false;
}

} // namespace digraph::engine
