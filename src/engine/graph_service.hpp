/**
 * @file
 * GraphService: a long-lived graph-processing session with two-level
 * job scheduling over one shared execution substrate (DESIGN.md §15).
 *
 * Where JobManager ran a fixed batch and exited, a GraphService stays
 * up: it owns one immutable EngineSubstrate and accepts a *stream* of
 * job requests (addJobAsync / poll / drain; the CLI's `--serve` batch
 * front-end sits on top). Jobs carry a tenant and a priority, and the
 * inter-job scheduler (engine/job_scheduler.hpp) places them into the
 * session's execution slots with
 *
 *  - admission control: a configurable in-flight job-state byte budget
 *    (a job's ValuePlane + transport bookkeeping) — jobs past it queue,
 *    and past the queue limit they are rejected at submission;
 *  - per-tenant quotas on started (running or parked) jobs;
 *  - priority queues with FIFO age inside each class;
 *  - preemption at wave boundaries: a running engine parks right after
 *    its merge barrier via the WaveControl hook. Nothing is
 *    snapshotted — the job's ValuePlane IS its suspended state — and a
 *    resumed run is bit-identical to an uninterrupted one;
 *  - dynamic thread allocation: the session's worker-thread budget is
 *    divided fairly across running jobs and rebalanced at every wave
 *    boundary (replacing JobManager's old all-or-one split);
 *  - co-scheduling: within a priority class the scheduler prefers jobs
 *    whose partition worklists overlap what is already running, so
 *    concurrent jobs share substrate *cache residency*, not just
 *    substrate memory.
 *
 * Every admitted job runs on its own host thread; all scheduling
 * decisions are serialized under one session mutex, and the engine's
 * thread-count/park independence guarantees make results identical to
 * dedicated single-job runs regardless of the schedule.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/factory.hpp"
#include "engine/job_scheduler.hpp"
#include "engine/options.hpp"
#include "engine/substrate.hpp"
#include "engine/wave_control.hpp"
#include "graph/digraph.hpp"
#include "metrics/counter_registry.hpp"
#include "metrics/run_report.hpp"
#include "metrics/trace.hpp"

namespace digraph::storage {
class JobJournal;
} // namespace digraph::storage

namespace digraph::engine {

class DiGraphEngine;

/** Job handle (dense, in submission order). */
using JobId = std::uint64_t;

/** Lifecycle of a submitted job. */
enum class JobState : std::uint8_t {
    /** Admitted, waiting for its first execution slot. */
    Queued,
    /** Occupying a slot (may be between waves inside the engine). */
    Running,
    /** Preempted at a wave boundary; ValuePlane live, awaiting a
     *  new grant. */
    Parked,
    /** Ran to convergence; result available. */
    Done,
    /** Refused at submission (admission control); never ran. */
    Rejected,
};

/** Stable display name of a job state. */
const char *jobStateName(JobState s);

/** One job request: an algorithm spec plus scheduling attributes. */
struct JobRequest
{
    /** "name[:param]" algorithm spec (makeAlgorithmSpec syntax). */
    std::string spec;
    /** Tenant the job is accounted to (quota key). */
    std::string tenant = "default";
    /** Higher runs first; ties are FIFO. */
    int priority = 0;
    /** WAL record id to adopt instead of journaling a fresh admission
     *  (restart resume of a compacted pending job; see
     *  storage::JobJournal). Default: journal a fresh record. */
    std::uint64_t journal_id = ~static_cast<std::uint64_t>(0);
};

/** One job's outputs (also the JobManager batch result type). */
struct JobResult
{
    /** The "name[:param]" spec the job was queued with. */
    std::string spec;
    /** The full run report (final state, counters, timings). */
    metrics::RunReport report;
    /** The job engine's counter totals (equal to the report
     *  aggregates). */
    metrics::CounterRegistry counters;
    /** Per-job trace sink (null unless traces were requested). */
    std::shared_ptr<metrics::TraceSink> trace;
    /** Host bytes of the job's private state (ValuePlane + transport
     *  bookkeeping). */
    std::size_t job_state_bytes = 0;
    /** Job handle within the service. */
    JobId id = 0;
    /** Tenant the job was accounted to. */
    std::string tenant;
    /** Priority it was scheduled with. */
    int priority = 0;
    /** Times the job was preempted at a wave boundary. */
    std::uint64_t times_parked = 0;
};

/** Session configuration (0 = default / unlimited throughout). */
struct ServiceConfig
{
    /** Session worker-thread budget divided across running jobs;
     *  0 = EngineOptions::engine_threads (0 there = hardware). */
    std::size_t session_threads = 0;
    /** Concurrent execution slots; 0 = one per session thread. */
    std::size_t max_running_jobs = 0;
    /** In-flight job-state byte budget (admission control); 0 = off. */
    std::size_t state_budget_bytes = 0;
    /** Admitted-but-never-started jobs tolerated while the byte budget
     *  is exhausted; past it submissions are Rejected. 0 = unlimited
     *  queueing (nothing is ever rejected). */
    std::size_t max_queued_jobs = 0;
    /** Max started (running or parked) jobs per tenant; 0 = off. */
    std::size_t tenant_quota = 0;
    /** Waves a job runs per scheduling quantum before it must offer
     *  its slot to waiting jobs; 0 = run every job to convergence
     *  (batch mode, no preemption). */
    std::uint64_t quantum_waves = 4;
    /** Prefer worklist-overlapping jobs within a priority class. */
    bool co_schedule = true;
    /** Give every job a private TraceSink (returned in its result). */
    bool with_traces = false;
    /** Service-level sink for scheduler events (job_admit/grant/park/
     *  done); nullptr disables. */
    metrics::TraceSink *trace = nullptr;
    /** Durable job journal (DESIGN.md §16): every admitted job is
     *  appended before its thread starts, every completion after its
     *  result is recorded, so a crashed service can replay the
     *  admitted-minus-completed set on restart. nullptr disables. */
    storage::JobJournal *journal = nullptr;
};

/** Scheduler observability counters (monotonic over the session). */
struct ServiceStats
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    /** Admissions that could not start immediately (queued). */
    std::uint64_t queued_on_arrival = 0;
    std::uint64_t grants = 0;
    /** Grants placed by worklist overlap instead of rank order. */
    std::uint64_t co_scheduled_grants = 0;
    /** Wave-boundary preemptions. */
    std::uint64_t parks = 0;
    std::uint64_t completed = 0;
    /** High-water mark of charged in-flight state bytes. */
    std::size_t peak_inflight_bytes = 0;
    /** High-water mark of concurrently granted jobs. */
    std::size_t peak_running = 0;
};

/** poll() snapshot of one job. */
struct JobStatus
{
    JobId id = 0;
    JobState state = JobState::Queued;
    std::string spec;
    std::string tenant;
    int priority = 0;
    /** Reject reason (empty unless Rejected). */
    std::string detail;
};

/**
 * Long-lived multi-tenant graph-processing session (see file header).
 */
class GraphService
{
  public:
    /** Preprocess @p g once; the substrate lives for the session. */
    GraphService(const graph::DirectedGraph &g, EngineOptions options,
                 ServiceConfig config = {});

    /** Adopt a prebuilt substrate. @pre sub was built for @p g (vertex
     *  AND edge totals checked). */
    GraphService(const graph::DirectedGraph &g,
                 std::shared_ptr<const EngineSubstrate> sub,
                 EngineOptions options, ServiceConfig config = {});

    /** Drains every admitted job, then joins all job threads. */
    ~GraphService();

    GraphService(const GraphService &) = delete;
    GraphService &operator=(const GraphService &) = delete;

    /**
     * Submit a job. Returns immediately with its handle; the job is
     * scheduled asynchronously. A job refused by admission control
     * comes back with poll(id).state == Rejected (and the reason in
     * poll(id).detail). Fatal on a malformed spec.
     */
    JobId addJobAsync(const JobRequest &request);
    JobId addJobAsync(const std::string &spec)
    {
        return addJobAsync(JobRequest{spec});
    }

    /** Snapshot one job's lifecycle state. */
    JobStatus poll(JobId id) const;

    /** Block until every admitted job is Done, then move the results
     *  out (admission order; Rejected jobs are skipped). */
    std::vector<JobResult> drain();

    /** Jobs submitted so far (including rejected). */
    std::size_t numJobs() const;

    /** The shared immutable substrate. */
    const std::shared_ptr<const EngineSubstrate> &substrate() const
    {
        return sub_;
    }

    /** Host bytes of the shared substrate (paid once per session). */
    std::size_t sharedBytes() const { return sub_->memoryBytes(); }

    /** Resolved session worker-thread budget. */
    std::size_t sessionThreads() const
    {
        return policy_.session_threads;
    }

    /** Scheduler counters snapshot. */
    ServiceStats stats() const;

    /** Currently charged in-flight job-state bytes. */
    std::size_t inflightStateBytes() const;

    /** Every slot grant in decision order (tests/observability). */
    std::vector<JobId> grantLog() const;

    /** Job completion order (tests/observability). */
    std::vector<JobId> completionOrder() const;

  private:
    /** Per-job record; doubles as the engine's wave-boundary hook. */
    struct Job : WaveControl
    {
        GraphService *service = nullptr;
        JobId id = 0;
        JobRequest request;
        JobState state = JobState::Queued;
        std::string reject_reason;
        std::uint32_t tenant = 0;
        std::uint64_t queue_seq = 0;
        algorithms::AlgorithmPtr algo;
        std::unique_ptr<DiGraphEngine> engine;
        JobResult result;
        /** Scheduler grant flag (guarded by the session mutex). */
        bool granted = false;
        /** Engine built, bytes charged. */
        bool started = false;
        std::size_t charged_bytes = 0;
        std::size_t thread_grant = 1;
        std::uint64_t waves_in_quantum = 0;
        /** Worklist flags at the last wave boundary. */
        std::vector<std::uint8_t> worklist;
        std::thread thread;

        std::size_t
        onWaveBoundary(std::uint64_t wave,
                       const std::vector<std::uint8_t> &active) override;
    };

    /** Job-thread body: wait for the first grant, build the engine,
     *  run to convergence, retire. */
    void jobMain(Job *job);

    /** Engine-hook body (locks the session mutex). */
    std::size_t waveBoundary(Job &job,
                             const std::vector<std::uint8_t> &active);

    /** Fill free slots from the waiting set (mutex held). */
    void reschedule();

    /** True when some waiting job could take a freed slot — the park
     *  predicate (mutex held). */
    bool schedulableWaiting() const;

    /** Session threads minus what granted jobs currently hold
     *  (mutex held). */
    std::size_t freeThreads() const;

    /** Dense tenant index, interning new names (mutex held). */
    std::uint32_t internTenant(const std::string &name);

    /** Per-job state-byte estimate (built lazily from a probe engine;
     *  mutex held). */
    std::size_t jobBytesEstimate();

    /** Record a service-level scheduler event. */
    void traceEvent(metrics::TraceEventType type, std::uint64_t arg0,
                    std::uint64_t arg1);

    const graph::DirectedGraph &g_;
    EngineOptions options_;
    ServiceConfig config_;
    SchedulerPolicy policy_;
    std::shared_ptr<const EngineSubstrate> sub_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::unique_ptr<Job>> jobs_;
    /** Granted jobs in grant order (rank = fair-share position). */
    std::vector<JobId> active_;
    std::vector<std::string> tenants_;
    std::vector<std::uint32_t> tenant_started_;
    std::size_t charged_bytes_ = 0;
    std::uint64_t queue_seq_next_ = 0;
    std::vector<JobId> grant_log_;
    std::vector<JobId> completion_order_;
    ServiceStats stats_;
    /** Probe engine: measures the per-job byte estimate, then serves
     *  as the first granted job's engine (nothing is wasted). */
    std::unique_ptr<DiGraphEngine> spare_engine_;
    std::size_t job_bytes_estimate_ = 0;
    bool drained_ = false;
};

} // namespace digraph::engine
