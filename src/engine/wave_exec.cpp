/**
 * @file
 * The two phases of one wave dispatch (DESIGN.md "Host execution
 * model"), split out of digraph_engine.cpp:
 *
 *  - computeDispatch() — the parallel compute phase: one partition's
 *    local rounds against wave-start shared state, master merges
 *    buffered in a private overlay (runs concurrently with other
 *    non-interfering partitions of the chunk);
 *  - replayDispatch() — the serial barrier phase: outcomes committed in
 *    dispatch order (master merge replay, version bumps, activation
 *    fan-out, simulated platform costs via the Transport layer).
 */

#include "engine/digraph_engine.hpp"

#include <algorithm>

namespace digraph::engine {

namespace {

/** Words touched in global memory per processed edge
 *  (E_idx pair read, S_val read+write, E_val read/write). */
constexpr double kWordsPerEdge = 3.0;

} // namespace

DiGraphEngine::DispatchOutcome
DiGraphEngine::computeDispatch(PartitionId p,
                               const algorithms::Algorithm &algo)
{
    DispatchOutcome out;
    out.partition = p;
    // Clearing here (not at batch selection) absorbs re-activations from
    // earlier chunks of the same wave: their stale-queue entries are
    // consumed by the conversion below, so the flag need not survive.
    // Re-activations by *this* chunk's barrier happen after every
    // compute returns and do survive. Distinct bytes per partition, so
    // concurrent dispatches clearing their own flags do not race.
    plane_.partition_active[p] = 0;

    const std::uint32_t path_lo = pre_.partition_offsets[p];
    const std::uint32_t path_hi = pre_.partition_offsets[p + 1];
    const std::uint64_t slot_lo = plane_.storage.pathOffset(path_lo);
    const std::uint64_t slot_hi = plane_.storage.pathOffset(path_hi);
    const std::uint64_t partition_slots = slot_hi - slot_lo;

    // Private master overlay: wave-start master + this dispatch's own
    // merges. Global V_val is frozen for the whole wave, so concurrent
    // dispatches may read it freely.
    auto &overlay = out.overlay;
    const auto masterOf = [&](VertexId v) -> Value {
        const auto it = overlay.find(v);
        return it != overlay.end() ? it->second : plane_.storage.vVal(v);
    };

    // Stale-queue conversion (replaces a dispatch-start full version
    // scan): only vertices whose master version bumped since this
    // partition last absorbed them are examined. Activating their source
    // slots folds cross-partition staleness into the one slot_active
    // worklist the local rounds run on.
    sync_.convertStaleQueue(plane_, p, slot_lo, slot_hi,
                            out.stale_vertices);

    // Lazy partition pull: only paths with active work are streamed from
    // global memory (and their mirrors refreshed), on their first
    // activation within this dispatch. Cold paths co-located in the
    // partition are not loaded at all — the loaded-data-utilization
    // advantage of hot/cold path grouping.
    std::vector<std::uint8_t> pulled(path_hi - path_lo, 0);

    const unsigned lanes = options_.platform.lanesPerSmx();
    const bool coalesced = options_.mode != ExecutionMode::VertexAsync;
    const double per_edge_cycles =
        options_.platform.cycles_per_edge +
        kWordsPerEdge * options_.platform.cycles_per_global_access *
            (coalesced ? options_.platform.coalesced_factor : 1.0);

    std::vector<PathId> active_paths;
    std::vector<std::uint32_t> active_counts;
    std::vector<std::uint64_t> pending; // VertexAsync deferred flags
    std::vector<Value> snapshot;
    std::vector<VertexId> changed;
    auto &worklist = plane_.partition_worklist[p];

    std::size_t local_rounds = 0;
    for (;;) {
        // Collect paths with at least one active source slot from the
        // incremental worklist — O(active paths), not O(partition
        // slots). Sorting restores storage order (what the former full
        // sweep produced), which PathNoSched relies on.
        active_paths.clear();
        active_counts.clear();
        std::sort(worklist.begin(), worklist.end());
        std::size_t keep = 0;
        for (const PathId q : worklist) {
            if (plane_.path_active_count[q] > 0) {
                worklist[keep++] = q;
                active_paths.push_back(q);
                active_counts.push_back(plane_.path_active_count[q]);
            } else {
                plane_.path_in_worklist[q] = 0;
            }
        }
        worklist.resize(keep);
        if (active_paths.empty())
            break;
        if (local_rounds >= options_.max_local_rounds) {
            out.reactivate_self = true; // reschedule the remainder
            break;
        }
        ++local_rounds;

        // First-touch pull of newly active paths (through the overlay so
        // the pull sees this dispatch's own pending merges).
        for (const PathId q : active_paths) {
            if (pulled[q - path_lo])
                continue;
            pulled[q - path_lo] = 1;
            if (overlay.empty())
                plane_.storage.pullPath(q);
            else
                plane_.storage.pullPathWith(q, masterOf);
            const std::size_t bytes = plane_.storage.pathBytes(q);
            out.loaded_vertices += plane_.storage.pathOffset(q + 1) -
                                   plane_.storage.pathOffset(q);
            out.global_load_bytes += bytes;
        }

        // Path scheduling (Section 3.2.3): the warp scheduler runs paths
        // in Pri(p) order; DiGraph-w keeps plain storage order.
        if (options_.mode == ExecutionMode::PathAsync) {
            sched_.orderByPriority(active_paths, active_counts);
            if (trace_) {
                trace_->event(metrics::TraceEventType::PathSchedule,
                              trace_wave_, p, trace_wave_sim_, 0.0,
                              active_paths.size(), active_paths.front());
            }
        }

        // Warp-scheduler capacity: one GPU thread processes one path per
        // round, so at most lanes x (stealable SMXs) paths run; the rest
        // keep their activation flags and wait. The Pri(p) order decides
        // who runs first (Section 3.2.3) — DiGraph-w's FIFO order defers
        // important paths, which is exactly what Fig 7 measures.
        {
            // Stealing lends at most one extra SMX's lanes in the
            // common case (idle SMXs are scarce in steady state).
            const std::size_t capacity =
                static_cast<std::size_t>(lanes) *
                (options_.work_stealing ? 2 : 1);
            if (active_paths.size() > capacity)
                active_paths.resize(capacity);
        }

        // VertexAsync (DiGraph-t): snapshot source reads so that new
        // states cross one hop per round.
        const bool vertex_async =
            options_.mode == ExecutionMode::VertexAsync;
        if (vertex_async) {
            snapshot.assign(partition_slots, 0.0);
            for (std::uint64_t s = slot_lo; s < slot_hi; ++s)
                snapshot[s - slot_lo] = plane_.storage.sVal(s);
            pending.clear();
        }

        // Walk each active path sequentially (one simulated GPU thread
        // per path). Inactive positions are skip-scanned: the thread
        // still streams E_idx but performs no compute there.
        std::vector<std::uint64_t> processed_edges(active_paths.size(), 0);
        for (std::size_t ap = 0; ap < active_paths.size(); ++ap) {
            const PathId q = active_paths[ap];
            auto view = plane_.storage.path(q);
            const std::uint64_t base = plane_.storage.pathOffset(q);
            const auto n_edges = view.length();
            for (std::size_t i = 0; i < n_edges; ++i) {
                const std::uint64_t src_slot = base + i;
                const VertexId src_v = view.vertex_ids[i];
                if (!plane_.slot_active[src_slot])
                    continue;
                plane_.slot_active[src_slot] = 0;
                --plane_.path_active_count[q];
                plane_.slot_seen_version[src_slot] =
                    plane_.master_version[src_v];
                const Value src_val =
                    vertex_async ? snapshot[src_slot - slot_lo]
                                 : view.mirror_states[i];
                const EdgeId eid = view.edge_ids[i];
                const bool changed_dst = algo.processEdge(
                    src_val, view.edge_states[i], eid, g_.edgeWeight(eid),
                    static_cast<std::uint32_t>(g_.outDegree(src_v)),
                    view.mirror_states[i + 1]);
                ++out.edge_processings;
                ++processed_edges[ap];
                // The destination mirror may have been written even on a
                // sub-threshold update — it joins the dirty worklist the
                // mirror-push phase examines.
                plane_.partition_dirty[p].mark(base + i + 1);
                if (changed_dst) {
                    ++out.vertex_updates;
                    const std::uint64_t dst_slot = base + i + 1;
                    if (sync_.isSrcSlot(dst_slot)) {
                        if (vertex_async)
                            pending.push_back(dst_slot);
                        else
                            plane_.activateSlot(dst_slot);
                    }
                }
            }
        }

        if (vertex_async) {
            for (const std::uint64_t slot : pending)
                plane_.activateSlot(slot);
        }

        // --- mirror -> master sync (batched, Section 3.2.2) ---
        // Phase 1: every dirty mirror pushes into the private overlay.
        changed.clear();
        const PushStats stats = sync_.pushDirtyMirrors(
            plane_, p, algo, g_, options_.use_proxy,
            options_.proxy_indegree_threshold, overlay, out.pushes,
            changed);
        if (trace_ && stats.proxy_pushes + stats.atomic_pushes > 0) {
            trace_->event(metrics::TraceEventType::MirrorPush,
                          trace_wave_, p, trace_wave_sim_, 0.0,
                          stats.proxy_pushes + stats.atomic_pushes,
                          local_rounds);
        }

        // Phase 2: refresh and re-activate this partition's own mirrors
        // of each changed vertex (the proxy-vertex effect: accumulated
        // results are reusable on this SMX within the next local round).
        sync_.refreshLocalMirrors(plane_, algo, slot_lo, slot_hi, overlay,
                                  changed);

        // Simulated cost of this round (recorded; charged to real SMX
        // clocks at the wave barrier).
        out.round_group_cycles.push_back(
            sched_.roundCost(options_, per_edge_cycles, active_paths,
                             processed_edges, stats.proxy_pushes,
                             stats.atomic_pushes));
    }
    out.local_rounds = local_rounds;

    // Global-load accounting: charged to the wave-start resident device
    // (thread-safe atomic counter); deferred to the barrier when the
    // partition was evicted and has no residence.
    if (out.global_load_bytes) {
        const DeviceId dev = transport_.partition_device[p];
        if (dev != kInvalidVertex) {
            transport_.platform().device(dev).addGlobalLoad(
                out.global_load_bytes);
        } else {
            out.deferred_load_bytes = out.global_load_bytes;
        }
    }
    return out;
}

void
DiGraphEngine::replayDispatch(DispatchOutcome &outcome,
                              const algorithms::Algorithm &algo,
                              metrics::RunReport &report)
{
    const PartitionId p = outcome.partition;
    ++partition_process_count_[p];
    counters_.add(metrics::Counter::PartitionProcessings);
    counters_.add(metrics::Counter::Rounds, outcome.local_rounds);
    counters_.add(metrics::Counter::EdgeProcessings,
                  outcome.edge_processings);
    counters_.add(metrics::Counter::VertexUpdates,
                  outcome.vertex_updates);
    counters_.add(metrics::Counter::LoadedVertices,
                  outcome.loaded_vertices);
    counters_.add(metrics::Counter::GlobalLoadBytes,
                  outcome.global_load_bytes);

    const DeviceId dev = transport_.chooseDevice(p, sched_);
    transport_.partition_device[p] = dev;
    auto &device = transport_.platform().device(dev);
    // One SMX owns this dispatch's serial round chain; other SMXs are
    // touched only by work-stealing surplus, so concurrent partitions on
    // the device keep their own SMXs.
    const SmxId home_smx = device.leastLoadedSmx();
    if (outcome.deferred_load_bytes)
        device.addGlobalLoad(outcome.deferred_load_bytes);

    double ready = transport_.ensureResident(
        p, dev,
        std::max({device.smx(home_smx).clock(),
                  transport_.partition_done[p],
                  transport_.partition_msg_ready[p]}),
        sched_, report);

    // Master refresh: path results are buffered in the global memory of
    // the device that produced them (Section 3.2.2); masters written on
    // another device are pulled over the ring, one batch per source
    // device. The stale vertices were collected from the incremental
    // stale queue at dispatch start.
    ready = transport_.masterRefreshPulls(dev, outcome.stale_vertices,
                                          ready, report);

    // Charge the recorded kernel rounds to the device clocks, exactly as
    // the interleaved execution would have: group 0 chains on the home
    // SMX, surplus groups steal the momentarily least-loaded SMX.
    const double kernel_begin = ready;
    ready = transport_.chargeKernelRounds(
        p, dev, home_smx, outcome.round_group_cycles, ready, report);
    if (trace_) {
        trace_->event(metrics::TraceEventType::Dispatch, trace_wave_, p,
                      kernel_begin, ready - kernel_begin,
                      outcome.local_rounds, outcome.edge_processings);
    }

    // Commit the buffered master merges in push order against the true
    // masters (earlier dispatches of this wave have already committed
    // theirs — the deterministic dispatch-order merge).
    std::vector<VertexId> changed;
    for (const auto &[v, push] : outcome.pushes) {
        // Journal before the merge: accumulative algorithms mutate the
        // master even when mergeMaster reports no activation-worthy
        // change, so every pushed vertex is checkpoint-dirty.
        if (ft_enabled_)
            plane_.markVertexDirty(v);
        if (algo.mergeMaster(plane_.storage.vVal(v), push))
            changed.push_back(v);
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()),
                  changed.end());
    if (trace_) {
        trace_->event(metrics::TraceEventType::MergeBarrier, trace_wave_,
                      p, ready, 0.0, outcome.pushes.size(),
                      changed.size());
    }
    for (const VertexId v : changed) {
        ++plane_.master_version[v];
        transport_.master_writer[v] = dev;
    }

    // Activation fan-out: every changed master feeds the stale queues of
    // the partitions mirroring it and re-enters its consumer partitions
    // into the worklist; partitions woken from inactive get ring
    // notification transfers.
    std::vector<PartitionId> activated_parts;
    sync_.fanOutChanged(plane_, p, changed, outcome.overlay,
                        activated_parts);
    std::sort(activated_parts.begin(), activated_parts.end());
    activated_parts.erase(
        std::unique(activated_parts.begin(), activated_parts.end()),
        activated_parts.end());
    transport_.notifyActivations(dev, activated_parts, ready, report);
    transport_.partition_done[p] = ready;
    if (outcome.reactivate_self)
        plane_.partition_active[p] = 1;
}

} // namespace digraph::engine
