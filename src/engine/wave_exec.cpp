/**
 * @file
 * The wave-barrier phase of a dispatch (DESIGN.md "Host execution
 * model" + §14). The compute phase lives in the wave-body template
 * (wave_body.hpp, instantiated by wave_kernel.cpp); this unit holds the
 * commit side:
 *
 *  - commitDeltas() — the lock-free parallel master commit of the
 *    delta-accumulative family: each outcome's private overlay is
 *    stored directly into V_val. The overlay value equals what the
 *    ordered replay would produce (same merge sequence from the same
 *    frozen wave-start master), and the chunk's partitions are
 *    vertex-disjoint, so concurrent commits touch disjoint masters —
 *    no locks, no atomics, no ordering requirement;
 *  - replayDispatch() — the serial remainder of the barrier, in
 *    dispatch order: work counters, simulated transport costs, the
 *    ordered merge replay (bitwise family / generic fallback), version
 *    bumps, and the activation fan-out.
 */

#include "engine/digraph_engine.hpp"

#include <algorithm>

#include "engine/dispatcher.hpp"

namespace digraph::engine {

void
DiGraphEngine::commitDeltas(DispatchOutcome &outcome)
{
    // Plain stores are race-free here: a wave chunk only contains
    // mutually non-interfering (vertex-disjoint) partitions, so no two
    // concurrent commits write the same master.
    for (const auto &[v, value] : outcome.overlay)
        plane_.storage.vVal(v) = value;
}

void
DiGraphEngine::replayDispatch(DispatchOutcome &outcome,
                              metrics::RunReport &report)
{
    const PartitionId p = outcome.partition;
    ++partition_process_count_[p];
    counters_.add(metrics::Counter::PartitionProcessings);
    counters_.add(metrics::Counter::Rounds, outcome.local_rounds);
    counters_.add(metrics::Counter::EdgeProcessings,
                  outcome.edge_processings);
    counters_.add(metrics::Counter::VertexUpdates,
                  outcome.vertex_updates);
    counters_.add(metrics::Counter::LoadedVertices,
                  outcome.loaded_vertices);
    counters_.add(metrics::Counter::GlobalLoadBytes,
                  outcome.global_load_bytes);

    const DeviceId dev = transport_.chooseDevice(p, sched_);
    transport_.partition_device[p] = dev;
    auto &device = transport_.platform().device(dev);
    // One SMX owns this dispatch's serial round chain; other SMXs are
    // touched only by work-stealing surplus, so concurrent partitions on
    // the device keep their own SMXs.
    const SmxId home_smx = device.leastLoadedSmx();
    if (outcome.deferred_load_bytes)
        device.addGlobalLoad(outcome.deferred_load_bytes);

    double ready = transport_.ensureResident(
        p, dev,
        std::max({device.smx(home_smx).clock(),
                  transport_.partition_done[p],
                  transport_.partition_msg_ready[p]}),
        sched_, report);

    // Master refresh: path results are buffered in the global memory of
    // the device that produced them (Section 3.2.2); masters written on
    // another device are pulled over the ring, one batch per source
    // device. The stale vertices were collected from the incremental
    // stale queue at dispatch start.
    ready = transport_.masterRefreshPulls(dev, outcome.stale_vertices,
                                          ready, report);

    // Charge the recorded kernel rounds to the device clocks, exactly as
    // the interleaved execution would have: group 0 chains on the home
    // SMX, surplus groups steal the momentarily least-loaded SMX.
    const double kernel_begin = ready;
    ready = transport_.chargeKernelRounds(
        p, dev, home_smx, outcome.round_group_cycles, ready, report);
    if (trace_) {
        trace_->event(metrics::TraceEventType::Dispatch, trace_wave_, p,
                      kernel_begin, ready - kernel_begin,
                      outcome.local_rounds, outcome.edge_processings);
    }

    // Master commit, per the resolved kernel: the delta-accumulative
    // family was already committed in parallel (commitDeltas) and only
    // hands over its activation-worthy set; everything else replays its
    // push log in order against the true masters (earlier dispatches of
    // this wave have committed theirs — the deterministic
    // dispatch-order merge).
    std::vector<VertexId> changed;
    if (kernel_.delta_merge) {
        changed = std::move(outcome.changed);
        if (ft_enabled_) {
            // The ordered path journals per replayed push; here the
            // overlay keys ARE the pushed masters.
            for (const auto &[v, value] : outcome.overlay) {
                (void)value;
                plane_.markVertexDirty(v);
            }
        }
    } else {
        kernel_.ordered_merge(*this, outcome, kernel_ctx_, changed);
    }
    if (trace_) {
        trace_->event(metrics::TraceEventType::MergeBarrier, trace_wave_,
                      p, ready, 0.0, outcome.push_count, changed.size());
    }
    for (const VertexId v : changed) {
        ++plane_.master_version[v];
        transport_.master_writer[v] = dev;
    }

    // Activation fan-out: every changed master feeds the stale queues of
    // the partitions mirroring it and re-enters its consumer partitions
    // into the worklist; partitions woken from inactive get ring
    // notification transfers.
    std::vector<PartitionId> activated_parts;
    sync_.fanOutChanged(plane_, p, changed, outcome.overlay,
                        activated_parts);
    std::sort(activated_parts.begin(), activated_parts.end());
    activated_parts.erase(
        std::unique(activated_parts.begin(), activated_parts.end()),
        activated_parts.end());
    transport_.notifyActivations(dev, activated_parts, ready, report);
    transport_.partition_done[p] = ready;
    if (outcome.reactivate_self)
        plane_.partition_active[p] = 1;
}

} // namespace digraph::engine
