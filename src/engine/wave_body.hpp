/**
 * @file
 * The single shared wave-body template behind every resolved kernel
 * (DESIGN.md §14). WaveKernels::compute<> is the parallel compute phase
 * of one partition dispatch, parameterized on
 *
 *  - AlgoT      — a non-virtual kernel policy (specialized kernels: the
 *                 per-edge math inlines, zero virtual calls) or
 *                 algorithms::Algorithm (generic fallback);
 *  - M          — the execution mode, so the VertexAsync snapshot
 *                 machinery and the PathAsync priority scheduling are
 *                 compiled out of the modes that don't use them;
 *  - TraceOn    — whether trace instrumentation exists at all in this
 *                 instantiation;
 *  - LogPushes  — whether the per-push replay log is kept (ordered
 *                 barrier merge) or skipped (lock-free delta merge
 *                 commits the overlay instead).
 *
 * One template serves both the specialized and the generic path, so the
 * two can never drift semantically — the fallback is literally the same
 * body with virtual calls. Instantiation happens only in
 * wave_kernel.cpp (the registry).
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/digraph_engine.hpp"
#include "engine/dispatcher.hpp"
#include "engine/replica_sync_impl.hpp"

namespace digraph::engine {

/** Static entry points of the wave body (friend of DiGraphEngine). */
struct WaveKernels
{
    /** Words touched in global memory per processed edge
     *  (E_idx pair read, S_val read+write, E_val read/write). */
    static constexpr double kWordsPerEdge = 3.0;

    /** Compile-time policy flags with virtual-safe defaults: a type
     *  without the flag (algorithms::Algorithm) must conservatively
     *  load everything. */
    template <class T>
    static constexpr bool
    usesWeight()
    {
        if constexpr (requires { T::kUsesWeight; })
            return T::kUsesWeight;
        else
            return true;
    }

    template <class T>
    static constexpr bool
    usesOutDegree()
    {
        if constexpr (requires { T::kUsesOutDegree; })
            return T::kUsesOutDegree;
        else
            return true;
    }

    template <class T>
    static constexpr bool
    isAccumulative()
    {
        if constexpr (requires { T::kAccumulative; })
            return T::kAccumulative;
        else
            return false;
    }

    /**
     * The parallel compute phase of one partition dispatch: local
     * rounds against wave-start shared state, master merges buffered in
     * the private overlay. Runs concurrently with other vertex-disjoint
     * partitions of the chunk.
     */
    template <class AlgoT, ExecutionMode M, bool TraceOn, bool LogPushes>
    static DispatchOutcome
    compute(DiGraphEngine &eng, PartitionId p, const AlgoT &algo)
    {
        static_assert(LogPushes || isAccumulative<AlgoT>(),
                      "delta merge (no push log) requires the "
                      "commutative-accumulative family");
        DispatchOutcome out;
        out.partition = p;
        auto &plane = eng.plane_;
        // Clearing here (not at batch selection) absorbs re-activations
        // from earlier chunks of the same wave: their stale-queue
        // entries are consumed by the conversion below, so the flag
        // need not survive. Re-activations by *this* chunk's barrier
        // happen after every compute returns and do survive. Distinct
        // bytes per partition, so concurrent dispatches clearing their
        // own flags do not race.
        plane.partition_active[p] = 0;

        const std::uint32_t path_lo = eng.pre_.partition_offsets[p];
        const std::uint32_t path_hi = eng.pre_.partition_offsets[p + 1];
        const std::uint64_t slot_lo = plane.storage.pathOffset(path_lo);
        const std::uint64_t slot_hi = plane.storage.pathOffset(path_hi);
        const std::uint64_t partition_slots = slot_hi - slot_lo;

        // Private master overlay: wave-start master + this dispatch's
        // own merges. Global V_val is frozen for the whole wave, so
        // concurrent dispatches may read it freely.
        auto &overlay = out.overlay;
        const auto masterOf = [&](VertexId v) -> Value {
            const auto it = overlay.find(v);
            return it != overlay.end() ? it->second
                                       : plane.storage.vVal(v);
        };

        // Stale-queue conversion (replaces a dispatch-start full
        // version scan): only vertices whose master version bumped
        // since this partition last absorbed them are examined.
        eng.sync_.convertStaleQueue(plane, p, slot_lo, slot_hi,
                                    out.stale_vertices);

        // Lazy partition pull: only paths with active work are streamed
        // from global memory, on their first activation within this
        // dispatch — the loaded-data-utilization advantage of hot/cold
        // path grouping.
        std::vector<std::uint8_t> pulled(path_hi - path_lo, 0);

        const unsigned lanes = eng.options_.platform.lanesPerSmx();
        constexpr bool vertex_async = (M == ExecutionMode::VertexAsync);
        const double per_edge_cycles =
            eng.options_.platform.cycles_per_edge +
            kWordsPerEdge *
                eng.options_.platform.cycles_per_global_access *
                (vertex_async ? 1.0
                              : eng.options_.platform.coalesced_factor);

        std::vector<PathId> active_paths;
        std::vector<std::uint32_t> active_counts;
        std::vector<std::uint64_t> pending; // VertexAsync deferred flags
        std::vector<Value> snapshot;
        std::vector<VertexId> changed;
        auto &worklist = plane.partition_worklist[p];

        std::size_t local_rounds = 0;
        for (;;) {
            // Collect paths with at least one active source slot from
            // the incremental worklist — O(active paths). Sorting
            // restores storage order (what the former full sweep
            // produced), which PathNoSched relies on.
            active_paths.clear();
            active_counts.clear();
            std::sort(worklist.begin(), worklist.end());
            std::size_t keep = 0;
            for (const PathId q : worklist) {
                if (plane.path_active_count[q] > 0) {
                    worklist[keep++] = q;
                    active_paths.push_back(q);
                    active_counts.push_back(plane.path_active_count[q]);
                } else {
                    plane.path_in_worklist[q] = 0;
                }
            }
            worklist.resize(keep);
            if (active_paths.empty())
                break;
            if (local_rounds >= eng.options_.max_local_rounds) {
                out.reactivate_self = true; // reschedule the remainder
                break;
            }
            ++local_rounds;

            // First-touch pull of newly active paths (through the
            // overlay so the pull sees this dispatch's own merges).
            for (const PathId q : active_paths) {
                if (pulled[q - path_lo])
                    continue;
                pulled[q - path_lo] = 1;
                if (overlay.empty())
                    plane.storage.pullPath(q);
                else
                    plane.storage.pullPathWith(q, masterOf);
                const std::size_t bytes = plane.storage.pathBytes(q);
                out.loaded_vertices +=
                    plane.storage.pathOffset(q + 1) -
                    plane.storage.pathOffset(q);
                out.global_load_bytes += bytes;
            }

            // Path scheduling (Section 3.2.3): the warp scheduler runs
            // paths in Pri(p) order; DiGraph-w keeps storage order.
            if constexpr (M == ExecutionMode::PathAsync) {
                eng.sched_.orderByPriority(active_paths, active_counts);
                if constexpr (TraceOn) {
                    if (eng.trace_) {
                        eng.trace_->event(
                            metrics::TraceEventType::PathSchedule,
                            eng.trace_wave_, p, eng.trace_wave_sim_, 0.0,
                            active_paths.size(), active_paths.front());
                    }
                }
            }

            // Warp-scheduler capacity: one GPU thread processes one
            // path per round, so at most lanes x (stealable SMXs) paths
            // run; the rest keep their activation flags and wait.
            {
                const std::size_t capacity =
                    static_cast<std::size_t>(lanes) *
                    (eng.options_.work_stealing ? 2 : 1);
                if (active_paths.size() > capacity)
                    active_paths.resize(capacity);
            }

            // VertexAsync (DiGraph-t): snapshot source reads so that
            // new states cross one hop per round.
            if constexpr (vertex_async) {
                snapshot.assign(partition_slots, 0.0);
                for (std::uint64_t s = slot_lo; s < slot_hi; ++s)
                    snapshot[s - slot_lo] = plane.storage.sVal(s);
                pending.clear();
            }

            // Walk each active path sequentially (one simulated GPU
            // thread per path). Inactive positions are skip-scanned.
            std::vector<std::uint64_t> processed_edges(
                active_paths.size(), 0);
            for (std::size_t ap = 0; ap < active_paths.size(); ++ap) {
                const PathId q = active_paths[ap];
                auto view = plane.storage.path(q);
                const std::uint64_t base = plane.storage.pathOffset(q);
                const auto n_edges = view.length();
                for (std::size_t i = 0; i < n_edges; ++i) {
                    const std::uint64_t src_slot = base + i;
                    const VertexId src_v = view.vertex_ids[i];
                    if (!plane.slot_active[src_slot])
                        continue;
                    plane.slot_active[src_slot] = 0;
                    --plane.path_active_count[q];
                    plane.slot_seen_version[src_slot] =
                        plane.master_version[src_v];
                    Value src_val;
                    if constexpr (vertex_async)
                        src_val = snapshot[src_slot - slot_lo];
                    else
                        src_val = view.mirror_states[i];
                    const EdgeId eid = view.edge_ids[i];
                    // Dead argument loads compile out per the policy's
                    // flags (a virtual AlgoT loads everything).
                    Value weight = 0.0;
                    if constexpr (usesWeight<AlgoT>())
                        weight = eng.g_.edgeWeight(eid);
                    std::uint32_t out_deg = 0;
                    if constexpr (usesOutDegree<AlgoT>())
                        out_deg = static_cast<std::uint32_t>(
                            eng.g_.outDegree(src_v));
                    const bool changed_dst = algo.processEdge(
                        src_val, view.edge_states[i], eid, weight,
                        out_deg, view.mirror_states[i + 1]);
                    ++out.edge_processings;
                    ++processed_edges[ap];
                    // The destination mirror may have been written even
                    // on a sub-threshold update — it joins the dirty
                    // worklist the mirror-push phase examines.
                    plane.partition_dirty[p].mark(base + i + 1);
                    if (changed_dst) {
                        ++out.vertex_updates;
                        const std::uint64_t dst_slot = base + i + 1;
                        if (eng.sync_.isSrcSlot(dst_slot)) {
                            if constexpr (vertex_async)
                                pending.push_back(dst_slot);
                            else
                                plane.activateSlot(dst_slot);
                        }
                    }
                }
            }

            if constexpr (vertex_async) {
                for (const std::uint64_t slot : pending)
                    plane.activateSlot(slot);
            }

            // --- mirror -> master sync (batched, Section 3.2.2) ---
            // Phase 1: every dirty mirror pushes into the private
            // overlay (push log skipped under the delta merge).
            changed.clear();
            const PushStats stats =
                eng.sync_.pushDirtyMirrorsT<AlgoT, LogPushes>(
                    plane, p, algo, eng.g_, eng.options_.use_proxy,
                    static_cast<std::uint32_t>(
                        eng.options_.proxy_indegree_threshold),
                    overlay, out.pushes, changed);
            out.push_count += stats.proxy_pushes + stats.atomic_pushes;
            if constexpr (TraceOn) {
                if (eng.trace_ &&
                    stats.proxy_pushes + stats.atomic_pushes > 0) {
                    eng.trace_->event(
                        metrics::TraceEventType::MirrorPush,
                        eng.trace_wave_, p, eng.trace_wave_sim_, 0.0,
                        stats.proxy_pushes + stats.atomic_pushes,
                        local_rounds);
                }
            }
            if constexpr (!LogPushes) {
                // Delta merge: the barrier commits the overlay without
                // replaying pushes, so the activation-worthy set must
                // be carried over. mergeMaster's verdict for the
                // accumulative family depends only on the push
                // magnitude, so the union of the per-round sets equals
                // what the ordered replay would recompute.
                out.changed.insert(out.changed.end(), changed.begin(),
                                   changed.end());
            }

            // Phase 2: refresh and re-activate this partition's own
            // mirrors of each changed vertex (the proxy-vertex effect).
            eng.sync_.refreshLocalMirrorsT<AlgoT>(
                plane, algo, slot_lo, slot_hi, overlay, changed);

            // Simulated cost of this round (recorded; charged to real
            // SMX clocks at the wave barrier).
            out.round_group_cycles.push_back(eng.sched_.roundCost(
                eng.options_, per_edge_cycles, active_paths,
                processed_edges, stats.proxy_pushes,
                stats.atomic_pushes));
        }
        out.local_rounds = local_rounds;
        if constexpr (!LogPushes) {
            std::sort(out.changed.begin(), out.changed.end());
            out.changed.erase(
                std::unique(out.changed.begin(), out.changed.end()),
                out.changed.end());
        }

        // Global-load accounting: charged to the wave-start resident
        // device (thread-safe atomic counter); deferred to the barrier
        // when the partition was evicted and has no residence.
        if (out.global_load_bytes) {
            const DeviceId dev = eng.transport_.partition_device[p];
            if (dev != kInvalidVertex) {
                eng.transport_.platform().device(dev).addGlobalLoad(
                    out.global_load_bytes);
            } else {
                out.deferred_load_bytes = out.global_load_bytes;
            }
        }
        return out;
    }

    /**
     * Ordered master-merge replay of one outcome's push log against the
     * true masters (serial barrier phase; bitwise family + fallback).
     * Appends the activation-worthy masters to @p changed
     * (sorted/deduplicated).
     */
    template <class AlgoT>
    static void
    orderedMerge(DiGraphEngine &eng, DispatchOutcome &outcome,
                 const AlgoT &algo, std::vector<VertexId> &changed)
    {
        for (const auto &[v, push] : outcome.pushes) {
            // Journal before the merge: accumulative algorithms mutate
            // the master even when mergeMaster reports no
            // activation-worthy change, so every pushed vertex is
            // checkpoint-dirty.
            if (eng.ft_enabled_)
                eng.plane_.markVertexDirty(v);
            if (algo.mergeMaster(eng.plane_.storage.vVal(v), push))
                changed.push_back(v);
        }
        std::sort(changed.begin(), changed.end());
        changed.erase(std::unique(changed.begin(), changed.end()),
                      changed.end());
    }
};

} // namespace digraph::engine
