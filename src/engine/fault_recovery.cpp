/**
 * @file
 * Fault tolerance for the DiGraph engine (DESIGN.md "Fault model and
 * recovery"): barrier checkpointing with copy-on-write dirty journals,
 * SMX-stall kernel multipliers, degrade-and-redistribute recovery from
 * device loss, and the post-run invariant checker. (The transfer
 * retry/backoff path lives in the Transport layer.)
 *
 * Every method here runs in a *serial* engine phase (wave start, the
 * dispatch-replay barrier, or wave end): the injector's coin stream is
 * ordered, and the checkpoint journals are shared state. Keeping all
 * fault decisions out of the parallel compute phase is what preserves
 * bit-identical results across engine_threads values even under faults.
 */

#include "engine/digraph_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "storage/durable_store.hpp"

namespace digraph::engine {

void
DiGraphEngine::initFaultTolerance()
{
    // The injector and stall multipliers were armed by
    // Transport::beginRun; only the checkpoint shadows remain.
    plane_.initCheckpoint(g_, pre_);
    recoveries_ = 0;
    // Epoch-0 flush-through: with a store attached, the initial full
    // checkpoint immediately becomes a durable version, so a process
    // crash at any point of the run has a restartable parent.
    store_version_ = options_.store_parent;
    store_synced_ = false;
    store_values_committed_ = false;
    store_backlog_.clear();
    store_backlog_flag_.assign(pre_.numPartitions(), 0);
    if (options_.store && store_version_ != 0) {
        const std::uint64_t v = options_.store->commitValues(
            g_, pre_, plane_.ckpt_v, plane_.ckpt_e, {}, store_version_,
            nullptr);
        if (v != 0) {
            store_version_ = v;
            store_synced_ = true;
            store_values_committed_ = true;
            counters_.add(metrics::Counter::StoreCommits);
        } else {
            counters_.add(metrics::Counter::StoreCommitFails);
            logWarn("DiGraphEngine: initial checkpoint flush to the "
                    "durable store failed; running with the in-memory "
                    "shadow only until a flush lands");
        }
    }
}

void
DiGraphEngine::pollFaults(std::uint64_t wave, metrics::RunReport &report)
{
    const double now = transport_.platform().makespan();

    due_stalls_.clear();
    transport_.injector.drainDueSmxStalls(now, due_stalls_);
    for (const auto &stall : due_stalls_) {
        transport_.smx_stall_factor[static_cast<std::size_t>(
                                        stall.device) *
                                        options_.platform.smx_per_device +
                                    stall.smx] = stall.factor;
        counters_.add(metrics::Counter::FaultsInjected);
        if (trace_) {
            trace_->event(metrics::TraceEventType::FaultInjected, wave,
                          metrics::kTraceNoPartition, now, 0.0,
                          stall.device, 1);
        }
    }

    due_loss_.clear();
    transport_.injector.drainDueDeviceLoss(now, due_loss_);
    for (const DeviceId dead : due_loss_) {
        counters_.add(metrics::Counter::FaultsInjected);
        if (trace_) {
            trace_->event(metrics::TraceEventType::FaultInjected, wave,
                          metrics::kTraceNoPartition, now, 0.0, dead, 0);
        }
        if (transport_.platform().device(dead).failed())
            continue; // duplicate plan entry: the device is already gone
        recoverFromDeviceLoss(dead, wave, report);
    }
}

void
DiGraphEngine::maybeCheckpoint(std::uint64_t wave,
                               metrics::RunReport &report)
{
    if (wave - plane_.ckpt_wave < options_.checkpoint_interval)
        return;

    auto &platform = transport_.platform();
    // Simulated flush cost: each dirty master travels over its writer
    // device's host link, each dirty partition writes back its E_val
    // slice from its resident device. Entries without a live producer
    // (never written, or evicted) are already host-side and free.
    std::vector<std::uint64_t> flush_bytes(platform.numDevices(), 0);
    for (const VertexId v : plane_.ckpt_v_dirty_list) {
        const DeviceId writer = transport_.master_writer[v];
        if (writer != kInvalidVertex)
            flush_bytes[writer] += kMessageBytes;
    }
    for (const PartitionId q : plane_.ckpt_part_dirty_list) {
        const DeviceId dev = transport_.partition_device[q];
        if (dev == kInvalidVertex)
            continue;
        const std::uint32_t path_lo = pre_.partition_offsets[q];
        const std::uint32_t path_hi = pre_.partition_offsets[q + 1];
        const std::uint64_t edges =
            (plane_.storage.pathOffset(path_hi) - path_hi) -
            (plane_.storage.pathOffset(path_lo) - path_lo);
        flush_bytes[dev] += edges * sizeof(Value);
    }
    const double issue = platform.makespan();
    for (DeviceId d = 0; d < platform.numDevices(); ++d) {
        if (flush_bytes[d] == 0 || platform.device(d).failed())
            continue;
        auto &device = platform.device(d);
        device.hostLink().transfer(
            issue +
                transport_.transferFaultPenalty(flush_bytes[d], report),
            flush_bytes[d]);
        report.comm_cycles += device.hostLink().cost(flush_bytes[d]);
        counters_.add(metrics::Counter::HostTransferBytes,
                      flush_bytes[d]);
    }

    // Advance the epoch: copy journalled-dirty entries live -> shadow.
    const std::uint64_t dirty_vertices = plane_.ckpt_v_dirty_list.size();
    const std::uint64_t dirty_partitions =
        plane_.ckpt_part_dirty_list.size();
    // Merge this epoch's dirty partitions into the un-flushed backlog
    // BEFORE the journals are cleared: the store flush below writes the
    // E_val shards of every epoch since the last *successful* commit,
    // so a failed flush can never silently mark a partition clean.
    if (options_.store && store_version_ != 0) {
        for (const PartitionId q : plane_.ckpt_part_dirty_list) {
            if (!store_backlog_flag_[q]) {
                store_backlog_flag_[q] = 1;
                store_backlog_.push_back(q);
            }
        }
    }
    for (const VertexId v : plane_.ckpt_v_dirty_list) {
        plane_.ckpt_v[v] = plane_.storage.vVal(v);
        plane_.ckpt_v_dirty[v] = 0;
    }
    plane_.ckpt_v_dirty_list.clear();
    for (const PartitionId q : plane_.ckpt_part_dirty_list) {
        plane_.copyPartitionEval(pre_, q, /*to_checkpoint=*/true);
        plane_.ckpt_part_dirty[q] = 0;
    }
    plane_.ckpt_part_dirty_list.clear();
    plane_.ckpt_wave = wave;

    // Flush-through: the advanced shadow (a consistent barrier-state
    // snapshot) becomes a durable incremental version — only the E_val
    // shards dirtied since the last successful flush (the backlog) are
    // written, clean partitions reference the parent version's files.
    // Until a flush of this run has committed, everything is written:
    // a dirty-list flush may only chain on a parent holding this run's
    // values.
    if (options_.store && store_version_ != 0) {
        const std::vector<PartitionId> *dirty =
            store_values_committed_ ? &store_backlog_ : nullptr;
        const std::uint64_t v = options_.store->commitValues(
            g_, pre_, plane_.ckpt_v, plane_.ckpt_e, {}, store_version_,
            dirty);
        if (v != 0) {
            store_version_ = v;
            store_synced_ = true;
            store_values_committed_ = true;
            for (const PartitionId q : store_backlog_)
                store_backlog_flag_[q] = 0;
            store_backlog_.clear();
            counters_.add(metrics::Counter::StoreCommits);
        } else {
            // The disk now lags the shadow: recovery must ignore it,
            // and the backlog (including this epoch) rides into the
            // next flush.
            store_synced_ = false;
            counters_.add(metrics::Counter::StoreCommitFails);
            logWarn("DiGraphEngine: checkpoint flush to the durable "
                    "store failed at wave ", wave, "; ",
                    store_backlog_.size(),
                    " dirty partition(s) carried to the next flush");
        }
    }

    counters_.add(metrics::Counter::Checkpoints);
    if (trace_) {
        trace_->event(metrics::TraceEventType::Checkpoint, wave,
                      metrics::kTraceNoPartition, platform.makespan(),
                      0.0, dirty_vertices, dirty_partitions);
    }
}

void
DiGraphEngine::recoverFromDeviceLoss(DeviceId dead, std::uint64_t wave,
                                     metrics::RunReport &report)
{
    ++recoveries_;
    if (recoveries_ > options_.max_recoveries) {
        fatal("DiGraphEngine: device ", dead,
              " lost but the recovery budget is exhausted "
              "(max_recoveries=",
              options_.max_recoveries, ")");
    }
    auto &platform = transport_.platform();
    platform.markFailed(dead);
    if (platform.numAlive() == 0) {
        fatal("DiGraphEngine: no device survives the loss of device ",
              dead);
    }

    // Restart from disk when the checkpoints were flushed through a
    // durable store: reload the shadow arrays from the last committed
    // version before rolling back. Only when the store is in sync —
    // after a failed or pending flush the disk holds an OLDER epoch
    // than the shadow, and substituting it would mix rolled-back and
    // live entries (the dirty journals only cover the last epoch).
    // When synced, the disk copy is byte-identical to the in-memory
    // shadow (same barrier snapshot), so results are unchanged — this
    // exercises the exact path a restarted process takes, and survives
    // shadow corruption the in-memory path cannot.
    if (options_.store && store_synced_ &&
        store_version_ != options_.store_parent) {
        auto loaded = options_.store->loadValues(store_version_);
        if (loaded && loaded->v_val.size() == plane_.ckpt_v.size() &&
            loaded->e_val.size() == plane_.ckpt_e.size()) {
            plane_.ckpt_v = std::move(loaded->v_val);
            plane_.ckpt_e = std::move(loaded->e_val);
            counters_.add(metrics::Counter::StoreRecovers);
        }
    }

    // Roll journalled-dirty masters and E_val slices back to the last
    // checkpoint epoch (entries never dirtied already equal the shadow).
    for (const VertexId v : plane_.ckpt_v_dirty_list) {
        plane_.storage.vVal(v) = plane_.ckpt_v[v];
        plane_.ckpt_v_dirty[v] = 0;
    }
    plane_.ckpt_v_dirty_list.clear();
    for (const PartitionId q : plane_.ckpt_part_dirty_list) {
        plane_.copyPartitionEval(pre_, q, /*to_checkpoint=*/false);
        plane_.ckpt_part_dirty[q] = 0;
    }
    plane_.ckpt_part_dirty_list.clear();
    plane_.ckpt_wave = wave; // live state equals the shadow again

    // Clear the volatile run state the rollback invalidated. Mirrors
    // need no restore: every path is re-activated below, so the next
    // dispatch of its partition re-pulls it from the restored masters
    // before touching it.
    std::fill(plane_.master_version.begin(), plane_.master_version.end(),
              0u);
    std::fill(plane_.slot_seen_version.begin(),
              plane_.slot_seen_version.end(), 0u);
    std::fill(transport_.master_writer.begin(),
              transport_.master_writer.end(), kInvalidVertex);
    std::fill(plane_.slot_active.begin(), plane_.slot_active.end(),
              static_cast<std::uint8_t>(0));
    std::fill(plane_.path_active_count.begin(),
              plane_.path_active_count.end(), 0u);
    std::fill(plane_.path_in_worklist.begin(),
              plane_.path_in_worklist.end(),
              static_cast<std::uint8_t>(0));
    for (auto &wl : plane_.partition_worklist)
        wl.clear();
    for (auto &queue : plane_.stale_queue)
        queue.clear();
    for (auto &dirty : plane_.partition_dirty)
        dirty.reset();
    std::fill(plane_.partition_active.begin(),
              plane_.partition_active.end(),
              static_cast<std::uint8_t>(0));

    // Drop all device residency: the recovery restores from the host
    // checkpoint, so every partition re-uploads on its next dispatch —
    // and chooseDevice() skips failed devices, so the DAG dispatcher
    // restripes the dead device's share over the survivors.
    transport_.dropResidency();

    // Degrade: re-activate every source slot. Restarting the whole
    // iteration from the checkpoint state re-converges to the same
    // fixed point (the Maiter-style self-correction argument — the
    // per-edge caches rolled back consistently with the masters).
    for (std::uint64_t slot = 0; slot < plane_.slot_active.size();
         ++slot) {
        if (!sync_.isSrcSlot(slot))
            continue;
        plane_.activateSlot(slot);
        plane_.partition_active[sync_.partitionOfSlot(slot)] = 1;
    }

    counters_.add(metrics::Counter::Recoveries);
    if (trace_) {
        trace_->event(metrics::TraceEventType::Recovery, wave,
                      metrics::kTraceNoPartition, platform.makespan(),
                      0.0, dead, recoveries_);
    }
    logInfo("DiGraphEngine: lost device ", dead, " at wave ", wave,
            "; rolled back to the wave-", plane_.ckpt_wave,
            " checkpoint and redistributed over ", platform.numAlive(),
            " surviving device(s)");
    (void)report;
}

DiGraphEngine::InvariantReport
DiGraphEngine::postRunInvariants(const algorithms::Algorithm &algo,
                                 double residual_slack)
{
    InvariantReport rep;
    const double slack =
        residual_slack * std::max(algo.epsilon(), 1e-300);

    auto &storage = plane_.storage;
    // (a) Convergence residual: at a fixed point, re-running processEdge
    // against the committed masters must not move any destination enough
    // to re-activate it. Accumulative algorithms legitimately carry
    // sub-epsilon drift per edge (merges below the activation threshold
    // do mutate the master without fan-out), hence the slack multiple.
    for (PathId q = 0; q < storage.numPaths(); ++q) {
        auto view = storage.path(q);
        for (std::size_t i = 0; i < view.length(); ++i) {
            const VertexId src_v = view.vertex_ids[i];
            const VertexId dst_v = view.vertex_ids[i + 1];
            const EdgeId eid = view.edge_ids[i];
            Value edge_copy = view.edge_states[i];
            Value dst_copy = storage.vVal(dst_v);
            const Value dst_before = dst_copy;
            const bool would_activate = algo.processEdge(
                storage.vVal(src_v), edge_copy, eid, g_.edgeWeight(eid),
                static_cast<std::uint32_t>(g_.outDegree(src_v)),
                dst_copy);
            if (!would_activate)
                continue;
            const double residual =
                (std::isinf(dst_copy) && std::isinf(dst_before))
                    ? 0.0
                    : std::abs(static_cast<double>(dst_copy) -
                               static_cast<double>(dst_before));
            rep.max_residual = std::max(rep.max_residual, residual);
            if (residual > slack) {
                ++rep.residual_violations;
                if (rep.detail.empty()) {
                    rep.detail = detail::formatConcat(
                        "residual: edge ", eid, " (", src_v, " -> ",
                        dst_v, ") would still move its destination by ",
                        residual, " (> ", slack, ")");
                }
            }
        }
    }
    rep.residual_ok = rep.residual_violations == 0;

    // (b) Master/mirror coherence: no mirror slot may hold an un-pushed
    // value (the batched sync always leaves loaded == pushed state).
    for (PathId q = 0; q < storage.numPaths() && rep.coherence_ok;
         ++q) {
        const std::uint64_t lo = storage.pathOffset(q);
        const std::uint64_t hi = storage.pathOffset(q + 1);
        for (std::uint64_t s = lo; s < hi; ++s) {
            if (algo.hasPush(storage.sVal(s), storage.loadedVal(s))) {
                rep.coherence_ok = false;
                if (rep.detail.empty()) {
                    rep.detail = detail::formatConcat(
                        "coherence: slot ", s, " (vertex ",
                        storage.vertexAt(s), ", path ", q,
                        ") holds an un-pushed mirror value");
                }
                break;
            }
        }
    }

    // (c) Activation: the incremental bookkeeping must recount cleanly
    // and the engine must be quiescent — run() only returns when the
    // dispatch loop drained every activation.
    rep.activation_ok = activationBookkeepingConsistent();
    if (rep.activation_ok) {
        const bool slots_quiet = std::none_of(
            plane_.slot_active.begin(), plane_.slot_active.end(),
            [](std::uint8_t f) { return f != 0; });
        const bool parts_quiet = std::none_of(
            plane_.partition_active.begin(),
            plane_.partition_active.end(),
            [](std::uint8_t f) { return f != 0; });
        rep.activation_ok = slots_quiet && parts_quiet;
        if (!rep.activation_ok && rep.detail.empty())
            rep.detail = "activation: engine not quiescent after run()";
    } else if (rep.detail.empty()) {
        rep.detail = "activation: bookkeeping recount mismatch";
    }
    return rep;
}

} // namespace digraph::engine
