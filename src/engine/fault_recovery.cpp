/**
 * @file
 * Fault tolerance for the DiGraph engine (DESIGN.md "Fault model and
 * recovery"): barrier checkpointing with copy-on-write dirty journals,
 * transfer retry with exponential backoff, SMX-stall kernel multipliers,
 * degrade-and-redistribute recovery from device loss, and the post-run
 * invariant checker.
 *
 * Every method here runs in a *serial* engine phase (wave start, the
 * dispatch-replay barrier, or wave end): the injector's coin stream is
 * ordered, and the checkpoint journals are shared state. Keeping all
 * fault decisions out of the parallel compute phase is what preserves
 * bit-identical results across engine_threads values even under faults.
 */

#include "engine/digraph_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace digraph::engine {

namespace {

/** Bytes per mirror-sync message (matches digraph_engine.cpp). */
constexpr std::size_t kMessageBytes = sizeof(VertexId) + sizeof(Value);

} // namespace

void
DiGraphEngine::initFaultTolerance()
{
    injector_ = gpusim::FaultInjector(options_.faults);
    smx_stall_factor_.assign(
        static_cast<std::size_t>(platform_.numDevices()) *
            options_.platform.smx_per_device,
        1.0);
    // Epoch-0 checkpoint: the freshly-initialized state. Later epochs
    // only copy journalled-dirty entries.
    const auto vvals = storage_.vVals();
    ckpt_v_.assign(vvals.begin(), vvals.end());
    const auto evals = storage_.eVal();
    ckpt_e_.assign(evals.begin(), evals.end());
    ckpt_v_dirty_.assign(g_.numVertices(), 0);
    ckpt_v_dirty_list_.clear();
    ckpt_part_dirty_.assign(pre_.numPartitions(), 0);
    ckpt_part_dirty_list_.clear();
    ckpt_wave_ = 0;
    recoveries_ = 0;
}

void
DiGraphEngine::copyPartitionEval(PartitionId p, bool to_checkpoint)
{
    // Path q's edges occupy E_val indexes
    // [pathOffset(q) - q, pathOffset(q + 1) - q - 1); for the contiguous
    // path range [path_lo, path_hi) of a partition the union telescopes
    // to [pathOffset(path_lo) - path_lo, pathOffset(path_hi) - path_hi).
    const std::uint32_t path_lo = pre_.partition_offsets[p];
    const std::uint32_t path_hi = pre_.partition_offsets[p + 1];
    const std::uint64_t lo = storage_.pathOffset(path_lo) - path_lo;
    const std::uint64_t hi = storage_.pathOffset(path_hi) - path_hi;
    auto live = storage_.eVals();
    if (to_checkpoint) {
        std::copy(live.begin() + static_cast<std::ptrdiff_t>(lo),
                  live.begin() + static_cast<std::ptrdiff_t>(hi),
                  ckpt_e_.begin() + static_cast<std::ptrdiff_t>(lo));
    } else {
        std::copy(ckpt_e_.begin() + static_cast<std::ptrdiff_t>(lo),
                  ckpt_e_.begin() + static_cast<std::ptrdiff_t>(hi),
                  live.begin() + static_cast<std::ptrdiff_t>(lo));
    }
}

void
DiGraphEngine::pollFaults(std::uint64_t wave, metrics::RunReport &report)
{
    const double now = platform_.makespan();

    due_stalls_.clear();
    injector_.drainDueSmxStalls(now, due_stalls_);
    for (const auto &stall : due_stalls_) {
        smx_stall_factor_[static_cast<std::size_t>(stall.device) *
                              options_.platform.smx_per_device +
                          stall.smx] = stall.factor;
        counters_.add(metrics::Counter::FaultsInjected);
        if (trace_) {
            trace_->event(metrics::TraceEventType::FaultInjected, wave,
                          metrics::kTraceNoPartition, now, 0.0,
                          stall.device, 1);
        }
    }

    due_loss_.clear();
    injector_.drainDueDeviceLoss(now, due_loss_);
    for (const DeviceId dead : due_loss_) {
        counters_.add(metrics::Counter::FaultsInjected);
        if (trace_) {
            trace_->event(metrics::TraceEventType::FaultInjected, wave,
                          metrics::kTraceNoPartition, now, 0.0, dead, 0);
        }
        if (platform_.device(dead).failed())
            continue; // duplicate plan entry: the device is already gone
        recoverFromDeviceLoss(dead, wave, report);
    }
}

double
DiGraphEngine::transferFaultPenalty(std::uint64_t bytes,
                                    metrics::RunReport &report)
{
    if (!ft_enabled_)
        return 0.0;
    const gpusim::TransferOutcome outcome = injector_.attemptTransfer(
        static_cast<unsigned>(options_.max_transfer_retries),
        options_.transfer_backoff_cycles);
    if (outcome.attempts > 1) {
        const std::uint64_t retries = outcome.attempts - 1;
        counters_.add(metrics::Counter::TransferRetries, retries);
        if (trace_) {
            for (std::uint64_t k = 1; k <= retries; ++k) {
                trace_->event(metrics::TraceEventType::TransferRetry,
                              trace_wave_, metrics::kTraceNoPartition,
                              platform_.makespan(), 0.0, k, bytes);
            }
        }
        report.comm_cycles += outcome.delay_cycles;
    }
    if (!outcome.delivered) {
        fatal("DiGraphEngine: transfer of ", bytes,
              " bytes permanently failed after ", outcome.attempts,
              " attempts (max_transfer_retries=",
              options_.max_transfer_retries, ")");
    }
    return outcome.delay_cycles;
}

void
DiGraphEngine::maybeCheckpoint(std::uint64_t wave,
                               metrics::RunReport &report)
{
    if (wave - ckpt_wave_ < options_.checkpoint_interval)
        return;

    // Simulated flush cost: each dirty master travels over its writer
    // device's host link, each dirty partition writes back its E_val
    // slice from its resident device. Entries without a live producer
    // (never written, or evicted) are already host-side and free.
    std::vector<std::uint64_t> flush_bytes(platform_.numDevices(), 0);
    for (const VertexId v : ckpt_v_dirty_list_) {
        const DeviceId writer = master_writer_[v];
        if (writer != kInvalidVertex)
            flush_bytes[writer] += kMessageBytes;
    }
    for (const PartitionId q : ckpt_part_dirty_list_) {
        const DeviceId dev = partition_device_[q];
        if (dev == kInvalidVertex)
            continue;
        const std::uint32_t path_lo = pre_.partition_offsets[q];
        const std::uint32_t path_hi = pre_.partition_offsets[q + 1];
        const std::uint64_t edges =
            (storage_.pathOffset(path_hi) - path_hi) -
            (storage_.pathOffset(path_lo) - path_lo);
        flush_bytes[dev] += edges * sizeof(Value);
    }
    const double issue = platform_.makespan();
    for (DeviceId d = 0; d < platform_.numDevices(); ++d) {
        if (flush_bytes[d] == 0 || platform_.device(d).failed())
            continue;
        auto &device = platform_.device(d);
        device.hostLink().transfer(
            issue + transferFaultPenalty(flush_bytes[d], report),
            flush_bytes[d]);
        report.comm_cycles += device.hostLink().cost(flush_bytes[d]);
        counters_.add(metrics::Counter::HostTransferBytes,
                      flush_bytes[d]);
    }

    // Advance the epoch: copy journalled-dirty entries live -> shadow.
    const std::uint64_t dirty_vertices = ckpt_v_dirty_list_.size();
    const std::uint64_t dirty_partitions = ckpt_part_dirty_list_.size();
    for (const VertexId v : ckpt_v_dirty_list_) {
        ckpt_v_[v] = storage_.vVal(v);
        ckpt_v_dirty_[v] = 0;
    }
    ckpt_v_dirty_list_.clear();
    for (const PartitionId q : ckpt_part_dirty_list_) {
        copyPartitionEval(q, /*to_checkpoint=*/true);
        ckpt_part_dirty_[q] = 0;
    }
    ckpt_part_dirty_list_.clear();
    ckpt_wave_ = wave;

    counters_.add(metrics::Counter::Checkpoints);
    if (trace_) {
        trace_->event(metrics::TraceEventType::Checkpoint, wave,
                      metrics::kTraceNoPartition, platform_.makespan(),
                      0.0, dirty_vertices, dirty_partitions);
    }
}

void
DiGraphEngine::recoverFromDeviceLoss(DeviceId dead, std::uint64_t wave,
                                     metrics::RunReport &report)
{
    ++recoveries_;
    if (recoveries_ > options_.max_recoveries) {
        fatal("DiGraphEngine: device ", dead,
              " lost but the recovery budget is exhausted "
              "(max_recoveries=",
              options_.max_recoveries, ")");
    }
    platform_.markFailed(dead);
    if (platform_.numAlive() == 0) {
        fatal("DiGraphEngine: no device survives the loss of device ",
              dead);
    }

    // Roll journalled-dirty masters and E_val slices back to the last
    // checkpoint epoch (entries never dirtied already equal the shadow).
    for (const VertexId v : ckpt_v_dirty_list_) {
        storage_.vVal(v) = ckpt_v_[v];
        ckpt_v_dirty_[v] = 0;
    }
    ckpt_v_dirty_list_.clear();
    for (const PartitionId q : ckpt_part_dirty_list_) {
        copyPartitionEval(q, /*to_checkpoint=*/false);
        ckpt_part_dirty_[q] = 0;
    }
    ckpt_part_dirty_list_.clear();
    ckpt_wave_ = wave; // live state equals the shadow again

    // Clear the volatile run state the rollback invalidated. Mirrors
    // need no restore: every path is re-activated below, so the next
    // dispatch of its partition re-pulls it from the restored masters
    // before touching it.
    std::fill(master_version_.begin(), master_version_.end(), 0u);
    std::fill(slot_seen_version_.begin(), slot_seen_version_.end(), 0u);
    std::fill(master_writer_.begin(), master_writer_.end(),
              kInvalidVertex);
    std::fill(slot_active_.begin(), slot_active_.end(),
              static_cast<std::uint8_t>(0));
    std::fill(path_active_count_.begin(), path_active_count_.end(), 0u);
    std::fill(path_in_worklist_.begin(), path_in_worklist_.end(),
              static_cast<std::uint8_t>(0));
    for (auto &wl : partition_worklist_)
        wl.clear();
    for (auto &queue : stale_queue_)
        queue.clear();
    for (auto &dirty : partition_dirty_)
        dirty.reset();
    std::fill(partition_active_.begin(), partition_active_.end(),
              static_cast<std::uint8_t>(0));

    // Drop all device residency: the recovery restores from the host
    // checkpoint, so every partition re-uploads on its next dispatch —
    // and chooseDevice() skips failed devices, so the DAG dispatcher
    // restripes the dead device's share over the survivors.
    for (DeviceId d = 0; d < platform_.numDevices(); ++d) {
        device_resident_[d].clear();
        device_resident_bytes_[d] = 0;
    }
    std::fill(partition_device_.begin(), partition_device_.end(),
              kInvalidVertex);

    // Degrade: re-activate every source slot. Restarting the whole
    // iteration from the checkpoint state re-converges to the same
    // fixed point (the Maiter-style self-correction argument — the
    // per-edge caches rolled back consistently with the masters).
    for (std::uint64_t slot = 0; slot < slot_active_.size(); ++slot) {
        if (!isSrcSlot(slot))
            continue;
        activateSlot(slot);
        partition_active_[partition_of_path_[path_of_slot_[slot]]] = 1;
    }

    counters_.add(metrics::Counter::Recoveries);
    if (trace_) {
        trace_->event(metrics::TraceEventType::Recovery, wave,
                      metrics::kTraceNoPartition, platform_.makespan(),
                      0.0, dead, recoveries_);
    }
    logInfo("DiGraphEngine: lost device ", dead, " at wave ", wave,
            "; rolled back to the wave-", ckpt_wave_,
            " checkpoint and redistributed over ", platform_.numAlive(),
            " surviving device(s)");
    (void)report;
}

DiGraphEngine::InvariantReport
DiGraphEngine::postRunInvariants(const algorithms::Algorithm &algo,
                                 double residual_slack)
{
    InvariantReport rep;
    const double slack =
        residual_slack * std::max(algo.epsilon(), 1e-300);

    // (a) Convergence residual: at a fixed point, re-running processEdge
    // against the committed masters must not move any destination enough
    // to re-activate it. Accumulative algorithms legitimately carry
    // sub-epsilon drift per edge (merges below the activation threshold
    // do mutate the master without fan-out), hence the slack multiple.
    for (PathId q = 0; q < storage_.numPaths(); ++q) {
        auto view = storage_.path(q);
        for (std::size_t i = 0; i < view.length(); ++i) {
            const VertexId src_v = view.vertex_ids[i];
            const VertexId dst_v = view.vertex_ids[i + 1];
            const EdgeId eid = view.edge_ids[i];
            Value edge_copy = view.edge_states[i];
            Value dst_copy = storage_.vVal(dst_v);
            const Value dst_before = dst_copy;
            const bool would_activate = algo.processEdge(
                storage_.vVal(src_v), edge_copy, eid, g_.edgeWeight(eid),
                static_cast<std::uint32_t>(g_.outDegree(src_v)),
                dst_copy);
            if (!would_activate)
                continue;
            const double residual =
                (std::isinf(dst_copy) && std::isinf(dst_before))
                    ? 0.0
                    : std::abs(static_cast<double>(dst_copy) -
                               static_cast<double>(dst_before));
            rep.max_residual = std::max(rep.max_residual, residual);
            if (residual > slack) {
                ++rep.residual_violations;
                if (rep.detail.empty()) {
                    rep.detail = detail::formatConcat(
                        "residual: edge ", eid, " (", src_v, " -> ",
                        dst_v, ") would still move its destination by ",
                        residual, " (> ", slack, ")");
                }
            }
        }
    }
    rep.residual_ok = rep.residual_violations == 0;

    // (b) Master/mirror coherence: no mirror slot may hold an un-pushed
    // value (the batched sync always leaves loaded == pushed state).
    for (PathId q = 0; q < storage_.numPaths() && rep.coherence_ok;
         ++q) {
        const std::uint64_t lo = storage_.pathOffset(q);
        const std::uint64_t hi = storage_.pathOffset(q + 1);
        for (std::uint64_t s = lo; s < hi; ++s) {
            if (algo.hasPush(storage_.sVal(s), storage_.loadedVal(s))) {
                rep.coherence_ok = false;
                if (rep.detail.empty()) {
                    rep.detail = detail::formatConcat(
                        "coherence: slot ", s, " (vertex ",
                        storage_.vertexAt(s), ", path ", q,
                        ") holds an un-pushed mirror value");
                }
                break;
            }
        }
    }

    // (c) Activation: the incremental bookkeeping must recount cleanly
    // and the engine must be quiescent — run() only returns when the
    // dispatch loop drained every activation.
    rep.activation_ok = activationBookkeepingConsistent();
    if (rep.activation_ok) {
        const bool slots_quiet =
            std::none_of(slot_active_.begin(), slot_active_.end(),
                         [](std::uint8_t f) { return f != 0; });
        const bool parts_quiet = std::none_of(
            partition_active_.begin(), partition_active_.end(),
            [](std::uint8_t f) { return f != 0; });
        rep.activation_ok = slots_quiet && parts_quiet;
        if (!rep.activation_ok && rep.detail.empty())
            rep.detail = "activation: engine not quiescent after run()";
    } else if (rep.detail.empty()) {
        rep.detail = "activation: bookkeeping recount mismatch";
    }
    return rep;
}

} // namespace digraph::engine
