#include "engine/job_scheduler.hpp"

#include <algorithm>

namespace digraph::engine {

namespace {

/** Rank order within the waiting set: priority desc, FIFO age asc,
 *  id asc (total order — ids are unique). */
bool
ranksBefore(const SchedJob &a, const SchedJob &b)
{
    if (a.priority != b.priority)
        return a.priority > b.priority;
    if (a.queue_seq != b.queue_seq)
        return a.queue_seq < b.queue_seq;
    return a.id < b.id;
}

/** Number of partitions active in both @p wl and @p granted_union. */
std::size_t
worklistOverlap(const std::vector<std::uint8_t> *wl,
                const std::vector<std::uint8_t> &granted_union)
{
    if (!wl)
        return 0;
    const std::size_t n = std::min(wl->size(), granted_union.size());
    std::size_t overlap = 0;
    for (std::size_t p = 0; p < n; ++p)
        overlap += static_cast<std::size_t>((*wl)[p] & granted_union[p]);
    return overlap;
}

/** Merge @p wl into the granted-set worklist union. */
void
mergeWorklist(std::vector<std::uint8_t> &granted_union,
              const std::vector<std::uint8_t> *wl)
{
    if (!wl)
        return;
    if (granted_union.size() < wl->size())
        granted_union.resize(wl->size(), 0);
    for (std::size_t p = 0; p < wl->size(); ++p)
        granted_union[p] |= (*wl)[p];
}

} // namespace

std::size_t
fairThreadShare(const SchedulerPolicy &policy, std::size_t rank,
                std::size_t running)
{
    if (running == 0)
        return policy.session_threads;
    const std::size_t base = policy.session_threads / running;
    const std::size_t extra = policy.session_threads % running;
    return std::max<std::size_t>(1, base + (rank < extra ? 1 : 0));
}

std::vector<SchedGrant>
scheduleJobs(const SchedulerPolicy &policy, const SchedSnapshot &snap)
{
    std::vector<SchedGrant> grants;
    const std::size_t slot_cap =
        std::min(policy.max_running_jobs ? policy.max_running_jobs
                                         : policy.session_threads,
                 policy.session_threads);
    if (snap.running_jobs >= slot_cap || snap.waiting.empty())
        return grants;
    std::size_t slots = slot_cap - snap.running_jobs;

    std::vector<SchedJob> ranked = snap.waiting;
    std::sort(ranked.begin(), ranked.end(), ranksBefore);

    // Seed the co-scheduling signal with what is already running: a new
    // grant that iterates the same partitions shares their residency.
    std::vector<std::uint8_t> granted_union;
    for (const auto *wl : snap.running_worklists)
        mergeWorklist(granted_union, wl);

    std::size_t charged = snap.charged_bytes;
    std::vector<std::uint32_t> tenant_started = snap.tenant_started;
    std::vector<std::uint8_t> taken(ranked.size(), 0);

    auto admissible = [&](const SchedJob &j) {
        // A started job's plane is already charged and counted — it is
        // always re-admissible (parking must never deadlock a job).
        if (j.started)
            return true;
        if (policy.tenant_quota && j.tenant < tenant_started.size() &&
            tenant_started[j.tenant] >= policy.tenant_quota)
            return false;
        if (policy.state_budget_bytes &&
            charged + j.state_bytes > policy.state_budget_bytes)
            return false;
        return true;
    };

    while (slots > 0) {
        // The default pick: best-ranked admissible candidate.
        std::size_t pick = ranked.size();
        for (std::size_t i = 0; i < ranked.size(); ++i) {
            if (!taken[i] && admissible(ranked[i])) {
                pick = i;
                break;
            }
        }
        if (pick == ranked.size())
            break;

        // Co-scheduling: within the default pick's priority class,
        // prefer the candidate whose worklist overlaps the granted
        // set most (ties fall back to rank order).
        bool co_scheduled = false;
        if (policy.co_schedule && !granted_union.empty()) {
            std::size_t best_overlap =
                worklistOverlap(ranked[pick].worklist, granted_union);
            for (std::size_t i = pick + 1; i < ranked.size(); ++i) {
                if (taken[i] ||
                    ranked[i].priority != ranked[pick].priority)
                    continue;
                if (!admissible(ranked[i]))
                    continue;
                const std::size_t overlap =
                    worklistOverlap(ranked[i].worklist, granted_union);
                if (overlap > best_overlap) {
                    best_overlap = overlap;
                    pick = i;
                    co_scheduled = true;
                }
            }
        }

        const SchedJob &j = ranked[pick];
        taken[pick] = 1;
        if (!j.started) {
            charged += j.state_bytes;
            if (j.tenant < tenant_started.size())
                ++tenant_started[j.tenant];
        }
        mergeWorklist(granted_union, j.worklist);
        grants.push_back({j.id, 1, co_scheduled});
        --slots;
    }

    // Divide the free threads across the new grants; every grant gets
    // at least 1 even when free_threads is exhausted (running jobs
    // shed their surplus at the next wave boundary, so the
    // oversubscription is transient and bounded by one grant round).
    if (!grants.empty()) {
        const std::size_t k = grants.size();
        const std::size_t base = snap.free_threads / k;
        const std::size_t extra = snap.free_threads % k;
        for (std::size_t i = 0; i < k; ++i) {
            grants[i].threads =
                std::max<std::size_t>(1, base + (i < extra ? 1 : 0));
        }
    }
    return grants;
}

} // namespace digraph::engine
