/**
 * @file
 * Wave-kernel registry: the only translation unit that instantiates the
 * shared wave body (wave_body.hpp), once per
 * (kernel policy x execution mode x trace x push-log) combination, plus
 * the generic virtual-dispatch fallback instantiations.
 *
 * Resolution contract (see Algorithm::kernelTag()): an algorithm is
 * specialized iff its kernelTag() matches a registry entry AND it IS-A
 * the registered class (dynamic_cast), in which case its kernel policy
 * is copied out — the hot loop then never touches the virtual
 * interface, which is what tests/test_wave_kernels.cpp proves with a
 * counting subclass.
 */

#include "engine/wave_kernel.hpp"

#include "engine/wave_body.hpp"

#include "algorithms/adsorption.hpp"
#include "algorithms/katz.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"

namespace digraph::engine {

namespace {

template <class AlgoT, ExecutionMode M, bool TraceOn, bool LogPushes>
DispatchOutcome
computeThunk(DiGraphEngine &eng, PartitionId p, const void *ctx)
{
    return WaveKernels::compute<AlgoT, M, TraceOn, LogPushes>(
        eng, p, *static_cast<const AlgoT *>(ctx));
}

template <class AlgoT>
void
orderedMergeThunk(DiGraphEngine &eng, DispatchOutcome &outcome,
                  const void *ctx, std::vector<VertexId> &changed)
{
    WaveKernels::orderedMerge<AlgoT>(
        eng, outcome, *static_cast<const AlgoT *>(ctx), changed);
}

template <class AlgoT, bool LogPushes>
ResolvedKernel::ComputeFn
pickMode(ExecutionMode mode, bool trace_on)
{
    switch (mode) {
      case ExecutionMode::PathAsync:
        return trace_on
                   ? &computeThunk<AlgoT, ExecutionMode::PathAsync, true,
                                   LogPushes>
                   : &computeThunk<AlgoT, ExecutionMode::PathAsync,
                                   false, LogPushes>;
      case ExecutionMode::PathNoSched:
        return trace_on
                   ? &computeThunk<AlgoT, ExecutionMode::PathNoSched,
                                   true, LogPushes>
                   : &computeThunk<AlgoT, ExecutionMode::PathNoSched,
                                   false, LogPushes>;
      case ExecutionMode::VertexAsync:
        return trace_on
                   ? &computeThunk<AlgoT, ExecutionMode::VertexAsync,
                                   true, LogPushes>
                   : &computeThunk<AlgoT, ExecutionMode::VertexAsync,
                                   false, LogPushes>;
    }
    return nullptr; // unreachable
}

template <class AlgoT>
ResolvedKernel::ComputeFn
pickCompute(ExecutionMode mode, bool trace_on, bool log_pushes)
{
    // The no-push-log body exists only for the accumulative family
    // (static_assert in the body); don't instantiate it elsewhere.
    if constexpr (WaveKernels::isAccumulative<AlgoT>()) {
        if (!log_pushes)
            return pickMode<AlgoT, false>(mode, trace_on);
    }
    (void)log_pushes;
    return pickMode<AlgoT, true>(mode, trace_on);
}

/** Try to resolve @p algo as @p AlgoClass (registry row @p expected). */
template <class AlgoClass>
bool
tryResolve(const algorithms::Algorithm &algo, const std::string &tag,
           const char *expected, const EngineOptions &options,
           bool trace_on, ResolvedKernel &out)
{
    if (tag != expected)
        return false;
    const auto *typed = dynamic_cast<const AlgoClass *>(&algo);
    if (!typed)
        return false;
    using Policy = typename AlgoClass::KernelPolicy;
    auto policy = std::make_shared<const Policy>(typed->kernelPolicy());
    out.name = expected;
    out.specialized = true;
    out.delta_merge = Policy::kAccumulative && options.delta_merge;
    out.compute =
        pickCompute<Policy>(options.mode, trace_on, !out.delta_merge);
    out.ordered_merge = &orderedMergeThunk<Policy>;
    out.policy = std::move(policy);
    return true;
}

} // namespace

ResolvedKernel
resolveWaveKernel(const algorithms::Algorithm &algo,
                  const EngineOptions &options, bool trace_on)
{
    ResolvedKernel k;
    const std::string tag = algo.kernelTag();
    if (!tag.empty() &&
        (tryResolve<algorithms::PageRank>(algo, tag, "pagerank", options,
                                          trace_on, k) ||
         tryResolve<algorithms::Katz>(algo, tag, "katz", options,
                                      trace_on, k) ||
         tryResolve<algorithms::Adsorption>(algo, tag, "adsorption",
                                            options, trace_on, k) ||
         tryResolve<algorithms::Sssp>(algo, tag, "sssp", options,
                                      trace_on, k) ||
         tryResolve<algorithms::Bfs>(algo, tag, "bfs", options, trace_on,
                                     k) ||
         tryResolve<algorithms::Wcc>(algo, tag, "wcc", options, trace_on,
                                     k) ||
         tryResolve<algorithms::KCore>(algo, tag, "kcore", options,
                                       trace_on, k))) {
        return k;
    }
    k.name = "generic:" + algo.name();
    k.specialized = false;
    k.delta_merge = false;
    k.compute = pickCompute<algorithms::Algorithm>(options.mode, trace_on,
                                                   true);
    k.ordered_merge = &orderedMergeThunk<algorithms::Algorithm>;
    k.policy = nullptr;
    return k;
}

} // namespace digraph::engine
