/**
 * @file
 * Out-of-line definitions of ReplicaSync's static-dispatch sync
 * templates (pushDirtyMirrorsT / refreshLocalMirrorsT). Split from
 * replica_sync.hpp because they need the complete ValuePlane type,
 * which itself includes replica_sync.hpp.
 *
 * Included by the wave-body instantiation units (wave_kernel.cpp) and
 * by replica_sync.cpp for the virtual-dispatch wrappers — not by
 * general engine headers, so the templates compile exactly where they
 * are instantiated.
 */

#pragma once

#include <algorithm>

#include "common/prefetch.hpp"
#include "engine/replica_sync.hpp"
#include "engine/value_plane.hpp"

namespace digraph::engine {

template <class AlgoT, bool LogPushes>
PushStats
ReplicaSync::pushDirtyMirrorsT(
    ValuePlane &plane, PartitionId p, const AlgoT &algo,
    const graph::DirectedGraph &g, bool use_proxy,
    std::uint32_t proxy_indegree_threshold,
    std::unordered_map<VertexId, Value> &overlay,
    std::vector<std::pair<VertexId, Value>> &pushes,
    std::vector<VertexId> &changed) const
{
    // Every dirty mirror pushes its pending value/delta to the
    // (privately overlaid) master. Only slots written this round are
    // examined — the incremental replacement of a full slot-range
    // sweep. Ascending slot order keeps the merge order of the sweep.
    // Refreshes are deferred to refreshLocalMirrors() so that a refresh
    // of one replica can never clobber another replica's un-pushed
    // work.
    PushStats stats;
    auto &dirty = plane.partition_dirty[p];
    auto &dirty_slots = dirty.slots();
    std::sort(dirty_slots.begin(), dirty_slots.end());
    const std::size_t n = dirty_slots.size();
    for (std::size_t k = 0; k < n; ++k) {
        if (k + kPrefetchDistance < n) {
            // Gather prefetch: the master each upcoming dirty slot will
            // try_emplace into the overlay (and the mirror pair itself).
            const std::uint64_t ahead = dirty_slots[k + kPrefetchDistance];
            DIGRAPH_PREFETCH(
                &plane.storage.vVal(plane.storage.vertexAt(ahead)));
            DIGRAPH_PREFETCH(&plane.storage.sVal(ahead));
        }
        const std::uint64_t s = dirty_slots[k];
        Value &mirror = plane.storage.sVal(s);
        Value &loaded = plane.storage.loadedVal(s);
        if (!algo.hasPush(mirror, loaded))
            continue;
        const VertexId v = plane.storage.vertexAt(s);
        const Value push = algo.pushValue(mirror, loaded);
        const auto [it, inserted] =
            overlay.try_emplace(v, plane.storage.vVal(v));
        const bool master_changed = algo.mergeMaster(it->second, push);
        loaded = mirror;
        if constexpr (LogPushes)
            pushes.emplace_back(v, push);
        if (use_proxy && g.inDegree(v) >= proxy_indegree_threshold)
            ++stats.proxy_pushes;
        else
            ++stats.atomic_pushes;
        if (master_changed)
            changed.push_back(v);
    }
    dirty.reset();
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()),
                  changed.end());
    return stats;
}

template <class AlgoT>
void
ReplicaSync::refreshLocalMirrorsT(
    ValuePlane &plane, const AlgoT &algo, std::uint64_t slot_lo,
    std::uint64_t slot_hi,
    const std::unordered_map<VertexId, Value> &overlay,
    const std::vector<VertexId> &changed) const
{
    for (const VertexId v : changed) {
        const Value master = overlay.find(v)->second;
        const auto occ_begin =
            occur_slots_.begin() +
            static_cast<std::ptrdiff_t>(occur_offsets_[v]);
        const auto occ_end =
            occur_slots_.begin() +
            static_cast<std::ptrdiff_t>(occur_offsets_[v + 1]);
        for (auto it = std::lower_bound(occ_begin, occ_end, slot_lo);
             it != occ_end && *it < slot_hi; ++it) {
            const std::uint64_t slot = *it;
            Value &mirror = plane.storage.sVal(slot);
            mirror = algo.pull(master, mirror);
            plane.storage.loadedVal(slot) = mirror;
            if (is_src_slot_[slot])
                plane.activateSlot(slot);
        }
    }
}

} // namespace digraph::engine
