#include "engine/graph_service.hpp"

#include <algorithm>
#include <thread>

#include "common/logging.hpp"
#include "engine/digraph_engine.hpp"
#include "partition/preprocess.hpp"
#include "storage/durable_store.hpp"

namespace digraph::engine {

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued:   return "queued";
      case JobState::Running:  return "running";
      case JobState::Parked:   return "parked";
      case JobState::Done:     return "done";
      case JobState::Rejected: return "rejected";
    }
    return "?";
}

namespace {

std::size_t
resolveSessionThreads(const ServiceConfig &config,
                      const EngineOptions &options)
{
    if (config.session_threads)
        return config.session_threads;
    if (options.engine_threads)
        return options.engine_threads;
    return std::max(1u, std::thread::hardware_concurrency());
}

} // namespace

GraphService::GraphService(const graph::DirectedGraph &g,
                           EngineOptions options, ServiceConfig config)
    : g_(g), options_(std::move(options)), config_(config)
{
    if (const std::string err = options_.validate(); !err.empty())
        fatal("GraphService: invalid options: ", err);
    options_.resolvePartitionBudget(g.numEdges());
    sub_ = EngineSubstrate::build(
        g, partition::preprocess(g, options_.preprocess));
    policy_.session_threads = resolveSessionThreads(config_, options_);
    policy_.max_running_jobs = config_.max_running_jobs;
    policy_.state_budget_bytes = config_.state_budget_bytes;
    policy_.tenant_quota = config_.tenant_quota;
    policy_.co_schedule = config_.co_schedule;
}

GraphService::GraphService(const graph::DirectedGraph &g,
                           std::shared_ptr<const EngineSubstrate> sub,
                           EngineOptions options, ServiceConfig config)
    : g_(g), options_(std::move(options)), config_(config),
      sub_(std::move(sub))
{
    if (const std::string err = options_.validate(); !err.empty())
        fatal("GraphService: invalid options: ", err);
    if (!sub_)
        fatal("GraphService: null shared substrate");
    if (sub_->pre.paths.numEdges() != g.numEdges()) {
        fatal("GraphService: shared substrate covers ",
              sub_->pre.paths.numEdges(), " edges but the graph has ",
              g.numEdges());
    }
    if (sub_->num_vertices != g.numVertices()) {
        fatal("GraphService: shared substrate was built for ",
              sub_->num_vertices, " vertices but the graph has ",
              g.numVertices());
    }
    policy_.session_threads = resolveSessionThreads(config_, options_);
    policy_.max_running_jobs = config_.max_running_jobs;
    policy_.state_budget_bytes = config_.state_budget_bytes;
    policy_.tenant_quota = config_.tenant_quota;
    policy_.co_schedule = config_.co_schedule;
}

GraphService::~GraphService()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] {
            return std::all_of(jobs_.begin(), jobs_.end(),
                               [](const auto &j) {
                                   return j->state == JobState::Done ||
                                          j->state == JobState::Rejected;
                               });
        });
    }
    for (auto &job : jobs_) {
        if (job->thread.joinable())
            job->thread.join();
    }
}

std::uint32_t
GraphService::internTenant(const std::string &name)
{
    for (std::uint32_t t = 0; t < tenants_.size(); ++t) {
        if (tenants_[t] == name)
            return t;
    }
    tenants_.push_back(name);
    tenant_started_.push_back(0);
    return static_cast<std::uint32_t>(tenants_.size() - 1);
}

std::size_t
GraphService::jobBytesEstimate()
{
    if (!job_bytes_estimate_) {
        // Probe engine: its ValuePlane + transport bookkeeping sizes
        // are algorithm-independent over one substrate, so one build
        // prices every future job. It is handed to the first granted
        // job rather than thrown away.
        spare_engine_ =
            std::make_unique<DiGraphEngine>(g_, sub_, options_);
        job_bytes_estimate_ = spare_engine_->jobStateBytes();
    }
    return job_bytes_estimate_;
}

void
GraphService::traceEvent(metrics::TraceEventType type,
                         std::uint64_t arg0, std::uint64_t arg1)
{
    if (config_.trace) {
        config_.trace->event(type, /*wave=*/stats_.grants,
                             metrics::kTraceNoPartition,
                             /*sim_begin=*/0.0, /*sim_dur=*/0.0, arg0,
                             arg1);
    }
}

std::size_t
GraphService::freeThreads() const
{
    std::size_t held = 0;
    for (const JobId id : active_)
        held += jobs_[id]->thread_grant;
    return policy_.session_threads > held
               ? policy_.session_threads - held
               : 0;
}

bool
GraphService::schedulableWaiting() const
{
    for (const auto &job : jobs_) {
        if (job->granted ||
            (job->state != JobState::Queued &&
             job->state != JobState::Parked))
            continue;
        if (job->started)
            return true;
        if (policy_.tenant_quota &&
            tenant_started_[job->tenant] >= policy_.tenant_quota)
            continue;
        if (policy_.state_budget_bytes &&
            charged_bytes_ + job_bytes_estimate_ >
                policy_.state_budget_bytes)
            continue;
        return true;
    }
    return false;
}

void
GraphService::reschedule()
{
    SchedSnapshot snap;
    for (const auto &job : jobs_) {
        if (job->granted ||
            (job->state != JobState::Queued &&
             job->state != JobState::Parked))
            continue;
        SchedJob sj;
        sj.id = job->id;
        sj.priority = job->request.priority;
        sj.tenant = job->tenant;
        sj.queue_seq = job->queue_seq;
        sj.started = job->started;
        sj.state_bytes = job->charged_bytes ? job->charged_bytes
                                            : job_bytes_estimate_;
        sj.worklist = job->worklist.empty() ? nullptr : &job->worklist;
        snap.waiting.push_back(sj);
    }
    if (snap.waiting.empty())
        return;
    for (const JobId id : active_) {
        if (!jobs_[id]->worklist.empty())
            snap.running_worklists.push_back(&jobs_[id]->worklist);
    }
    snap.running_jobs = active_.size();
    snap.free_threads = freeThreads();
    snap.charged_bytes = charged_bytes_;
    snap.tenant_started = tenant_started_;

    const auto grants = scheduleJobs(policy_, snap);
    for (const auto &grant : grants) {
        Job &job = *jobs_[grant.id];
        job.granted = true;
        job.thread_grant = grant.threads;
        job.waves_in_quantum = 0;
        if (!job.started) {
            job.started = true;
            job.charged_bytes = job_bytes_estimate_;
            charged_bytes_ += job.charged_bytes;
            ++tenant_started_[job.tenant];
        }
        active_.push_back(job.id);
        grant_log_.push_back(job.id);
        ++stats_.grants;
        if (grant.co_scheduled)
            ++stats_.co_scheduled_grants;
        stats_.peak_inflight_bytes =
            std::max(stats_.peak_inflight_bytes, charged_bytes_);
        stats_.peak_running =
            std::max(stats_.peak_running, active_.size());
        traceEvent(metrics::TraceEventType::JobGrant, job.id,
                   job.thread_grant);
    }
    if (!grants.empty())
        cv_.notify_all();
}

JobId
GraphService::addJobAsync(const JobRequest &request)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const JobId id = jobs_.size();
    jobs_.push_back(std::make_unique<Job>());
    Job &job = *jobs_.back();
    job.service = this;
    job.id = id;
    job.request = request;
    job.tenant = internTenant(request.tenant);
    job.queue_seq = queue_seq_next_++;
    job.result.id = id;
    job.result.spec = request.spec;
    job.result.tenant = request.tenant;
    job.result.priority = request.priority;
    ++stats_.submitted;

    // Validate the spec up front (fatal on nonsense, exactly like the
    // batch path did at runAll).
    job.algo = algorithms::makeAlgorithmSpec(request.spec, g_);

    // Admission control: a job that can never fit is rejected
    // outright; one that merely cannot start *now* queues, unless the
    // admission queue itself is past its limit.
    const std::size_t estimate =
        policy_.state_budget_bytes ? jobBytesEstimate() : 0;
    if (policy_.state_budget_bytes &&
        estimate > policy_.state_budget_bytes) {
        job.state = JobState::Rejected;
        job.reject_reason =
            "job state estimate exceeds the session byte budget";
        ++stats_.rejected;
        return id;
    }
    const std::size_t slot_cap =
        std::min(policy_.max_running_jobs ? policy_.max_running_jobs
                                          : policy_.session_threads,
                 policy_.session_threads);
    const bool can_start_now =
        active_.size() < slot_cap &&
        (!policy_.state_budget_bytes ||
         charged_bytes_ + estimate <= policy_.state_budget_bytes) &&
        (!policy_.tenant_quota ||
         tenant_started_[job.tenant] < policy_.tenant_quota);
    if (!can_start_now) {
        const std::size_t queued = static_cast<std::size_t>(
            std::count_if(jobs_.begin(), jobs_.end(),
                          [](const auto &j) {
                              return j->state == JobState::Queued &&
                                     !j->granted;
                          })) -
            1; // exclude this job
        if (config_.max_queued_jobs &&
            queued >= config_.max_queued_jobs) {
            job.state = JobState::Rejected;
            job.reject_reason = "admission queue full";
            ++stats_.rejected;
            return id;
        }
        ++stats_.queued_on_arrival;
    }
    ++stats_.admitted;
    if (config_.journal)
        config_.journal->appendAdmit(id, request.spec, request.priority,
                                     request.tenant,
                                     request.journal_id);
    traceEvent(metrics::TraceEventType::JobAdmit, id,
               static_cast<std::uint64_t>(request.priority));
    job.thread = std::thread(&GraphService::jobMain, this, &job);
    reschedule();
    return id;
}

void
GraphService::jobMain(Job *job)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return job->granted; });
    job->state = JobState::Running;

    // Engine acquisition: take the probe engine if one is waiting,
    // else build a fresh one — outside the session lock (plane
    // allocation is the expensive part of admitting a job).
    std::unique_ptr<DiGraphEngine> engine = std::move(spare_engine_);
    const std::size_t initial_threads = job->thread_grant;
    lock.unlock();
    if (!engine)
        engine = std::make_unique<DiGraphEngine>(g_, sub_, options_);
    engine->setWaveControl(job);
    engine->setEngineThreads(initial_threads);
    if (config_.with_traces) {
        job->result.trace = std::make_shared<metrics::TraceSink>();
        engine->setTrace(job->result.trace.get());
    }
    job->engine = std::move(engine);

    job->result.report = job->engine->run(*job->algo);
    job->result.counters = job->engine->counters();
    job->result.job_state_bytes = job->engine->jobStateBytes();

    lock.lock();
    job->state = JobState::Done;
    job->granted = false;
    active_.erase(std::find(active_.begin(), active_.end(), job->id));
    charged_bytes_ -= job->charged_bytes;
    --tenant_started_[job->tenant];
    completion_order_.push_back(job->id);
    ++stats_.completed;
    if (config_.journal)
        config_.journal->appendComplete(job->id);
    traceEvent(metrics::TraceEventType::JobDone, job->id,
               job->result.times_parked);
    job->engine.reset(); // release the plane: in-flight bytes drop NOW
    reschedule();
    cv_.notify_all();
}

std::size_t
GraphService::Job::onWaveBoundary(
    std::uint64_t /*wave*/, const std::vector<std::uint8_t> &active)
{
    return service->waveBoundary(*this, active);
}

std::size_t
GraphService::waveBoundary(Job &job,
                           const std::vector<std::uint8_t> &active)
{
    std::unique_lock<std::mutex> lock(mutex_);
    job.worklist.assign(active.begin(), active.end());
    ++job.waves_in_quantum;
    if (config_.quantum_waves &&
        job.waves_in_quantum >= config_.quantum_waves) {
        if (schedulableWaiting()) {
            // Preemption: offer the slot. The ValuePlane is the job's
            // suspended state — nothing to snapshot, and the resumed
            // run is bit-identical to an uninterrupted one.
            ++stats_.parks;
            ++job.result.times_parked;
            traceEvent(metrics::TraceEventType::JobPark, job.id,
                       job.waves_in_quantum);
            job.granted = false;
            job.state = JobState::Parked;
            active_.erase(
                std::find(active_.begin(), active_.end(), job.id));
            // Round-robin within the priority class: re-enter at the
            // back of the queue.
            job.queue_seq = queue_seq_next_++;
            reschedule();
            cv_.wait(lock, [&] { return job.granted; });
            job.state = JobState::Running;
        }
        job.waves_in_quantum = 0;
    }
    // Dynamic thread allocation: adopt the fair share of the session
    // budget for the current active-set membership.
    const auto rank = static_cast<std::size_t>(
        std::find(active_.begin(), active_.end(), job.id) -
        active_.begin());
    job.thread_grant =
        fairThreadShare(policy_, rank, active_.size());
    return job.thread_grant;
}

JobStatus
GraphService::poll(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id >= jobs_.size())
        fatal("GraphService::poll: unknown job ", id);
    const Job &job = *jobs_[id];
    JobStatus status;
    status.id = id;
    status.state = job.state;
    status.spec = job.request.spec;
    status.tenant = job.request.tenant;
    status.priority = job.request.priority;
    status.detail = job.reject_reason;
    return status;
}

std::vector<JobResult>
GraphService::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
        return std::all_of(jobs_.begin(), jobs_.end(),
                           [](const auto &j) {
                               return j->state == JobState::Done ||
                                      j->state == JobState::Rejected;
                           });
    });
    std::vector<JobResult> results;
    results.reserve(jobs_.size());
    for (auto &job : jobs_) {
        if (job->state == JobState::Done)
            results.push_back(std::move(job->result));
    }
    drained_ = true;
    return results;
}

std::size_t
GraphService::numJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
}

ServiceStats
GraphService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
GraphService::inflightStateBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return charged_bytes_;
}

std::vector<JobId>
GraphService::grantLog() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return grant_log_;
}

std::vector<JobId>
GraphService::completionOrder() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completion_order_;
}

} // namespace digraph::engine
