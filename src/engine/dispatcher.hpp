/**
 * @file
 * Dispatching layer of the execution substrate (DESIGN.md §12): the
 * immutable partition-dependency structures (precursor lists, the
 * interference matrix, partition SCC groups and their condensed DAG)
 * plus the scheduling policies that consume them — upstream-quiescence
 * readiness, topological/in-advance partition selection, greedy
 * non-interfering chunking, Pri(p) path priority ordering, and the
 * lane-binning work-stealing cost model.
 *
 * Like ReplicaSync, a Dispatcher is built once per preprocessing result
 * and is read-only afterwards (shareable across concurrent jobs); all
 * per-run inputs (activation flags, wave stamps) are passed in.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "engine/options.hpp"
#include "engine/replica_sync.hpp"
#include "graph/digraph.hpp"
#include "partition/preprocess.hpp"
#include "storage/path_storage.hpp"

namespace digraph::engine {

class Dispatcher
{
  public:
    /** Build every dependency structure (called once; @p pre must
     *  outlive the dispatcher). */
    void build(const partition::Preprocessed &pre,
               const ReplicaSync &sync,
               const storage::PathLayout &layout, VertexId num_vertices);

    /**
     * Groups blocked at wave start: a group is blocked while any group
     * transitively upstream of it has an active partition — the paper's
     * "dispatch when the precursors are inactive", evaluated against
     * full upstream convergence rather than the momentary worklist
     * flags.
     */
    std::vector<std::uint8_t>
    blockedGroups(const std::vector<std::uint8_t> &partition_active) const;

    /**
     * Among active, unblocked partitions not yet dispatched in this
     * wave pick (lowest layer, id) — topological dispatch order. With
     * @p blocked == nullptr the call realizes the paper's "in advance"
     * execution: the active partition with the fewest active direct
     * precursors runs even though upstream work remains.
     */
    PartitionId
    choosePartition(const std::vector<std::uint64_t> &stamp,
                    std::uint64_t wave,
                    const std::vector<std::uint8_t> *blocked,
                    const std::vector<std::uint8_t> &partition_active,
                    bool dag_dispatch) const;

    /**
     * Greedy independent-set chunk of @p batch in batch (priority)
     * order: the first remaining partition always enters, later ones
     * only if vertex-disjoint from every current member. Marks members
     * in @p taken and fills @p chunk (cleared first).
     */
    void nextChunk(const std::vector<PartitionId> &batch,
                   std::vector<std::uint8_t> &taken,
                   std::vector<PartitionId> &chunk) const;

    /**
     * Path scheduling (Section 3.2.3): stable-sort @p active_paths by
     * descending Pri(p) = alpha * avgDeg(p) * activeCount(p) -
     * layer(p). @p active_counts is parallel to the incoming order.
     */
    void orderByPriority(std::vector<PathId> &active_paths,
                         const std::vector<std::uint32_t> &active_counts)
        const;

    /**
     * Simulated cost of one local round: paths are packed into lane
     * bins by work units (longest first); work stealing spreads bins
     * over several SMXs of the device. A path's work is its processed
     * edges at full cost plus a cheap coalesced skip-scan of its
     * inactive positions. Returns per work-stealing group: kernel
     * cycles (group 0 chains on the home SMX; surplus groups steal).
     */
    std::vector<double>
    roundCost(const EngineOptions &options, double per_edge_cycles,
              const std::vector<PathId> &active_paths,
              const std::vector<std::uint64_t> &processed_edges,
              std::uint64_t proxy_pushes,
              std::uint64_t atomic_pushes) const;

    /** Direct precursor partitions of @p q (deduped, from the DAG). */
    const std::vector<PartitionId> &precursors(PartitionId q) const
    {
        return precursor_parts_[q];
    }

    /** Dependency SCC group of partition @p q. */
    SccId group(PartitionId q) const { return partition_group_[q]; }

    /** Byte footprint of partition @p q. */
    std::size_t partitionBytes(PartitionId q) const
    {
        return partition_bytes_[q];
    }

    /** Pri(p) scaling factor alpha = 1 / (maxAvgDeg * maxN). */
    double priAlpha() const { return pri_alpha_; }

    /** Host bytes of the shared dependency structures. */
    std::size_t memoryBytes() const;

  private:
    /** The preprocessing result the structures were built from (layer /
     *  avg-degree / partition tables consumed by the policies). */
    const partition::Preprocessed *pre_ = nullptr;
    PartitionId nparts_ = 0;
    /** Per-partition precursor partitions (deduped, from the DAG). */
    std::vector<std::vector<PartitionId>> precursor_parts_;
    /** Symmetric partition-interference matrix (nparts x nparts, row
     *  major): set when two partitions mirror a common vertex. Only
     *  mutually non-interfering partitions are dispatched concurrently —
     *  their dispatches are then exactly order-independent, so the
     *  parallel wave does the same work the serial engine would. */
    std::vector<std::uint8_t> interference_;
    /** Partitions mirroring a very-high-fanout (hub) vertex; treated as
     *  interfering with everything (keeps the matrix build O(fanout
     *  cap * occurrences) instead of quadratic in the hub fanout). */
    std::vector<std::uint8_t> interferes_all_;
    /** SCC group of each partition in the partition dependency graph:
     *  partitions of one group form a dependency cycle and iterate
     *  together; a group is *ready* when no group transitively upstream
     *  of it holds an active partition (checked at wave start). */
    std::vector<SccId> partition_group_;
    /** Condensed DAG over partition groups. */
    graph::DirectedGraph group_dag_;
    /** Topological order of the group DAG. */
    std::vector<VertexId> group_topo_;
    /** Per-partition byte footprint. */
    std::vector<std::size_t> partition_bytes_;
    /** Pri(p) scaling factor alpha = 1 / (maxAvgDeg * maxN). */
    double pri_alpha_ = 1.0;
};

} // namespace digraph::engine
