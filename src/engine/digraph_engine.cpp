#include "engine/digraph_engine.hpp"

#include <algorithm>
#include <thread>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "engine/wave_control.hpp"

namespace digraph::engine {

std::string
modeName(ExecutionMode mode)
{
    switch (mode) {
      case ExecutionMode::PathAsync:   return "digraph";
      case ExecutionMode::PathNoSched: return "digraph-w";
      case ExecutionMode::VertexAsync: return "digraph-t";
    }
    return "?";
}

DiGraphEngine::DiGraphEngine(const graph::DirectedGraph &g,
                             EngineOptions options)
    : g_(g), options_(std::move(options)),
      sub_([&] {
          if (const std::string err = options_.validate(); !err.empty())
              fatal("DiGraphEngine: invalid options: ", err);
          options_.resolvePartitionBudget(g.numEdges());
          return EngineSubstrate::build(
              g, partition::preprocess(g, options_.preprocess));
      }()),
      pre_(sub_->pre), sync_(sub_->sync), sched_(sub_->dispatcher),
      transport_(options_.platform)
{
    ft_enabled_ = !options_.faults.empty() || options_.store != nullptr;
    plane_.bindLayout(sub_->layout, g_.numVertices());
    plane_.attach(&sync_);
}

DiGraphEngine::DiGraphEngine(const graph::DirectedGraph &g,
                             partition::Preprocessed pre,
                             EngineOptions options)
    : g_(g), options_(std::move(options)),
      sub_([&] {
          if (const std::string err = options_.validate(); !err.empty())
              fatal("DiGraphEngine: invalid options: ", err);
          if (pre.paths.numEdges() != g.numEdges()) {
              fatal("DiGraphEngine: prebuilt preprocessing covers ",
                    pre.paths.numEdges(), " edges but the graph has ",
                    g.numEdges());
          }
          return EngineSubstrate::build(g, std::move(pre));
      }()),
      pre_(sub_->pre), sync_(sub_->sync), sched_(sub_->dispatcher),
      transport_(options_.platform)
{
    ft_enabled_ = !options_.faults.empty() || options_.store != nullptr;
    plane_.bindLayout(sub_->layout, g_.numVertices());
    plane_.attach(&sync_);
}

DiGraphEngine::DiGraphEngine(const graph::DirectedGraph &g,
                             std::shared_ptr<const EngineSubstrate> sub,
                             EngineOptions options)
    : g_(g), options_(std::move(options)),
      sub_([&] {
          if (const std::string err = options_.validate(); !err.empty())
              fatal("DiGraphEngine: invalid options: ", err);
          if (!sub)
              fatal("DiGraphEngine: null shared substrate");
          if (sub->pre.paths.numEdges() != g.numEdges()) {
              fatal("DiGraphEngine: shared substrate covers ",
                    sub->pre.paths.numEdges(),
                    " edges but the graph has ", g.numEdges());
          }
          if (sub->num_vertices != g.numVertices()) {
              fatal("DiGraphEngine: shared substrate was built for ",
                    sub->num_vertices, " vertices but the graph has ",
                    g.numVertices());
          }
          return std::move(sub);
      }()),
      pre_(sub_->pre), sync_(sub_->sync), sched_(sub_->dispatcher),
      transport_(options_.platform)
{
    ft_enabled_ = !options_.faults.empty() || options_.store != nullptr;
    plane_.bindLayout(sub_->layout, g_.numVertices());
    plane_.attach(&sync_);
}

std::size_t
DiGraphEngine::engineThreads() const
{
    if (options_.engine_threads)
        return options_.engine_threads;
    return std::max(1u, std::thread::hardware_concurrency());
}

std::size_t
DiGraphEngine::jobStateBytes() const
{
    std::size_t bytes = plane_.memoryBytes();
    bytes += partition_process_count_.size() * sizeof(std::uint32_t);
    bytes += transport_.partition_device.size() * sizeof(DeviceId);
    bytes += transport_.partition_done.size() * sizeof(double);
    bytes += transport_.partition_msg_ready.size() * sizeof(double);
    bytes += transport_.master_writer.size() * sizeof(DeviceId);
    for (const auto &resident : transport_.device_resident)
        bytes += resident.capacity() * sizeof(PartitionId);
    bytes += transport_.device_resident_bytes.size() * sizeof(std::size_t);
    bytes += transport_.smx_stall_factor.size() * sizeof(double);
    return bytes;
}

metrics::RunReport
DiGraphEngine::run(const algorithms::Algorithm &algo,
                   const WarmStart *warm)
{
    WallTimer wall;
    AccumTimer schedule_timer;
    AccumTimer compute_timer;
    AccumTimer merge_timer;
    AccumTimer barrier_timer;
    metrics::RunReport report;
    report.system = modeName(options_.mode);
    report.algorithm = algo.name();
    report.num_gpus = transport_.platform().numDevices();
    report.num_partitions = pre_.numPartitions();
    report.preprocess_seconds = preprocessSeconds();

    // The thread budget may be reallocated between waves by the
    // inter-job scheduler (options_.wave_control); results never
    // depend on it, so mid-run changes are safe.
    std::size_t nthreads = engineThreads();
    report.engine_threads = static_cast<std::uint32_t>(nthreads);
    if (nthreads > 1 && (!pool_ || pool_->size() != nthreads))
        pool_ = std::make_unique<ThreadPool>(nthreads);

    counters_.reset();
    trace_ = options_.trace;

    // Resolve the wave kernel once per run: the compile-time body
    // instantiation matching (algorithm policy, mode, tracing, merge
    // strategy), or the generic fallback. The hot loop below calls one
    // function pointer per dispatch — never a virtual per edge.
    kernel_ = resolveWaveKernel(algo, options_, trace_ != nullptr);
    kernel_ctx_ = kernel_.policy ? kernel_.policy.get()
                                 : static_cast<const void *>(&algo);
    report.kernel = kernel_.name;
    report.kernel_specialized = kernel_.specialized;
    report.kernel_delta_merge = kernel_.delta_merge;

    const PartitionId nparts = pre_.numPartitions();
    transport_.beginRun(options_, nparts, g_.numVertices(), &counters_);
    transport_.setTraceContext(trace_, trace_wave_, trace_wave_sim_);

    plane_.initializeState(g_, algo, warm);
    plane_.beginRun(pre_);
    partition_process_count_.assign(nparts, 0);
    if (ft_enabled_)
        initFaultTolerance();

    // Prefetch: all partitions are distributed over the devices up
    // front, streamed via the copy queues (Hyper-Q) so kernels can start
    // without waiting on host memory (Section 3.2.2's advance transfer
    // of successive paths). Placement is balanced by bytes.
    transport_.prefetchAll(nparts, sched_, report);

    // Initial activation: the algorithm's initActive() set, or — on a
    // warm start — only the supplied seed vertices.
    if (warm && warm->active_vertices && !options_.force_all_active) {
        for (const VertexId v : *warm->active_vertices)
            sync_.activateVertex(plane_, v);
    } else {
        for (VertexId v = 0; v < g_.numVertices(); ++v) {
            if (options_.force_all_active || algo.initActive(g_, v))
                sync_.activateVertex(plane_, v);
        }
    }

    // Main dependency-aware dispatch loop, organized in waves: within a
    // wave every active partition is dispatched at most once (the
    // batched-kernel granularity of a real GPU), in topological order of
    // the DAG sketch. The wave batch is executed in chunks of mutually
    // NON-INTERFERING partitions (no shared vertex), each in two phases:
    //   1. compute (parallel): every chunk partition runs its local
    //      rounds against chunk-start shared state, buffering master
    //      merges privately (computeDispatch);
    //   2. barrier (serial): outcomes are committed in dispatch order —
    //      master merge replay, version bumps, activation fan-out, and
    //      the simulated platform costs (replayDispatch).
    // Vertex-disjoint dispatches are exactly order-independent, so a
    // chunk's parallel execution does the same work as the serial
    // engine; interfering partitions land in later chunks and see the
    // committed results (the serial engine's fast intra-wave
    // propagation). Chunk composition depends only on the batch and the
    // static interference matrix — NOT the thread count — so results
    // are identical for every engine_threads value.
    std::vector<std::uint64_t> wave_stamp(nparts, 0);
    std::uint64_t wave = 0;
    std::vector<PartitionId> batch;
    std::vector<DispatchOutcome> outcomes;
    for (;;) {
        ++wave;
        if (ft_enabled_)
            pollFaults(wave, report);
        schedule_timer.begin();
        // Readiness and the dispatch set are frozen at wave start: a
        // group is dispatchable only when everything transitively
        // upstream of it has converged, and partitions activated during
        // the wave wait for the next one.
        const auto blocked = sched_.blockedGroups(plane_.partition_active);
        batch.clear();
        for (;;) {
            const PartitionId p = sched_.choosePartition(
                wave_stamp, wave, &blocked, plane_.partition_active,
                options_.dag_dispatch);
            if (p == kInvalidPartition)
                break;
            wave_stamp[p] = wave;
            batch.push_back(p);
        }
        if (batch.empty()) {
            // Nothing ready: either converged, or an (unlikely) blocked
            // cycle remains — run one partition "in advance" to make
            // progress (and keep otherwise idle SMXs busy).
            const PartitionId p = sched_.choosePartition(
                wave_stamp, wave, nullptr, plane_.partition_active,
                options_.dag_dispatch);
            if (p != kInvalidPartition) {
                wave_stamp[p] = wave;
                batch.push_back(p);
            }
        }
        schedule_timer.end();
        if (batch.empty())
            break;

        if (trace_) {
            // Wave context for the compute-phase events: written here by
            // the serial scheduler, read-only while workers run.
            trace_wave_ = wave;
            trace_wave_sim_ = transport_.platform().makespan();
            transport_.setTraceContext(trace_, trace_wave_,
                                       trace_wave_sim_);
            trace_->event(metrics::TraceEventType::WaveStart, wave,
                          metrics::kTraceNoPartition, trace_wave_sim_,
                          0.0, batch.size(), batch.front());
        }

        std::vector<std::uint8_t> taken(batch.size(), 0);
        std::vector<PartitionId> chunk;
        std::size_t done = 0;
        while (done < batch.size()) {
            schedule_timer.begin();
            sched_.nextChunk(batch, taken, chunk);
            done += chunk.size();
            if (ft_enabled_) {
                // Journal the E_val slices this chunk may mutate —
                // serially, before the parallel compute phase touches
                // them (copy-on-write at the granularity the dispatch
                // hands to a device).
                for (const PartitionId cp : chunk)
                    plane_.markPartitionDirty(cp);
            }
            schedule_timer.end();

            compute_timer.begin();
            outcomes.assign(chunk.size(), {});
            if (nthreads == 1 || chunk.size() == 1) {
                for (std::size_t i = 0; i < chunk.size(); ++i)
                    outcomes[i] =
                        kernel_.compute(*this, chunk[i], kernel_ctx_);
            } else {
                pool_->forEachIndex(chunk.size(), [&](std::size_t i) {
                    outcomes[i] =
                        kernel_.compute(*this, chunk[i], kernel_ctx_);
                });
            }
            compute_timer.end();

            if (kernel_.delta_merge) {
                // Lock-free commutative commit: the chunk's outcomes
                // write vertex-disjoint master sets, so the overlays
                // are stored concurrently without locks; the serial
                // barrier below then only replays transport costs and
                // activation fan-out.
                merge_timer.begin();
                if (nthreads == 1 || outcomes.size() == 1) {
                    for (auto &outcome : outcomes)
                        commitDeltas(outcome);
                } else {
                    pool_->forEachIndex(
                        outcomes.size(), [&](std::size_t i) {
                            commitDeltas(outcomes[i]);
                        });
                }
                merge_timer.end();
            }

            barrier_timer.begin();
            for (auto &outcome : outcomes)
                replayDispatch(outcome, report);
            barrier_timer.end();
        }
        if (ft_enabled_)
            maybeCheckpoint(wave, report);
        if (trace_) {
            trace_->event(metrics::TraceEventType::WaveEnd, wave,
                          metrics::kTraceNoPartition,
                          transport_.platform().makespan(), 0.0,
                          batch.size());
        }
        if (options_.wave_control) {
            // Wave boundary: everything is committed and nothing is in
            // flight, so the run can park here indefinitely (the
            // ValuePlane is the job's state) and resume bit-identical.
            // The hook returns next wave's thread budget.
            const std::size_t granted =
                options_.wave_control->onWaveBoundary(
                    wave, plane_.partition_active);
            if (granted && granted != nthreads) {
                nthreads = granted;
                if (nthreads > 1 &&
                    (!pool_ || pool_->size() != nthreads))
                    pool_ = std::make_unique<ThreadPool>(nthreads);
            }
        }
    }
    if (options_.verify_invariants) {
        const InvariantReport inv = postRunInvariants(algo);
        if (!inv.ok()) {
            panic("DiGraphEngine: post-run invariant violation: ",
                  inv.detail.empty() ? std::string("unspecified")
                                     : inv.detail);
        }
    }

    counters_.set(metrics::Counter::Waves,
                  wave - 1); // the last wave dispatched nothing
    counters_.set(metrics::Counter::NumPartitions, nparts);
    counters_.set(metrics::Counter::RingTransferBytes,
                  transport_.platform().ring().totalBytes());
    counters_.set(metrics::Counter::GlobalLoadBytes,
                  transport_.platform().globalLoadBytes());
    counters_.set(metrics::Counter::UsedVertices,
                  counters_.get(metrics::Counter::VertexUpdates));
    counters_.exportTo(report);
    if (trace_)
        trace_->setCounters(counters_);

    report.final_state.assign(plane_.storage.vVals().begin(),
                              plane_.storage.vVals().end());
    report.sim_cycles = transport_.platform().makespan();
    report.utilization = transport_.platform().utilization();
    report.wall_seconds = wall.seconds();
    report.wall_compute_seconds = compute_timer.seconds();
    report.wall_barrier_seconds = barrier_timer.seconds();
    report.wall_merge_seconds = merge_timer.seconds();
    report.wall_schedule_seconds = schedule_timer.seconds();
    return report;
}

} // namespace digraph::engine
