#include "engine/digraph_engine.hpp"

#include <algorithm>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "graph/builder.hpp"
#include "graph/scc.hpp"
#include "graph/traversal.hpp"

namespace digraph::engine {

namespace {

/** Bytes per mirror-sync message (vertex id + value). */
constexpr std::size_t kMessageBytes = sizeof(VertexId) + sizeof(Value);

/** Words touched in global memory per processed edge
 *  (E_idx pair read, S_val read+write, E_val read/write). */
constexpr double kWordsPerEdge = 3.0;

} // namespace

std::string
modeName(ExecutionMode mode)
{
    switch (mode) {
      case ExecutionMode::PathAsync:   return "digraph";
      case ExecutionMode::PathNoSched: return "digraph-w";
      case ExecutionMode::VertexAsync: return "digraph-t";
    }
    return "?";
}

DiGraphEngine::DiGraphEngine(const graph::DirectedGraph &g,
                             EngineOptions options)
    : g_(g), options_(std::move(options)),
      pre_([&] {
          if (const std::string err = options_.validate(); !err.empty())
              fatal("DiGraphEngine: invalid options: ", err);
          options_.resolvePartitionBudget(g.numEdges());
          return partition::preprocess(g, options_.preprocess);
      }()),
      storage_(pre_.paths, g), platform_(options_.platform)
{
    ft_enabled_ = !options_.faults.empty();
    if (ft_enabled_)
        injector_ = gpusim::FaultInjector(options_.faults);
    buildIndexes();
}

DiGraphEngine::DiGraphEngine(const graph::DirectedGraph &g,
                             partition::Preprocessed pre,
                             EngineOptions options)
    : g_(g), options_(std::move(options)),
      pre_([&] {
          if (const std::string err = options_.validate(); !err.empty())
              fatal("DiGraphEngine: invalid options: ", err);
          if (pre.paths.numEdges() != g.numEdges()) {
              fatal("DiGraphEngine: prebuilt preprocessing covers ",
                    pre.paths.numEdges(), " edges but the graph has ",
                    g.numEdges());
          }
          return std::move(pre);
      }()),
      storage_(pre_.paths, g), platform_(options_.platform)
{
    ft_enabled_ = !options_.faults.empty();
    if (ft_enabled_)
        injector_ = gpusim::FaultInjector(options_.faults);
    buildIndexes();
}

std::size_t
DiGraphEngine::engineThreads() const
{
    if (options_.engine_threads)
        return options_.engine_threads;
    return std::max(1u, std::thread::hardware_concurrency());
}

void
DiGraphEngine::buildIndexes()
{
    const PathId np = pre_.paths.numPaths();
    const PartitionId nparts = pre_.numPartitions();

    // Path of each slot, partition of each path.
    path_of_slot_.resize(storage_.eIdx().size());
    is_src_slot_.assign(storage_.eIdx().size(), 0);
    for (PathId p = 0; p < np; ++p) {
        for (std::uint64_t s = storage_.pathOffset(p);
             s < storage_.pathOffset(p + 1); ++s) {
            path_of_slot_[s] = p;
            is_src_slot_[s] = s + 1 < storage_.pathOffset(p + 1);
        }
    }
    partition_of_path_.resize(np);
    for (PartitionId q = 0; q < nparts; ++q) {
        for (std::uint32_t p = pre_.partition_offsets[q];
             p < pre_.partition_offsets[q + 1]; ++p) {
            partition_of_path_[p] = q;
        }
    }

    // Occurrence CSR: vertex -> slots.
    const auto e_idx = storage_.eIdx();
    occur_offsets_.assign(g_.numVertices() + 1, 0);
    for (const VertexId v : e_idx)
        ++occur_offsets_[v + 1];
    for (VertexId v = 0; v < g_.numVertices(); ++v)
        occur_offsets_[v + 1] += occur_offsets_[v];
    occur_slots_.resize(e_idx.size());
    {
        std::vector<std::uint64_t> cursor(occur_offsets_.begin(),
                                          occur_offsets_.end() - 1);
        for (std::uint64_t s = 0; s < e_idx.size(); ++s)
            occur_slots_[cursor[e_idx[s]]++] = s;
    }

    // Consumer-partition CSR (vertex -> partitions with a source
    // occurrence) and mirror-partition CSR (vertex -> partitions with any
    // occurrence), both deduplicated. A vertex's occurrence slots are
    // ascending and partitions own contiguous path (hence slot) ranges,
    // so the partition sequence along the occurrence list is already
    // non-decreasing: one streaming pass with a last-seen compare replaces
    // the former per-vertex sort/unique scratch loop.
    consumer_offsets_.assign(g_.numVertices() + 1, 0);
    consumer_parts_.clear();
    mirror_offsets_.assign(g_.numVertices() + 1, 0);
    mirror_parts_.clear();
    for (VertexId v = 0; v < g_.numVertices(); ++v) {
        PartitionId last_consumer = kInvalidPartition;
        PartitionId last_mirror = kInvalidPartition;
        for (std::uint64_t k = occur_offsets_[v];
             k < occur_offsets_[v + 1]; ++k) {
            const std::uint64_t slot = occur_slots_[k];
            const PartitionId part =
                partition_of_path_[path_of_slot_[slot]];
            if (part != last_mirror) {
                mirror_parts_.push_back(part);
                last_mirror = part;
            }
            if (is_src_slot_[slot] && part != last_consumer) {
                consumer_parts_.push_back(part);
                last_consumer = part;
            }
        }
        consumer_offsets_[v + 1] = consumer_parts_.size();
        mirror_offsets_[v + 1] = mirror_parts_.size();
    }

    // Partition-interference matrix: partitions sharing any vertex must
    // not run concurrently (a dispatch could consume the other's stale
    // master and redo the propagation after the merge). Vertices
    // mirrored by more partitions than the cap are hubs: their
    // partitions are flagged as interfering with everything, which
    // bounds the build at kHubFanoutCap * mirror entries.
    constexpr std::uint64_t kHubFanoutCap = 32;
    interference_.assign(static_cast<std::size_t>(nparts) * nparts, 0);
    interferes_all_.assign(nparts, 0);
    for (VertexId v = 0; v < g_.numVertices(); ++v) {
        const std::uint64_t lo = mirror_offsets_[v];
        const std::uint64_t hi = mirror_offsets_[v + 1];
        const std::uint64_t fanout = hi - lo;
        if (fanout < 2)
            continue;
        if (fanout > kHubFanoutCap) {
            for (std::uint64_t k = lo; k < hi; ++k)
                interferes_all_[mirror_parts_[k]] = 1;
            continue;
        }
        for (std::uint64_t i = lo; i < hi; ++i) {
            for (std::uint64_t j = i + 1; j < hi; ++j) {
                const PartitionId a = mirror_parts_[i];
                const PartitionId b = mirror_parts_[j];
                interference_[static_cast<std::size_t>(a) * nparts + b] =
                    1;
                interference_[static_cast<std::size_t>(b) * nparts + a] =
                    1;
            }
        }
    }

    // Partition precursors via the DAG sketch: partitions holding paths
    // of precursor SCC-vertices. SCC-vertices consisting only of
    // auxiliary star hubs (see buildDependencyGraph) carry no paths, so
    // dependencies are resolved *through* them to the nearest
    // path-bearing ancestors.
    std::vector<std::vector<PartitionId>> parts_of_scc(pre_.dag.num_sccs);
    for (PathId p = 0; p < np; ++p)
        parts_of_scc[pre_.scc_of_path[p]].push_back(partition_of_path_[p]);
    for (auto &v : parts_of_scc) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }

    // eff_parts[s]: partitions holding paths of the nearest path-bearing
    // ancestor SCC-vertices of s, resolved *through* path-less (aux-only)
    // SCC-vertices in topological order. Partition sets stay small
    // (bounded by the partition count), so relaying through the
    // dependency graph's star hubs cannot re-expand the quadratic
    // producer x consumer structure the stars compressed.
    std::vector<std::vector<PartitionId>> eff_parts(pre_.dag.num_sccs);
    for (const VertexId s : graph::topologicalOrder(pre_.dag.sketch)) {
        auto &mine = eff_parts[s];
        for (const VertexId t : pre_.dag.sketch.inNeighbors(s)) {
            const auto &src = pre_.dag.paths_in_scc[t].empty()
                                  ? eff_parts[t]
                                  : parts_of_scc[t];
            mine.insert(mine.end(), src.begin(), src.end());
        }
        std::sort(mine.begin(), mine.end());
        mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
    }

    precursor_parts_.assign(nparts, {});
    for (PartitionId q = 0; q < nparts; ++q) {
        std::vector<PartitionId> pre_parts;
        SccId last = kInvalidScc;
        for (std::uint32_t p = pre_.partition_offsets[q];
             p < pre_.partition_offsets[q + 1]; ++p) {
            const SccId sv = pre_.scc_of_path[p];
            if (sv == last)
                continue; // partition paths are SCC-sorted
            last = sv;
            pre_parts.insert(pre_parts.end(), eff_parts[sv].begin(),
                             eff_parts[sv].end());
        }
        std::sort(pre_parts.begin(), pre_parts.end());
        pre_parts.erase(std::unique(pre_parts.begin(), pre_parts.end()),
                        pre_parts.end());
        std::erase(pre_parts, q);
        precursor_parts_[q] = std::move(pre_parts);
    }

    // Partition-level dependency SCC groups (cyclically dependent
    // partitions must iterate together) and their condensed DAG, used
    // for the transitive upstream-quiescence readiness test. Besides the
    // inter-SCC precursor edges, partitions sharing one SCC-vertex are
    // mutually dependent (intra-SCC path dependencies are invisible in
    // the sketch), so a cycle is threaded through each such partition
    // set.
    {
        graph::GraphBuilder builder(nparts);
        for (PartitionId q = 0; q < nparts; ++q) {
            for (const PartitionId t : precursor_parts_[q])
                builder.addEdge(t, q);
        }
        for (SccId s = 0; s < pre_.dag.num_sccs; ++s) {
            const auto &parts = parts_of_scc[s];
            if (parts.size() < 2)
                continue;
            for (std::size_t i = 0; i < parts.size(); ++i) {
                builder.addEdge(parts[i],
                                parts[(i + 1) % parts.size()]);
            }
        }
        const auto part_graph = builder.build();
        const auto scc = graph::computeScc(part_graph);
        partition_group_ = scc.component;
        group_dag_ = graph::condense(part_graph, scc);
        group_topo_ = graph::topologicalOrder(group_dag_);
    }

    // Partition byte footprints.
    partition_bytes_.resize(nparts);
    for (PartitionId q = 0; q < nparts; ++q) {
        partition_bytes_[q] = storage_.rangeBytes(
            pre_.partition_offsets[q], pre_.partition_offsets[q + 1]);
    }

    // Pri(p) scale: alpha = 1 / (maxAvgDeg * maxN).
    double max_deg = 1.0;
    std::size_t max_n = 1;
    for (PathId p = 0; p < np; ++p) {
        max_deg = std::max(max_deg, pre_.path_avg_degree[p]);
        max_n = std::max(max_n, pre_.paths.pathLength(p) + 1);
    }
    pri_alpha_ = 1.0 / (max_deg * static_cast<double>(max_n));
}

std::vector<std::uint8_t>
DiGraphEngine::blockedGroups() const
{
    // A group is blocked while any group transitively upstream of it has
    // an active partition — the paper's "dispatch when the precursors are
    // inactive", evaluated against full upstream convergence rather than
    // the momentary worklist flags.
    std::vector<std::uint8_t> active(group_dag_.numVertices(), 0);
    for (PartitionId q = 0; q < pre_.numPartitions(); ++q) {
        if (partition_active_[q])
            active[partition_group_[q]] = 1;
    }
    std::vector<std::uint8_t> blocked(group_dag_.numVertices(), 0);
    for (const VertexId gid : group_topo_) {
        for (const VertexId succ : group_dag_.outNeighbors(gid)) {
            if (active[gid] || blocked[gid])
                blocked[succ] = 1;
        }
    }
    return blocked;
}

PartitionId
DiGraphEngine::choosePartition(const std::vector<std::uint64_t> &stamp,
                               std::uint64_t wave,
                               const std::vector<std::uint8_t> *blocked)
{
    // Among active, unblocked partitions not yet dispatched in this wave
    // pick (lowest layer, id) — topological dispatch order. With blocked
    // == nullptr the call realizes the paper's "in advance" execution:
    // the active partition with the fewest active direct precursors runs
    // even though upstream work remains.
    const PartitionId nparts = pre_.numPartitions();
    PartitionId best = kInvalidPartition;
    std::size_t best_pre = SIZE_MAX;
    std::uint32_t best_layer = UINT32_MAX;
    for (PartitionId q = 0; q < nparts; ++q) {
        if (!partition_active_[q] || stamp[q] >= wave)
            continue;
        if (blocked && options_.dag_dispatch &&
            (*blocked)[partition_group_[q]]) {
            continue;
        }
        std::size_t active_pre = 0;
        if (!blocked && options_.dag_dispatch) {
            for (const PartitionId t : precursor_parts_[q]) {
                if (partition_active_[t] &&
                    partition_group_[t] != partition_group_[q]) {
                    ++active_pre;
                }
            }
        }
        const std::uint32_t layer = pre_.partition_layer[q];
        if (active_pre < best_pre ||
            (active_pre == best_pre && layer < best_layer)) {
            best = q;
            best_pre = active_pre;
            best_layer = layer;
        }
    }
    return best;
}

DeviceId
DiGraphEngine::chooseDevice(PartitionId p) const
{
    // Estimated-start-time dispatch: a device already holding the
    // partition (or many of its precursors' buffered results) skips the
    // host transfer, but a busy device must not hoard work — pick the
    // device minimizing (least-loaded SMX clock + required transfer
    // cost). This realizes both the paper's precursor affinity and the
    // multi-GPU spreading of the giant SCC-vertex.
    const double xfer_cost =
        options_.platform.transfer_latency_cycles +
        static_cast<double>(partition_bytes_[p]) /
            options_.platform.host_link_bytes_per_cycle;
    DeviceId best = kInvalidVertex;
    double best_start = 0.0;
    for (DeviceId d = 0; d < platform_.numDevices(); ++d) {
        const auto &device = platform_.device(d);
        if (device.failed())
            continue; // degrade: survivors absorb the dead device's share
        double start = device.smx(device.leastLoadedSmx()).clock();
        if (partition_device_[p] != d)
            start += xfer_cost;
        // Small bonus per resident precursor: remote results are local.
        for (const PartitionId t : precursor_parts_[p]) {
            if (partition_device_[t] == d)
                start -= options_.platform.transfer_latency_cycles * 0.05;
        }
        if (best == kInvalidVertex || start < best_start) {
            best = d;
            best_start = start;
        }
    }
    if (best == kInvalidVertex)
        panic("DiGraphEngine::chooseDevice: no alive device");
    return best;
}

double
DiGraphEngine::ensureResident(PartitionId p, DeviceId dev,
                              double issue_time,
                              metrics::RunReport &report)
{
    auto &resident = device_resident_[dev];
    const auto it = std::find(resident.begin(), resident.end(), p);
    if (it != resident.end()) {
        // LRU touch.
        resident.erase(it);
        resident.push_back(p);
        return issue_time;
    }

    // Evict least-recently-used partitions until the batch fits.
    auto &used = device_resident_bytes_[dev];
    const std::size_t bytes = partition_bytes_[p];
    auto &device = platform_.device(dev);
    while (!resident.empty() &&
           used + bytes > options_.platform.global_mem_bytes) {
        const PartitionId victim = resident.front();
        resident.erase(resident.begin());
        used -= partition_bytes_[victim];
        if (partition_device_[victim] == dev)
            partition_device_[victim] = kInvalidVertex;
        // Buffered results written back to host memory.
        device.hostLink().transfer(
            issue_time +
                transferFaultPenalty(partition_bytes_[victim], report),
            partition_bytes_[victim]);
        report.comm_cycles +=
            device.hostLink().cost(partition_bytes_[victim]);
    }
    resident.push_back(p);
    used += bytes;

    const double done = device.hostLink().transfer(
        issue_time + transferFaultPenalty(bytes, report), bytes);
    report.comm_cycles += device.hostLink().cost(bytes);
    counters_.add(metrics::Counter::HostTransferBytes, bytes);
    return done;
}

metrics::RunReport
DiGraphEngine::run(const algorithms::Algorithm &algo,
                   const WarmStart *warm)
{
    WallTimer wall;
    AccumTimer schedule_timer;
    AccumTimer compute_timer;
    AccumTimer barrier_timer;
    metrics::RunReport report;
    report.system = modeName(options_.mode);
    report.algorithm = algo.name();
    report.num_gpus = platform_.numDevices();
    report.num_partitions = pre_.numPartitions();
    report.preprocess_seconds = preprocessSeconds();

    const std::size_t nthreads = engineThreads();
    report.engine_threads = static_cast<std::uint32_t>(nthreads);
    if (nthreads > 1 && (!pool_ || pool_->size() != nthreads))
        pool_ = std::make_unique<ThreadPool>(nthreads);

    platform_.reset();
    counters_.reset();
    trace_ = options_.trace;

    // Initialize storage from the algorithm (or from the warm start).
    std::vector<Value> vinit(g_.numVertices());
    if (warm && warm->vertex_state) {
        if (warm->vertex_state->size() != g_.numVertices())
            panic("DiGraphEngine::run: warm state size mismatch");
        vinit = *warm->vertex_state;
    } else {
        for (VertexId v = 0; v < g_.numVertices(); ++v)
            vinit[v] = algo.initVertex(g_, v);
    }
    std::vector<Value> einit(g_.numEdges());
    if (warm && warm->edge_state) {
        if (warm->edge_state->size() != g_.numEdges())
            panic("DiGraphEngine::run: warm edge-state size mismatch");
        einit = *warm->edge_state;
    } else {
        for (EdgeId e = 0; e < g_.numEdges(); ++e) {
            einit[e] = warm ? algo.warmEdgeState(
                                  g_, e, vinit[g_.edgeSource(e)])
                            : algo.initEdge(g_, e);
        }
    }
    storage_.initialize(vinit, einit);

    const PartitionId nparts = pre_.numPartitions();
    const PathId npaths = pre_.paths.numPaths();
    slot_active_.assign(storage_.eIdx().size(), 0);
    master_version_.assign(g_.numVertices(), 0);
    slot_seen_version_.assign(storage_.eIdx().size(), 0);
    partition_active_.assign(nparts, 0);
    partition_process_count_.assign(nparts, 0);
    partition_device_.assign(nparts, kInvalidVertex);
    partition_done_.assign(nparts, 0.0);
    partition_msg_ready_.assign(nparts, 0.0);
    master_writer_.assign(g_.numVertices(), kInvalidVertex);
    device_resident_.assign(platform_.numDevices(), {});
    device_resident_bytes_.assign(platform_.numDevices(), 0);
    path_active_count_.assign(npaths, 0);
    path_in_worklist_.assign(npaths, 0);
    partition_worklist_.assign(nparts, {});
    stale_queue_.assign(nparts, {});
    partition_dirty_.resize(nparts);
    for (PartitionId q = 0; q < nparts; ++q) {
        partition_dirty_[q].bind(
            storage_.pathOffset(pre_.partition_offsets[q]),
            storage_.pathOffset(pre_.partition_offsets[q + 1]));
    }
    if (ft_enabled_)
        initFaultTolerance();

    // Prefetch: all partitions are distributed over the devices up
    // front, streamed via the copy queues (Hyper-Q) so kernels can start
    // without waiting on host memory (Section 3.2.2's advance transfer
    // of successive paths). Placement is balanced by bytes.
    {
        // Contiguous blocks keep SCC-affine neighbor partitions on the
        // same device (the partition order is already dependency-sorted).
        std::size_t total_bytes = 0;
        for (PartitionId q = 0; q < nparts; ++q)
            total_bytes += partition_bytes_[q];
        const std::size_t per_dev =
            total_bytes / platform_.numDevices() + 1;
        std::size_t filled = 0;
        for (PartitionId q = 0; q < nparts; ++q) {
            const auto dev = static_cast<DeviceId>(
                std::min<std::size_t>(platform_.numDevices() - 1,
                                      filled / per_dev));
            filled += partition_bytes_[q];
            auto &device = platform_.device(dev);
            const double done = device.hostLink().transfer(
                transferFaultPenalty(partition_bytes_[q], report),
                partition_bytes_[q]);
            report.comm_cycles +=
                device.hostLink().cost(partition_bytes_[q]);
            counters_.add(metrics::Counter::HostTransferBytes,
                          partition_bytes_[q]);
            partition_device_[q] = dev;
            partition_done_[q] = done;
            device_resident_[dev].push_back(q);
            device_resident_bytes_[dev] += partition_bytes_[q];
        }
    }

    // Initial activation: the algorithm's initActive() set, or — on a
    // warm start — only the supplied seed vertices.
    auto activate = [&](VertexId v) {
        for (std::uint64_t k = occur_offsets_[v];
             k < occur_offsets_[v + 1]; ++k) {
            const std::uint64_t slot = occur_slots_[k];
            if (isSrcSlot(slot)) {
                activateSlot(slot);
                partition_active_[partition_of_path_[path_of_slot_[slot]]] =
                    1;
            }
        }
    };
    if (warm && warm->active_vertices && !options_.force_all_active) {
        for (const VertexId v : *warm->active_vertices)
            activate(v);
    } else {
        for (VertexId v = 0; v < g_.numVertices(); ++v) {
            if (options_.force_all_active || algo.initActive(g_, v))
                activate(v);
        }
    }

    // Main dependency-aware dispatch loop, organized in waves: within a
    // wave every active partition is dispatched at most once (the
    // batched-kernel granularity of a real GPU), in topological order of
    // the DAG sketch. The wave batch is executed in chunks of mutually
    // NON-INTERFERING partitions (no shared vertex), each in two phases:
    //   1. compute (parallel): every chunk partition runs its local
    //      rounds against chunk-start shared state, buffering master
    //      merges privately (computeDispatch);
    //   2. barrier (serial): outcomes are committed in dispatch order —
    //      master merge replay, version bumps, activation fan-out, and
    //      the simulated platform costs (replayDispatch).
    // Vertex-disjoint dispatches are exactly order-independent, so a
    // chunk's parallel execution does the same work as the serial
    // engine; interfering partitions land in later chunks and see the
    // committed results (the serial engine's fast intra-wave
    // propagation). Chunk composition depends only on the batch and the
    // static interference matrix — NOT the thread count — so results
    // are identical for every engine_threads value.
    std::vector<std::uint64_t> wave_stamp(nparts, 0);
    std::uint64_t wave = 0;
    std::vector<PartitionId> batch;
    std::vector<DispatchOutcome> outcomes;
    for (;;) {
        ++wave;
        if (ft_enabled_)
            pollFaults(wave, report);
        schedule_timer.begin();
        // Readiness and the dispatch set are frozen at wave start: a
        // group is dispatchable only when everything transitively
        // upstream of it has converged, and partitions activated during
        // the wave wait for the next one.
        const auto blocked = blockedGroups();
        batch.clear();
        for (;;) {
            const PartitionId p =
                choosePartition(wave_stamp, wave, &blocked);
            if (p == kInvalidPartition)
                break;
            wave_stamp[p] = wave;
            batch.push_back(p);
        }
        if (batch.empty()) {
            // Nothing ready: either converged, or an (unlikely) blocked
            // cycle remains — run one partition "in advance" to make
            // progress (and keep otherwise idle SMXs busy).
            const PartitionId p =
                choosePartition(wave_stamp, wave, nullptr);
            if (p != kInvalidPartition) {
                wave_stamp[p] = wave;
                batch.push_back(p);
            }
        }
        schedule_timer.end();
        if (batch.empty())
            break;

        if (trace_) {
            // Wave context for the compute-phase events: written here by
            // the serial scheduler, read-only while workers run.
            trace_wave_ = wave;
            trace_wave_sim_ = platform_.makespan();
            trace_->event(metrics::TraceEventType::WaveStart, wave,
                          metrics::kTraceNoPartition, trace_wave_sim_,
                          0.0, batch.size(), batch.front());
        }

        std::vector<std::uint8_t> taken(batch.size(), 0);
        std::vector<PartitionId> chunk;
        std::size_t done = 0;
        while (done < batch.size()) {
            // Greedy independent-set chunk in batch (priority) order:
            // the first remaining partition always enters, later ones
            // only if vertex-disjoint from every current member.
            schedule_timer.begin();
            chunk.clear();
            for (std::size_t i = 0; i < batch.size(); ++i) {
                if (taken[i])
                    continue;
                const PartitionId p = batch[i];
                bool compatible =
                    chunk.empty() ||
                    (!interferes_all_[p] &&
                     std::none_of(
                         chunk.begin(), chunk.end(),
                         [&](PartitionId m) {
                             return interferes_all_[m] ||
                                    interference_[static_cast<std::size_t>(
                                                      p) *
                                                      nparts +
                                                  m];
                         }));
                if (!compatible)
                    continue;
                chunk.push_back(p);
                taken[i] = 1;
            }
            done += chunk.size();
            if (ft_enabled_) {
                // Journal the E_val slices this chunk may mutate —
                // serially, before the parallel compute phase touches
                // them (copy-on-write at the granularity the dispatch
                // hands to a device).
                for (const PartitionId cp : chunk)
                    markPartitionDirty(cp);
            }
            schedule_timer.end();

            compute_timer.begin();
            outcomes.assign(chunk.size(), {});
            if (nthreads == 1 || chunk.size() == 1) {
                for (std::size_t i = 0; i < chunk.size(); ++i)
                    outcomes[i] = computeDispatch(chunk[i], algo);
            } else {
                pool_->forEachIndex(chunk.size(), [&](std::size_t i) {
                    outcomes[i] = computeDispatch(chunk[i], algo);
                });
            }
            compute_timer.end();

            barrier_timer.begin();
            for (auto &outcome : outcomes)
                replayDispatch(outcome, algo, report);
            barrier_timer.end();
        }
        if (ft_enabled_)
            maybeCheckpoint(wave, report);
        if (trace_) {
            trace_->event(metrics::TraceEventType::WaveEnd, wave,
                          metrics::kTraceNoPartition,
                          platform_.makespan(), 0.0, batch.size());
        }
    }
    if (options_.verify_invariants) {
        const InvariantReport inv = postRunInvariants(algo);
        if (!inv.ok()) {
            panic("DiGraphEngine: post-run invariant violation: ",
                  inv.detail.empty() ? std::string("unspecified")
                                     : inv.detail);
        }
    }

    counters_.set(metrics::Counter::Waves,
                  wave - 1); // the last wave dispatched nothing
    counters_.set(metrics::Counter::NumPartitions, nparts);
    counters_.set(metrics::Counter::RingTransferBytes,
                  platform_.ring().totalBytes());
    counters_.set(metrics::Counter::GlobalLoadBytes,
                  platform_.globalLoadBytes());
    counters_.set(metrics::Counter::UsedVertices,
                  counters_.get(metrics::Counter::VertexUpdates));
    counters_.exportTo(report);
    if (trace_)
        trace_->setCounters(counters_);

    report.final_state.assign(storage_.vVals().begin(),
                              storage_.vVals().end());
    report.sim_cycles = platform_.makespan();
    report.utilization = platform_.utilization();
    report.wall_seconds = wall.seconds();
    report.wall_compute_seconds = compute_timer.seconds();
    report.wall_barrier_seconds = barrier_timer.seconds();
    report.wall_schedule_seconds = schedule_timer.seconds();
    return report;
}

DiGraphEngine::DispatchOutcome
DiGraphEngine::computeDispatch(PartitionId p,
                               const algorithms::Algorithm &algo)
{
    DispatchOutcome out;
    out.partition = p;
    // Clearing here (not at batch selection) absorbs re-activations from
    // earlier chunks of the same wave: their stale-queue entries are
    // consumed by the conversion below, so the flag need not survive.
    // Re-activations by *this* chunk's barrier happen after every
    // compute returns and do survive. Distinct bytes per partition, so
    // concurrent dispatches clearing their own flags do not race.
    partition_active_[p] = 0;

    const std::uint32_t path_lo = pre_.partition_offsets[p];
    const std::uint32_t path_hi = pre_.partition_offsets[p + 1];
    const std::uint64_t slot_lo = storage_.pathOffset(path_lo);
    const std::uint64_t slot_hi = storage_.pathOffset(path_hi);
    const std::uint64_t partition_slots = slot_hi - slot_lo;

    // Private master overlay: wave-start master + this dispatch's own
    // merges. Global V_val is frozen for the whole wave, so concurrent
    // dispatches may read it freely.
    auto &overlay = out.overlay;
    const auto masterOf = [&](VertexId v) -> Value {
        const auto it = overlay.find(v);
        return it != overlay.end() ? it->second : storage_.vVal(v);
    };

    // Stale-queue conversion (replaces the dispatch-start full version
    // scan): only vertices whose master version bumped since this
    // partition last absorbed them are examined. Activating their source
    // slots folds cross-partition staleness into the one slot_active_
    // worklist the local rounds run on.
    {
        auto &queue = stale_queue_[p];
        std::sort(queue.begin(), queue.end());
        queue.erase(std::unique(queue.begin(), queue.end()), queue.end());
        for (const VertexId v : queue) {
            bool any_stale = false;
            const auto occ_begin = occur_slots_.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       occur_offsets_[v]);
            const auto occ_end = occur_slots_.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     occur_offsets_[v + 1]);
            for (auto it = std::lower_bound(occ_begin, occ_end, slot_lo);
                 it != occ_end && *it < slot_hi; ++it) {
                const std::uint64_t slot = *it;
                if (slot_seen_version_[slot] != master_version_[v]) {
                    any_stale = true;
                    slot_seen_version_[slot] = master_version_[v];
                    if (isSrcSlot(slot))
                        activateSlot(slot);
                }
            }
            if (any_stale)
                out.stale_vertices.push_back(v);
        }
        queue.clear();
    }

    // Lazy partition pull: only paths with active work are streamed from
    // global memory (and their mirrors refreshed), on their first
    // activation within this dispatch. Cold paths co-located in the
    // partition are not loaded at all — the loaded-data-utilization
    // advantage of hot/cold path grouping.
    std::vector<std::uint8_t> pulled(path_hi - path_lo, 0);

    const unsigned lanes = options_.platform.lanesPerSmx();
    const bool coalesced = options_.mode != ExecutionMode::VertexAsync;
    const double per_edge_cycles =
        options_.platform.cycles_per_edge +
        kWordsPerEdge * options_.platform.cycles_per_global_access *
            (coalesced ? options_.platform.coalesced_factor : 1.0);

    std::vector<PathId> active_paths;
    std::vector<std::uint32_t> active_counts;
    std::vector<std::uint64_t> pending; // VertexAsync deferred flags
    std::vector<Value> snapshot;
    std::vector<VertexId> changed;
    auto &worklist = partition_worklist_[p];
    auto &dirty = partition_dirty_[p];

    std::size_t local_rounds = 0;
    for (;;) {
        // Collect paths with at least one active source slot from the
        // incremental worklist — O(active paths), not O(partition
        // slots). Sorting restores storage order (what the former full
        // sweep produced), which PathNoSched relies on.
        active_paths.clear();
        active_counts.clear();
        std::sort(worklist.begin(), worklist.end());
        std::size_t keep = 0;
        for (const PathId q : worklist) {
            if (path_active_count_[q] > 0) {
                worklist[keep++] = q;
                active_paths.push_back(q);
                active_counts.push_back(path_active_count_[q]);
            } else {
                path_in_worklist_[q] = 0;
            }
        }
        worklist.resize(keep);
        if (active_paths.empty())
            break;
        if (local_rounds >= options_.max_local_rounds) {
            out.reactivate_self = true; // reschedule the remainder
            break;
        }
        ++local_rounds;

        // First-touch pull of newly active paths (through the overlay so
        // the pull sees this dispatch's own pending merges).
        for (const PathId q : active_paths) {
            if (pulled[q - path_lo])
                continue;
            pulled[q - path_lo] = 1;
            if (overlay.empty())
                storage_.pullPath(q);
            else
                storage_.pullPathWith(q, masterOf);
            const std::size_t bytes = storage_.pathBytes(q);
            out.loaded_vertices +=
                storage_.pathOffset(q + 1) - storage_.pathOffset(q);
            out.global_load_bytes += bytes;
        }

        // Path scheduling (Section 3.2.3): the warp scheduler runs paths
        // in Pri(p) order; DiGraph-w keeps plain storage order.
        if (options_.mode == ExecutionMode::PathAsync) {
            std::vector<std::size_t> idx(active_paths.size());
            std::iota(idx.begin(), idx.end(), 0);
            std::stable_sort(
                idx.begin(), idx.end(),
                [&](std::size_t a, std::size_t b) {
                    const PathId pa = active_paths[a];
                    const PathId pb = active_paths[b];
                    const double pri_a =
                        pri_alpha_ * pre_.path_avg_degree[pa] *
                            active_counts[a] -
                        static_cast<double>(pre_.path_layer[pa]);
                    const double pri_b =
                        pri_alpha_ * pre_.path_avg_degree[pb] *
                            active_counts[b] -
                        static_cast<double>(pre_.path_layer[pb]);
                    return pri_a > pri_b;
                });
            std::vector<PathId> ordered(active_paths.size());
            for (std::size_t i = 0; i < idx.size(); ++i)
                ordered[i] = active_paths[idx[i]];
            active_paths.swap(ordered);
            if (trace_) {
                trace_->event(metrics::TraceEventType::PathSchedule,
                              trace_wave_, p, trace_wave_sim_, 0.0,
                              active_paths.size(), active_paths.front());
            }
        }

        // Warp-scheduler capacity: one GPU thread processes one path per
        // round, so at most lanes x (stealable SMXs) paths run; the rest
        // keep their activation flags and wait. The Pri(p) order decides
        // who runs first (Section 3.2.3) — DiGraph-w's FIFO order defers
        // important paths, which is exactly what Fig 7 measures.
        {
            // Stealing lends at most one extra SMX's lanes in the
            // common case (idle SMXs are scarce in steady state).
            const std::size_t capacity =
                static_cast<std::size_t>(lanes) *
                (options_.work_stealing ? 2 : 1);
            if (active_paths.size() > capacity)
                active_paths.resize(capacity);
        }

        // VertexAsync (DiGraph-t): snapshot source reads so that new
        // states cross one hop per round.
        const bool vertex_async =
            options_.mode == ExecutionMode::VertexAsync;
        if (vertex_async) {
            snapshot.assign(partition_slots, 0.0);
            for (std::uint64_t s = slot_lo; s < slot_hi; ++s)
                snapshot[s - slot_lo] = storage_.sVal(s);
            pending.clear();
        }

        // Walk each active path sequentially (one simulated GPU thread
        // per path). Inactive positions are skip-scanned: the thread
        // still streams E_idx but performs no compute there.
        std::vector<std::uint64_t> processed_edges(active_paths.size(), 0);
        for (std::size_t ap = 0; ap < active_paths.size(); ++ap) {
            const PathId q = active_paths[ap];
            auto view = storage_.path(q);
            const std::uint64_t base = storage_.pathOffset(q);
            const auto n_edges = view.length();
            for (std::size_t i = 0; i < n_edges; ++i) {
                const std::uint64_t src_slot = base + i;
                const VertexId src_v = view.vertex_ids[i];
                if (!slot_active_[src_slot])
                    continue;
                slot_active_[src_slot] = 0;
                --path_active_count_[q];
                slot_seen_version_[src_slot] = master_version_[src_v];
                const Value src_val =
                    vertex_async ? snapshot[src_slot - slot_lo]
                                 : view.mirror_states[i];
                const EdgeId eid = view.edge_ids[i];
                const bool changed_dst = algo.processEdge(
                    src_val, view.edge_states[i], eid, g_.edgeWeight(eid),
                    static_cast<std::uint32_t>(g_.outDegree(src_v)),
                    view.mirror_states[i + 1]);
                ++out.edge_processings;
                ++processed_edges[ap];
                // The destination mirror may have been written even on a
                // sub-threshold update — it joins the dirty worklist the
                // mirror-push phase examines.
                dirty.mark(base + i + 1);
                if (changed_dst) {
                    ++out.vertex_updates;
                    const std::uint64_t dst_slot = base + i + 1;
                    if (isSrcSlot(dst_slot)) {
                        if (vertex_async)
                            pending.push_back(dst_slot);
                        else
                            activateSlot(dst_slot);
                    }
                }
            }
        }

        if (vertex_async) {
            for (const std::uint64_t slot : pending)
                activateSlot(slot);
        }

        // --- mirror -> master sync (batched, Section 3.2.2) ---
        // Phase 1: every dirty mirror pushes its pending value/delta to
        // the (privately overlaid) master. Only slots written this round
        // are examined — the incremental replacement of the former full
        // slot-range sweep. Ascending slot order keeps the merge order
        // of the sweep. Refreshes are deferred to phase 2 so that a
        // refresh of one replica can never clobber another replica's
        // un-pushed work.
        std::uint64_t proxy_pushes = 0;
        std::uint64_t atomic_pushes = 0;
        changed.clear();
        auto &dirty_slots = dirty.slots();
        std::sort(dirty_slots.begin(), dirty_slots.end());
        for (const std::uint64_t s : dirty_slots) {
            Value &mirror = storage_.sVal(s);
            Value &loaded = storage_.loadedVal(s);
            if (!algo.hasPush(mirror, loaded))
                continue;
            const VertexId v = storage_.vertexAt(s);
            const Value push = algo.pushValue(mirror, loaded);
            const auto [it, inserted] =
                overlay.try_emplace(v, storage_.vVal(v));
            const bool master_changed = algo.mergeMaster(it->second, push);
            loaded = mirror;
            out.pushes.emplace_back(v, push);
            if (options_.use_proxy &&
                g_.inDegree(v) >= options_.proxy_indegree_threshold) {
                ++proxy_pushes;
            } else {
                ++atomic_pushes;
            }
            if (master_changed)
                changed.push_back(v);
        }
        dirty.reset();
        std::sort(changed.begin(), changed.end());
        changed.erase(std::unique(changed.begin(), changed.end()),
                      changed.end());
        if (trace_ && proxy_pushes + atomic_pushes > 0) {
            trace_->event(metrics::TraceEventType::MirrorPush,
                          trace_wave_, p, trace_wave_sim_, 0.0,
                          proxy_pushes + atomic_pushes, local_rounds);
        }

        // Phase 2: refresh and re-activate this partition's own mirrors
        // of each changed vertex (the proxy-vertex effect: accumulated
        // results are reusable on this SMX within the next local round).
        // The occurrence list is slot-sorted, so the local slice is found
        // by binary search; remote occurrences are handled at the wave
        // barrier.
        for (const VertexId v : changed) {
            const Value master = overlay.find(v)->second;
            const auto occ_begin = occur_slots_.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       occur_offsets_[v]);
            const auto occ_end = occur_slots_.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     occur_offsets_[v + 1]);
            for (auto it = std::lower_bound(occ_begin, occ_end, slot_lo);
                 it != occ_end && *it < slot_hi; ++it) {
                const std::uint64_t slot = *it;
                Value &mirror = storage_.sVal(slot);
                mirror = algo.pull(master, mirror);
                storage_.loadedVal(slot) = mirror;
                if (isSrcSlot(slot))
                    activateSlot(slot);
            }
        }

        // --- simulated cost of this round (recorded; charged to real
        //     SMX clocks at the wave barrier) ---
        // Per-thread load balancing: paths are packed into lane bins by
        // work units (longest first); work stealing spreads bins over
        // several SMXs of the device. A path's work is its processed
        // edges at full cost plus a cheap coalesced skip-scan of its
        // inactive positions.
        const double skip_frac =
            options_.platform.cycles_per_global_access *
            options_.platform.coalesced_factor / per_edge_cycles;
        std::vector<std::uint64_t> path_work(active_paths.size());
        for (std::size_t ap = 0; ap < active_paths.size(); ++ap) {
            const std::uint64_t len =
                pre_.paths.pathLength(active_paths[ap]);
            path_work[ap] =
                processed_edges[ap] +
                static_cast<std::uint64_t>(
                    static_cast<double>(len - processed_edges[ap]) *
                    skip_frac);
        }
        std::stable_sort(path_work.begin(), path_work.end(),
                         std::greater<>());
        const unsigned max_groups =
            options_.work_stealing ? options_.platform.smx_per_device : 1;
        const unsigned n_bins = static_cast<unsigned>(std::min<std::size_t>(
            path_work.size(),
            static_cast<std::size_t>(lanes) * max_groups));
        std::vector<std::uint64_t> bins(std::max(1u, n_bins), 0);
        for (std::size_t i = 0; i < path_work.size(); ++i)
            bins[i % bins.size()] += path_work[i];
        // Pushes are issued by all participating threads in parallel;
        // per-lane sync cost is the per-thread share.
        const double sync_cycles =
            (static_cast<double>(proxy_pushes) *
                 options_.platform.cycles_per_shared_access +
             static_cast<double>(atomic_pushes) *
                 options_.platform.cycles_per_atomic) /
            std::max(1u, n_bins);
        // Work-stealing groups start together on different SMXs; the
        // round ends when the slowest group finishes.
        const unsigned groups = (n_bins + lanes - 1) / lanes;
        std::vector<double> group_cycles;
        group_cycles.reserve(std::max(1u, groups));
        for (unsigned k = 0; k < std::max(1u, groups); ++k) {
            std::vector<std::uint64_t> group(
                bins.begin() + std::min<std::size_t>(bins.size(),
                                                     k * lanes),
                bins.begin() +
                    std::min<std::size_t>(bins.size(), (k + 1) * lanes));
            if (group.empty())
                group.push_back(0);
            group_cycles.push_back(
                gpusim::warpCost(group, per_edge_cycles) + sync_cycles);
        }
        out.round_group_cycles.push_back(std::move(group_cycles));
    }
    out.local_rounds = local_rounds;

    // Global-load accounting: charged to the wave-start resident device
    // (thread-safe atomic counter); deferred to the barrier when the
    // partition was evicted and has no residence.
    if (out.global_load_bytes) {
        const DeviceId dev = partition_device_[p];
        if (dev != kInvalidVertex)
            platform_.device(dev).addGlobalLoad(out.global_load_bytes);
        else
            out.deferred_load_bytes = out.global_load_bytes;
    }
    return out;
}

void
DiGraphEngine::replayDispatch(DispatchOutcome &outcome,
                              const algorithms::Algorithm &algo,
                              metrics::RunReport &report)
{
    const PartitionId p = outcome.partition;
    ++partition_process_count_[p];
    counters_.add(metrics::Counter::PartitionProcessings);
    counters_.add(metrics::Counter::Rounds, outcome.local_rounds);
    counters_.add(metrics::Counter::EdgeProcessings,
                  outcome.edge_processings);
    counters_.add(metrics::Counter::VertexUpdates,
                  outcome.vertex_updates);
    counters_.add(metrics::Counter::LoadedVertices,
                  outcome.loaded_vertices);
    counters_.add(metrics::Counter::GlobalLoadBytes,
                  outcome.global_load_bytes);

    const DeviceId dev = chooseDevice(p);
    partition_device_[p] = dev;
    auto &device = platform_.device(dev);
    // One SMX owns this dispatch's serial round chain; other SMXs are
    // touched only by work-stealing surplus, so concurrent partitions on
    // the device keep their own SMXs.
    const SmxId home_smx = device.leastLoadedSmx();
    if (outcome.deferred_load_bytes)
        device.addGlobalLoad(outcome.deferred_load_bytes);

    double ready = ensureResident(
        p, dev,
        std::max({device.smx(home_smx).clock(), partition_done_[p],
                  partition_msg_ready_[p]}),
        report);

    // Master refresh: path results are buffered in the global memory of
    // the device that produced them (Section 3.2.2); masters written on
    // another device are pulled over the ring, one batch per source
    // device. Locally-written masters are free. The stale vertices were
    // collected from the incremental stale queue at dispatch start.
    {
        std::vector<std::uint64_t> pull_bytes(platform_.numDevices(), 0);
        for (const VertexId v : outcome.stale_vertices) {
            const DeviceId home = master_writer_[v];
            if (home != kInvalidVertex && home != dev)
                pull_bytes[home] += kMessageBytes;
        }
        const double issue = ready;
        for (DeviceId home = 0; home < platform_.numDevices(); ++home) {
            if (pull_bytes[home] == 0)
                continue;
            ready = std::max(
                ready,
                platform_.ring().transfer(
                    home, dev,
                    issue + transferFaultPenalty(pull_bytes[home],
                                                 report),
                    pull_bytes[home]));
            report.comm_cycles +=
                options_.platform.transfer_latency_cycles +
                static_cast<double>(pull_bytes[home]) /
                    options_.platform.ring_bytes_per_cycle;
        }
    }

    // Charge the recorded kernel rounds to the device clocks, exactly as
    // the interleaved execution would have: group 0 chains on the home
    // SMX, surplus groups steal the momentarily least-loaded SMX.
    const double kernel_begin = ready;
    for (const auto &group_cycles : outcome.round_group_cycles) {
        const double round_start = ready;
        double round_end = round_start;
        for (std::size_t k = 0; k < group_cycles.size(); ++k) {
            const SmxId sid =
                k == 0 ? home_smx : device.leastLoadedSmx();
            // An armed SMX stall slows this group's kernel down.
            const double cycles =
                group_cycles[k] * smxStallFactor(dev, sid);
            if (trace_ && k > 0) {
                trace_->event(metrics::TraceEventType::Steal,
                              trace_wave_, p, round_start, cycles, k,
                              sid);
            }
            round_end = std::max(round_end,
                                 device.smx(sid).run(round_start,
                                                     cycles));
        }
        ready = round_end;
    }
    if (trace_) {
        trace_->event(metrics::TraceEventType::Dispatch, trace_wave_, p,
                      kernel_begin, ready - kernel_begin,
                      outcome.local_rounds, outcome.edge_processings);
    }

    // Commit the buffered master merges in push order against the true
    // masters (earlier dispatches of this wave have already committed
    // theirs — the deterministic dispatch-order merge).
    std::vector<VertexId> changed;
    for (const auto &[v, push] : outcome.pushes) {
        // Journal before the merge: accumulative algorithms mutate the
        // master even when mergeMaster reports no activation-worthy
        // change, so every pushed vertex is checkpoint-dirty.
        if (ft_enabled_)
            markVertexDirty(v);
        if (algo.mergeMaster(storage_.vVal(v), push))
            changed.push_back(v);
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()),
                  changed.end());
    if (trace_) {
        trace_->event(metrics::TraceEventType::MergeBarrier, trace_wave_,
                      p, ready, 0.0, outcome.pushes.size(),
                      changed.size());
    }
    for (const VertexId v : changed) {
        ++master_version_[v];
        master_writer_[v] = dev;
    }

    // Activation fan-out: every changed master feeds the stale queues of
    // the partitions mirroring it and re-enters its consumer partitions
    // into the worklist. The dispatching partition itself is skipped
    // only when its private overlay already equals the committed master
    // (sole writer); when another wave member also pushed the vertex,
    // its own mirrors went stale and it must be redispatched too.
    std::vector<PartitionId> activated_parts;
    for (const VertexId v : changed) {
        const Value master = storage_.vVal(v);
        const auto ov = outcome.overlay.find(v);
        const bool self_current =
            ov != outcome.overlay.end() && ov->second == master;
        for (std::uint64_t k = mirror_offsets_[v];
             k < mirror_offsets_[v + 1]; ++k) {
            const PartitionId part = mirror_parts_[k];
            if (part == p && self_current)
                continue;
            stale_queue_[part].push_back(v);
        }
        for (std::uint64_t k = consumer_offsets_[v];
             k < consumer_offsets_[v + 1]; ++k) {
            const PartitionId part = consumer_parts_[k];
            if (part == p) {
                if (!self_current)
                    partition_active_[p] = 1;
                continue;
            }
            if (!partition_active_[part]) {
                // Gate only on the activation that wakes the partition
                // up; later batches are picked up whenever it runs.
                partition_active_[part] = 1;
                activated_parts.push_back(part);
            }
        }
    }
    std::sort(activated_parts.begin(), activated_parts.end());
    activated_parts.erase(
        std::unique(activated_parts.begin(), activated_parts.end()),
        activated_parts.end());
    std::vector<std::uint64_t> notify_bytes(platform_.numDevices(), 0);
    for (const PartitionId dest : activated_parts) {
        const DeviceId dd = partition_device_[dest];
        if (dd != kInvalidVertex && dd != dev)
            notify_bytes[dd] += kMessageBytes;
    }
    std::vector<double> notify_arrive(platform_.numDevices(), ready);
    for (DeviceId dd = 0; dd < platform_.numDevices(); ++dd) {
        if (notify_bytes[dd] == 0)
            continue;
        notify_arrive[dd] = platform_.ring().transfer(
            dev, dd,
            ready + transferFaultPenalty(notify_bytes[dd], report),
            notify_bytes[dd]);
        report.comm_cycles +=
            options_.platform.transfer_latency_cycles +
            static_cast<double>(notify_bytes[dd]) /
                options_.platform.ring_bytes_per_cycle;
    }
    for (const PartitionId dest : activated_parts) {
        const DeviceId dd = partition_device_[dest];
        const double arrive =
            (dd == kInvalidVertex || dd == dev) ? ready
                                                : notify_arrive[dd];
        partition_msg_ready_[dest] =
            std::max(partition_msg_ready_[dest], arrive);
    }
    partition_done_[p] = ready;
    if (outcome.reactivate_self)
        partition_active_[p] = 1;
}

bool
DiGraphEngine::activationBookkeepingConsistent() const
{
    const PathId np = pre_.paths.numPaths();
    if (path_active_count_.size() != np)
        return slot_active_.empty(); // run() has not initialized yet
    std::vector<std::uint32_t> recount(np, 0);
    for (std::uint64_t s = 0; s < slot_active_.size(); ++s) {
        if (slot_active_[s])
            ++recount[path_of_slot_[s]];
    }
    for (PathId q = 0; q < np; ++q) {
        if (recount[q] != path_active_count_[q])
            return false;
        if (recount[q] > 0 && !path_in_worklist_[q])
            return false;
    }
    std::vector<std::uint8_t> listed(np, 0);
    for (PartitionId q = 0; q < pre_.numPartitions(); ++q) {
        for (const PathId path : partition_worklist_[q]) {
            if (listed[path] || !path_in_worklist_[path] ||
                partition_of_path_[path] != q) {
                return false;
            }
            listed[path] = 1;
        }
    }
    for (PathId q = 0; q < np; ++q) {
        if (path_in_worklist_[q] && !listed[q])
            return false;
    }
    return true;
}

} // namespace digraph::engine
