/**
 * @file
 * The shared half of the execution substrate (DESIGN.md §12): one
 * preprocessing result plus every index built from it — the immutable
 * PathLayout (PTable/E_idx topology), the ReplicaSync CSRs, and the
 * Dispatcher dependency structures.
 *
 * An EngineSubstrate is built once and never mutated afterwards, so any
 * number of concurrent jobs (DiGraphEngine instances) may share one
 * instance via shared_ptr; each job allocates only its own ValuePlane
 * and Transport on top. This is what makes N-job memory grow by the
 * per-job value arrays instead of N full topology copies.
 */

#pragma once

#include <cstddef>
#include <memory>

#include "common/types.hpp"
#include "engine/dispatcher.hpp"
#include "engine/replica_sync.hpp"
#include "graph/digraph.hpp"
#include "partition/preprocess.hpp"
#include "storage/path_storage.hpp"

namespace digraph::engine {

struct EngineSubstrate
{
    /** The preprocessing result (paths, DAG sketch, partitions). */
    partition::Preprocessed pre;
    /** Vertex count of the graph the substrate was built for (adoption
     *  validation: edge totals alone can coincide across graphs). */
    VertexId num_vertices = 0;
    /** Immutable four-array topology (PTable, E_idx, edge ids). */
    std::shared_ptr<const storage::PathLayout> layout;
    /** Replica indexes + batched sync operations. */
    ReplicaSync sync;
    /** Dependency structures + scheduling policies. */
    Dispatcher dispatcher;

    /**
     * Build the full substrate from @p pre over @p g (the graph must
     * outlive the substrate). Internal cross-references (dispatcher ->
     * pre) are stable because the result is heap-allocated and
     * immutable.
     */
    static std::shared_ptr<const EngineSubstrate>
    build(const graph::DirectedGraph &g, partition::Preprocessed pre);

    /** Host bytes of the shared structures (topology + indexes +
     *  dependency tables + the preprocessing tables). */
    std::size_t memoryBytes() const;
};

} // namespace digraph::engine
