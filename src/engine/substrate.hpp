/**
 * @file
 * The shared half of the execution substrate (DESIGN.md §12): one
 * preprocessing result plus every index built from it — the immutable
 * PathLayout (PTable/E_idx topology), the ReplicaSync CSRs, and the
 * Dispatcher dependency structures.
 *
 * An EngineSubstrate is built once and never mutated afterwards, so any
 * number of concurrent jobs (DiGraphEngine instances) may share one
 * instance via shared_ptr; each job allocates only its own ValuePlane
 * and Transport on top. This is what makes N-job memory grow by the
 * per-job value arrays instead of N full topology copies.
 */

#pragma once

#include <cstddef>
#include <memory>

#include "common/types.hpp"
#include "engine/dispatcher.hpp"
#include "engine/replica_sync.hpp"
#include "graph/digraph.hpp"
#include "partition/preprocess.hpp"
#include "storage/path_storage.hpp"

namespace digraph::storage {
class DurableStore;
} // namespace digraph::storage

namespace digraph::engine {

struct EngineSubstrate
{
    /** The preprocessing result (paths, DAG sketch, partitions). */
    partition::Preprocessed pre;
    /** Vertex count of the graph the substrate was built for (adoption
     *  validation: edge totals alone can coincide across graphs). */
    VertexId num_vertices = 0;
    /** Immutable four-array topology (PTable, E_idx, edge ids). */
    std::shared_ptr<const storage::PathLayout> layout;
    /** Replica indexes + batched sync operations. */
    ReplicaSync sync;
    /** Dependency structures + scheduling policies. */
    Dispatcher dispatcher;

    /**
     * Build the full substrate from @p pre over @p g (the graph must
     * outlive the substrate). Internal cross-references (dispatcher ->
     * pre) are stable because the result is heap-allocated and
     * immutable.
     */
    static std::shared_ptr<const EngineSubstrate>
    build(const graph::DirectedGraph &g, partition::Preprocessed pre);

    /**
     * Commit this substrate's topology to @p store (a durable-store
     * version a later openFrom() can warm-start from). With @p parent
     * nonzero and an incremental preprocessing result, only appended
     * partitions' shards are written.
     * @return the committed version id, or 0 on failure.
     */
    std::uint64_t saveTo(storage::DurableStore &store,
                         const graph::DirectedGraph &g,
                         std::uint64_t parent = 0) const;

    /**
     * Instant warm start: load a committed topology from @p store and
     * build the substrate indexes from it — the whole decomposition
     * pipeline (decompose/merge/dependency/sketch/partition) is
     * skipped, which the zeroed preprocessing timings of the result
     * attest. @p version 0 recovers the newest version whose checksums
     * verify for @p g (falling back down the lineage).
     * @return the substrate, or nullptr when nothing loadable exists.
     */
    static std::shared_ptr<const EngineSubstrate>
    openFrom(storage::DurableStore &store, const graph::DirectedGraph &g,
             std::uint64_t version = 0);

    /** Host bytes of the shared structures (topology + indexes +
     *  dependency tables + the preprocessing tables). */
    std::size_t memoryBytes() const;
};

} // namespace digraph::engine
