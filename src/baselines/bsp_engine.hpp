/**
 * @file
 * Gunrock-like multi-GPU engine: bulk-synchronous, frontier-centric,
 * vertex/edge as the parallel unit, a global barrier between rounds.
 *
 * Per round, every frontier vertex scatters along its out-edges reading
 * round-start (double-buffered) states; new states become visible only in
 * the next round, so a state crosses exactly one hop per round — the slow
 * propagation the paper's Section 2 criticizes.
 */

#pragma once

#include "algorithms/algorithm.hpp"
#include "baselines/baseline_options.hpp"
#include "metrics/run_report.hpp"

namespace digraph::baselines {

/** Run @p algo to convergence with the BSP engine. */
metrics::RunReport runBsp(const graph::DirectedGraph &g,
                          const algorithms::Algorithm &algo,
                          const BaselineOptions &options = {});

} // namespace digraph::baselines
