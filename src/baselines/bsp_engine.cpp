#include "baselines/bsp_engine.hpp"

#include <algorithm>
#include <vector>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "engine/convergence.hpp"
#include "engine/value_plane.hpp"
#include "gpusim/platform.hpp"
#include "metrics/counter_registry.hpp"
#include "metrics/trace.hpp"

namespace digraph::baselines {

namespace {

constexpr std::size_t kMessageBytes = sizeof(VertexId) + sizeof(Value);

/** Approximate CSR bytes for a device's vertex chunk. */
std::size_t
chunkBytes(const graph::DirectedGraph &g, VertexId lo, VertexId hi)
{
    std::size_t edges = 0;
    for (VertexId v = lo; v < hi; ++v)
        edges += g.outDegree(v);
    return (hi - lo) * (sizeof(EdgeId) + sizeof(Value)) +
           edges * (sizeof(VertexId) + sizeof(Value));
}

} // namespace

metrics::RunReport
runBsp(const graph::DirectedGraph &g, const algorithms::Algorithm &algo,
       const BaselineOptions &options)
{
    if (const std::string err = options.validate(); !err.empty())
        fatal("runBsp: invalid options: ", err);
    WallTimer wall;
    metrics::RunReport report;
    report.system = "bsp";
    report.algorithm = algo.name();
    metrics::CounterRegistry counters;
    metrics::TraceSink *const trace = options.trace;

    gpusim::Platform platform(options.platform);
    const unsigned num_dev = platform.numDevices();
    report.num_gpus = num_dev;

    const VertexId n = g.numVertices();

    // One contiguous vertex chunk per device, balanced by edges.
    std::vector<VertexId> dev_bounds{0};
    {
        const std::size_t per_dev =
            (g.numEdges() + num_dev - 1) / std::max(1u, num_dev);
        std::size_t filled = 0;
        for (VertexId v = 0; v < n && dev_bounds.size() < num_dev; ++v) {
            filled += g.outDegree(v);
            if (filled >= per_dev * dev_bounds.size())
                dev_bounds.push_back(v + 1);
        }
        while (dev_bounds.size() < num_dev + 1)
            dev_bounds.push_back(n);
    }
    auto device_of = [&](VertexId v) {
        const auto it = std::upper_bound(dev_bounds.begin(),
                                         dev_bounds.end(), v);
        return static_cast<DeviceId>(it - dev_bounds.begin() - 1);
    };
    report.num_partitions = num_dev;

    // Initial graph upload, one chunk per device.
    double barrier = 0.0;
    for (DeviceId d = 0; d < num_dev; ++d) {
        const std::size_t bytes =
            chunkBytes(g, dev_bounds[d], dev_bounds[d + 1]);
        const double done =
            platform.device(d).hostLink().transfer(0.0, bytes);
        counters.add(metrics::Counter::HostTransferBytes, bytes);
        report.comm_cycles += platform.device(d).hostLink().cost(bytes);
        barrier = std::max(barrier, done);
    }

    // State: the shared per-job value plane in flat mode (double
    // buffered — BSP reads round-start values).
    engine::ValuePlane plane;
    plane.initFlat(g, algo, /*double_buffer=*/true);
    auto &prev = plane.vertex_values;
    auto &next = plane.vertex_values_next;
    auto &edge_state = plane.edge_values;
    auto &active = plane.vertex_active;
    auto &next_active = plane.vertex_active_next;
    for (VertexId v = 0; v < n; ++v) {
        active[v] =
            options.force_all_active || algo.initActive(g, v) ? 1 : 0;
    }
    bool any = engine::anyActive(active);

    const unsigned lanes = options.platform.lanesPerSmx();
    const double per_edge_cycles =
        options.platform.cycles_per_edge +
        3.0 * options.platform.cycles_per_global_access;

    while (any &&
           counters.get(metrics::Counter::Rounds) < options.max_rounds) {
        counters.add(metrics::Counter::Rounds);
        any = false;
        const std::uint64_t round = counters.get(metrics::Counter::Rounds);
        if (trace) {
            trace->event(metrics::TraceEventType::WaveStart, round,
                         metrics::kTraceNoPartition, barrier, 0.0,
                         num_dev);
        }

        // Cross-device activation counts for end-of-round messaging.
        std::vector<std::vector<std::uint32_t>> remote(
            num_dev, std::vector<std::uint32_t>(num_dev, 0));

        double round_end = barrier;
        for (DeviceId d = 0; d < num_dev; ++d) {
            auto &device = platform.device(d);
            double device_end = barrier;
            std::vector<std::uint64_t> lane_work;
            std::uint64_t touched_edges = 0;
            std::uint64_t active_count = 0;
            for (VertexId u = dev_bounds[d]; u < dev_bounds[d + 1]; ++u) {
                if (!active[u])
                    continue;
                ++active_count;
                const auto nbrs = g.outNeighbors(u);
                const auto out_deg =
                    static_cast<std::uint32_t>(nbrs.size());
                lane_work.push_back(out_deg);
                touched_edges += out_deg;
                for (std::size_t k = 0; k < nbrs.size(); ++k) {
                    const EdgeId e = g.outEdgeId(u, k);
                    const VertexId w = nbrs[k];
                    counters.add(metrics::Counter::EdgeProcessings);
                    if (algo.processEdge(prev[u], edge_state[e], e,
                                         g.edgeWeight(e), out_deg,
                                         next[w])) {
                        counters.add(metrics::Counter::VertexUpdates);
                        // Remote contributions are combined per vertex
                        // before the end-of-round exchange (frontier
                        // engines aggregate locally).
                        if (!next_active[w]) {
                            next_active[w] = 1;
                            const DeviceId dw = device_of(w);
                            if (dw != d)
                                ++remote[d][dw];
                        }
                    }
                }
            }
            counters.add(metrics::Counter::LoadedVertices,
                         active_count + touched_edges);
            const std::size_t load_bytes =
                (active_count + touched_edges) * sizeof(Value) +
                touched_edges * (sizeof(VertexId) + sizeof(Value));
            device.addGlobalLoad(load_bytes);

            // Spread lane bins over all SMXs, gated on the barrier.
            if (!lane_work.empty()) {
                std::stable_sort(lane_work.begin(), lane_work.end(),
                                 std::greater<>());
                const std::size_t n_bins = std::min<std::size_t>(
                    lane_work.size(),
                    static_cast<std::size_t>(lanes) * device.numSmxs());
                std::vector<std::uint64_t> bins(n_bins, 0);
                for (std::size_t i = 0; i < lane_work.size(); ++i)
                    bins[i % n_bins] += lane_work[i];
                const std::size_t groups =
                    (n_bins + lanes - 1) / lanes;
                for (std::size_t k = 0; k < groups; ++k) {
                    std::vector<std::uint64_t> group(
                        bins.begin() + k * lanes,
                        bins.begin() +
                            std::min(n_bins, (k + 1) * lanes));
                    const double cycles =
                        gpusim::warpCost(group, per_edge_cycles);
                    const double done =
                        device.smx(device.leastLoadedSmx())
                            .run(barrier, cycles);
                    device_end = std::max(device_end, done);
                }
                round_end = std::max(round_end, device_end);
            }
            if (trace && active_count > 0) {
                trace->event(metrics::TraceEventType::Dispatch, round, d,
                             barrier, device_end - barrier, active_count,
                             touched_edges);
            }
        }

        // End-of-round synchronization: remote activations travel the
        // ring; every device then waits at the global barrier.
        const double exchange_begin = round_end;
        std::uint64_t remote_messages = 0;
        for (DeviceId a = 0; a < num_dev; ++a) {
            for (DeviceId b = 0; b < num_dev; ++b) {
                if (remote[a][b] == 0)
                    continue;
                remote_messages += remote[a][b];
                const std::uint64_t bytes =
                    static_cast<std::uint64_t>(remote[a][b]) *
                    kMessageBytes;
                const double done = platform.ring().transfer(
                    a, b, round_end, bytes);
                report.comm_cycles +=
                    options.platform.transfer_latency_cycles +
                    static_cast<double>(bytes) /
                        options.platform.ring_bytes_per_cycle;
                round_end = std::max(round_end, done);
            }
        }
        if (trace) {
            trace->event(metrics::TraceEventType::MergeBarrier, round,
                         metrics::kTraceNoPartition, exchange_begin,
                         round_end - exchange_begin, remote_messages);
            trace->event(metrics::TraceEventType::WaveEnd, round,
                         metrics::kTraceNoPartition, round_end, 0.0,
                         num_dev);
        }
        barrier = round_end;

        prev = next;
        active.swap(next_active);
        std::fill(next_active.begin(), next_active.end(), 0);
        any = engine::anyActive(active);
    }

    counters.set(metrics::Counter::Waves,
                 counters.get(metrics::Counter::Rounds));
    counters.set(metrics::Counter::NumPartitions, num_dev);
    counters.set(metrics::Counter::UsedVertices,
                 counters.get(metrics::Counter::VertexUpdates));
    counters.set(metrics::Counter::RingTransferBytes,
                 platform.ring().totalBytes());
    counters.set(metrics::Counter::GlobalLoadBytes,
                 platform.globalLoadBytes());
    counters.exportTo(report);
    if (trace)
        trace->setCounters(counters);
    report.final_state = std::move(prev);
    report.sim_cycles = std::max(barrier, platform.makespan());
    report.utilization = platform.utilization();
    report.wall_seconds = wall.seconds();
    return report;
}

} // namespace digraph::baselines
