#include "baselines/baseline_options.hpp"

#include <algorithm>

namespace digraph::baselines {

std::vector<VertexId>
vertexRangePartitions(const graph::DirectedGraph &g,
                      std::size_t edges_per_partition)
{
    const VertexId n = g.numVertices();
    std::vector<VertexId> bounds{0};
    std::size_t filled = 0;
    const std::size_t budget = std::max<std::size_t>(1, edges_per_partition);
    for (VertexId v = 0; v < n; ++v) {
        const std::size_t deg = g.outDegree(v);
        if (filled > 0 && filled + deg > budget) {
            bounds.push_back(v);
            filled = 0;
        }
        filled += deg;
    }
    bounds.push_back(n);
    return bounds;
}

std::size_t
defaultEdgeBudget(const graph::DirectedGraph &g,
                  const gpusim::PlatformConfig &platform)
{
    // Groute-style worklist chunks scale with the machine's parallelism.
    const std::size_t units = static_cast<std::size_t>(
        std::max(1u, platform.num_devices * platform.smx_per_device));
    return std::max<std::size_t>(256, g.numEdges() / (units * 8));
}

} // namespace digraph::baselines
