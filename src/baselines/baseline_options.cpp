#include "baselines/baseline_options.hpp"

#include <algorithm>

namespace digraph::baselines {

std::string
BaselineOptions::validate() const
{
    const auto &pc = platform;
    if (pc.num_devices == 0)
        return "platform.num_devices must be > 0";
    if (pc.smx_per_device == 0)
        return "platform.smx_per_device must be > 0";
    if (pc.warps_per_smx == 0)
        return "platform.warps_per_smx must be > 0";
    if (pc.global_mem_bytes == 0)
        return "platform.global_mem_bytes must be > 0";
    if (!(pc.host_link_bytes_per_cycle > 0.0))
        return "platform.host_link_bytes_per_cycle must be > 0";
    if (!(pc.ring_bytes_per_cycle > 0.0))
        return "platform.ring_bytes_per_cycle must be > 0";
    if (pc.transfer_latency_cycles < 0.0)
        return "platform.transfer_latency_cycles must be >= 0";
    if (pc.cycles_per_edge < 0.0)
        return "platform.cycles_per_edge must be >= 0";
    if (pc.num_streams == 0)
        return "platform.num_streams must be > 0";
    if (max_rounds == 0)
        return "max_rounds must be > 0";
    return "";
}

std::vector<VertexId>
vertexRangePartitions(const graph::DirectedGraph &g,
                      std::size_t edges_per_partition)
{
    const VertexId n = g.numVertices();
    std::vector<VertexId> bounds{0};
    std::size_t filled = 0;
    const std::size_t budget = std::max<std::size_t>(1, edges_per_partition);
    for (VertexId v = 0; v < n; ++v) {
        const std::size_t deg = g.outDegree(v);
        if (filled > 0 && filled + deg > budget) {
            bounds.push_back(v);
            filled = 0;
        }
        filled += deg;
    }
    bounds.push_back(n);
    return bounds;
}

std::size_t
defaultEdgeBudget(const graph::DirectedGraph &g,
                  const gpusim::PlatformConfig &platform)
{
    // Groute-style worklist chunks scale with the machine's parallelism.
    const std::size_t units = static_cast<std::size_t>(
        std::max(1u, platform.num_devices * platform.smx_per_device));
    return std::max<std::size_t>(256, g.numEdges() / (units * 8));
}

} // namespace digraph::baselines
