#include "baselines/sequential.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/timer.hpp"
#include "engine/convergence.hpp"
#include "engine/value_plane.hpp"
#include "graph/scc.hpp"
#include "graph/traversal.hpp"
#include "metrics/counter_registry.hpp"

namespace digraph::baselines {

double
SequentialResult::singleUpdateFraction() const
{
    if (updates_per_vertex.empty())
        return 0.0;
    const auto once = std::count(updates_per_vertex.begin(),
                                 updates_per_vertex.end(), 1u);
    return static_cast<double>(once) /
           static_cast<double>(updates_per_vertex.size());
}

namespace {

/** Export counters and final state into the result's RunReport, the
 *  same way the simulated engines end a run. */
void
finishReport(SequentialResult &result, const std::string &system,
             const algorithms::Algorithm &algo,
             metrics::CounterRegistry &counters, double wall_seconds,
             metrics::TraceSink *trace)
{
    result.edge_processings =
        counters.get(metrics::Counter::EdgeProcessings);
    result.vertex_updates = counters.get(metrics::Counter::VertexUpdates);
    result.rounds = counters.get(metrics::Counter::Rounds);
    counters.set(metrics::Counter::UsedVertices,
                 counters.get(metrics::Counter::VertexUpdates));
    result.report.system = system;
    result.report.algorithm = algo.name();
    counters.exportTo(result.report);
    result.report.final_state = result.state;
    result.report.wall_seconds = wall_seconds;
    if (trace)
        trace->setCounters(counters);
}

/** Process all out-edges of @p v; activate changed targets via @p sink. */
template <typename Activate>
std::uint64_t
processVertex(const graph::DirectedGraph &g,
              const algorithms::Algorithm &algo, VertexId v,
              std::vector<Value> &state, std::vector<Value> &edge_state,
              Activate &&activate)
{
    const auto nbrs = g.outNeighbors(v);
    const auto out_deg = static_cast<std::uint32_t>(nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const EdgeId e = g.outEdgeId(v, k);
        const VertexId w = nbrs[k];
        if (algo.processEdge(state[v], edge_state[e], e, g.edgeWeight(e),
                             out_deg, state[w])) {
            activate(w);
        }
    }
    return nbrs.size();
}

} // namespace

SequentialResult
runSequential(const graph::DirectedGraph &g,
              const algorithms::Algorithm &algo, metrics::TraceSink *trace)
{
    WallTimer wall;
    SequentialResult result;
    engine::ValuePlane plane;
    plane.initFlat(g, algo, /*double_buffer=*/false);
    std::vector<Value> &edge_state = plane.edge_values;
    result.updates_per_vertex.assign(g.numVertices(), 0);

    std::deque<VertexId> worklist;
    std::vector<std::uint8_t> queued(g.numVertices(), 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (algo.initActive(g, v)) {
            worklist.push_back(v);
            queued[v] = 1;
        }
    }

    metrics::CounterRegistry counters;
    while (!worklist.empty()) {
        const VertexId v = worklist.front();
        worklist.pop_front();
        queued[v] = 0;
        counters.add(metrics::Counter::VertexUpdates);
        ++result.updates_per_vertex[v];
        counters.add(
            metrics::Counter::EdgeProcessings,
            processVertex(g, algo, v, plane.vertex_values, edge_state,
                          [&](VertexId w) {
                              if (!queued[w]) {
                                  queued[w] = 1;
                                  worklist.push_back(w);
                              }
                          }));
    }
    result.state = std::move(plane.vertex_values);
    finishReport(result, "sequential", algo, counters, wall.seconds(),
                 trace);
    return result;
}

SequentialResult
runTopological(const graph::DirectedGraph &g,
               const algorithms::Algorithm &algo, metrics::TraceSink *trace)
{
    WallTimer wall;
    SequentialResult result;
    engine::ValuePlane plane;
    plane.initFlat(g, algo, /*double_buffer=*/false);
    std::vector<Value> &edge_state = plane.edge_values;
    result.updates_per_vertex.assign(g.numVertices(), 0);

    // Vertex order: topological over the SCC condensation, vertices of one
    // SCC kept adjacent (Tarjan emits components in reverse topological
    // order, so sort descending by component id... then re-rank by the
    // condensation's layer for robustness).
    const auto scc = graph::computeScc(g);
    const auto condensed = graph::condense(g, scc);
    const auto order_of_scc = graph::topologicalOrder(condensed);
    std::vector<std::uint32_t> rank(scc.num_components, 0);
    for (std::size_t i = 0; i < order_of_scc.size(); ++i)
        rank[order_of_scc[i]] = static_cast<std::uint32_t>(i);

    std::vector<VertexId> order(g.numVertices());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](VertexId a, VertexId b) {
                         return rank[scc.component[a]] <
                                rank[scc.component[b]];
                     });

    // Process SCC by SCC along the condensation's topological order,
    // iterating each SCC to convergence before moving on (Observation 2:
    // a vertex is handled only after all its precursors converged).
    // Vertices outside any cycle are then updated exactly once.
    std::vector<std::uint8_t> &active = plane.vertex_active;
    active.assign(g.numVertices(), 1);
    metrics::CounterRegistry counters;
    std::size_t begin = 0;
    while (begin < order.size()) {
        std::size_t end = begin;
        const SccId comp = scc.component[order[begin]];
        while (end < order.size() &&
               scc.component[order[end]] == comp) {
            ++end;
        }
        bool any = true;
        while (any) {
            any = false;
            counters.add(metrics::Counter::Rounds);
            for (std::size_t i = begin; i < end; ++i) {
                const VertexId v = order[i];
                if (!active[v])
                    continue;
                active[v] = 0;
                counters.add(metrics::Counter::VertexUpdates);
                ++result.updates_per_vertex[v];
                counters.add(
                    metrics::Counter::EdgeProcessings,
                    processVertex(g, algo, v, plane.vertex_values,
                                  edge_state,
                                  [&](VertexId w) { active[w] = 1; }));
            }
            any = engine::anyActiveAmong(active, order, begin, end);
        }
        begin = end;
    }
    result.state = std::move(plane.vertex_values);
    finishReport(result, "sequential-topo", algo, counters,
                 wall.seconds(), trace);
    return result;
}

} // namespace digraph::baselines
