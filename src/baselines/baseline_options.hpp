/**
 * @file
 * Shared configuration and helpers for the comparison systems (the
 * Gunrock-like BSP engine and the Groute-like asynchronous engine).
 *
 * Both baselines run on the same simulated platform and account the same
 * metrics as DiGraph, so every figure compares execution models rather
 * than substrates — mirroring the paper's same-hardware methodology.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gpusim/config.hpp"
#include "common/types.hpp"
#include "graph/digraph.hpp"

namespace digraph::metrics {
class TraceSink;
} // namespace digraph::metrics

namespace digraph::baselines {

/** Options shared by both baseline engines. */
struct BaselineOptions
{
    /** Simulated platform. */
    gpusim::PlatformConfig platform;
    /** Edge budget per vertex partition (0 = derived from the platform,
     *  matching the DiGraph engine's default). */
    std::size_t edges_per_partition = 0;
    /** Activate every vertex initially (Fig 2 methodology). */
    bool force_all_active = false;
    /** Safety cap on rounds / dispatches. */
    std::size_t max_rounds = 1u << 20;
    /** Structured trace sink; nullptr disables tracing (same contract
     *  as EngineOptions::trace). */
    metrics::TraceSink *trace = nullptr;

    /**
     * Reject nonsensical knob combinations (zero devices/SMXs, negative
     * bandwidths, max_rounds == 0) before they divide by zero or spin
     * forever inside the engines.
     * @return a diagnostic, or "" when the options are usable.
     */
    std::string validate() const;
};

/**
 * Contiguous vertex-range partitions balanced by out-edge count.
 * @return partition boundaries (size = #partitions + 1).
 */
std::vector<VertexId> vertexRangePartitions(const graph::DirectedGraph &g,
                                            std::size_t edges_per_partition);

/** Derived edge budget matching the DiGraph engine's default. */
std::size_t defaultEdgeBudget(const graph::DirectedGraph &g,
                              const gpusim::PlatformConfig &platform);

} // namespace digraph::baselines
