#include "baselines/async_engine.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "engine/convergence.hpp"
#include "engine/value_plane.hpp"
#include "gpusim/platform.hpp"
#include "metrics/counter_registry.hpp"
#include "metrics/trace.hpp"

namespace digraph::baselines {

namespace {

constexpr std::size_t kMessageBytes = sizeof(VertexId) + sizeof(Value);

} // namespace

AsyncResult
runAsync(const graph::DirectedGraph &g, const algorithms::Algorithm &algo,
         const BaselineOptions &options)
{
    if (const std::string err = options.validate(); !err.empty())
        fatal("runAsync: invalid options: ", err);
    WallTimer wall;
    AsyncResult result;
    metrics::RunReport &report = result.report;
    report.system = "async";
    report.algorithm = algo.name();
    metrics::CounterRegistry counters;
    metrics::TraceSink *const trace = options.trace;

    gpusim::Platform platform(options.platform);
    const unsigned num_dev = platform.numDevices();
    report.num_gpus = num_dev;

    const VertexId n = g.numVertices();
    const std::size_t budget =
        options.edges_per_partition
            ? options.edges_per_partition
            : defaultEdgeBudget(g, options.platform);
    result.partition_bounds = vertexRangePartitions(g, budget);
    const auto &bounds = result.partition_bounds;
    const PartitionId nparts =
        static_cast<PartitionId>(bounds.size() - 1);
    report.num_partitions = nparts;

    auto partition_of = [&](VertexId v) {
        const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
        return static_cast<PartitionId>(it - bounds.begin() - 1);
    };

    // Partitions round-robin over devices (Groute's static placement).
    std::vector<DeviceId> device_of_part(nparts);
    for (PartitionId q = 0; q < nparts; ++q)
        device_of_part[q] = q % num_dev;

    std::vector<std::size_t> part_bytes(nparts);
    for (PartitionId q = 0; q < nparts; ++q) {
        std::size_t edges = 0;
        for (VertexId v = bounds[q]; v < bounds[q + 1]; ++v)
            edges += g.outDegree(v);
        part_bytes[q] = (bounds[q + 1] - bounds[q]) *
                            (sizeof(EdgeId) + sizeof(Value)) +
                        edges * (sizeof(VertexId) + sizeof(Value));
    }

    // State: the shared per-job value plane in flat mode (async reads
    // the latest values in place; no double buffer).
    engine::ValuePlane plane;
    plane.initFlat(g, algo, /*double_buffer=*/false);
    auto &state = plane.vertex_values;
    auto &edge_state = plane.edge_values;
    auto &active = plane.vertex_active;
    std::vector<std::uint8_t> part_active(nparts, 0);
    for (VertexId v = 0; v < n; ++v) {
        if (options.force_all_active || algo.initActive(g, v)) {
            active[v] = 1;
            part_active[partition_of(v)] = 1;
        }
    }

    std::vector<std::uint8_t> uploaded(nparts, 0);
    result.partition_process_count.assign(nparts, 0);
    // Dependency stalls: a partition cannot re-run before its previous
    // pass finished, nor before the activation message that woke it up
    // arrived.
    std::vector<double> part_done(nparts, 0.0);
    std::vector<double> part_msg_ready(nparts, 0.0);

    const unsigned lanes = options.platform.lanesPerSmx();
    const double per_edge_cycles =
        options.platform.cycles_per_edge +
        3.0 * options.platform.cycles_per_global_access;

    std::size_t dispatches = 0;

    // Dispatching is organized in waves (the batched-kernel granularity
    // of a real GPU runtime): a partition runs at most once per wave;
    // activations arriving after its dispatch carry to the next wave.
    std::vector<std::uint64_t> wave_stamp(nparts, 0);
    std::uint64_t wave = 1;
    for (;;) {
        // Pick the active partition (not yet run this wave) whose device
        // is least busy (models parallel devices pulling worklists).
        PartitionId pick = kInvalidPartition;
        double best_clock = 0.0;
        for (PartitionId q = 0; q < nparts; ++q) {
            if (!part_active[q] || wave_stamp[q] >= wave)
                continue;
            const double c =
                platform.device(device_of_part[q]).clock();
            if (pick == kInvalidPartition || c < best_clock) {
                pick = q;
                best_clock = c;
            }
        }
        if (pick == kInvalidPartition) {
            if (!engine::anyActive(part_active))
                break;
            ++wave;
            continue;
        }
        if (dispatches >= options.max_rounds)
            break;
        wave_stamp[pick] = wave;
        ++dispatches;
        counters.add(metrics::Counter::PartitionProcessings);
        ++result.partition_process_count[pick];
        counters.add(metrics::Counter::Rounds);
        part_active[pick] = 0;

        const DeviceId d = device_of_part[pick];
        auto &device = platform.device(d);
        double ready = std::max(
            {device.smx(device.leastLoadedSmx()).clock(),
             part_done[pick], part_msg_ready[pick]});
        if (!uploaded[pick]) {
            uploaded[pick] = 1;
            const double done =
                device.hostLink().transfer(ready, part_bytes[pick]);
            counters.add(metrics::Counter::HostTransferBytes,
                         part_bytes[pick]);
            report.comm_cycles += device.hostLink().cost(part_bytes[pick]);
            ready = done;
        }

        const VertexId lo = bounds[pick], hi = bounds[pick + 1];

        std::uint64_t active_count = 0, touched_edges = 0;
        std::vector<std::uint64_t> lane_work;
        std::vector<VertexId> newly_active;
        std::unordered_map<PartitionId, std::uint32_t> messages;

        for (VertexId u = lo; u < hi; ++u) {
            if (!active[u])
                continue;
            active[u] = 0;
            ++active_count;
            const auto nbrs = g.outNeighbors(u);
            const auto out_deg = static_cast<std::uint32_t>(nbrs.size());
            lane_work.push_back(out_deg);
            touched_edges += out_deg;
            // Asynchronous kernels read the latest global values; an
            // already-processed vertex still only sees new state on the
            // next pass (it is not re-queued within one pass).
            const Value src = state[u];
            for (std::size_t k = 0; k < nbrs.size(); ++k) {
                const EdgeId e = g.outEdgeId(u, k);
                const VertexId w = nbrs[k];
                counters.add(metrics::Counter::EdgeProcessings);
                if (algo.processEdge(src, edge_state[e], e,
                                     g.edgeWeight(e), out_deg,
                                     state[w])) {
                    counters.add(metrics::Counter::VertexUpdates);
                    newly_active.push_back(w);
                    // Every remote update crosses the interconnect
                    // (vertex-centric engines push deltas eagerly).
                    const PartitionId qw = partition_of(w);
                    if (qw != pick)
                        ++messages[qw];
                }
            }
        }

        counters.add(metrics::Counter::LoadedVertices,
                     active_count + touched_edges);
        const std::size_t load_bytes =
            (active_count + touched_edges) * sizeof(Value) +
            touched_edges * (sizeof(VertexId) + sizeof(Value));
        device.addGlobalLoad(load_bytes);

        // Activations: local ones re-activate this partition; remote ones
        // are messages to the owning partition's device.
        std::vector<PartitionId> woken;
        for (const VertexId w : newly_active) {
            if (active[w])
                continue;
            active[w] = 1;
            const PartitionId qw = partition_of(w);
            if (!part_active[qw]) {
                part_active[qw] = 1;
                if (qw != pick)
                    woken.push_back(qw);
            }
        }

        // Compute cost: active vertices packed into lane bins on one SMX.
        double done = ready;
        if (!lane_work.empty()) {
            std::stable_sort(lane_work.begin(), lane_work.end(),
                             std::greater<>());
            const std::size_t n_bins =
                std::min<std::size_t>(lane_work.size(), lanes);
            std::vector<std::uint64_t> bins(n_bins, 0);
            for (std::size_t i = 0; i < lane_work.size(); ++i)
                bins[i % n_bins] += lane_work[i];
            const double cycles =
                gpusim::warpCost(bins, per_edge_cycles) +
                static_cast<double>(newly_active.size()) *
                    options.platform.cycles_per_atomic;
            done = device.smx(device.leastLoadedSmx()).run(ready, cycles);
        }
        if (trace) {
            trace->event(metrics::TraceEventType::Dispatch, wave, pick,
                         ready, done - ready, active_count,
                         touched_edges);
        }

        // One ring transfer per destination device (batched messaging).
        std::vector<std::uint64_t> device_bytes(num_dev, 0);
        for (const auto &[dest, count] : messages) {
            const DeviceId dd = device_of_part[dest];
            if (dd != d) {
                device_bytes[dd] +=
                    static_cast<std::uint64_t>(count) * kMessageBytes;
            }
        }
        std::vector<double> device_arrive(num_dev, done);
        std::uint64_t remote_bytes = 0;
        for (DeviceId dd = 0; dd < num_dev; ++dd) {
            if (device_bytes[dd] == 0)
                continue;
            remote_bytes += device_bytes[dd];
            device_arrive[dd] =
                platform.ring().transfer(d, dd, done, device_bytes[dd]);
            report.comm_cycles +=
                options.platform.transfer_latency_cycles +
                static_cast<double>(device_bytes[dd]) /
                    options.platform.ring_bytes_per_cycle;
        }
        if (trace && remote_bytes > 0) {
            trace->event(metrics::TraceEventType::MirrorPush, wave, pick,
                         done, 0.0, remote_bytes / kMessageBytes,
                         remote_bytes);
        }
        for (const PartitionId dest : woken) {
            part_msg_ready[dest] = std::max(
                part_msg_ready[dest], device_arrive[device_of_part[dest]]);
        }
        part_done[pick] = done;

        if (active_count > 0) {
            result.dispatch_active_ratio.push_back(
                static_cast<double>(active_count) /
                static_cast<double>(hi - lo));
        }
    }

    counters.set(metrics::Counter::Waves, wave);
    counters.set(metrics::Counter::NumPartitions, nparts);
    counters.set(metrics::Counter::UsedVertices,
                 counters.get(metrics::Counter::VertexUpdates));
    counters.set(metrics::Counter::RingTransferBytes,
                 platform.ring().totalBytes());
    counters.set(metrics::Counter::GlobalLoadBytes,
                 platform.globalLoadBytes());
    counters.exportTo(report);
    if (trace)
        trace->setCounters(counters);
    report.final_state = std::move(state);
    report.sim_cycles = platform.makespan();
    report.utilization = platform.utilization();
    report.wall_seconds = wall.seconds();
    return result;
}

} // namespace digraph::baselines
