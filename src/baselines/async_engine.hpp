/**
 * @file
 * Groute-like multi-GPU engine: asynchronous, vertex-centric, partition
 * worklists, no global barrier.
 *
 * Vertex-range partitions are spread round-robin over the devices; an
 * active partition is processed on its device's least-loaded SMX. Within
 * one partition pass, sources are read from a pass-start snapshot (the
 * lock-step SIMT behaviour the paper describes: already-processed
 * vertices see a new state only on the next pass), while cross-partition
 * updates propagate immediately through activation messages — no barrier
 * between passes. Partition reprocessing counts (Fig 2a/b) and per-pass
 * active-vertex ratios (Fig 2c) are recorded.
 */

#pragma once

#include <vector>

#include "algorithms/algorithm.hpp"
#include "baselines/baseline_options.hpp"
#include "metrics/run_report.hpp"

namespace digraph::baselines {

/** Extended output of the async engine. */
struct AsyncResult
{
    metrics::RunReport report;
    /** Processing count per partition (Fig 2a). */
    std::vector<std::uint32_t> partition_process_count;
    /** Active-vertex ratio of each processed (non-convergent) partition,
     *  in dispatch order (Fig 2c). */
    std::vector<double> dispatch_active_ratio;
    /** Partition vertex-range boundaries. */
    std::vector<VertexId> partition_bounds;
};

/** Run @p algo to convergence with the async engine. */
AsyncResult runAsync(const graph::DirectedGraph &g,
                     const algorithms::Algorithm &algo,
                     const BaselineOptions &options = {});

} // namespace digraph::baselines
