/**
 * @file
 * Sequential reference engines.
 *
 * runSequential() computes the exact fixed point with a FIFO worklist —
 * the oracle every parallel engine is tested against.
 *
 * runTopological() reproduces the Fig 2d experiment: vertices are handled
 * sequentially and asynchronously along the topological order of the
 * graph's SCC condensation, and the per-vertex update counts show how many
 * vertices converge after exactly one update (all vertices of a DAG
 * would).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "graph/digraph.hpp"
#include "metrics/run_report.hpp"
#include "metrics/trace.hpp"

namespace digraph::baselines {

/** Result of a sequential run. */
struct SequentialResult
{
    /** Final vertex states. */
    std::vector<Value> state;
    /** processEdge invocations. */
    std::uint64_t edge_processings = 0;
    /** Number of vertex-program executions ("updates"). */
    std::uint64_t vertex_updates = 0;
    /** Sweep rounds (topological mode only). */
    std::uint64_t rounds = 0;
    /** Per-vertex update counts. */
    std::vector<std::uint32_t> updates_per_vertex;
    /** Full report, exported through CounterRegistry::exportTo like the
     *  other engine families (no simulated timeline: sim_cycles is 0). */
    metrics::RunReport report;

    /** Fraction of vertices updated exactly once (Fig 2d metric). */
    double singleUpdateFraction() const;
};

/** Exact fixed point via FIFO worklist. @p trace (optional) receives
 *  the run's counter totals. */
SequentialResult runSequential(const graph::DirectedGraph &g,
                               const algorithms::Algorithm &algo,
                               metrics::TraceSink *trace = nullptr);

/**
 * Sequential asynchronous sweeps along the topological order of the SCC
 * condensation (Fig 2d). Every vertex starts active.
 */
SequentialResult runTopological(const graph::DirectedGraph &g,
                                const algorithms::Algorithm &algo,
                                metrics::TraceSink *trace = nullptr);

} // namespace digraph::baselines
