/**
 * @file
 * Connected-component labeling by min-label propagation.
 *
 * On a symmetrized graph (see graph::withBidirectionalRatio(g, 1.0)) this
 * computes weakly connected components; on a plain directed graph it
 * computes the "min reachable ancestor label" fixed point. Monotone, so
 * any processing order converges to the same result.
 *
 * The per-edge math lives in WccPolicy so the engine's specialized wave
 * kernels inline it without virtual dispatch.
 */

#pragma once

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Non-virtual min-label kernel policy (see PolicyAlgorithm). */
struct WccPolicy
{
    static constexpr bool kUsesWeight = false;
    static constexpr bool kUsesOutDegree = false;
    static constexpr bool kAccumulative = false;

    bool
    processEdge(Value src, Value &, EdgeId, Value, std::uint32_t,
                Value &dst) const
    {
        if (src < dst) {
            dst = src;
            return true;
        }
        return false;
    }

    bool
    mergeMaster(Value &master, Value pushed) const
    {
        if (pushed < master) {
            master = pushed;
            return true;
        }
        return false;
    }

    Value pushValue(Value current, Value) const { return current; }

    bool hasPush(Value current, Value at_load) const
    {
        return current < at_load;
    }

    Value pull(Value master, Value mirror) const
    {
        return master < mirror ? master : mirror;
    }
};

/** Min-label propagation (WCC on symmetrized inputs). */
class Wcc : public PolicyAlgorithm<WccPolicy>
{
  public:
    Wcc() : PolicyAlgorithm(WccPolicy{}) {}

    std::string name() const override { return "wcc"; }
    std::string kernelTag() const override { return "wcc"; }

    Value
    initVertex(const graph::DirectedGraph &, VertexId v) const override
    {
        return static_cast<Value>(v);
    }

    double resultTolerance() const override { return 1e-9; }
};

} // namespace digraph::algorithms
