/**
 * @file
 * Connected-component labeling by min-label propagation.
 *
 * On a symmetrized graph (see graph::withBidirectionalRatio(g, 1.0)) this
 * computes weakly connected components; on a plain directed graph it
 * computes the "min reachable ancestor label" fixed point. Monotone, so
 * any processing order converges to the same result.
 */

#pragma once

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Min-label propagation (WCC on symmetrized inputs). */
class Wcc : public Algorithm
{
  public:
    std::string name() const override { return "wcc"; }

    Value
    initVertex(const graph::DirectedGraph &, VertexId v) const override
    {
        return static_cast<Value>(v);
    }

    bool
    processEdge(Value src, Value &, EdgeId, Value, std::uint32_t,
                Value &dst) const override
    {
        if (src < dst) {
            dst = src;
            return true;
        }
        return false;
    }

    bool
    mergeMaster(Value &master, Value pushed) const override
    {
        if (pushed < master) {
            master = pushed;
            return true;
        }
        return false;
    }

    Value pushValue(Value current, Value) const override { return current; }

    bool
    hasPush(Value current, Value at_load) const override
    {
        return current < at_load;
    }

    Value
    pull(Value master, Value mirror) const override
    {
        return master < mirror ? master : mirror;
    }

    double resultTolerance() const override { return 1e-9; }
};

} // namespace digraph::algorithms
