/**
 * @file
 * Full core-number decomposition (the k-core benchmark's [14] complete
 * output): core(v) is the largest k such that v survives k-core peeling.
 *
 * Matches the engine's directed k-core semantics (alive in-degree
 * threshold): computed with an exact bucket-peeling algorithm, it is the
 * oracle for KCore across every k at once — core(v) >= k iff v is alive
 * in the k-core fixed point.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/digraph.hpp"

namespace digraph::algorithms {

/**
 * Compute directed (in-degree) core numbers by bucket peeling:
 * repeatedly remove the vertex with the smallest alive in-degree.
 */
std::vector<std::uint32_t> coreNumbers(const graph::DirectedGraph &g);

} // namespace digraph::algorithms
