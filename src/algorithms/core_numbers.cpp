#include "algorithms/core_numbers.hpp"

#include <algorithm>

namespace digraph::algorithms {

std::vector<std::uint32_t>
coreNumbers(const graph::DirectedGraph &g)
{
    const VertexId n = g.numVertices();
    std::vector<std::uint32_t> degree(n);
    std::uint32_t max_degree = 0;
    for (VertexId v = 0; v < n; ++v) {
        degree[v] = static_cast<std::uint32_t>(g.inDegree(v));
        max_degree = std::max(max_degree, degree[v]);
    }

    // Bucket sort by current degree (classic O(V + E) peeling).
    std::vector<std::uint32_t> bucket_start(max_degree + 2, 0);
    for (VertexId v = 0; v < n; ++v)
        ++bucket_start[degree[v] + 1];
    for (std::uint32_t d = 0; d + 1 <= max_degree; ++d)
        bucket_start[d + 1] += bucket_start[d];

    std::vector<VertexId> order(n);   // vertices sorted by degree
    std::vector<VertexId> position(n);
    {
        std::vector<std::uint32_t> cursor(bucket_start.begin(),
                                          bucket_start.end() - 1);
        for (VertexId v = 0; v < n; ++v) {
            position[v] = cursor[degree[v]];
            order[position[v]] = v;
            ++cursor[degree[v]];
        }
    }

    std::vector<std::uint32_t> core(n, 0);
    for (VertexId i = 0; i < n; ++i) {
        const VertexId v = order[i];
        core[v] = degree[v];
        // Removing v lowers the alive in-degree of its successors.
        for (const VertexId w : g.outNeighbors(v)) {
            if (degree[w] <= degree[v])
                continue;
            // Swap w to the front of its bucket, then shrink its degree.
            const std::uint32_t dw = degree[w];
            const VertexId pw = position[w];
            const VertexId front = bucket_start[dw];
            const VertexId u = order[front];
            if (u != w) {
                std::swap(order[front], order[pw]);
                position[w] = front;
                position[u] = pw;
            }
            ++bucket_start[dw];
            --degree[w];
        }
    }
    return core;
}

} // namespace digraph::algorithms
