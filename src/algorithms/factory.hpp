/**
 * @file
 * Algorithm factory and the paper's benchmark list.
 */

#pragma once

#include <string>
#include <vector>

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Names of the paper's four benchmark algorithms, in paper order. */
const std::vector<std::string> &benchmarkNames();

/** Every algorithm name makeAlgorithm() accepts, in registry order. */
const std::vector<std::string> &allAlgorithmNames();

/**
 * Create an algorithm by name: "pagerank", "adsorption", "sssp", "kcore",
 * "katz", "bfs", or "wcc". Calls fatal() on an unknown name.
 * @param g Graph (some algorithms precompute per-graph tables).
 */
AlgorithmPtr makeAlgorithm(const std::string &name,
                           const graph::DirectedGraph &g);

/**
 * Create an algorithm from a "name[:param]" spec (the CLI --jobs
 * syntax): "sssp:5" / "bfs:5" select the source vertex, "kcore:4"
 * selects k; the parameterless names reject a param. Calls fatal() on
 * an unknown name, a non-numeric param, or a param where none applies.
 */
AlgorithmPtr makeAlgorithmSpec(const std::string &spec,
                               const graph::DirectedGraph &g);

} // namespace digraph::algorithms
