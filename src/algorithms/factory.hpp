/**
 * @file
 * Algorithm factory and the paper's benchmark list.
 */

#pragma once

#include <string>
#include <vector>

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Names of the paper's four benchmark algorithms, in paper order. */
const std::vector<std::string> &benchmarkNames();

/**
 * Create an algorithm by name: "pagerank", "adsorption", "sssp", "kcore",
 * "katz", "bfs", or "wcc". Calls fatal() on an unknown name.
 * @param g Graph (some algorithms precompute per-graph tables).
 */
AlgorithmPtr makeAlgorithm(const std::string &name,
                           const graph::DirectedGraph &g);

} // namespace digraph::algorithms
