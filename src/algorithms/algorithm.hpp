/**
 * @file
 * The vertex-program interface shared by every engine (DiGraph, the
 * Gunrock-like BSP baseline, the Groute-like async baseline, and the
 * sequential reference).
 *
 * Algorithms are expressed as *edge-distributive accumulative updates*, a
 * GAS [8] formulation adapted to edge-disjoint path processing: each
 * directed edge carries a private cache slot (the paper's E_val) holding
 * the last source contribution it propagated, so an edge can be processed
 * any number of times, in any order, on any replica, and the fixed point
 * is unchanged. Monotone algorithms (SSSP, BFS, WCC) ignore the cache;
 * accumulative ones (PageRank, Adsorption, k-core) push only the *delta*
 * since their last propagation.
 *
 * Master/mirror synchronization (Section 3.2.2) is algorithm-mediated:
 * a mirror pushes pushValue(current, at_load) and the master folds it in
 * with mergeMaster().
 */

#pragma once

#include <memory>
#include <string>

#include "common/types.hpp"
#include "graph/digraph.hpp"

namespace digraph::algorithms {

/**
 * Abstract iterative directed-graph algorithm.
 *
 * Implementations must be stateless with respect to execution (all mutable
 * state lives in the engine's vertex/edge arrays) so one instance can be
 * shared by concurrent engines.
 */
class Algorithm
{
  public:
    virtual ~Algorithm() = default;

    /** Short name ("pagerank", "sssp", ...). */
    virtual std::string name() const = 0;

    /** Initial state of vertex @p v. */
    virtual Value initVertex(const graph::DirectedGraph &g,
                             VertexId v) const = 0;

    /** Initial per-edge cache value (E_val) of edge @p e. */
    virtual Value
    initEdge(const graph::DirectedGraph &g, EdgeId e) const
    {
        (void)g;
        (void)e;
        return 0.0;
    }

    /** Whether vertex @p v starts active. */
    virtual bool
    initActive(const graph::DirectedGraph &g, VertexId v) const
    {
        (void)g;
        (void)v;
        return true;
    }

    /**
     * Process the directed edge @p edge_id from a vertex with state
     * @p src to a vertex with state @p dst.
     *
     * @param src            Current source state (the replica's view).
     * @param edge_state     Private per-edge cache (E_val slot).
     * @param edge_id        Original graph edge id.
     * @param weight         Edge weight.
     * @param src_out_degree Out-degree of the source vertex.
     * @param dst            Destination state, updated in place.
     * @return true when @p dst changed enough that the destination vertex
     *         must be (re)activated.
     */
    virtual bool processEdge(Value src, Value &edge_state, EdgeId edge_id,
                             Value weight, std::uint32_t src_out_degree,
                             Value &dst) const = 0;

    /**
     * Fold a mirror push into the master state.
     * @return true when the master changed enough to activate consumers.
     */
    virtual bool mergeMaster(Value &master, Value pushed) const = 0;

    /** The value a mirror pushes, given its current state and the
     *  snapshot taken when its partition was loaded. */
    virtual Value pushValue(Value current, Value at_load) const = 0;

    /** Whether the mirror has anything worth pushing. */
    virtual bool hasPush(Value current, Value at_load) const = 0;

    /** Refresh a mirror from the master at partition load. */
    virtual Value
    pull(Value master, Value mirror) const
    {
        (void)mirror;
        return master;
    }

    /**
     * Edge-cache value consistent with an already-converged source state
     * @p src_state (used by warm starts on evolving graphs: existing
     * edges must not re-push mass the destination already absorbed).
     * Monotone algorithms ignore the cache and keep the default.
     */
    virtual Value
    warmEdgeState(const graph::DirectedGraph &g, EdgeId e,
                  Value src_state) const
    {
        (void)src_state;
        return initEdge(g, e);
    }

    /**
     * Whether a converged state remains a valid warm start after edge
     * insertions (false for algorithms whose states may need to move
     * against their propagation direction, e.g. k-core counts grow when
     * in-edges appear).
     */
    virtual bool supportsIncremental() const { return true; }

    /** Activation / convergence threshold. */
    virtual double epsilon() const { return 1e-9; }

    /** Tolerance for comparing two engines' final states in tests. */
    virtual double resultTolerance() const { return 1e-6; }

    /**
     * Registry tag of the compile-time kernel policy whose processing
     * semantics this algorithm realizes ("" = none; the engine then
     * falls back to virtual dispatch in the wave hot loop). The tag is
     * an execution-semantics contract: a subclass that overrides any
     * processing method (processEdge / mergeMaster / pushValue /
     * hasPush / pull) with DIFFERENT semantics must override
     * kernelTag() to return "" or the specialized kernel will bypass
     * the override entirely. Subclasses that only add bookkeeping may
     * keep the inherited tag — the hot loop then provably never enters
     * their virtual methods (see tests/test_wave_kernels.cpp).
     */
    virtual std::string kernelTag() const { return ""; }
};

/**
 * CRTP/static-policy adapter: implements the virtual processing methods
 * by forwarding to a copyable, non-virtual @p Policy struct. The policy
 * is the single source of truth for the algorithm's per-edge math — the
 * specialized wave kernels (src/engine/wave_kernel.cpp) copy the policy
 * and call it directly, inlined, with zero virtual dispatch, while every
 * other engine family keeps using the virtual interface below. A policy
 * must provide processEdge / mergeMaster / pushValue / hasPush / pull
 * with the same signatures (minus virtual) plus the compile-time flags
 *   static constexpr bool kUsesWeight;     // reads the weight argument
 *   static constexpr bool kUsesOutDegree;  // reads src_out_degree
 *   static constexpr bool kAccumulative;   // commutative-delta family
 * so dead argument loads compile out of the specialized inner loop and
 * the engine can route the accumulative family through the lock-free
 * delta merge.
 */
template <class Policy>
class PolicyAlgorithm : public Algorithm
{
  public:
    using KernelPolicy = Policy;

    explicit PolicyAlgorithm(Policy policy) : policy_(std::move(policy)) {}

    /** The policy copied into specialized kernels. */
    const Policy &kernelPolicy() const { return policy_; }

    bool
    processEdge(Value src, Value &edge_state, EdgeId edge_id, Value weight,
                std::uint32_t src_out_degree, Value &dst) const override
    {
        return policy_.processEdge(src, edge_state, edge_id, weight,
                                   src_out_degree, dst);
    }

    bool
    mergeMaster(Value &master, Value pushed) const override
    {
        return policy_.mergeMaster(master, pushed);
    }

    Value
    pushValue(Value current, Value at_load) const override
    {
        return policy_.pushValue(current, at_load);
    }

    bool
    hasPush(Value current, Value at_load) const override
    {
        return policy_.hasPush(current, at_load);
    }

    Value
    pull(Value master, Value mirror) const override
    {
        return policy_.pull(master, mirror);
    }

  protected:
    Policy policy_;
};

/** Shared handle to an algorithm. */
using AlgorithmPtr = std::shared_ptr<const Algorithm>;

} // namespace digraph::algorithms
