#include "algorithms/adsorption.hpp"

namespace digraph::algorithms {

Adsorption::Adsorption(const graph::DirectedGraph &g, VertexId seed_every,
                       double p_inj, double p_cont, double eps)
    : seed_every_(seed_every ? seed_every : 1), p_inj_(p_inj),
      p_cont_(p_cont), eps_(eps)
{
    // Normalize incoming weights per destination so the update is a
    // contraction with factor p_cont.
    std::vector<Value> in_weight_sum(g.numVertices(), 0.0);
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        in_weight_sum[g.edgeTarget(e)] += g.edgeWeight(e);

    norm_weight_.resize(g.numEdges());
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Value sum = in_weight_sum[g.edgeTarget(e)];
        norm_weight_[e] = sum > 0.0 ? g.edgeWeight(e) / sum : 0.0;
    }
}

Value
Adsorption::initVertex(const graph::DirectedGraph &, VertexId v) const
{
    return isSeed(v) ? p_inj_ : 0.0;
}

bool
Adsorption::processEdge(Value src, Value &edge_state, EdgeId edge_id,
                        Value, std::uint32_t, Value &dst) const
{
    const Value delta = src - edge_state;
    if (delta == 0.0)
        return false;
    edge_state = src;
    const Value push = p_cont_ * norm_weight_[edge_id] * delta;
    dst += push;
    return push > eps_ || push < -eps_;
}

bool
Adsorption::mergeMaster(Value &master, Value pushed) const
{
    master += pushed;
    return pushed > eps_ || pushed < -eps_;
}

} // namespace digraph::algorithms
