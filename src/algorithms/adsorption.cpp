#include "algorithms/adsorption.hpp"

namespace digraph::algorithms {

Adsorption::Adsorption(const graph::DirectedGraph &g, VertexId seed_every,
                       double p_inj, double p_cont, double eps)
    : PolicyAlgorithm(AdsorptionPolicy{p_cont, eps, nullptr}),
      seed_every_(seed_every ? seed_every : 1), p_inj_(p_inj)
{
    // Normalize incoming weights per destination so the update is a
    // contraction with factor p_cont.
    std::vector<Value> in_weight_sum(g.numVertices(), 0.0);
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        in_weight_sum[g.edgeTarget(e)] += g.edgeWeight(e);

    norm_weight_.resize(g.numEdges());
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const Value sum = in_weight_sum[g.edgeTarget(e)];
        norm_weight_[e] = sum > 0.0 ? g.edgeWeight(e) / sum : 0.0;
    }
    policy_.norm = norm_weight_.data();
}

Value
Adsorption::initVertex(const graph::DirectedGraph &, VertexId v) const
{
    return isSeed(v) ? p_inj_ : 0.0;
}

} // namespace digraph::algorithms
