/**
 * @file
 * Single-source shortest paths [28] and BFS, as monotone min-plus
 * propagation. Monotonicity makes every processing order safe; the edge
 * cache (E_val) is unused.
 */

#pragma once

#include <limits>

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Asynchronous SSSP (non-negative weights). */
class Sssp : public Algorithm
{
  public:
    /** @param source Source vertex. */
    explicit Sssp(VertexId source = 0) : source_(source) {}

    std::string name() const override { return "sssp"; }

    Value
    initVertex(const graph::DirectedGraph &, VertexId v) const override
    {
        return v == source_ ? 0.0
                            : std::numeric_limits<Value>::infinity();
    }

    bool
    initActive(const graph::DirectedGraph &, VertexId v) const override
    {
        return v == source_;
    }

    bool
    processEdge(Value src, Value &, EdgeId, Value weight, std::uint32_t,
                Value &dst) const override
    {
        const Value cand = src + weight;
        if (cand < dst) {
            dst = cand;
            return true;
        }
        return false;
    }

    bool
    mergeMaster(Value &master, Value pushed) const override
    {
        if (pushed < master) {
            master = pushed;
            return true;
        }
        return false;
    }

    Value pushValue(Value current, Value) const override { return current; }

    bool
    hasPush(Value current, Value at_load) const override
    {
        return current < at_load;
    }

    Value
    pull(Value master, Value mirror) const override
    {
        return master < mirror ? master : mirror;
    }

    double resultTolerance() const override { return 1e-9; }

    /** Source vertex. */
    VertexId source() const { return source_; }

  private:
    VertexId source_;
};

/** BFS = SSSP with unit edge weights. */
class Bfs : public Sssp
{
  public:
    explicit Bfs(VertexId source = 0) : Sssp(source) {}

    std::string name() const override { return "bfs"; }

    bool
    processEdge(Value src, Value &, EdgeId, Value, std::uint32_t,
                Value &dst) const override
    {
        const Value cand = src + 1.0;
        if (cand < dst) {
            dst = cand;
            return true;
        }
        return false;
    }
};

} // namespace digraph::algorithms
