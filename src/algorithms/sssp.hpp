/**
 * @file
 * Single-source shortest paths [28] and BFS, as monotone min-plus
 * propagation. Monotonicity makes every processing order safe; the edge
 * cache (E_val) is unused.
 *
 * The per-edge math lives in SsspPolicy / BfsPolicy so the engine's
 * specialized wave kernels inline it without virtual dispatch.
 */

#pragma once

#include <limits>

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Non-virtual SSSP kernel policy (see PolicyAlgorithm). */
struct SsspPolicy
{
    static constexpr bool kUsesWeight = true;
    static constexpr bool kUsesOutDegree = false;
    static constexpr bool kAccumulative = false;

    bool
    processEdge(Value src, Value &, EdgeId, Value weight, std::uint32_t,
                Value &dst) const
    {
        const Value cand = src + weight;
        if (cand < dst) {
            dst = cand;
            return true;
        }
        return false;
    }

    bool
    mergeMaster(Value &master, Value pushed) const
    {
        if (pushed < master) {
            master = pushed;
            return true;
        }
        return false;
    }

    Value pushValue(Value current, Value) const { return current; }

    bool hasPush(Value current, Value at_load) const
    {
        return current < at_load;
    }

    Value pull(Value master, Value mirror) const
    {
        return master < mirror ? master : mirror;
    }
};

/** BFS policy: SSSP with unit edge weights (weight load compiled out). */
struct BfsPolicy : SsspPolicy
{
    static constexpr bool kUsesWeight = false;

    bool
    processEdge(Value src, Value &, EdgeId, Value, std::uint32_t,
                Value &dst) const
    {
        const Value cand = src + 1.0;
        if (cand < dst) {
            dst = cand;
            return true;
        }
        return false;
    }
};

/** Asynchronous SSSP (non-negative weights). */
class Sssp : public PolicyAlgorithm<SsspPolicy>
{
  public:
    /** @param source Source vertex. */
    explicit Sssp(VertexId source = 0)
        : PolicyAlgorithm(SsspPolicy{}), source_(source)
    {}

    std::string name() const override { return "sssp"; }
    std::string kernelTag() const override { return "sssp"; }

    Value
    initVertex(const graph::DirectedGraph &, VertexId v) const override
    {
        return v == source_ ? 0.0
                            : std::numeric_limits<Value>::infinity();
    }

    bool
    initActive(const graph::DirectedGraph &, VertexId v) const override
    {
        return v == source_;
    }

    double resultTolerance() const override { return 1e-9; }

    /** Source vertex. */
    VertexId source() const { return source_; }

  private:
    VertexId source_;
};

/** BFS = SSSP with unit edge weights. */
class Bfs : public PolicyAlgorithm<BfsPolicy>
{
  public:
    explicit Bfs(VertexId source = 0)
        : PolicyAlgorithm(BfsPolicy{}), source_(source)
    {}

    std::string name() const override { return "bfs"; }
    std::string kernelTag() const override { return "bfs"; }

    Value
    initVertex(const graph::DirectedGraph &, VertexId v) const override
    {
        return v == source_ ? 0.0
                            : std::numeric_limits<Value>::infinity();
    }

    bool
    initActive(const graph::DirectedGraph &, VertexId v) const override
    {
        return v == source_;
    }

    double resultTolerance() const override { return 1e-9; }

    /** Source vertex. */
    VertexId source() const { return source_; }

  private:
    VertexId source_;
};

} // namespace digraph::algorithms
