/**
 * @file
 * Adsorption label propagation [3] (single-label score variant).
 *
 * Fixed point: x(v) = p_inj * inj(v) + p_cont * sum_{u->v} w'(u,v) x(u),
 * where w'(u,v) normalizes each vertex's incoming weights to sum to one —
 * the contraction (p_cont < 1) guarantees convergence under asynchronous
 * delta propagation, using the same per-edge cache trick as PageRank.
 */

#pragma once

#include <vector>

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Asynchronous adsorption score propagation. */
class Adsorption : public Algorithm
{
  public:
    /**
     * @param g          Graph (normalized in-weights are precomputed).
     * @param seed_every Every seed_every-th vertex is an injection seed.
     * @param p_inj      Injection probability.
     * @param p_cont     Continuation probability (< 1).
     * @param eps        Activation threshold.
     */
    explicit Adsorption(const graph::DirectedGraph &g,
                        VertexId seed_every = 97, double p_inj = 0.25,
                        double p_cont = 0.75, double eps = 1e-6);

    std::string name() const override { return "adsorption"; }

    Value initVertex(const graph::DirectedGraph &g,
                     VertexId v) const override;

    bool processEdge(Value src, Value &edge_state, EdgeId edge_id, Value,
                     std::uint32_t, Value &dst) const override;

    bool mergeMaster(Value &master, Value pushed) const override;

    Value
    pushValue(Value current, Value at_load) const override
    {
        return current - at_load;
    }

    bool supportsIncremental() const override
    {
        // Per-edge contributions are normalized by degrees, which shift
        // under insertions; a warm start would mis-account old pushes.
        return false;
    }

    bool
    hasPush(Value current, Value at_load) const override
    {
        return current != at_load;
    }

    double epsilon() const override { return eps_; }
    double resultTolerance() const override { return 256.0 * eps_; }

  private:
    bool isSeed(VertexId v) const { return v % seed_every_ == 0; }

    VertexId seed_every_;
    double p_inj_;
    double p_cont_;
    double eps_;
    /** Per-edge normalized weight: w(e) / in-weight-sum(target(e)). */
    std::vector<Value> norm_weight_;
};

} // namespace digraph::algorithms
