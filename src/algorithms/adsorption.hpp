/**
 * @file
 * Adsorption label propagation [3] (single-label score variant).
 *
 * Fixed point: x(v) = p_inj * inj(v) + p_cont * sum_{u->v} w'(u,v) x(u),
 * where w'(u,v) normalizes each vertex's incoming weights to sum to one —
 * the contraction (p_cont < 1) guarantees convergence under asynchronous
 * delta propagation, using the same per-edge cache trick as PageRank.
 *
 * The per-edge math lives in AdsorptionPolicy so the engine's specialized
 * wave kernels inline it without virtual dispatch. The policy carries a
 * raw pointer into the class-owned normalized-weight table; the class
 * fixes it up after building the table.
 */

#pragma once

#include <vector>

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Non-virtual adsorption kernel policy (see PolicyAlgorithm). */
struct AdsorptionPolicy
{
    double p_cont;
    double eps;
    /** Per-edge normalized weight: w(e) / in-weight-sum(target(e)). */
    const Value *norm = nullptr;

    static constexpr bool kUsesWeight = false;
    static constexpr bool kUsesOutDegree = false;
    static constexpr bool kAccumulative = true;

    bool
    processEdge(Value src, Value &edge_state, EdgeId edge_id, Value,
                std::uint32_t, Value &dst) const
    {
        const Value delta = src - edge_state;
        if (delta == 0.0)
            return false;
        edge_state = src;
        const Value push = p_cont * norm[edge_id] * delta;
        dst += push;
        return push > eps || push < -eps;
    }

    bool
    mergeMaster(Value &master, Value pushed) const
    {
        master += pushed;
        return pushed > eps || pushed < -eps;
    }

    Value pushValue(Value current, Value at_load) const
    {
        return current - at_load;
    }

    bool hasPush(Value current, Value at_load) const
    {
        return current != at_load;
    }

    Value pull(Value master, Value) const { return master; }
};

/** Asynchronous adsorption score propagation. */
class Adsorption : public PolicyAlgorithm<AdsorptionPolicy>
{
  public:
    /**
     * @param g          Graph (normalized in-weights are precomputed).
     * @param seed_every Every seed_every-th vertex is an injection seed.
     * @param p_inj      Injection probability.
     * @param p_cont     Continuation probability (< 1).
     * @param eps        Activation threshold.
     */
    explicit Adsorption(const graph::DirectedGraph &g,
                        VertexId seed_every = 97, double p_inj = 0.25,
                        double p_cont = 0.75, double eps = 1e-6);

    std::string name() const override { return "adsorption"; }
    std::string kernelTag() const override { return "adsorption"; }

    Value initVertex(const graph::DirectedGraph &g,
                     VertexId v) const override;

    bool supportsIncremental() const override
    {
        // Per-edge contributions are normalized by degrees, which shift
        // under insertions; a warm start would mis-account old pushes.
        return false;
    }

    double epsilon() const override { return policy_.eps; }
    double resultTolerance() const override { return 256.0 * policy_.eps; }

  private:
    bool isSeed(VertexId v) const { return v % seed_every_ == 0; }

    VertexId seed_every_;
    double p_inj_;
    std::vector<Value> norm_weight_;
};

} // namespace digraph::algorithms
