#include "algorithms/hits.hpp"

#include <algorithm>
#include <cmath>

namespace digraph::algorithms {

namespace {

void
normalize(std::vector<Value> &values)
{
    double norm = 0.0;
    for (const Value v : values)
        norm += v * v;
    norm = std::sqrt(norm);
    if (norm <= 0.0)
        return;
    for (Value &v : values)
        v /= norm;
}

} // namespace

HitsScores
computeHits(const graph::DirectedGraph &g, unsigned max_iterations,
            double eps)
{
    const VertexId n = g.numVertices();
    HitsScores scores;
    scores.authority.assign(n, 1.0);
    scores.hub.assign(n, 1.0);
    normalize(scores.authority);
    normalize(scores.hub);

    std::vector<Value> next(n);
    for (unsigned it = 0; it < max_iterations; ++it) {
        ++scores.iterations;

        // Authority step: a(v) = sum of hub scores of predecessors.
        std::fill(next.begin(), next.end(), 0.0);
        for (VertexId v = 0; v < n; ++v) {
            for (const VertexId u : g.inNeighbors(v))
                next[v] += scores.hub[u];
        }
        normalize(next);
        double delta = 0.0;
        for (VertexId v = 0; v < n; ++v)
            delta = std::max(delta,
                             std::abs(next[v] - scores.authority[v]));
        scores.authority.swap(next);

        // Hub step: h(v) = sum of authority scores of successors.
        std::fill(next.begin(), next.end(), 0.0);
        for (VertexId v = 0; v < n; ++v) {
            for (const VertexId w : g.outNeighbors(v))
                next[v] += scores.authority[w];
        }
        normalize(next);
        for (VertexId v = 0; v < n; ++v)
            delta = std::max(delta, std::abs(next[v] - scores.hub[v]));
        scores.hub.swap(next);

        if (delta < eps)
            break;
    }
    return scores;
}

} // namespace digraph::algorithms
