/**
 * @file
 * Katz centrality: x(v) = beta + alpha * sum_{u->v} x(u).
 *
 * Same asynchronous delta-accumulation scheme as PageRank; converges for
 * alpha < 1 / max_in_degree (checked at construction against the graph),
 * since the update is then a contraction.
 */

#pragma once

#include "algorithms/algorithm.hpp"
#include "common/logging.hpp"

namespace digraph::algorithms {

/** Asynchronous delta Katz centrality. */
class Katz : public Algorithm
{
  public:
    /**
     * @param g     Graph (used to validate the contraction condition).
     * @param alpha Attenuation factor; must satisfy
     *              alpha * max_in_degree < 1.
     * @param beta  Base score.
     * @param eps   Activation threshold.
     */
    explicit Katz(const graph::DirectedGraph &g, double alpha = 0.0,
                  double beta = 1.0, double eps = 1e-6)
        : alpha_(alpha), beta_(beta), eps_(eps)
    {
        std::size_t max_in = 1;
        for (VertexId v = 0; v < g.numVertices(); ++v)
            max_in = std::max(max_in, g.inDegree(v));
        if (alpha_ == 0.0)
            alpha_ = 0.5 / static_cast<double>(max_in);
        if (alpha_ * static_cast<double>(max_in) >= 1.0) {
            fatal("Katz: alpha ", alpha_, " violates the contraction "
                  "condition for max in-degree ", max_in);
        }
    }

    std::string name() const override { return "katz"; }

    Value
    initVertex(const graph::DirectedGraph &, VertexId) const override
    {
        return beta_;
    }

    bool
    processEdge(Value src, Value &edge_state, EdgeId, Value,
                std::uint32_t, Value &dst) const override
    {
        const Value delta = src - edge_state;
        if (delta == 0.0)
            return false;
        edge_state = src;
        const Value push = alpha_ * delta;
        dst += push;
        return push > eps_ || push < -eps_;
    }

    bool
    mergeMaster(Value &master, Value pushed) const override
    {
        master += pushed;
        return pushed > eps_ || pushed < -eps_;
    }

    Value
    pushValue(Value current, Value at_load) const override
    {
        return current - at_load;
    }

    Value
    warmEdgeState(const graph::DirectedGraph &, EdgeId,
                  Value src_state) const override
    {
        return src_state; // contribution already delivered
    }

    bool
    hasPush(Value current, Value at_load) const override
    {
        return current != at_load;
    }

    double epsilon() const override { return eps_; }
    double resultTolerance() const override { return 256.0 * eps_; }

    /** Effective attenuation factor. */
    double alpha() const { return alpha_; }

  private:
    double alpha_;
    double beta_;
    double eps_;
};

} // namespace digraph::algorithms
