/**
 * @file
 * Katz centrality: x(v) = beta + alpha * sum_{u->v} x(u).
 *
 * Same asynchronous delta-accumulation scheme as PageRank; converges for
 * alpha < 1 / max_in_degree (checked at construction against the graph),
 * since the update is then a contraction.
 *
 * The per-edge math lives in KatzPolicy so the engine's specialized wave
 * kernels inline it without virtual dispatch.
 */

#pragma once

#include "algorithms/algorithm.hpp"
#include "common/logging.hpp"

namespace digraph::algorithms {

/** Non-virtual Katz kernel policy (see PolicyAlgorithm). */
struct KatzPolicy
{
    double alpha;
    double eps;

    static constexpr bool kUsesWeight = false;
    static constexpr bool kUsesOutDegree = false;
    static constexpr bool kAccumulative = true;

    bool
    processEdge(Value src, Value &edge_state, EdgeId, Value,
                std::uint32_t, Value &dst) const
    {
        const Value delta = src - edge_state;
        if (delta == 0.0)
            return false;
        edge_state = src;
        const Value push = alpha * delta;
        dst += push;
        return push > eps || push < -eps;
    }

    bool
    mergeMaster(Value &master, Value pushed) const
    {
        master += pushed;
        return pushed > eps || pushed < -eps;
    }

    Value pushValue(Value current, Value at_load) const
    {
        return current - at_load;
    }

    bool hasPush(Value current, Value at_load) const
    {
        return current != at_load;
    }

    Value pull(Value master, Value) const { return master; }
};

/** Asynchronous delta Katz centrality. */
class Katz : public PolicyAlgorithm<KatzPolicy>
{
  public:
    /**
     * @param g     Graph (used to validate the contraction condition).
     * @param alpha Attenuation factor; must satisfy
     *              alpha * max_in_degree < 1.
     * @param beta  Base score.
     * @param eps   Activation threshold.
     */
    explicit Katz(const graph::DirectedGraph &g, double alpha = 0.0,
                  double beta = 1.0, double eps = 1e-6)
        : PolicyAlgorithm(KatzPolicy{alpha, eps}), beta_(beta)
    {
        std::size_t max_in = 1;
        for (VertexId v = 0; v < g.numVertices(); ++v)
            max_in = std::max(max_in, g.inDegree(v));
        if (policy_.alpha == 0.0)
            policy_.alpha = 0.5 / static_cast<double>(max_in);
        if (policy_.alpha * static_cast<double>(max_in) >= 1.0) {
            fatal("Katz: alpha ", policy_.alpha,
                  " violates the contraction "
                  "condition for max in-degree ", max_in);
        }
    }

    std::string name() const override { return "katz"; }
    std::string kernelTag() const override { return "katz"; }

    Value
    initVertex(const graph::DirectedGraph &, VertexId) const override
    {
        return beta_;
    }

    Value
    warmEdgeState(const graph::DirectedGraph &, EdgeId,
                  Value src_state) const override
    {
        return src_state; // contribution already delivered
    }

    double epsilon() const override { return policy_.eps; }
    double resultTolerance() const override { return 256.0 * policy_.eps; }

    /** Effective attenuation factor. */
    double alpha() const { return policy_.alpha; }

  private:
    double beta_;
};

} // namespace digraph::algorithms
