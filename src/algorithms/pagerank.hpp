/**
 * @file
 * Delta-accumulative PageRank [29].
 *
 * Fixed point: x(v) = (1-d) + d * sum_{u->v} x(u) / outdeg(u).
 * Each edge caches the last source rank it propagated (E_val); processing
 * pushes only the difference, so contributions are counted exactly once
 * regardless of processing order — the standard asynchronous-PageRank
 * contraction argument guarantees convergence to the synchronous fixed
 * point.
 *
 * The per-edge math lives in PageRankPolicy so the engine's specialized
 * wave kernels inline it without virtual dispatch; the PageRank class is
 * the virtual adapter every other engine family uses.
 */

#pragma once

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Non-virtual PageRank kernel policy (see PolicyAlgorithm). */
struct PageRankPolicy
{
    double damping;
    double eps;

    static constexpr bool kUsesWeight = false;
    static constexpr bool kUsesOutDegree = true;
    static constexpr bool kAccumulative = true;

    bool
    processEdge(Value src, Value &edge_state, EdgeId, Value,
                std::uint32_t src_out_degree, Value &dst) const
    {
        const Value delta = src - edge_state;
        if (delta == 0.0)
            return false;
        edge_state = src;
        const Value push =
            damping * delta /
            static_cast<Value>(src_out_degree ? src_out_degree : 1);
        dst += push;
        return push > eps || push < -eps;
    }

    bool
    mergeMaster(Value &master, Value pushed) const
    {
        master += pushed;
        return pushed > eps || pushed < -eps;
    }

    Value pushValue(Value current, Value at_load) const
    {
        return current - at_load;
    }

    bool hasPush(Value current, Value at_load) const
    {
        return current != at_load;
    }

    Value pull(Value master, Value) const { return master; }
};

/** Asynchronous delta PageRank. */
class PageRank : public PolicyAlgorithm<PageRankPolicy>
{
  public:
    /** @param damping d in [0,1). @param eps activation threshold. */
    explicit PageRank(double damping = 0.85, double eps = 1e-6)
        : PolicyAlgorithm(PageRankPolicy{damping, eps})
    {}

    std::string name() const override { return "pagerank"; }
    std::string kernelTag() const override { return "pagerank"; }

    Value
    initVertex(const graph::DirectedGraph &, VertexId) const override
    {
        return 1.0 - policy_.damping;
    }

    bool supportsIncremental() const override
    {
        // Per-edge contributions are normalized by degrees, which shift
        // under insertions; a warm start would mis-account old pushes.
        return false;
    }

    double epsilon() const override { return policy_.eps; }
    double resultTolerance() const override { return 256.0 * policy_.eps; }

    /** Damping factor. */
    double damping() const { return policy_.damping; }
};

} // namespace digraph::algorithms
