/**
 * @file
 * Delta-accumulative PageRank [29].
 *
 * Fixed point: x(v) = (1-d) + d * sum_{u->v} x(u) / outdeg(u).
 * Each edge caches the last source rank it propagated (E_val); processing
 * pushes only the difference, so contributions are counted exactly once
 * regardless of processing order — the standard asynchronous-PageRank
 * contraction argument guarantees convergence to the synchronous fixed
 * point.
 */

#pragma once

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Asynchronous delta PageRank. */
class PageRank : public Algorithm
{
  public:
    /** @param damping d in [0,1). @param eps activation threshold. */
    explicit PageRank(double damping = 0.85, double eps = 1e-6)
        : damping_(damping), eps_(eps)
    {}

    std::string name() const override { return "pagerank"; }

    Value
    initVertex(const graph::DirectedGraph &, VertexId) const override
    {
        return 1.0 - damping_;
    }

    bool
    processEdge(Value src, Value &edge_state, EdgeId, Value,
                std::uint32_t src_out_degree, Value &dst) const override
    {
        const Value delta = src - edge_state;
        if (delta == 0.0)
            return false;
        edge_state = src;
        const Value push =
            damping_ * delta /
            static_cast<Value>(src_out_degree ? src_out_degree : 1);
        dst += push;
        return push > eps_ || push < -eps_;
    }

    bool
    mergeMaster(Value &master, Value pushed) const override
    {
        master += pushed;
        return pushed > eps_ || pushed < -eps_;
    }

    Value
    pushValue(Value current, Value at_load) const override
    {
        return current - at_load;
    }

    bool supportsIncremental() const override
    {
        // Per-edge contributions are normalized by degrees, which shift
        // under insertions; a warm start would mis-account old pushes.
        return false;
    }

    bool
    hasPush(Value current, Value at_load) const override
    {
        return current != at_load;
    }

    double epsilon() const override { return eps_; }
    double resultTolerance() const override { return 256.0 * eps_; }

    /** Damping factor. */
    double damping() const { return damping_; }

  private:
    double damping_;
    double eps_;
};

} // namespace digraph::algorithms
